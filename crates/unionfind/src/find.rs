//! Find implementations (Algorithm 8 of the paper): naive, path-splitting,
//! path-halving, full path compression, and Jayanti–Tarjan–Boix two-try
//! splitting.
//!
//! Every find reports the number of parent-pointer hops it traversed via a
//! [`Telemetry`] parameter; with [`crate::telemetry::CountHops`] the
//! harness aggregates these into the Total/Max Path Length statistics of
//! Figures 6–7, with [`crate::telemetry::NoCount`] the accounting is
//! compiled out of the monomorphized kernel.

use crate::parents::Parents;
use crate::telemetry::Telemetry;
use std::sync::atomic::Ordering;

/// A find strategy: locates the root of `u`, possibly compressing the path.
pub trait Find: Send + Sync + 'static {
    /// Human-readable name matching the paper.
    const NAME: &'static str;
    /// Whether this strategy mutates the structure (used to skip pointless
    /// post-union finds for `FindNaive`).
    const COMPRESSES: bool;
    /// Returns the root of `u`, adding traversed hops to `t`.
    fn find<T: Telemetry>(p: &Parents, u: u32, t: &mut T) -> u32;
}

/// No compression: follow parent pointers to the root.
pub struct FindNaive;

impl Find for FindNaive {
    const NAME: &'static str = "FindNaive";
    const COMPRESSES: bool = false;
    #[inline]
    fn find<T: Telemetry>(p: &Parents, mut u: u32, t: &mut T) -> u32 {
        loop {
            let v = p[u as usize].load(Ordering::Acquire);
            if v == u {
                return v;
            }
            t.add(1);
            u = v;
        }
    }
}

/// Atomic path splitting: every visited vertex is re-pointed at its
/// grandparent; the walk advances to the old parent.
pub struct FindSplit;

impl Find for FindSplit {
    const NAME: &'static str = "FindSplit";
    const COMPRESSES: bool = true;
    #[inline]
    fn find<T: Telemetry>(p: &Parents, mut u: u32, t: &mut T) -> u32 {
        loop {
            let v = p[u as usize].load(Ordering::Acquire);
            let w = p[v as usize].load(Ordering::Acquire);
            if v == w {
                return v;
            }
            t.add(1);
            let _ = p[u as usize].compare_exchange(v, w, Ordering::AcqRel, Ordering::Relaxed);
            u = v;
        }
    }
}

/// Atomic path halving: like splitting but the walk advances two levels.
pub struct FindHalve;

impl Find for FindHalve {
    const NAME: &'static str = "FindHalve";
    const COMPRESSES: bool = true;
    #[inline]
    fn find<T: Telemetry>(p: &Parents, mut u: u32, t: &mut T) -> u32 {
        loop {
            let v = p[u as usize].load(Ordering::Acquire);
            let w = p[v as usize].load(Ordering::Acquire);
            if v == w {
                return v;
            }
            t.add(1);
            let _ = p[u as usize].compare_exchange(v, w, Ordering::AcqRel, Ordering::Relaxed);
            u = p[u as usize].load(Ordering::Acquire);
        }
    }
}

/// Full path compression: find the root, then re-point every vertex on the
/// walk directly at it. The second pass only overwrites larger values with
/// the (smaller) root, preserving the monotone invariant under concurrency.
pub struct FindCompress;

impl Find for FindCompress {
    const NAME: &'static str = "FindCompress";
    const COMPRESSES: bool = true;
    #[inline]
    fn find<T: Telemetry>(p: &Parents, u: u32, t: &mut T) -> u32 {
        let mut r = u;
        loop {
            let v = p[r as usize].load(Ordering::Acquire);
            if v == r {
                break;
            }
            t.add(1);
            r = v;
        }
        // Second pass: compress. Walk from u, re-pointing at r while the
        // current parent is above r in id order.
        let mut cur = u;
        loop {
            let v = p[cur as usize].load(Ordering::Acquire);
            if v <= r || v == cur {
                break;
            }
            let _ = p[cur as usize].compare_exchange(v, r, Ordering::AcqRel, Ordering::Relaxed);
            cur = v;
        }
        r
    }
}

/// Two-try splitting find (Jayanti–Tarjan–Boix-Adserà): attempts the split
/// CAS at most twice per vertex before advancing, which yields their
/// work bounds under a random linking order.
#[inline]
pub fn find_two_try_split<T: Telemetry>(p: &Parents, mut u: u32, t: &mut T) -> u32 {
    loop {
        let v = p[u as usize].load(Ordering::Acquire);
        let w = p[v as usize].load(Ordering::Acquire);
        if v == w {
            return v;
        }
        t.add(1);
        // Try 1.
        if p[u as usize].compare_exchange(v, w, Ordering::AcqRel, Ordering::Relaxed).is_err() {
            // Try 2 with refreshed values.
            let v2 = p[u as usize].load(Ordering::Acquire);
            let w2 = p[v2 as usize].load(Ordering::Acquire);
            if v2 == w2 {
                return v2;
            }
            let _ = p[u as usize].compare_exchange(v2, w2, Ordering::AcqRel, Ordering::Relaxed);
        }
        u = p[u as usize].load(Ordering::Acquire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parents::{make_parents, parent};
    use crate::telemetry::CountHops;
    use std::sync::atomic::Ordering;

    fn chain(n: usize) -> Box<Parents> {
        // n-1 -> n-2 -> ... -> 0
        let p = make_parents(n);
        for v in 1..n {
            p[v].store(v as u32 - 1, Ordering::Relaxed);
        }
        p
    }

    fn check_find<F: Find>() {
        let p = chain(50);
        let mut hops = CountHops::default();
        assert_eq!(F::find(&p, 49, &mut hops), 0);
        // Hop accounting varies by strategy (halving advances two levels
        // per recorded hop) but a length-49 path costs at least ~half that.
        assert!((24..=49).contains(&hops.0), "hops = {}", hops.0);
        // Roots answer themselves.
        let mut h2 = CountHops::default();
        assert_eq!(F::find(&p, 0, &mut h2), 0);
        assert_eq!(h2.0, 0);
        // Second find is never slower than the first.
        let mut h3 = CountHops::default();
        assert_eq!(F::find(&p, 49, &mut h3), 0);
        assert!(h3.0 <= hops.0);
        if F::COMPRESSES {
            assert!(h3.0 < hops.0, "{} should shorten the path", F::NAME);
        }
    }

    #[test]
    fn naive_find() {
        check_find::<FindNaive>();
        // Naive must not mutate.
        let p = chain(10);
        let mut h = CountHops::default();
        FindNaive::find(&p, 9, &mut h);
        assert_eq!(parent(&p, 9), 8);
    }

    #[test]
    fn split_find() {
        check_find::<FindSplit>();
    }

    #[test]
    fn halve_find() {
        check_find::<FindHalve>();
    }

    #[test]
    fn compress_find_points_directly_at_root() {
        check_find::<FindCompress>();
        let p = chain(20);
        let mut h = CountHops::default();
        FindCompress::find(&p, 19, &mut h);
        for v in 1..20u32 {
            assert_eq!(parent(&p, v), 0, "vertex {v} fully compressed");
        }
    }

    #[test]
    fn nocount_find_still_reaches_root() {
        use crate::telemetry::NoCount;
        let p = chain(30);
        assert_eq!(FindSplit::find(&p, 29, &mut NoCount), 0);
        assert_eq!(FindNaive::find(&p, 29, &mut NoCount), 0);
    }

    #[test]
    fn two_try_split_reaches_root() {
        let p = chain(64);
        let mut h = CountHops::default();
        assert_eq!(find_two_try_split(&p, 63, &mut h), 0);
        let mut h2 = CountHops::default();
        assert_eq!(find_two_try_split(&p, 63, &mut h2), 0);
        assert!(h2.0 < h.0);
    }

    #[test]
    fn concurrent_finds_agree() {
        use cc_parallel::parallel_for;
        let p = chain(1000);
        parallel_for(1000, |v| {
            let mut h = CountHops::default();
            assert_eq!(FindSplit::find(&p, v as u32, &mut h), 0);
        });
        // Structure stays rooted at 0.
        for v in 0..1000u32 {
            assert_eq!(crate::parents::find_root_readonly(&p, v), 0);
        }
    }
}
