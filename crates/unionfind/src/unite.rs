//! The union algorithms of Section 3.3.1: Union-Async, Union-Hooks,
//! Union-Early, Union-Rem-CAS, Union-Rem-Lock, and Union-JTB.
//!
//! Every algorithm is generic over a [`Find`] strategy (and the Rem
//! algorithms over a [`Splice`] strategy), mirroring the paper's template
//! specialization, and implements the static-dispatch [`UniteKernel`]
//! trait whose methods are additionally generic over a [`Telemetry`]
//! selector: instantiated with [`crate::telemetry::NoCount`], the
//! path-length accounting is
//! compiled out of the kernel entirely. All of them are *root-based*: a
//! merge happens only by changing the parent pointer of a tree root (Rem +
//! `SpliceAtomic` being the documented exception), which is what makes
//! spanning forest and the monotonicity proofs work.
//!
//! `unite` returns `Some(r)` when this call hooked root `r` (each vertex is
//! hooked at most once over the lifetime of the structure), letting callers
//! attribute spanning-forest edges; `None` means the endpoints were already
//! connected or another operation performed the merge.
//!
//! The object-safe [`Unite`] trait survives as a thin adapter (a blanket
//! impl over every kernel) for variant enumeration and tests; hot paths
//! go through [`crate::spec::UfSpec::dispatch`] instead.

use crate::find::{find_two_try_split, Find, FindNaive};
use crate::parents::Parents;
use crate::splice::Splice;
use crate::telemetry::{CountHops, Telemetry};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};

/// Sentinel for "not hooked yet" in the hooks array.
const UNHOOKED: u32 = u32::MAX;

/// A concurrent union-find kernel with static dispatch: the generic
/// counterpart of [`Unite`], monomorphized per (union family, find,
/// splice, telemetry) combination exactly like the paper's C++ templates.
///
/// Implementations may carry per-instance state (hook arrays, locks,
/// random ranks); the parent array itself is passed in so one structure
/// can be shared across phases (sampling → finish → streaming).
pub trait UniteKernel: Send + Sync + 'static {
    /// Creates an instance for `n` vertices. `seed` feeds the variants
    /// that use randomness (Union-JTB ranks); stateless kernels ignore
    /// both arguments.
    fn build(n: usize, seed: u64) -> Self
    where
        Self: Sized;

    /// Merges the sets of `u` and `v`. Returns the root this call hooked,
    /// if any. Adds traversed parent-pointer hops to `t`.
    fn unite<T: Telemetry>(&self, p: &Parents, u: u32, v: u32, t: &mut T) -> Option<u32>;

    /// Finds the representative of `u` using this algorithm's find
    /// strategy, adding traversed hops to `t`.
    fn find<T: Telemetry>(&self, p: &Parents, u: u32, t: &mut T) -> u32;

    /// Algorithm name, e.g. `"Union-Rem-CAS{SplitAtomicOne; FindNaive}"`.
    fn name(&self) -> String;

    /// False when the splice strategy can merge trees at non-roots
    /// (Rem + `SpliceAtomic`), which rules out spanning forest.
    fn supports_forest(&self) -> bool {
        true
    }

    /// False when finds may not run concurrently with unions and the
    /// algorithm must be used phase-concurrently (Rem + `SpliceAtomic`,
    /// Theorem 3 / streaming Type (iii)).
    fn concurrent_finds(&self) -> bool {
        true
    }
}

/// An object-safe union-find handle: one virtual call per operation with a
/// mandatory hop count. Kept as the *adapter* over [`UniteKernel`] for
/// variant enumeration (`UfSpec::instantiate`) and tests; every per-edge
/// hot loop in the workspace uses the monomorphized kernels instead.
pub trait Unite: Send + Sync {
    /// Merges the sets of `u` and `v`. Returns the root this call hooked,
    /// if any. Adds traversed parent-pointer hops to `*hops`.
    fn unite(&self, p: &Parents, u: u32, v: u32, hops: &mut u64) -> Option<u32>;

    /// Finds the representative of `u` using this algorithm's find strategy.
    fn find(&self, p: &Parents, u: u32, hops: &mut u64) -> u32;

    /// Algorithm name, e.g. `"Union-Rem-CAS{SplitAtomicOne; FindNaive}"`.
    fn name(&self) -> String;

    /// See [`UniteKernel::supports_forest`].
    fn supports_forest(&self) -> bool;

    /// See [`UniteKernel::concurrent_finds`].
    fn concurrent_finds(&self) -> bool;
}

impl<K: UniteKernel> Unite for K {
    fn unite(&self, p: &Parents, u: u32, v: u32, hops: &mut u64) -> Option<u32> {
        let mut t = CountHops::default();
        let r = UniteKernel::unite(self, p, u, v, &mut t);
        *hops += t.0;
        r
    }

    fn find(&self, p: &Parents, u: u32, hops: &mut u64) -> u32 {
        let mut t = CountHops::default();
        let r = UniteKernel::find(self, p, u, &mut t);
        *hops += t.0;
        r
    }

    fn name(&self) -> String {
        UniteKernel::name(self)
    }

    fn supports_forest(&self) -> bool {
        UniteKernel::supports_forest(self)
    }

    fn concurrent_finds(&self) -> bool {
        UniteKernel::concurrent_finds(self)
    }
}

/// Union-Async: the classic asynchronous union-find of Jayanti–Tarjan,
/// linking higher-id roots below lower-id vertices.
pub struct UnionAsync<F: Find = FindNaive>(PhantomData<F>);

impl<F: Find> UnionAsync<F> {
    /// Creates an instance (stateless).
    pub fn new() -> Self {
        UnionAsync(PhantomData)
    }
}

impl<F: Find> Default for UnionAsync<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Find> UniteKernel for UnionAsync<F> {
    fn build(_n: usize, _seed: u64) -> Self {
        Self::new()
    }

    #[inline]
    fn unite<T: Telemetry>(&self, p: &Parents, u: u32, v: u32, t: &mut T) -> Option<u32> {
        let mut pu = F::find(p, u, t);
        let mut pv = F::find(p, v, t);
        while pu != pv {
            if pu < pv {
                std::mem::swap(&mut pu, &mut pv);
            }
            // pu > pv: hook pu beneath pv if pu is still a root.
            if p[pu as usize].load(Ordering::Acquire) == pu
                && p[pu as usize]
                    .compare_exchange(pu, pv, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(pu);
            }
            pu = F::find(p, pu, t);
            pv = F::find(p, pv, t);
        }
        None
    }

    #[inline]
    fn find<T: Telemetry>(&self, p: &Parents, u: u32, t: &mut T) -> u32 {
        F::find(p, u, t)
    }

    fn name(&self) -> String {
        format!("Union-Async{{{}}}", F::NAME)
    }
}

/// Union-Hooks: like Union-Async, but the winning CAS happens on an
/// auxiliary hooks array; the parent write itself is then uncontended.
pub struct UnionHooks<F: Find = FindNaive> {
    hooks: Box<[AtomicU32]>,
    _find: PhantomData<F>,
}

impl<F: Find> UnionHooks<F> {
    /// Creates an instance for `n` vertices.
    pub fn new(n: usize) -> Self {
        UnionHooks {
            hooks: cc_parallel::parallel_tabulate(n, |_| AtomicU32::new(UNHOOKED))
                .into_boxed_slice(),
            _find: PhantomData,
        }
    }
}

impl<F: Find> UniteKernel for UnionHooks<F> {
    fn build(n: usize, _seed: u64) -> Self {
        Self::new(n)
    }

    #[inline]
    fn unite<T: Telemetry>(&self, p: &Parents, u: u32, v: u32, t: &mut T) -> Option<u32> {
        loop {
            let pu = F::find(p, u, t);
            let pv = F::find(p, v, t);
            if pu == pv {
                return None;
            }
            let (big, small) = if pu > pv { (pu, pv) } else { (pv, pu) };
            if self.hooks[big as usize]
                .compare_exchange(UNHOOKED, small, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // We own the one-shot right to hook `big`; the store cannot
                // race with another hook of the same vertex.
                p[big as usize].store(small, Ordering::Release);
                return Some(big);
            }
            // Someone else hooked `big` concurrently; re-find and retry.
        }
    }

    #[inline]
    fn find<T: Telemetry>(&self, p: &Parents, u: u32, t: &mut T) -> u32 {
        F::find(p, u, t)
    }

    fn name(&self) -> String {
        format!("Union-Hooks{{{}}}", F::NAME)
    }
}

/// Union-Early: walks both endpoints upward together and eagerly hooks as
/// soon as the larger current vertex is observed to be a root.
pub struct UnionEarly<F: Find = FindNaive>(PhantomData<F>);

impl<F: Find> UnionEarly<F> {
    /// Creates an instance (stateless).
    pub fn new() -> Self {
        UnionEarly(PhantomData)
    }
}

impl<F: Find> Default for UnionEarly<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Find> UniteKernel for UnionEarly<F> {
    fn build(_n: usize, _seed: u64) -> Self {
        Self::new()
    }

    #[inline]
    fn unite<T: Telemetry>(&self, p: &Parents, u0: u32, v0: u32, t: &mut T) -> Option<u32> {
        let (mut u, mut v) = (u0, v0);
        let mut hooked = None;
        loop {
            if u == v {
                break;
            }
            if v < u {
                std::mem::swap(&mut u, &mut v);
            }
            // v > u: if v is a root, hooking it beneath u keeps the
            // monotone invariant (roots are the minima of their trees, so
            // v > u proves they are in different trees).
            let pv = p[v as usize].load(Ordering::Acquire);
            if pv == v {
                if p[v as usize].compare_exchange(v, u, Ordering::AcqRel, Ordering::Relaxed).is_ok()
                {
                    hooked = Some(v);
                    break;
                }
                continue; // lost a race; re-observe
            }
            // One splitting step on v, then climb.
            t.add(1);
            let w = p[pv as usize].load(Ordering::Acquire);
            if pv != w {
                let _ = p[v as usize].compare_exchange(pv, w, Ordering::AcqRel, Ordering::Relaxed);
            }
            v = pv;
        }
        if F::COMPRESSES {
            F::find(p, u0, t);
            F::find(p, v0, t);
        }
        hooked
    }

    #[inline]
    fn find<T: Telemetry>(&self, p: &Parents, u: u32, t: &mut T) -> u32 {
        F::find(p, u, t)
    }

    fn name(&self) -> String {
        format!("Union-Early{{{}}}", F::NAME)
    }
}

/// Union-Rem-CAS: the lock-free concurrent Rem's algorithm, generic over
/// the splice strategy used at non-roots and the find strategy applied to
/// the endpoints after the union completes.
pub struct UnionRemCas<S: Splice, F: Find = FindNaive>(PhantomData<(S, F)>);

impl<S: Splice, F: Find> UnionRemCas<S, F> {
    /// Creates an instance (stateless).
    pub fn new() -> Self {
        UnionRemCas(PhantomData)
    }
}

impl<S: Splice, F: Find> Default for UnionRemCas<S, F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Splice, F: Find> UniteKernel for UnionRemCas<S, F> {
    fn build(_n: usize, _seed: u64) -> Self {
        Self::new()
    }

    #[inline]
    fn unite<T: Telemetry>(&self, p: &Parents, u: u32, v: u32, t: &mut T) -> Option<u32> {
        let (mut ru, mut rv) = (u, v);
        let hooked = loop {
            let pu = p[ru as usize].load(Ordering::Acquire);
            let pv = p[rv as usize].load(Ordering::Acquire);
            if pu == pv {
                break None;
            }
            // Work on the side with the larger parent.
            let (wu, wpu, wpv) = if pu > pv { (ru, pu, pv) } else { (rv, pv, pu) };
            if wu == wpu {
                // wu is a root with id larger than wpv: hook it.
                if p[wu as usize]
                    .compare_exchange(wu, wpv, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    break Some(wu);
                }
                // Lost a race; re-observe.
            } else {
                let next = S::step(p, wu, wpu, wpv, t);
                if pu > pv {
                    ru = next;
                } else {
                    rv = next;
                }
            }
        };
        if F::COMPRESSES {
            F::find(p, u, t);
            F::find(p, v, t);
        }
        hooked
    }

    #[inline]
    fn find<T: Telemetry>(&self, p: &Parents, u: u32, t: &mut T) -> u32 {
        F::find(p, u, t)
    }

    fn name(&self) -> String {
        format!("Union-Rem-CAS{{{}; {}}}", S::NAME, F::NAME)
    }

    fn supports_forest(&self) -> bool {
        !S::CROSSES_TREES
    }

    fn concurrent_finds(&self) -> bool {
        !S::CROSSES_TREES
    }
}

/// Union-Rem-Lock: Patwary et al.'s lock-based Rem's algorithm. Every
/// modification of a vertex's parent takes that vertex's lock and
/// revalidates the observed parent before writing.
pub struct UnionRemLock<S: Splice, F: Find = FindNaive> {
    locks: Box<[Mutex<()>]>,
    _ops: PhantomData<(S, F)>,
}

impl<S: Splice, F: Find> UnionRemLock<S, F> {
    /// Creates an instance with one lock per vertex.
    pub fn new(n: usize) -> Self {
        UnionRemLock {
            locks: (0..n).map(|_| Mutex::new(())).collect::<Vec<_>>().into_boxed_slice(),
            _ops: PhantomData,
        }
    }
}

impl<S: Splice, F: Find> UniteKernel for UnionRemLock<S, F> {
    fn build(n: usize, _seed: u64) -> Self {
        Self::new(n)
    }

    #[inline]
    fn unite<T: Telemetry>(&self, p: &Parents, u: u32, v: u32, t: &mut T) -> Option<u32> {
        let (mut ru, mut rv) = (u, v);
        let hooked = loop {
            let pu = p[ru as usize].load(Ordering::Acquire);
            let pv = p[rv as usize].load(Ordering::Acquire);
            if pu == pv {
                break None;
            }
            let (wu, wpu, wpv) = if pu > pv { (ru, pu, pv) } else { (rv, pv, pu) };
            if wu == wpu {
                let guard = self.locks[wu as usize].lock();
                let still_root = p[wu as usize].load(Ordering::Acquire) == wu;
                if still_root {
                    p[wu as usize].store(wpv, Ordering::Release);
                }
                drop(guard);
                if still_root {
                    break Some(wu);
                }
            } else {
                // Lock-guarded splice step: revalidate the observed parent,
                // then apply the same relink the atomic strategy would.
                let next = {
                    let _guard = self.locks[wu as usize].lock();
                    let cur = p[wu as usize].load(Ordering::Acquire);
                    if cur == wpu {
                        S::step(p, wu, wpu, wpv, t)
                    } else {
                        // Parent moved under us; resume from the new parent.
                        cur
                    }
                };
                if pu > pv {
                    ru = next;
                } else {
                    rv = next;
                }
            }
        };
        if F::COMPRESSES {
            F::find(p, u, t);
            F::find(p, v, t);
        }
        hooked
    }

    #[inline]
    fn find<T: Telemetry>(&self, p: &Parents, u: u32, t: &mut T) -> u32 {
        F::find(p, u, t)
    }

    fn name(&self) -> String {
        format!("Union-Rem-Lock{{{}; {}}}", S::NAME, F::NAME)
    }

    fn supports_forest(&self) -> bool {
        !S::CROSSES_TREES
    }

    fn concurrent_finds(&self) -> bool {
        !S::CROSSES_TREES
    }
}

/// Find strategy selector for [`UnionJtb`], lifted to the type level so
/// the per-find `match` of the old runtime selector disappears from the
/// monomorphized kernel.
pub trait JtbFindStrategy: Send + Sync + 'static {
    /// Human-readable name matching the paper.
    const NAME: &'static str;
    /// Performs the find.
    fn find<T: Telemetry>(p: &Parents, u: u32, t: &mut T) -> u32;
}

/// No compression during finds ("FindSimple" in the paper).
pub struct JtbSimple;

impl JtbFindStrategy for JtbSimple {
    const NAME: &'static str = "FindSimple";
    #[inline]
    fn find<T: Telemetry>(p: &Parents, u: u32, t: &mut T) -> u32 {
        FindNaive::find(p, u, t)
    }
}

/// Randomized two-try splitting, the provably-efficient option.
pub struct JtbTwoTry;

impl JtbFindStrategy for JtbTwoTry {
    const NAME: &'static str = "FindTwoTrySplit";
    #[inline]
    fn find<T: Telemetry>(p: &Parents, u: u32, t: &mut T) -> u32 {
        find_two_try_split(p, u, t)
    }
}

/// Union-JTB: Jayanti–Tarjan–Boix-Adserà randomized concurrent set union.
/// Links by random rank (ties broken by id), so unlike the other variants
/// the root of a tree is not its minimum id.
pub struct UnionJtb<J: JtbFindStrategy = JtbSimple> {
    ranks: Box<[u32]>,
    _find: PhantomData<J>,
}

impl<J: JtbFindStrategy> UnionJtb<J> {
    /// Creates an instance with random ranks drawn from `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ranks = (0..n).map(|_| rng.gen::<u32>()).collect::<Vec<_>>().into_boxed_slice();
        UnionJtb { ranks, _find: PhantomData }
    }

    #[inline]
    fn priority(&self, v: u32) -> (u32, u32) {
        (self.ranks[v as usize], v)
    }
}

impl<J: JtbFindStrategy> UniteKernel for UnionJtb<J> {
    fn build(n: usize, seed: u64) -> Self {
        Self::new(n, seed)
    }

    #[inline]
    fn unite<T: Telemetry>(&self, p: &Parents, u: u32, v: u32, t: &mut T) -> Option<u32> {
        loop {
            let ru = J::find(p, u, t);
            let rv = J::find(p, v, t);
            if ru == rv {
                return None;
            }
            // Hook the lower-priority root beneath the higher-priority one.
            let (lo, hi) = if self.priority(ru) < self.priority(rv) { (ru, rv) } else { (rv, ru) };
            if p[lo as usize].compare_exchange(lo, hi, Ordering::AcqRel, Ordering::Relaxed).is_ok()
            {
                return Some(lo);
            }
        }
    }

    #[inline]
    fn find<T: Telemetry>(&self, p: &Parents, u: u32, t: &mut T) -> u32 {
        J::find(p, u, t)
    }

    fn name(&self) -> String {
        format!("Union-JTB{{{}}}", J::NAME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find::{FindCompress, FindHalve, FindSplit};
    use crate::parents::{make_parents, snapshot_labels};
    use crate::splice::{HalveAtomicOne, SpliceAtomic, SplitAtomicOne};
    use crate::telemetry::NoCount;

    fn exercise(u: &dyn Unite) {
        let p = make_parents(8);
        let mut h = 0;
        // Two components: {0..4}, {5..8}.
        assert!(u.unite(&p, 0, 1, &mut h).is_some());
        assert!(u.unite(&p, 1, 2, &mut h).is_some());
        assert!(u.unite(&p, 2, 3, &mut h).is_some());
        assert!(u.unite(&p, 5, 6, &mut h).is_some());
        assert!(u.unite(&p, 6, 7, &mut h).is_some());
        // Redundant unions return None.
        assert!(u.unite(&p, 0, 3, &mut h).is_none());
        assert!(u.unite(&p, 3, 3, &mut h).is_none());
        // Find agreement within and across components.
        let mut h2 = 0;
        assert_eq!(u.find(&p, 0, &mut h2), u.find(&p, 3, &mut h2));
        assert_eq!(u.find(&p, 5, &mut h2), u.find(&p, 7, &mut h2));
        assert_ne!(u.find(&p, 0, &mut h2), u.find(&p, 5, &mut h2));
        // Labels partition correctly.
        let labels = snapshot_labels(&p);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[5], labels[7]);
        assert_ne!(labels[0], labels[5]);
        assert_eq!(labels[4], 4);
    }

    #[test]
    fn union_async_all_finds() {
        exercise(&UnionAsync::<FindNaive>::new());
        exercise(&UnionAsync::<FindSplit>::new());
        exercise(&UnionAsync::<FindHalve>::new());
        exercise(&UnionAsync::<FindCompress>::new());
    }

    #[test]
    fn union_hooks_and_early() {
        exercise(&UnionHooks::<FindNaive>::new(8));
        exercise(&UnionHooks::<FindCompress>::new(8));
        exercise(&UnionEarly::<FindNaive>::new());
        exercise(&UnionEarly::<FindHalve>::new());
    }

    #[test]
    fn union_rem_cas_all_splices() {
        exercise(&UnionRemCas::<SplitAtomicOne, FindNaive>::new());
        exercise(&UnionRemCas::<HalveAtomicOne, FindSplit>::new());
        exercise(&UnionRemCas::<SpliceAtomic, FindNaive>::new());
    }

    #[test]
    fn union_rem_lock_all_splices() {
        exercise(&UnionRemLock::<SplitAtomicOne, FindNaive>::new(8));
        exercise(&UnionRemLock::<HalveAtomicOne, FindCompress>::new(8));
        exercise(&UnionRemLock::<SpliceAtomic, FindNaive>::new(8));
    }

    #[test]
    fn union_jtb_both_finds() {
        exercise(&UnionJtb::<JtbSimple>::new(8, 1));
        exercise(&UnionJtb::<JtbTwoTry>::new(8, 2));
    }

    #[test]
    fn forest_support_flags() {
        assert!(UniteKernel::supports_forest(&UnionAsync::<FindNaive>::new()));
        assert!(UniteKernel::supports_forest(&UnionRemCas::<SplitAtomicOne, FindNaive>::new()));
        assert!(!UniteKernel::supports_forest(&UnionRemCas::<SpliceAtomic, FindNaive>::new()));
        assert!(!UniteKernel::concurrent_finds(&UnionRemLock::<SpliceAtomic, FindNaive>::new(4)));
    }

    #[test]
    fn hooked_root_is_reported_once() {
        let u = UnionAsync::<FindNaive>::new();
        let p = make_parents(4);
        let mut h = 0;
        let mut hooked = Vec::new();
        for (a, b) in [(0, 1), (2, 3), (1, 3)] {
            if let Some(r) = Unite::unite(&u, &p, a, b, &mut h) {
                hooked.push(r);
            }
        }
        hooked.sort_unstable();
        hooked.dedup();
        assert_eq!(hooked.len(), 3, "three merges, three distinct hooked roots");
    }

    #[test]
    fn kernel_nocount_matches_counting() {
        // The NoCount monomorphization must compute the same partition.
        let k = UnionRemCas::<SplitAtomicOne, FindNaive>::build(8, 0);
        let p = make_parents(8);
        for (a, b) in [(0, 1), (1, 2), (4, 5), (6, 7), (5, 6)] {
            UniteKernel::unite(&k, &p, a, b, &mut NoCount);
        }
        let labels = snapshot_labels(&p);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[4], labels[7]);
        assert_ne!(labels[0], labels[4]);
        assert_eq!(labels[3], 3);
        assert_eq!(UniteKernel::find(&k, &p, 7, &mut NoCount), labels[7]);
    }

    #[test]
    fn dyn_adapter_reports_hops() {
        // The blanket Unite impl must surface the kernel's hop counts.
        let k = UnionAsync::<FindNaive>::new();
        let p = make_parents(6);
        let mut h = 0u64;
        let u: &dyn Unite = &k;
        u.unite(&p, 0, 1, &mut h);
        u.unite(&p, 1, 2, &mut h);
        u.unite(&p, 2, 3, &mut h);
        let mut hq = 0u64;
        assert_eq!(u.find(&p, 3, &mut hq), 0);
        assert!(hq > 0, "a non-root find must report hops");
    }
}
