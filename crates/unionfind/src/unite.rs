//! The union algorithms of Section 3.3.1: Union-Async, Union-Hooks,
//! Union-Early, Union-Rem-CAS, Union-Rem-Lock, and Union-JTB.
//!
//! Every algorithm is generic over a [`Find`] strategy (and the Rem
//! algorithms over a [`Splice`] strategy), mirroring the paper's template
//! specialization. All of them are *root-based*: a merge happens only by
//! changing the parent pointer of a tree root (Rem + `SpliceAtomic` being
//! the documented exception), which is what makes spanning forest and the
//! monotonicity proofs work.
//!
//! `unite` returns `Some(r)` when this call hooked root `r` (each vertex is
//! hooked at most once over the lifetime of the structure), letting callers
//! attribute spanning-forest edges; `None` means the endpoints were already
//! connected or another operation performed the merge.

use crate::find::{find_two_try_split, Find, FindNaive};
use crate::parents::Parents;
use crate::splice::Splice;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};

/// Sentinel for "not hooked yet" in the hooks array.
const UNHOOKED: u32 = u32::MAX;

/// A concurrent union-find algorithm instance.
///
/// Implementations may carry per-instance state (hook arrays, locks, random
/// ranks); the parent array itself is passed in so one structure can be
/// shared across phases (sampling → finish → streaming).
pub trait Unite: Send + Sync {
    /// Merges the sets of `u` and `v`. Returns the root this call hooked,
    /// if any. Adds traversed parent-pointer hops to `*hops`.
    fn unite(&self, p: &Parents, u: u32, v: u32, hops: &mut u64) -> Option<u32>;

    /// Finds the representative of `u` using this algorithm's find strategy.
    fn find(&self, p: &Parents, u: u32, hops: &mut u64) -> u32;

    /// Algorithm name, e.g. `"Union-Rem-CAS{SplitAtomicOne; FindNaive}"`.
    fn name(&self) -> String;

    /// False when the splice strategy can merge trees at non-roots
    /// (Rem + `SpliceAtomic`), which rules out spanning forest.
    fn supports_forest(&self) -> bool {
        true
    }

    /// False when finds may not run concurrently with unions and the
    /// algorithm must be used phase-concurrently (Rem + `SpliceAtomic`,
    /// Theorem 3 / streaming Type (iii)).
    fn concurrent_finds(&self) -> bool {
        true
    }
}

/// Union-Async: the classic asynchronous union-find of Jayanti–Tarjan,
/// linking higher-id roots below lower-id vertices.
pub struct UnionAsync<F: Find = FindNaive>(PhantomData<F>);

impl<F: Find> UnionAsync<F> {
    /// Creates an instance (stateless).
    pub fn new() -> Self {
        UnionAsync(PhantomData)
    }
}

impl<F: Find> Default for UnionAsync<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Find> Unite for UnionAsync<F> {
    fn unite(&self, p: &Parents, u: u32, v: u32, hops: &mut u64) -> Option<u32> {
        let mut pu = F::find(p, u, hops);
        let mut pv = F::find(p, v, hops);
        while pu != pv {
            if pu < pv {
                std::mem::swap(&mut pu, &mut pv);
            }
            // pu > pv: hook pu beneath pv if pu is still a root.
            if p[pu as usize].load(Ordering::Acquire) == pu
                && p[pu as usize]
                    .compare_exchange(pu, pv, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(pu);
            }
            pu = F::find(p, pu, hops);
            pv = F::find(p, pv, hops);
        }
        None
    }

    fn find(&self, p: &Parents, u: u32, hops: &mut u64) -> u32 {
        F::find(p, u, hops)
    }

    fn name(&self) -> String {
        format!("Union-Async{{{}}}", F::NAME)
    }
}

/// Union-Hooks: like Union-Async, but the winning CAS happens on an
/// auxiliary hooks array; the parent write itself is then uncontended.
pub struct UnionHooks<F: Find = FindNaive> {
    hooks: Box<[AtomicU32]>,
    _find: PhantomData<F>,
}

impl<F: Find> UnionHooks<F> {
    /// Creates an instance for `n` vertices.
    pub fn new(n: usize) -> Self {
        UnionHooks {
            hooks: cc_parallel::parallel_tabulate(n, |_| AtomicU32::new(UNHOOKED))
                .into_boxed_slice(),
            _find: PhantomData,
        }
    }
}

impl<F: Find> Unite for UnionHooks<F> {
    fn unite(&self, p: &Parents, u: u32, v: u32, hops: &mut u64) -> Option<u32> {
        loop {
            let pu = F::find(p, u, hops);
            let pv = F::find(p, v, hops);
            if pu == pv {
                return None;
            }
            let (big, small) = if pu > pv { (pu, pv) } else { (pv, pu) };
            if self.hooks[big as usize]
                .compare_exchange(UNHOOKED, small, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // We own the one-shot right to hook `big`; the store cannot
                // race with another hook of the same vertex.
                p[big as usize].store(small, Ordering::Release);
                return Some(big);
            }
            // Someone else hooked `big` concurrently; re-find and retry.
        }
    }

    fn find(&self, p: &Parents, u: u32, hops: &mut u64) -> u32 {
        F::find(p, u, hops)
    }

    fn name(&self) -> String {
        format!("Union-Hooks{{{}}}", F::NAME)
    }
}

/// Union-Early: walks both endpoints upward together and eagerly hooks as
/// soon as the larger current vertex is observed to be a root.
pub struct UnionEarly<F: Find = FindNaive>(PhantomData<F>);

impl<F: Find> UnionEarly<F> {
    /// Creates an instance (stateless).
    pub fn new() -> Self {
        UnionEarly(PhantomData)
    }
}

impl<F: Find> Default for UnionEarly<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Find> Unite for UnionEarly<F> {
    fn unite(&self, p: &Parents, u0: u32, v0: u32, hops: &mut u64) -> Option<u32> {
        let (mut u, mut v) = (u0, v0);
        let mut hooked = None;
        loop {
            if u == v {
                break;
            }
            if v < u {
                std::mem::swap(&mut u, &mut v);
            }
            // v > u: if v is a root, hooking it beneath u keeps the
            // monotone invariant (roots are the minima of their trees, so
            // v > u proves they are in different trees).
            let pv = p[v as usize].load(Ordering::Acquire);
            if pv == v {
                if p[v as usize]
                    .compare_exchange(v, u, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    hooked = Some(v);
                    break;
                }
                continue; // lost a race; re-observe
            }
            // One splitting step on v, then climb.
            *hops += 1;
            let w = p[pv as usize].load(Ordering::Acquire);
            if pv != w {
                let _ = p[v as usize].compare_exchange(pv, w, Ordering::AcqRel, Ordering::Relaxed);
            }
            v = pv;
        }
        if F::COMPRESSES {
            F::find(p, u0, hops);
            F::find(p, v0, hops);
        }
        hooked
    }

    fn find(&self, p: &Parents, u: u32, hops: &mut u64) -> u32 {
        F::find(p, u, hops)
    }

    fn name(&self) -> String {
        format!("Union-Early{{{}}}", F::NAME)
    }
}

/// Union-Rem-CAS: the lock-free concurrent Rem's algorithm, generic over
/// the splice strategy used at non-roots and the find strategy applied to
/// the endpoints after the union completes.
pub struct UnionRemCas<S: Splice, F: Find = FindNaive>(PhantomData<(S, F)>);

impl<S: Splice, F: Find> UnionRemCas<S, F> {
    /// Creates an instance (stateless).
    pub fn new() -> Self {
        UnionRemCas(PhantomData)
    }
}

impl<S: Splice, F: Find> Default for UnionRemCas<S, F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Splice, F: Find> Unite for UnionRemCas<S, F> {
    fn unite(&self, p: &Parents, u: u32, v: u32, hops: &mut u64) -> Option<u32> {
        let (mut ru, mut rv) = (u, v);
        let hooked = loop {
            let pu = p[ru as usize].load(Ordering::Acquire);
            let pv = p[rv as usize].load(Ordering::Acquire);
            if pu == pv {
                break None;
            }
            // Work on the side with the larger parent.
            let (wu, wpu, wpv) = if pu > pv { (ru, pu, pv) } else { (rv, pv, pu) };
            if wu == wpu {
                // wu is a root with id larger than wpv: hook it.
                if p[wu as usize]
                    .compare_exchange(wu, wpv, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    break Some(wu);
                }
                // Lost a race; re-observe.
            } else {
                let next = S::step(p, wu, wpu, wpv, hops);
                if pu > pv {
                    ru = next;
                } else {
                    rv = next;
                }
            }
        };
        if F::COMPRESSES {
            F::find(p, u, hops);
            F::find(p, v, hops);
        }
        hooked
    }

    fn find(&self, p: &Parents, u: u32, hops: &mut u64) -> u32 {
        F::find(p, u, hops)
    }

    fn name(&self) -> String {
        format!("Union-Rem-CAS{{{}; {}}}", S::NAME, F::NAME)
    }

    fn supports_forest(&self) -> bool {
        !S::CROSSES_TREES
    }

    fn concurrent_finds(&self) -> bool {
        !S::CROSSES_TREES
    }
}

/// Union-Rem-Lock: Patwary et al.'s lock-based Rem's algorithm. Every
/// modification of a vertex's parent takes that vertex's lock and
/// revalidates the observed parent before writing.
pub struct UnionRemLock<S: Splice, F: Find = FindNaive> {
    locks: Box<[Mutex<()>]>,
    _ops: PhantomData<(S, F)>,
}

impl<S: Splice, F: Find> UnionRemLock<S, F> {
    /// Creates an instance with one lock per vertex.
    pub fn new(n: usize) -> Self {
        UnionRemLock {
            locks: (0..n).map(|_| Mutex::new(())).collect::<Vec<_>>().into_boxed_slice(),
            _ops: PhantomData,
        }
    }
}

impl<S: Splice, F: Find> Unite for UnionRemLock<S, F> {
    fn unite(&self, p: &Parents, u: u32, v: u32, hops: &mut u64) -> Option<u32> {
        let (mut ru, mut rv) = (u, v);
        let hooked = loop {
            let pu = p[ru as usize].load(Ordering::Acquire);
            let pv = p[rv as usize].load(Ordering::Acquire);
            if pu == pv {
                break None;
            }
            let (wu, wpu, wpv) = if pu > pv { (ru, pu, pv) } else { (rv, pv, pu) };
            if wu == wpu {
                let guard = self.locks[wu as usize].lock();
                let still_root = p[wu as usize].load(Ordering::Acquire) == wu;
                if still_root {
                    p[wu as usize].store(wpv, Ordering::Release);
                }
                drop(guard);
                if still_root {
                    break Some(wu);
                }
            } else {
                // Lock-guarded splice step: revalidate the observed parent,
                // then apply the same relink the atomic strategy would.
                let next = {
                    let _guard = self.locks[wu as usize].lock();
                    let cur = p[wu as usize].load(Ordering::Acquire);
                    if cur == wpu {
                        S::step(p, wu, wpu, wpv, hops)
                    } else {
                        // Parent moved under us; resume from the new parent.
                        cur
                    }
                };
                if pu > pv {
                    ru = next;
                } else {
                    rv = next;
                }
            }
        };
        if F::COMPRESSES {
            F::find(p, u, hops);
            F::find(p, v, hops);
        }
        hooked
    }

    fn find(&self, p: &Parents, u: u32, hops: &mut u64) -> u32 {
        F::find(p, u, hops)
    }

    fn name(&self) -> String {
        format!("Union-Rem-Lock{{{}; {}}}", S::NAME, F::NAME)
    }

    fn supports_forest(&self) -> bool {
        !S::CROSSES_TREES
    }

    fn concurrent_finds(&self) -> bool {
        !S::CROSSES_TREES
    }
}

/// Find strategy selector for [`UnionJtb`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JtbFind {
    /// No compression during finds ("FindSimple" in the paper).
    Simple,
    /// Randomized two-try splitting, the provably-efficient option.
    TwoTrySplit,
}

/// Union-JTB: Jayanti–Tarjan–Boix-Adserà randomized concurrent set union.
/// Links by random rank (ties broken by id), so unlike the other variants
/// the root of a tree is not its minimum id.
pub struct UnionJtb {
    ranks: Box<[u32]>,
    find: JtbFind,
}

impl UnionJtb {
    /// Creates an instance with random ranks drawn from `seed`.
    pub fn new(n: usize, find: JtbFind, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ranks = (0..n).map(|_| rng.gen::<u32>()).collect::<Vec<_>>().into_boxed_slice();
        UnionJtb { ranks, find }
    }

    #[inline]
    fn priority(&self, v: u32) -> (u32, u32) {
        (self.ranks[v as usize], v)
    }

    #[inline]
    fn do_find(&self, p: &Parents, u: u32, hops: &mut u64) -> u32 {
        match self.find {
            JtbFind::Simple => FindNaive::find(p, u, hops),
            JtbFind::TwoTrySplit => find_two_try_split(p, u, hops),
        }
    }
}

impl Unite for UnionJtb {
    fn unite(&self, p: &Parents, u: u32, v: u32, hops: &mut u64) -> Option<u32> {
        loop {
            let ru = self.do_find(p, u, hops);
            let rv = self.do_find(p, v, hops);
            if ru == rv {
                return None;
            }
            // Hook the lower-priority root beneath the higher-priority one.
            let (lo, hi) = if self.priority(ru) < self.priority(rv) {
                (ru, rv)
            } else {
                (rv, ru)
            };
            if p[lo as usize]
                .compare_exchange(lo, hi, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(lo);
            }
        }
    }

    fn find(&self, p: &Parents, u: u32, hops: &mut u64) -> u32 {
        self.do_find(p, u, hops)
    }

    fn name(&self) -> String {
        let f = match self.find {
            JtbFind::Simple => "FindSimple",
            JtbFind::TwoTrySplit => "FindTwoTrySplit",
        };
        format!("Union-JTB{{{f}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find::{FindCompress, FindHalve, FindSplit};
    use crate::parents::{make_parents, snapshot_labels};
    use crate::splice::{HalveAtomicOne, SpliceAtomic, SplitAtomicOne};

    fn exercise(u: &dyn Unite) {
        let p = make_parents(8);
        let mut h = 0;
        // Two components: {0..4}, {5..8}.
        assert!(u.unite(&p, 0, 1, &mut h).is_some());
        assert!(u.unite(&p, 1, 2, &mut h).is_some());
        assert!(u.unite(&p, 2, 3, &mut h).is_some());
        assert!(u.unite(&p, 5, 6, &mut h).is_some());
        assert!(u.unite(&p, 6, 7, &mut h).is_some());
        // Redundant unions return None.
        assert!(u.unite(&p, 0, 3, &mut h).is_none());
        assert!(u.unite(&p, 3, 3, &mut h).is_none());
        // Find agreement within and across components.
        let mut h2 = 0;
        assert_eq!(u.find(&p, 0, &mut h2), u.find(&p, 3, &mut h2));
        assert_eq!(u.find(&p, 5, &mut h2), u.find(&p, 7, &mut h2));
        assert_ne!(u.find(&p, 0, &mut h2), u.find(&p, 5, &mut h2));
        // Labels partition correctly.
        let labels = snapshot_labels(&p);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[5], labels[7]);
        assert_ne!(labels[0], labels[5]);
        assert_eq!(labels[4], 4);
    }

    #[test]
    fn union_async_all_finds() {
        exercise(&UnionAsync::<FindNaive>::new());
        exercise(&UnionAsync::<FindSplit>::new());
        exercise(&UnionAsync::<FindHalve>::new());
        exercise(&UnionAsync::<FindCompress>::new());
    }

    #[test]
    fn union_hooks_and_early() {
        exercise(&UnionHooks::<FindNaive>::new(8));
        exercise(&UnionHooks::<FindCompress>::new(8));
        exercise(&UnionEarly::<FindNaive>::new());
        exercise(&UnionEarly::<FindHalve>::new());
    }

    #[test]
    fn union_rem_cas_all_splices() {
        exercise(&UnionRemCas::<SplitAtomicOne, FindNaive>::new());
        exercise(&UnionRemCas::<HalveAtomicOne, FindSplit>::new());
        exercise(&UnionRemCas::<SpliceAtomic, FindNaive>::new());
    }

    #[test]
    fn union_rem_lock_all_splices() {
        exercise(&UnionRemLock::<SplitAtomicOne, FindNaive>::new(8));
        exercise(&UnionRemLock::<HalveAtomicOne, FindCompress>::new(8));
        exercise(&UnionRemLock::<SpliceAtomic, FindNaive>::new(8));
    }

    #[test]
    fn union_jtb_both_finds() {
        exercise(&UnionJtb::new(8, JtbFind::Simple, 1));
        exercise(&UnionJtb::new(8, JtbFind::TwoTrySplit, 2));
    }

    #[test]
    fn forest_support_flags() {
        assert!(UnionAsync::<FindNaive>::new().supports_forest());
        assert!(UnionRemCas::<SplitAtomicOne, FindNaive>::new().supports_forest());
        assert!(!UnionRemCas::<SpliceAtomic, FindNaive>::new().supports_forest());
        assert!(!UnionRemLock::<SpliceAtomic, FindNaive>::new(4).concurrent_finds());
    }

    #[test]
    fn hooked_root_is_reported_once() {
        let u = UnionAsync::<FindNaive>::new();
        let p = make_parents(4);
        let mut h = 0;
        let mut hooked = Vec::new();
        for (a, b) in [(0, 1), (2, 3), (1, 3)] {
            if let Some(r) = u.unite(&p, a, b, &mut h) {
                hooked.push(r);
            }
        }
        hooked.sort_unstable();
        hooked.dedup();
        assert_eq!(hooked.len(), 3, "three merges, three distinct hooked roots");
    }
}
