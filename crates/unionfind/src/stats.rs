//! Path-length instrumentation: the Total Path Length (TPL) and Max Path
//! Length (MPL) statistics the paper uses to explain union-find performance
//! (Section 4.1.1, Figures 6–7).

use cc_parallel::write_min_u64;
use std::sync::atomic::{AtomicU64, Ordering};

/// An owned point-in-time copy of a [`PathStats`] aggregator, for
/// surfacing path-length telemetry through value-returning APIs (e.g.
/// streaming query-path statistics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathLengths {
    /// Total Path Length: sum of all recorded hop counts.
    pub total: u64,
    /// Max Path Length: the longest single operation.
    pub max: u64,
    /// Number of operations recorded (0 when only bulk records were made).
    pub operations: u64,
}

impl PathLengths {
    /// Mean hops per operation (0 when no per-operation counts exist).
    pub fn mean(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.total as f64 / self.operations as f64
        }
    }
}

impl std::fmt::Display for PathLengths {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tpl={} mpl={} ops={}", self.total, self.max, self.operations)
    }
}

/// Thread-safe aggregator for per-operation path lengths.
#[derive(Debug, Default)]
pub struct PathStats {
    total: AtomicU64,
    max: AtomicU64,
    operations: AtomicU64,
}

impl PathStats {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the hop count of one union/find operation.
    #[inline]
    pub fn record(&self, hops: u64) {
        if hops == 0 {
            self.operations.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.total.fetch_add(hops, Ordering::Relaxed);
        self.operations.fetch_add(1, Ordering::Relaxed);
        // write_max over u64 via negated write_min would obscure intent;
        // do the CAS loop directly.
        let mut cur = self.max.load(Ordering::Relaxed);
        while hops > cur {
            match self.max.compare_exchange_weak(cur, hops, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        // Suppress unused-import pattern: write_min_u64 is exported for
        // symmetric use-cases.
        let _ = write_min_u64;
    }

    /// Records a pre-aggregated batch: `total` hops across `ops` operations
    /// whose longest single operation was `max`. Used by chunked edge loops
    /// to avoid per-edge shared-counter traffic.
    pub fn record_bulk(&self, total: u64, max: u64, ops: u64) {
        if ops != 0 {
            self.operations.fetch_add(ops, Ordering::Relaxed);
        }
        if total == 0 && max == 0 {
            return;
        }
        self.total.fetch_add(total, Ordering::Relaxed);
        let mut cur = self.max.load(Ordering::Relaxed);
        while max > cur {
            match self.max.compare_exchange_weak(cur, max, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Total Path Length: sum of all recorded hop counts.
    pub fn total_path_length(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Max Path Length: the longest single operation.
    pub fn max_path_length(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Number of operations recorded.
    pub fn operations(&self) -> u64 {
        self.operations.load(Ordering::Relaxed)
    }

    /// Mean hops per operation.
    pub fn mean_path_length(&self) -> f64 {
        let ops = self.operations();
        if ops == 0 {
            0.0
        } else {
            self.total_path_length() as f64 / ops as f64
        }
    }

    /// An owned point-in-time copy of the counters.
    pub fn snapshot(&self) -> PathLengths {
        PathLengths {
            total: self.total_path_length(),
            max: self.max_path_length(),
            operations: self.operations(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_parallel::parallel_for;

    #[test]
    fn records_totals_and_max() {
        let s = PathStats::new();
        s.record(3);
        s.record(0);
        s.record(7);
        assert_eq!(s.total_path_length(), 10);
        assert_eq!(s.max_path_length(), 7);
        assert_eq!(s.operations(), 3);
        assert!((s.mean_path_length() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_recording() {
        let s = PathStats::new();
        parallel_for(10_000, |i| s.record((i % 5) as u64));
        assert_eq!(s.operations(), 10_000);
        assert_eq!(s.total_path_length(), 2000 * (1 + 2 + 3 + 4));
        assert_eq!(s.max_path_length(), 4);
    }
}
