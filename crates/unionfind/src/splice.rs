//! Splice strategies for Rem's algorithms (Algorithm 9 of the paper):
//! the step taken when the union walk sits at a *non-root* vertex.
//!
//! `SplitAtomicOne` and `HalveAtomicOne` perform one step of path
//! splitting / halving (staying inside the current tree); `SpliceAtomic`
//! performs Rem's splice, re-pointing the vertex into the *other* tree.
//! Because a splice can merge trees at a non-root, Rem + `SpliceAtomic` is
//! only phase-concurrent (Theorem 3) and is excluded from spanning forest.

use crate::parents::Parents;
use crate::telemetry::Telemetry;
use std::sync::atomic::Ordering;

/// One step of the Rem union walk at non-root `ru` (with observed parent
/// `pu`), against the other side's parent `pv` (with `pv < pu`). Returns the
/// vertex the walk should continue from.
pub trait Splice: Send + Sync + 'static {
    /// Human-readable name matching the paper.
    const NAME: &'static str;
    /// Whether this strategy can re-point a vertex into the other tree
    /// (true only for [`SpliceAtomic`]), which disables spanning forest and
    /// requires phase-concurrency.
    const CROSSES_TREES: bool;
    /// Performs the step.
    fn step<T: Telemetry>(p: &Parents, ru: u32, pu: u32, pv: u32, t: &mut T) -> u32;
}

/// One atomic path-splitting step: `p[ru]` re-pointed at its grandparent,
/// walk advances to the old parent.
pub struct SplitAtomicOne;

impl Splice for SplitAtomicOne {
    const NAME: &'static str = "SplitAtomicOne";
    const CROSSES_TREES: bool = false;
    #[inline]
    fn step<T: Telemetry>(p: &Parents, ru: u32, pu: u32, _pv: u32, t: &mut T) -> u32 {
        let w = p[pu as usize].load(Ordering::Acquire);
        t.add(1);
        if pu != w {
            let _ = p[ru as usize].compare_exchange(pu, w, Ordering::AcqRel, Ordering::Relaxed);
        }
        pu
    }
}

/// One atomic path-halving step: like splitting, but the walk advances two
/// levels (to the grandparent).
pub struct HalveAtomicOne;

impl Splice for HalveAtomicOne {
    const NAME: &'static str = "HalveAtomicOne";
    const CROSSES_TREES: bool = false;
    #[inline]
    fn step<T: Telemetry>(p: &Parents, ru: u32, pu: u32, _pv: u32, t: &mut T) -> u32 {
        let w = p[pu as usize].load(Ordering::Acquire);
        t.add(1);
        if pu != w {
            let _ = p[ru as usize].compare_exchange(pu, w, Ordering::AcqRel, Ordering::Relaxed);
        }
        w
    }
}

/// Rem's splice: `p[ru]` re-pointed at the other side's parent `pv`
/// (strictly smaller, preserving the monotone invariant); the walk advances
/// to the old parent `pu`.
pub struct SpliceAtomic;

impl Splice for SpliceAtomic {
    const NAME: &'static str = "SpliceAtomic";
    const CROSSES_TREES: bool = true;
    #[inline]
    fn step<T: Telemetry>(p: &Parents, ru: u32, pu: u32, pv: u32, t: &mut T) -> u32 {
        debug_assert!(pv < pu);
        t.add(1);
        let _ = p[ru as usize].compare_exchange(pu, pv, Ordering::AcqRel, Ordering::Relaxed);
        pu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parents::{make_parents, parent};
    use crate::telemetry::CountHops;

    fn setup() -> Box<Parents> {
        // 4 -> 3 -> 1 -> 0, and 2 -> 0.
        let p = make_parents(5);
        p[4].store(3, Ordering::Relaxed);
        p[3].store(1, Ordering::Relaxed);
        p[1].store(0, Ordering::Relaxed);
        p[2].store(0, Ordering::Relaxed);
        p
    }

    #[test]
    fn split_one_repoints_to_grandparent() {
        let p = setup();
        let mut h = CountHops::default();
        let next = SplitAtomicOne::step(&p, 4, 3, 0, &mut h);
        assert_eq!(next, 3);
        assert_eq!(parent(&p, 4), 1); // grandparent of 4
        assert_eq!(h.0, 1);
    }

    #[test]
    fn halve_one_advances_two_levels() {
        let p = setup();
        let mut h = CountHops::default();
        let next = HalveAtomicOne::step(&p, 4, 3, 0, &mut h);
        assert_eq!(next, 1); // grandparent
        assert_eq!(parent(&p, 4), 1);
    }

    #[test]
    fn splice_crosses_to_other_parent() {
        let p = setup();
        let mut h = CountHops::default();
        let next = SpliceAtomic::step(&p, 4, 3, 2, &mut h);
        assert_eq!(next, 3);
        assert_eq!(parent(&p, 4), 2);
    }

    #[test]
    fn steps_at_almost_root_are_safe() {
        // ru's parent is the root: split/halve find pu == w and leave the
        // structure unchanged.
        let p = setup();
        let mut h = CountHops::default();
        let next = SplitAtomicOne::step(&p, 1, 0, 0, &mut h);
        assert_eq!(next, 0);
        assert_eq!(parent(&p, 1), 0);
    }
}
