//! Sequential union-find oracle: union by rank with full path compression.
//! Obviously-correct reference used by tests and by sequential baselines.

/// Sequential disjoint-set structure.
pub struct SeqUnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl SeqUnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        SeqUnionFind { parent: (0..n as u32).collect(), rank: vec![0; n], components: n }
    }

    /// Returns the representative of `x`, compressing the path.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while cur != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `x` and `y`; returns true iff a merge happened.
    pub fn union(&mut self, x: u32, y: u32) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        self.components -= 1;
        let (rx, ry) = match self.rank[rx as usize].cmp(&self.rank[ry as usize]) {
            std::cmp::Ordering::Less => (ry, rx),
            std::cmp::Ordering::Greater => (rx, ry),
            std::cmp::Ordering::Equal => {
                self.rank[rx as usize] += 1;
                (rx, ry)
            }
        };
        self.parent[ry as usize] = rx;
        true
    }

    /// True iff `x` and `y` are in the same set.
    pub fn connected(&mut self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Canonical labeling: every element mapped to its representative.
    pub fn labels(&mut self) -> Vec<u32> {
        (0..self.parent.len() as u32).map(|v| self.find(v)).collect()
    }
}

/// Runs the oracle over an edge list and returns the labeling.
pub fn oracle_labels(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut uf = SeqUnionFind::new(n);
    for &(u, v) in edges {
        uf.union(u, v);
    }
    uf.labels()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = SeqUnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn labels_partition() {
        let labels = oracle_labels(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        assert_eq!(labels[3], 3);
    }

    #[test]
    fn chain_compresses() {
        let mut uf = SeqUnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        let r = uf.find(999);
        assert!((0..1000).all(|v| uf.parent[v as usize] == r || v == r));
    }
}
