//! Runtime descriptors for union-find variants: enumeration of the full
//! valid combination space, a macro-generated static dispatcher that
//! monomorphizes any generic driver for the chosen variant, and a factory
//! for the object-safe adapter.
//!
//! This is the Rust counterpart of the paper's "instantiate any supported
//! combination with one line of code" template machinery: the benchmark
//! harness iterates [`UfSpec::all_variants`] to produce the Figure 3 /
//! 13–15 heatmaps, and every hot path routes through
//! [`UfSpec::dispatch`], which selects one of the 36 monomorphized
//! kernels at configuration time so the per-edge loops carry no virtual
//! calls.

use crate::find::{FindCompress, FindHalve, FindNaive, FindSplit};
use crate::splice::{HalveAtomicOne, SpliceAtomic, SplitAtomicOne};
use crate::unite::{
    JtbSimple, JtbTwoTry, UnionAsync, UnionEarly, UnionHooks, UnionJtb, UnionRemCas, UnionRemLock,
    Unite, UniteKernel,
};

/// The paper's fastest overall kernel type (Section 4.1 takeaway),
/// usable directly where the variant is fixed at compile time (the k-out
/// sampler, the compressed-graph sampler).
pub type FastestKernel = UnionRemCas<SplitAtomicOne, FindNaive>;

/// Union algorithm family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UniteKind {
    /// Classic asynchronous union-find (Jayanti–Tarjan).
    Async,
    /// CAS on an auxiliary hooks array, uncontended parent writes.
    Hooks,
    /// Eager hooking while walking both paths together.
    Early,
    /// Lock-free concurrent Rem's algorithm.
    RemCas,
    /// Lock-based concurrent Rem's algorithm (Patwary et al.).
    RemLock,
    /// Randomized two-try linking (Jayanti–Tarjan–Boix-Adserà).
    Jtb,
}

impl UniteKind {
    /// All families.
    pub const ALL: [UniteKind; 6] = [
        UniteKind::Async,
        UniteKind::Hooks,
        UniteKind::Early,
        UniteKind::RemCas,
        UniteKind::RemLock,
        UniteKind::Jtb,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            UniteKind::Async => "Union-Async",
            UniteKind::Hooks => "Union-Hooks",
            UniteKind::Early => "Union-Early",
            UniteKind::RemCas => "Union-Rem-CAS",
            UniteKind::RemLock => "Union-Rem-Lock",
            UniteKind::Jtb => "Union-JTB",
        }
    }
}

/// Find strategy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FindKind {
    /// No compression.
    Naive,
    /// Atomic path splitting.
    Split,
    /// Atomic path halving.
    Halve,
    /// Full path compression.
    Compress,
    /// JTB two-try splitting (Union-JTB only).
    TwoTrySplit,
}

impl FindKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            FindKind::Naive => "FindNaive",
            FindKind::Split => "FindSplit",
            FindKind::Halve => "FindHalve",
            FindKind::Compress => "FindCompress",
            FindKind::TwoTrySplit => "FindTwoTrySplit",
        }
    }
}

/// Splice strategy selector (Rem's algorithms only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpliceKind {
    /// One path-splitting step.
    SplitOne,
    /// One path-halving step.
    HalveOne,
    /// Rem's splice into the other tree.
    Splice,
}

impl SpliceKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SpliceKind::SplitOne => "SplitAtomicOne",
            SpliceKind::HalveOne => "HalveAtomicOne",
            SpliceKind::Splice => "SpliceAtomic",
        }
    }
}

/// A fully-specified union-find variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UfSpec {
    /// Union family.
    pub unite: UniteKind,
    /// Find strategy.
    pub find: FindKind,
    /// Splice strategy; `Some` iff `unite` is a Rem family.
    pub splice: Option<SpliceKind>,
}

/// A generic computation to run against a monomorphized kernel: the
/// visitor's `visit` is instantiated once per valid variant, exactly like
/// the paper's templated drivers.
///
/// ```
/// use cc_unionfind::{parents::make_parents, KernelVisitor, UfSpec, UniteKernel, NoCount};
/// struct CountComponents { n: usize }
/// impl KernelVisitor for CountComponents {
///     type Out = usize;
///     fn visit<K: UniteKernel>(self, kernel: K) -> usize {
///         let p = make_parents(self.n);
///         kernel.unite(&p, 0, 1, &mut NoCount);
///         cc_unionfind::count_roots(&p)
///     }
/// }
/// let roots = UfSpec::fastest().dispatch(4, 0, CountComponents { n: 4 });
/// assert_eq!(roots, 3);
/// ```
pub trait KernelVisitor {
    /// The result produced by the generic computation.
    type Out;
    /// Runs the computation with the selected kernel.
    fn visit<K: UniteKernel>(self, kernel: K) -> Self::Out;
}

/// The valid (unite, splice, find) → kernel-type table. `$apply` is a
/// callback macro receiving the concrete kernel type of the selected
/// variant; everything expanded from it is monomorphized for that type.
/// This is the single source of truth the dispatcher (and through it the
/// boxed factory) is generated from.
macro_rules! dispatch_match {
    ($unite:expr, $splice:expr, $find:expr, $apply:ident) => {{
        use FindKind as F;
        use SpliceKind as S;
        use UniteKind as U;
        match ($unite, $splice, $find) {
            (U::Async, None, F::Naive) => $apply!(UnionAsync<FindNaive>),
            (U::Async, None, F::Split) => $apply!(UnionAsync<FindSplit>),
            (U::Async, None, F::Halve) => $apply!(UnionAsync<FindHalve>),
            (U::Async, None, F::Compress) => $apply!(UnionAsync<FindCompress>),
            (U::Hooks, None, F::Naive) => $apply!(UnionHooks<FindNaive>),
            (U::Hooks, None, F::Split) => $apply!(UnionHooks<FindSplit>),
            (U::Hooks, None, F::Halve) => $apply!(UnionHooks<FindHalve>),
            (U::Hooks, None, F::Compress) => $apply!(UnionHooks<FindCompress>),
            (U::Early, None, F::Naive) => $apply!(UnionEarly<FindNaive>),
            (U::Early, None, F::Split) => $apply!(UnionEarly<FindSplit>),
            (U::Early, None, F::Halve) => $apply!(UnionEarly<FindHalve>),
            (U::Early, None, F::Compress) => $apply!(UnionEarly<FindCompress>),
            (U::RemCas, Some(S::SplitOne), F::Naive) => {
                $apply!(UnionRemCas<SplitAtomicOne, FindNaive>)
            }
            (U::RemCas, Some(S::SplitOne), F::Split) => {
                $apply!(UnionRemCas<SplitAtomicOne, FindSplit>)
            }
            (U::RemCas, Some(S::SplitOne), F::Halve) => {
                $apply!(UnionRemCas<SplitAtomicOne, FindHalve>)
            }
            (U::RemCas, Some(S::SplitOne), F::Compress) => {
                $apply!(UnionRemCas<SplitAtomicOne, FindCompress>)
            }
            (U::RemCas, Some(S::HalveOne), F::Naive) => {
                $apply!(UnionRemCas<HalveAtomicOne, FindNaive>)
            }
            (U::RemCas, Some(S::HalveOne), F::Split) => {
                $apply!(UnionRemCas<HalveAtomicOne, FindSplit>)
            }
            (U::RemCas, Some(S::HalveOne), F::Halve) => {
                $apply!(UnionRemCas<HalveAtomicOne, FindHalve>)
            }
            (U::RemCas, Some(S::HalveOne), F::Compress) => {
                $apply!(UnionRemCas<HalveAtomicOne, FindCompress>)
            }
            (U::RemCas, Some(S::Splice), F::Naive) => {
                $apply!(UnionRemCas<SpliceAtomic, FindNaive>)
            }
            (U::RemCas, Some(S::Splice), F::Split) => {
                $apply!(UnionRemCas<SpliceAtomic, FindSplit>)
            }
            (U::RemCas, Some(S::Splice), F::Halve) => {
                $apply!(UnionRemCas<SpliceAtomic, FindHalve>)
            }
            (U::RemLock, Some(S::SplitOne), F::Naive) => {
                $apply!(UnionRemLock<SplitAtomicOne, FindNaive>)
            }
            (U::RemLock, Some(S::SplitOne), F::Split) => {
                $apply!(UnionRemLock<SplitAtomicOne, FindSplit>)
            }
            (U::RemLock, Some(S::SplitOne), F::Halve) => {
                $apply!(UnionRemLock<SplitAtomicOne, FindHalve>)
            }
            (U::RemLock, Some(S::SplitOne), F::Compress) => {
                $apply!(UnionRemLock<SplitAtomicOne, FindCompress>)
            }
            (U::RemLock, Some(S::HalveOne), F::Naive) => {
                $apply!(UnionRemLock<HalveAtomicOne, FindNaive>)
            }
            (U::RemLock, Some(S::HalveOne), F::Split) => {
                $apply!(UnionRemLock<HalveAtomicOne, FindSplit>)
            }
            (U::RemLock, Some(S::HalveOne), F::Halve) => {
                $apply!(UnionRemLock<HalveAtomicOne, FindHalve>)
            }
            (U::RemLock, Some(S::HalveOne), F::Compress) => {
                $apply!(UnionRemLock<HalveAtomicOne, FindCompress>)
            }
            (U::RemLock, Some(S::Splice), F::Naive) => {
                $apply!(UnionRemLock<SpliceAtomic, FindNaive>)
            }
            (U::RemLock, Some(S::Splice), F::Split) => {
                $apply!(UnionRemLock<SpliceAtomic, FindSplit>)
            }
            (U::RemLock, Some(S::Splice), F::Halve) => {
                $apply!(UnionRemLock<SpliceAtomic, FindHalve>)
            }
            (U::Jtb, None, F::Naive) => $apply!(UnionJtb<JtbSimple>),
            (U::Jtb, None, F::TwoTrySplit) => $apply!(UnionJtb<JtbTwoTry>),
            _ => unreachable!("is_valid filtered this combination"),
        }
    }};
}

impl UfSpec {
    /// Convenience constructor for non-Rem variants.
    pub fn new(unite: UniteKind, find: FindKind) -> Self {
        UfSpec { unite, find, splice: None }
    }

    /// Convenience constructor for Rem variants.
    pub fn rem(unite: UniteKind, splice: SpliceKind, find: FindKind) -> Self {
        UfSpec { unite, find, splice: Some(splice) }
    }

    /// The paper's fastest overall variant: Union-Rem-CAS with
    /// SplitAtomicOne and FindNaive (Section 4.1 takeaway). Its kernel
    /// type is [`FastestKernel`].
    pub fn fastest() -> Self {
        UfSpec::rem(UniteKind::RemCas, SpliceKind::SplitOne, FindKind::Naive)
    }

    /// Whether this combination is expressible (mirrors the paper's rules:
    /// Rem requires a splice and forbids `FindCompress` with
    /// `SpliceAtomic`; JTB only pairs with Simple/TwoTry finds; TwoTry only
    /// pairs with JTB).
    pub fn is_valid(&self) -> bool {
        self.validate().is_ok()
    }

    /// [`Self::is_valid`] with the violated rule spelled out, for CLI and
    /// config surfaces that must explain a rejection.
    pub fn validate(&self) -> Result<(), String> {
        match self.unite {
            UniteKind::Async | UniteKind::Hooks | UniteKind::Early => {
                if self.splice.is_some() {
                    return Err(format!(
                        "{} takes no splice strategy (splices exist only in the Rem walks)",
                        self.unite.name()
                    ));
                }
                if self.find == FindKind::TwoTrySplit {
                    return Err("FindTwoTrySplit pairs only with Union-JTB".into());
                }
            }
            UniteKind::RemCas | UniteKind::RemLock => {
                let Some(s) = self.splice else {
                    return Err(format!(
                        "{} requires a splice strategy (split-one, halve-one, or splice)",
                        self.unite.name()
                    ));
                };
                if self.find == FindKind::TwoTrySplit {
                    return Err("FindTwoTrySplit pairs only with Union-JTB".into());
                }
                // The one excluded combination (Appendix B.2.3).
                if s == SpliceKind::Splice && self.find == FindKind::Compress {
                    return Err(
                        "SpliceAtomic cannot combine with FindCompress (Appendix B.2.3)".into()
                    );
                }
            }
            UniteKind::Jtb => {
                if self.splice.is_some() {
                    return Err("Union-JTB takes no splice strategy".into());
                }
                if !matches!(self.find, FindKind::Naive | FindKind::TwoTrySplit) {
                    return Err(
                        "Union-JTB pairs only with FindNaive (FindSimple) or FindTwoTrySplit"
                            .into(),
                    );
                }
            }
        }
        Ok(())
    }

    /// Enumerates every valid variant (the full Figure 3 matrix).
    pub fn all_variants() -> Vec<UfSpec> {
        let finds = [
            FindKind::Naive,
            FindKind::Split,
            FindKind::Halve,
            FindKind::Compress,
            FindKind::TwoTrySplit,
        ];
        let splices = [
            None,
            Some(SpliceKind::SplitOne),
            Some(SpliceKind::HalveOne),
            Some(SpliceKind::Splice),
        ];
        let mut out = Vec::new();
        for unite in UniteKind::ALL {
            for find in finds {
                for splice in splices {
                    let spec = UfSpec { unite, find, splice };
                    if spec.is_valid() {
                        out.push(spec);
                    }
                }
            }
        }
        out
    }

    /// Display name, e.g. `Union-Rem-CAS{SplitAtomicOne; FindNaive}`.
    pub fn name(&self) -> String {
        match self.splice {
            Some(s) => format!("{}{{{}; {}}}", self.unite.name(), s.name(), self.find.name()),
            None => format!("{}{{{}}}", self.unite.name(), self.find.name()),
        }
    }

    /// Monomorphizes `visitor` for this variant and runs it: the static
    /// dispatch entry point every per-edge hot path uses. `n` is the
    /// vertex count (needed by stateful variants), `seed` feeds JTB's
    /// ranks. The match below is generated from the variant table in the
    /// `dispatch_match!` macro, so the dispatcher and the enumeration can
    /// never drift apart.
    ///
    /// # Panics
    /// If the variant is invalid (see [`Self::validate`]).
    pub fn dispatch<V: KernelVisitor>(&self, n: usize, seed: u64, visitor: V) -> V::Out {
        if let Err(e) = self.validate() {
            panic!("invalid variant {self:?}: {e}");
        }
        macro_rules! apply {
            ($k:ty) => {
                visitor.visit(<$k as UniteKernel>::build(n, seed))
            };
        }
        dispatch_match!(self.unite, self.splice, self.find, apply)
    }

    /// Instantiates the object-safe adapter ([`Unite`]) for this variant.
    /// One virtual call per operation with a mandatory hop count — kept
    /// for variant-enumeration tests and tools; hot paths use
    /// [`Self::dispatch`].
    pub fn instantiate(&self, n: usize, seed: u64) -> Box<dyn Unite> {
        struct Boxer;
        impl KernelVisitor for Boxer {
            type Out = Box<dyn Unite>;
            fn visit<K: UniteKernel>(self, kernel: K) -> Box<dyn Unite> {
                Box::new(kernel)
            }
        }
        self.dispatch(n, seed, Boxer)
    }
}

impl std::str::FromStr for UfSpec {
    type Err = String;

    /// Parses the CLI vocabulary: `unite[+splice][+find]` with `+`, `:`,
    /// or `,` as separators, e.g. `rem-cas+split-one+naive`,
    /// `async:compress`, `jtb,two-try`. The find defaults to `naive` when
    /// omitted; Rem families require an explicit splice. Invalid
    /// combinations are rejected with the [`UfSpec::validate`] message.
    fn from_str(s: &str) -> Result<Self, String> {
        let tokens: Vec<&str> =
            s.split(['+', ':', ',']).map(str::trim).filter(|t| !t.is_empty()).collect();
        let mut it = tokens.iter();
        let unite = match it.next().copied() {
            Some("async") => UniteKind::Async,
            Some("hooks") => UniteKind::Hooks,
            Some("early") => UniteKind::Early,
            Some("rem-cas") => UniteKind::RemCas,
            Some("rem-lock") => UniteKind::RemLock,
            Some("jtb") => UniteKind::Jtb,
            other => {
                return Err(format!(
                    "unknown union family {other:?} \
                     (async|hooks|early|rem-cas|rem-lock|jtb)"
                ))
            }
        };
        let mut splice = None;
        let mut find = None;
        for tok in it {
            match *tok {
                "split-one" => splice = Some(SpliceKind::SplitOne),
                "halve-one" => splice = Some(SpliceKind::HalveOne),
                "splice" => splice = Some(SpliceKind::Splice),
                "naive" | "simple" => find = Some(FindKind::Naive),
                "split" => find = Some(FindKind::Split),
                "halve" => find = Some(FindKind::Halve),
                "compress" => find = Some(FindKind::Compress),
                "two-try" | "two-try-split" => find = Some(FindKind::TwoTrySplit),
                other => {
                    return Err(format!(
                        "unknown token {other:?} (splices: split-one|halve-one|splice; \
                         finds: naive|split|halve|compress|two-try)"
                    ))
                }
            }
        }
        let spec = UfSpec { unite, find: find.unwrap_or(FindKind::Naive), splice };
        spec.validate().map_err(|e| format!("invalid combination {s:?}: {e}"))?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_count_matches_paper_matrix() {
        let all = UfSpec::all_variants();
        // Async/Hooks/Early: 4 finds each = 12.
        // Rem-CAS/Rem-Lock: 3 splices x 4 finds - 1 excluded = 11 each.
        // JTB: 2 finds.
        assert_eq!(all.len(), 12 + 22 + 2);
        // All unique names.
        let mut names: Vec<String> = all.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn validate_spells_the_rule_for_every_invalid_combination() {
        // Non-Rem families reject splices by name.
        for unite in [UniteKind::Async, UniteKind::Hooks, UniteKind::Early] {
            let err = UfSpec { unite, find: FindKind::Naive, splice: Some(SpliceKind::SplitOne) }
                .validate()
                .unwrap_err();
            assert!(err.contains(unite.name()), "{err}");
            assert!(err.contains("no splice"), "{err}");
            // ...and two-try splitting is JTB-only.
            let err = UfSpec::new(unite, FindKind::TwoTrySplit).validate().unwrap_err();
            assert!(err.contains("Union-JTB"), "{err}");
        }
        // Rem families demand a splice, spelling out the choices.
        for unite in [UniteKind::RemCas, UniteKind::RemLock] {
            let err = UfSpec::new(unite, FindKind::Halve).validate().unwrap_err();
            assert!(err.contains(unite.name()), "{err}");
            assert!(err.contains("split-one, halve-one, or splice"), "{err}");
            // Two-try with a splice still names the JTB-only rule.
            let err = UfSpec::rem(unite, SpliceKind::SplitOne, FindKind::TwoTrySplit)
                .validate()
                .unwrap_err();
            assert!(err.contains("Union-JTB"), "{err}");
            // The one excluded splice/find pairing cites the appendix.
            let err =
                UfSpec::rem(unite, SpliceKind::Splice, FindKind::Compress).validate().unwrap_err();
            assert!(err.contains("SpliceAtomic"), "{err}");
            assert!(err.contains("Appendix B.2.3"), "{err}");
        }
        // JTB rejects splices and non-simple/two-try finds.
        let err = UfSpec::rem(UniteKind::Jtb, SpliceKind::Splice, FindKind::Naive)
            .validate()
            .unwrap_err();
        assert!(err.contains("Union-JTB takes no splice"), "{err}");
        for find in [FindKind::Split, FindKind::Halve, FindKind::Compress] {
            let err = UfSpec::new(UniteKind::Jtb, find).validate().unwrap_err();
            assert!(err.contains("pairs only with FindNaive"), "{err}");
        }
    }

    #[test]
    fn from_str_error_paths_carry_vocabulary_and_rules() {
        // Unknown union family lists the vocabulary.
        let err = "quickfind+split".parse::<UfSpec>().unwrap_err();
        assert!(err.contains("unknown union family"), "{err}");
        assert!(err.contains("async|hooks|early|rem-cas|rem-lock|jtb"), "{err}");
        // An empty spec is a missing family, not a panic.
        let err = "".parse::<UfSpec>().unwrap_err();
        assert!(err.contains("unknown union family"), "{err}");
        // Unknown later tokens list both splice and find vocabularies.
        let err = "rem-cas+compress-hard".parse::<UfSpec>().unwrap_err();
        assert!(err.contains("unknown token"), "{err}");
        assert!(err.contains("split-one|halve-one|splice"), "{err}");
        assert!(err.contains("naive|split|halve|compress|two-try"), "{err}");
        // Structurally valid grammar but invalid combination: the
        // validate() rule text rides along with the offending input.
        let err = "rem-cas+splice+compress".parse::<UfSpec>().unwrap_err();
        assert!(err.contains("invalid combination"), "{err}");
        assert!(err.contains("rem-cas+splice+compress"), "{err}");
        assert!(err.contains("Appendix B.2.3"), "{err}");
        let err = "rem-lock".parse::<UfSpec>().unwrap_err();
        assert!(err.contains("requires a splice strategy"), "{err}");
        let err = "jtb+compress".parse::<UfSpec>().unwrap_err();
        assert!(err.contains("pairs only with FindNaive"), "{err}");
        let err = "async+split-one".parse::<UfSpec>().unwrap_err();
        assert!(err.contains("no splice"), "{err}");
        // Later tokens of the same kind overwrite earlier ones (the
        // grammar is last-wins), so this is the *valid* halve find.
        assert_eq!(
            "async+split+halve".parse::<UfSpec>().unwrap(),
            UfSpec::new(UniteKind::Async, FindKind::Halve)
        );
    }

    #[test]
    fn excluded_combination_rejected() {
        let bad = UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Compress);
        assert!(!bad.is_valid());
        assert!(bad.validate().unwrap_err().contains("FindCompress"));
        let bad2 = UfSpec::new(UniteKind::Async, FindKind::TwoTrySplit);
        assert!(!bad2.is_valid());
        let bad3 = UfSpec::new(UniteKind::RemCas, FindKind::Naive);
        assert!(!bad3.is_valid());
        assert!(bad3.validate().unwrap_err().contains("splice"));
    }

    #[test]
    fn every_variant_instantiates_and_unions() {
        use crate::parents::{make_parents, snapshot_labels};
        for spec in UfSpec::all_variants() {
            let u = spec.instantiate(6, 42);
            let p = make_parents(6);
            let mut h = 0;
            u.unite(&p, 0, 1, &mut h);
            u.unite(&p, 1, 2, &mut h);
            u.unite(&p, 4, 5, &mut h);
            let labels = snapshot_labels(&p);
            assert_eq!(labels[0], labels[2], "{}", spec.name());
            assert_eq!(labels[4], labels[5], "{}", spec.name());
            assert_ne!(labels[0], labels[4], "{}", spec.name());
            assert_eq!(labels[3], 3, "{}", spec.name());
        }
    }

    #[test]
    fn dispatch_reaches_every_variant_with_matching_name() {
        struct NameOf;
        impl KernelVisitor for NameOf {
            type Out = String;
            fn visit<K: UniteKernel>(self, kernel: K) -> String {
                kernel.name()
            }
        }
        for spec in UfSpec::all_variants() {
            // JTB spells FindKind::Naive as the paper's "FindSimple".
            let expect = spec.name().replace("Union-JTB{FindNaive}", "Union-JTB{FindSimple}");
            assert_eq!(spec.dispatch(4, 7, NameOf), expect);
        }
    }

    #[test]
    fn dispatch_flags_match_spec_rules() {
        struct Flags;
        impl KernelVisitor for Flags {
            type Out = (bool, bool);
            fn visit<K: UniteKernel>(self, kernel: K) -> (bool, bool) {
                (kernel.supports_forest(), kernel.concurrent_finds())
            }
        }
        for spec in UfSpec::all_variants() {
            let (forest, conc) = spec.dispatch(4, 7, Flags);
            let splicey = spec.splice == Some(SpliceKind::Splice);
            assert_eq!(forest, !splicey, "{}", spec.name());
            assert_eq!(conc, !splicey, "{}", spec.name());
        }
    }

    #[test]
    fn fastest_is_valid() {
        assert!(UfSpec::fastest().is_valid());
        assert_eq!(UfSpec::fastest().name(), "Union-Rem-CAS{SplitAtomicOne; FindNaive}");
        // The compile-time alias names the same kernel.
        assert_eq!(UniteKernel::name(&FastestKernel::build(4, 0)), UfSpec::fastest().name());
    }

    #[test]
    fn parses_cli_vocabulary() {
        assert_eq!("rem-cas+split-one+naive".parse::<UfSpec>().unwrap(), UfSpec::fastest());
        assert_eq!(
            "rem-cas+split-one".parse::<UfSpec>().unwrap(),
            UfSpec::fastest(),
            "find defaults to naive"
        );
        assert_eq!(
            "async:compress".parse::<UfSpec>().unwrap(),
            UfSpec::new(UniteKind::Async, FindKind::Compress)
        );
        assert_eq!(
            "jtb,two-try".parse::<UfSpec>().unwrap(),
            UfSpec::new(UniteKind::Jtb, FindKind::TwoTrySplit)
        );
        // Every valid variant round-trips through some spelling; spot
        // check the full Rem-Lock form.
        assert_eq!(
            "rem-lock+halve-one+compress".parse::<UfSpec>().unwrap(),
            UfSpec::rem(UniteKind::RemLock, SpliceKind::HalveOne, FindKind::Compress)
        );
    }

    #[test]
    fn parse_rejects_with_validation_message() {
        let e = "rem-cas+splice+compress".parse::<UfSpec>().unwrap_err();
        assert!(e.contains("FindCompress"), "{e}");
        let e = "rem-cas".parse::<UfSpec>().unwrap_err();
        assert!(e.contains("splice"), "{e}");
        let e = "async+two-try".parse::<UfSpec>().unwrap_err();
        assert!(e.contains("Union-JTB"), "{e}");
        assert!("warp-drive".parse::<UfSpec>().is_err());
        assert!("async+bogus".parse::<UfSpec>().is_err());
    }
}
