//! Runtime descriptors for union-find variants: enumeration of the full
//! valid combination space and a factory that instantiates the matching
//! monomorphized implementation.
//!
//! This is the Rust counterpart of the paper's "instantiate any supported
//! combination with one line of code" template machinery, and is what the
//! benchmark harness iterates over to produce the Figure 3 / 13–15
//! heatmaps.

use crate::find::{FindCompress, FindHalve, FindNaive, FindSplit};
use crate::splice::{HalveAtomicOne, SpliceAtomic, SplitAtomicOne};
use crate::unite::{
    JtbFind, UnionAsync, UnionEarly, UnionHooks, UnionJtb, UnionRemCas, UnionRemLock, Unite,
};

/// Union algorithm family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UniteKind {
    /// Classic asynchronous union-find (Jayanti–Tarjan).
    Async,
    /// CAS on an auxiliary hooks array, uncontended parent writes.
    Hooks,
    /// Eager hooking while walking both paths together.
    Early,
    /// Lock-free concurrent Rem's algorithm.
    RemCas,
    /// Lock-based concurrent Rem's algorithm (Patwary et al.).
    RemLock,
    /// Randomized two-try linking (Jayanti–Tarjan–Boix-Adserà).
    Jtb,
}

impl UniteKind {
    /// All families.
    pub const ALL: [UniteKind; 6] = [
        UniteKind::Async,
        UniteKind::Hooks,
        UniteKind::Early,
        UniteKind::RemCas,
        UniteKind::RemLock,
        UniteKind::Jtb,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            UniteKind::Async => "Union-Async",
            UniteKind::Hooks => "Union-Hooks",
            UniteKind::Early => "Union-Early",
            UniteKind::RemCas => "Union-Rem-CAS",
            UniteKind::RemLock => "Union-Rem-Lock",
            UniteKind::Jtb => "Union-JTB",
        }
    }
}

/// Find strategy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FindKind {
    /// No compression.
    Naive,
    /// Atomic path splitting.
    Split,
    /// Atomic path halving.
    Halve,
    /// Full path compression.
    Compress,
    /// JTB two-try splitting (Union-JTB only).
    TwoTrySplit,
}

impl FindKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            FindKind::Naive => "FindNaive",
            FindKind::Split => "FindSplit",
            FindKind::Halve => "FindHalve",
            FindKind::Compress => "FindCompress",
            FindKind::TwoTrySplit => "FindTwoTrySplit",
        }
    }
}

/// Splice strategy selector (Rem's algorithms only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpliceKind {
    /// One path-splitting step.
    SplitOne,
    /// One path-halving step.
    HalveOne,
    /// Rem's splice into the other tree.
    Splice,
}

impl SpliceKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SpliceKind::SplitOne => "SplitAtomicOne",
            SpliceKind::HalveOne => "HalveAtomicOne",
            SpliceKind::Splice => "SpliceAtomic",
        }
    }
}

/// A fully-specified union-find variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UfSpec {
    /// Union family.
    pub unite: UniteKind,
    /// Find strategy.
    pub find: FindKind,
    /// Splice strategy; `Some` iff `unite` is a Rem family.
    pub splice: Option<SpliceKind>,
}

impl UfSpec {
    /// Convenience constructor for non-Rem variants.
    pub fn new(unite: UniteKind, find: FindKind) -> Self {
        UfSpec { unite, find, splice: None }
    }

    /// Convenience constructor for Rem variants.
    pub fn rem(unite: UniteKind, splice: SpliceKind, find: FindKind) -> Self {
        UfSpec { unite, find, splice: Some(splice) }
    }

    /// The paper's fastest overall variant: Union-Rem-CAS with
    /// SplitAtomicOne and FindNaive (Section 4.1 takeaway).
    pub fn fastest() -> Self {
        UfSpec::rem(UniteKind::RemCas, SpliceKind::SplitOne, FindKind::Naive)
    }

    /// Whether this combination is expressible (mirrors the paper's rules:
    /// Rem requires a splice and forbids `FindCompress` with
    /// `SpliceAtomic`; JTB only pairs with Simple/TwoTry finds; TwoTry only
    /// pairs with JTB).
    pub fn is_valid(&self) -> bool {
        match self.unite {
            UniteKind::Async | UniteKind::Hooks | UniteKind::Early => {
                self.splice.is_none() && self.find != FindKind::TwoTrySplit
            }
            UniteKind::RemCas | UniteKind::RemLock => {
                let Some(s) = self.splice else { return false };
                if self.find == FindKind::TwoTrySplit {
                    return false;
                }
                // The one excluded combination (Appendix B.2.3).
                !(s == SpliceKind::Splice && self.find == FindKind::Compress)
            }
            UniteKind::Jtb => {
                self.splice.is_none()
                    && matches!(self.find, FindKind::Naive | FindKind::TwoTrySplit)
            }
        }
    }

    /// Enumerates every valid variant (the full Figure 3 matrix).
    pub fn all_variants() -> Vec<UfSpec> {
        let finds = [
            FindKind::Naive,
            FindKind::Split,
            FindKind::Halve,
            FindKind::Compress,
            FindKind::TwoTrySplit,
        ];
        let splices = [
            None,
            Some(SpliceKind::SplitOne),
            Some(SpliceKind::HalveOne),
            Some(SpliceKind::Splice),
        ];
        let mut out = Vec::new();
        for unite in UniteKind::ALL {
            for find in finds {
                for splice in splices {
                    let spec = UfSpec { unite, find, splice };
                    if spec.is_valid() {
                        out.push(spec);
                    }
                }
            }
        }
        out
    }

    /// Display name, e.g. `Union-Rem-CAS{SplitAtomicOne; FindNaive}`.
    pub fn name(&self) -> String {
        match self.splice {
            Some(s) => format!("{}{{{}; {}}}", self.unite.name(), s.name(), self.find.name()),
            None => format!("{}{{{}}}", self.unite.name(), self.find.name()),
        }
    }

    /// Instantiates the monomorphized implementation. `n` is the vertex
    /// count (needed by stateful variants), `seed` feeds JTB's ranks.
    pub fn instantiate(&self, n: usize, seed: u64) -> Box<dyn Unite> {
        assert!(self.is_valid(), "invalid variant {self:?}");
        use FindKind as F;
        
        use UniteKind as U;
        match (self.unite, self.splice, self.find) {
            (U::Async, None, F::Naive) => Box::new(UnionAsync::<FindNaive>::new()),
            (U::Async, None, F::Split) => Box::new(UnionAsync::<FindSplit>::new()),
            (U::Async, None, F::Halve) => Box::new(UnionAsync::<FindHalve>::new()),
            (U::Async, None, F::Compress) => Box::new(UnionAsync::<FindCompress>::new()),
            (U::Hooks, None, F::Naive) => Box::new(UnionHooks::<FindNaive>::new(n)),
            (U::Hooks, None, F::Split) => Box::new(UnionHooks::<FindSplit>::new(n)),
            (U::Hooks, None, F::Halve) => Box::new(UnionHooks::<FindHalve>::new(n)),
            (U::Hooks, None, F::Compress) => Box::new(UnionHooks::<FindCompress>::new(n)),
            (U::Early, None, F::Naive) => Box::new(UnionEarly::<FindNaive>::new()),
            (U::Early, None, F::Split) => Box::new(UnionEarly::<FindSplit>::new()),
            (U::Early, None, F::Halve) => Box::new(UnionEarly::<FindHalve>::new()),
            (U::Early, None, F::Compress) => Box::new(UnionEarly::<FindCompress>::new()),
            (U::RemCas, Some(s), f) => rem_cas(s, f),
            (U::RemLock, Some(s), f) => rem_lock(n, s, f),
            (U::Jtb, None, F::Naive) => Box::new(UnionJtb::new(n, JtbFind::Simple, seed)),
            (U::Jtb, None, F::TwoTrySplit) => {
                Box::new(UnionJtb::new(n, JtbFind::TwoTrySplit, seed))
            }
            _ => unreachable!("is_valid filtered this combination"),
        }
    }
}

fn rem_cas(s: SpliceKind, f: FindKind) -> Box<dyn Unite> {
    use FindKind as F;
    use SpliceKind as S;
    match (s, f) {
        (S::SplitOne, F::Naive) => Box::new(UnionRemCas::<SplitAtomicOne, FindNaive>::new()),
        (S::SplitOne, F::Split) => Box::new(UnionRemCas::<SplitAtomicOne, FindSplit>::new()),
        (S::SplitOne, F::Halve) => Box::new(UnionRemCas::<SplitAtomicOne, FindHalve>::new()),
        (S::SplitOne, F::Compress) => Box::new(UnionRemCas::<SplitAtomicOne, FindCompress>::new()),
        (S::HalveOne, F::Naive) => Box::new(UnionRemCas::<HalveAtomicOne, FindNaive>::new()),
        (S::HalveOne, F::Split) => Box::new(UnionRemCas::<HalveAtomicOne, FindSplit>::new()),
        (S::HalveOne, F::Halve) => Box::new(UnionRemCas::<HalveAtomicOne, FindHalve>::new()),
        (S::HalveOne, F::Compress) => Box::new(UnionRemCas::<HalveAtomicOne, FindCompress>::new()),
        (S::Splice, F::Naive) => Box::new(UnionRemCas::<SpliceAtomic, FindNaive>::new()),
        (S::Splice, F::Split) => Box::new(UnionRemCas::<SpliceAtomic, FindSplit>::new()),
        (S::Splice, F::Halve) => Box::new(UnionRemCas::<SpliceAtomic, FindHalve>::new()),
        _ => unreachable!("invalid Rem-CAS combination"),
    }
}

fn rem_lock(n: usize, s: SpliceKind, f: FindKind) -> Box<dyn Unite> {
    use FindKind as F;
    use SpliceKind as S;
    match (s, f) {
        (S::SplitOne, F::Naive) => Box::new(UnionRemLock::<SplitAtomicOne, FindNaive>::new(n)),
        (S::SplitOne, F::Split) => Box::new(UnionRemLock::<SplitAtomicOne, FindSplit>::new(n)),
        (S::SplitOne, F::Halve) => Box::new(UnionRemLock::<SplitAtomicOne, FindHalve>::new(n)),
        (S::SplitOne, F::Compress) => {
            Box::new(UnionRemLock::<SplitAtomicOne, FindCompress>::new(n))
        }
        (S::HalveOne, F::Naive) => Box::new(UnionRemLock::<HalveAtomicOne, FindNaive>::new(n)),
        (S::HalveOne, F::Split) => Box::new(UnionRemLock::<HalveAtomicOne, FindSplit>::new(n)),
        (S::HalveOne, F::Halve) => Box::new(UnionRemLock::<HalveAtomicOne, FindHalve>::new(n)),
        (S::HalveOne, F::Compress) => {
            Box::new(UnionRemLock::<HalveAtomicOne, FindCompress>::new(n))
        }
        (S::Splice, F::Naive) => Box::new(UnionRemLock::<SpliceAtomic, FindNaive>::new(n)),
        (S::Splice, F::Split) => Box::new(UnionRemLock::<SpliceAtomic, FindSplit>::new(n)),
        (S::Splice, F::Halve) => Box::new(UnionRemLock::<SpliceAtomic, FindHalve>::new(n)),
        _ => unreachable!("invalid Rem-Lock combination"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_count_matches_paper_matrix() {
        let all = UfSpec::all_variants();
        // Async/Hooks/Early: 4 finds each = 12.
        // Rem-CAS/Rem-Lock: 3 splices x 4 finds - 1 excluded = 11 each.
        // JTB: 2 finds.
        assert_eq!(all.len(), 12 + 22 + 2);
        // All unique names.
        let mut names: Vec<String> = all.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn excluded_combination_rejected() {
        let bad = UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Compress);
        assert!(!bad.is_valid());
        let bad2 = UfSpec::new(UniteKind::Async, FindKind::TwoTrySplit);
        assert!(!bad2.is_valid());
        let bad3 = UfSpec::new(UniteKind::RemCas, FindKind::Naive);
        assert!(!bad3.is_valid());
    }

    #[test]
    fn every_variant_instantiates_and_unions() {
        use crate::parents::{make_parents, snapshot_labels};
        for spec in UfSpec::all_variants() {
            let u = spec.instantiate(6, 42);
            let p = make_parents(6);
            let mut h = 0;
            u.unite(&p, 0, 1, &mut h);
            u.unite(&p, 1, 2, &mut h);
            u.unite(&p, 4, 5, &mut h);
            let labels = snapshot_labels(&p);
            assert_eq!(labels[0], labels[2], "{}", spec.name());
            assert_eq!(labels[4], labels[5], "{}", spec.name());
            assert_ne!(labels[0], labels[4], "{}", spec.name());
            assert_eq!(labels[3], 3, "{}", spec.name());
        }
    }

    #[test]
    fn fastest_is_valid() {
        assert!(UfSpec::fastest().is_valid());
        assert_eq!(
            UfSpec::fastest().name(),
            "Union-Rem-CAS{SplitAtomicOne; FindNaive}"
        );
    }
}
