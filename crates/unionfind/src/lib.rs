//! # cc-unionfind
//!
//! Concurrent union-find variants for the ConnectIt framework: the
//! Union-Async / Union-Hooks / Union-Early / Union-Rem-CAS / Union-Rem-Lock
//! / Union-JTB families of Section 3.3.1, composed with the find strategies
//! of Algorithm 8 and the splice strategies of Algorithm 9, plus a
//! sequential oracle and path-length instrumentation.
//!
//! Hot paths select a variant at configuration time through
//! [`UfSpec::dispatch`], which monomorphizes the caller's
//! [`KernelVisitor`] for one of the 36 valid kernels (the paper's
//! template-specialization story); the object-safe [`Unite`] adapter
//! remains for variant enumeration and tests.
//!
//! ```
//! use cc_unionfind::{parents::make_parents, spec::UfSpec};
//! let p = make_parents(4);
//! let uf = UfSpec::fastest().instantiate(4, 0);
//! let mut hops = 0;
//! uf.unite(&p, 0, 1, &mut hops);
//! uf.unite(&p, 2, 3, &mut hops);
//! assert_eq!(uf.find(&p, 1, &mut hops), uf.find(&p, 0, &mut hops));
//! assert_ne!(uf.find(&p, 0, &mut hops), uf.find(&p, 3, &mut hops));
//! ```

#![warn(missing_docs)]

pub mod find;
pub mod oracle;
pub mod parents;
pub mod spec;
pub mod splice;
pub mod stats;
pub mod telemetry;
pub mod unite;

pub use find::{Find, FindCompress, FindHalve, FindNaive, FindSplit};
pub use oracle::{oracle_labels, SeqUnionFind};
pub use parents::{
    count_roots, make_parents, parents_from_labels, snapshot_labels, snapshot_labels_readonly,
    Parents,
};
pub use spec::{FastestKernel, FindKind, KernelVisitor, SpliceKind, UfSpec, UniteKind};
pub use splice::{HalveAtomicOne, Splice, SpliceAtomic, SplitAtomicOne};
pub use stats::{PathLengths, PathStats};
pub use telemetry::{CountHops, NoCount, Telemetry};
pub use unite::{
    JtbFindStrategy, JtbSimple, JtbTwoTry, UnionAsync, UnionEarly, UnionHooks, UnionJtb,
    UnionRemCas, UnionRemLock, Unite, UniteKernel,
};
