//! Zero-cost path-length telemetry selectors.
//!
//! The paper's union-find kernels are instrumented to report Total/Max
//! Path Length (Figures 6–7), but the instrumentation must cost nothing
//! when the statistics are not wanted — the per-edge hop write would
//! otherwise tax every hot loop in the framework. The selector is a
//! *type* parameter threaded through [`crate::find::Find`],
//! [`crate::splice::Splice`], and [`crate::unite::UniteKernel`]:
//! monomorphization specializes every kernel twice, once counting
//! ([`CountHops`]) and once with the counter compiled out entirely
//! ([`NoCount`]).

/// A hop counter handed to union-find kernels. Implementations are either
/// a real accumulator ([`CountHops`]) or a no-op whose calls the compiler
/// deletes ([`NoCount`]).
pub trait Telemetry: Default + Send + 'static {
    /// Whether this selector records anything. Drivers use it to skip
    /// aggregation plumbing around the kernel calls.
    const ENABLED: bool;

    /// Adds `n` traversed parent-pointer hops.
    fn add(&mut self, n: u64);

    /// The accumulated hop count (always 0 for [`NoCount`]).
    fn hops(&self) -> u64;
}

/// Counting telemetry: a plain `u64` accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountHops(pub u64);

impl Telemetry for CountHops {
    const ENABLED: bool = true;

    #[inline(always)]
    fn add(&mut self, n: u64) {
        self.0 += n;
    }

    #[inline(always)]
    fn hops(&self) -> u64 {
        self.0
    }
}

/// Disabled telemetry: every call is a no-op, so the monomorphized kernel
/// carries no counter at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoCount;

impl Telemetry for NoCount {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&mut self, _n: u64) {}

    #[inline(always)]
    fn hops(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accumulate<T: Telemetry>() -> u64 {
        let mut t = T::default();
        t.add(3);
        t.add(4);
        t.hops()
    }

    #[test]
    fn counting_accumulates() {
        assert_eq!(accumulate::<CountHops>(), 7);
        const { assert!(CountHops::ENABLED) }
    }

    #[test]
    fn nocount_is_inert() {
        assert_eq!(accumulate::<NoCount>(), 0);
        const { assert!(!NoCount::ENABLED) }
    }
}
