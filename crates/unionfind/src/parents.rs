//! The shared atomic parent array underlying every union-find variant.
//!
//! Invariant maintained by all ID-linking variants (everything except
//! Union-JTB, which links by random rank): `parent(x) <= x`, so parent
//! chains strictly decrease and the structure is acyclic by construction.
//! Union-JTB maintains acyclicity through its rank order instead.

use cc_parallel::{parallel_for, parallel_tabulate};
use std::sync::atomic::{AtomicU32, Ordering};

/// The concurrent parent array. `p[v] == v` marks a root.
pub type Parents = [AtomicU32];

/// Allocates a parent array with every vertex its own root.
pub fn make_parents(n: usize) -> Box<Parents> {
    parallel_tabulate(n, |i| AtomicU32::new(i as u32)).into_boxed_slice()
}

/// Allocates a parent array initialized from an existing labeling (used to
/// seed the finish phase with sampled labels).
pub fn parents_from_labels(labels: &[u32]) -> Box<Parents> {
    parallel_tabulate(labels.len(), |i| AtomicU32::new(labels[i])).into_boxed_slice()
}

/// Loads `p[v]` (relaxed).
#[inline]
pub fn parent(p: &Parents, v: u32) -> u32 {
    p[v as usize].load(Ordering::Relaxed)
}

/// Chases parent pointers to the root without modifying anything.
#[inline]
pub fn find_root_readonly(p: &Parents, mut v: u32) -> u32 {
    loop {
        let pv = parent(p, v);
        if pv == v {
            return v;
        }
        v = pv;
    }
}

/// Fully compresses the structure in parallel: afterwards every vertex
/// points directly at its root. Safe to run concurrently with reads (writes
/// only replace a parent by an ancestor); must not run concurrently with
/// unions.
pub fn flatten(p: &Parents) {
    parallel_for(p.len(), |v| {
        let root = find_root_readonly(p, v as u32);
        p[v].store(root, Ordering::Relaxed);
    });
}

/// Snapshots the fully-compressed labeling: flattens, then copies out.
pub fn snapshot_labels(p: &Parents) -> Vec<u32> {
    flatten(p);
    cc_parallel::snapshot_u32(p)
}

/// Read-only labeling snapshot: computes every vertex's current root by
/// pointer chasing, writing nothing. Unlike [`snapshot_labels`] this never
/// mutates the structure, so a monitoring thread can snapshot while the
/// owner keeps the right to run `flatten` elsewhere. Concurrent *unions*
/// may tear the snapshot across the merge boundary (one side labeled
/// pre-merge, the other post-merge); the result is exact when the
/// structure is quiescent, which is how the service layer uses it
/// (between batches).
pub fn snapshot_labels_readonly(p: &Parents) -> Vec<u32> {
    parallel_tabulate(p.len(), |v| find_root_readonly(p, v as u32))
}

/// Counts the current roots (`p[v] == v`) without modifying anything.
/// When the structure is quiescent this is exactly the number of disjoint
/// sets; during concurrent unions it is an upper bound on the final count.
pub fn count_roots(p: &Parents) -> usize {
    cc_parallel::parallel_count(p.len(), |v| parent(p, v as u32) == v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_parents_are_roots() {
        let p = make_parents(100);
        assert!((0..100u32).all(|v| parent(&p, v) == v));
        assert_eq!(find_root_readonly(&p, 55), 55);
    }

    #[test]
    fn flatten_points_everyone_at_root() {
        let p = make_parents(6);
        // Chain 5 -> 4 -> 3 -> 0, and 2 -> 1.
        p[5].store(4, Ordering::Relaxed);
        p[4].store(3, Ordering::Relaxed);
        p[3].store(0, Ordering::Relaxed);
        p[2].store(1, Ordering::Relaxed);
        flatten(&p);
        let labels = cc_parallel::snapshot_u32(&p);
        assert_eq!(labels, vec![0, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn labels_from_snapshot() {
        let p = parents_from_labels(&[0, 0, 2, 2]);
        let labels = snapshot_labels(&p);
        assert_eq!(labels, vec![0, 0, 2, 2]);
    }

    #[test]
    fn readonly_snapshot_does_not_compress() {
        let p = make_parents(5);
        // Chain 4 -> 3 -> 2 -> 0.
        p[4].store(3, Ordering::Relaxed);
        p[3].store(2, Ordering::Relaxed);
        p[2].store(0, Ordering::Relaxed);
        let labels = snapshot_labels_readonly(&p);
        assert_eq!(labels, vec![0, 1, 0, 0, 0]);
        // The chain is untouched.
        assert_eq!(parent(&p, 4), 3);
        assert_eq!(parent(&p, 3), 2);
        assert_eq!(count_roots(&p), 2);
    }

    #[test]
    fn count_roots_fresh_and_merged() {
        let p = make_parents(8);
        assert_eq!(count_roots(&p), 8);
        p[7].store(0, Ordering::Relaxed);
        p[6].store(0, Ordering::Relaxed);
        assert_eq!(count_roots(&p), 6);
    }
}
