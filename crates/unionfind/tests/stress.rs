//! Concurrency stress tests: every union-find variant, driven by a real
//! parallel loop over random and structured edge sets, must produce the
//! oracle partition.

use cc_graph::generators::{grid2d, rmat_default};
use cc_graph::stats::same_partition;
use cc_unionfind::oracle::oracle_labels;
use cc_unionfind::parents::{make_parents, snapshot_labels};
use cc_unionfind::spec::UfSpec;

fn run_variant_parallel(spec: UfSpec, n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let uf = spec.instantiate(n, 99);
    let p = make_parents(n);
    cc_parallel::parallel_for_chunks(edges.len(), |r| {
        let mut hops = 0u64;
        for i in r {
            let (u, v) = edges[i];
            uf.unite(&p, u, v, &mut hops);
        }
    });
    snapshot_labels(&p)
}

#[test]
fn all_variants_match_oracle_on_rmat() {
    let el = rmat_default(12, 30_000, 1234);
    let expect = oracle_labels(el.num_vertices, &el.edges);
    for spec in UfSpec::all_variants() {
        let got = run_variant_parallel(spec, el.num_vertices, &el.edges);
        assert!(same_partition(&expect, &got), "variant {}", spec.name());
    }
}

#[test]
fn all_variants_match_oracle_on_grid() {
    let g = grid2d(100, 100);
    let el = g.to_edge_list();
    let expect = oracle_labels(el.num_vertices, &el.edges);
    for spec in UfSpec::all_variants() {
        let got = run_variant_parallel(spec, el.num_vertices, &el.edges);
        assert!(same_partition(&expect, &got), "variant {}", spec.name());
    }
}

#[test]
fn repeated_runs_are_partition_stable() {
    // Different interleavings must never change the partition.
    let el = rmat_default(10, 8_000, 77);
    let expect = oracle_labels(el.num_vertices, &el.edges);
    let spec = UfSpec::fastest();
    for _ in 0..20 {
        let got = run_variant_parallel(spec, el.num_vertices, &el.edges);
        assert!(same_partition(&expect, &got));
    }
}

#[test]
fn concurrent_mixed_finds_and_unions() {
    // Wait-free variants allow finds interleaved with unions; the find
    // results must always be *some* vertex (no crash/livelock) and the
    // final partition must be correct.
    let el = rmat_default(11, 15_000, 5);
    let n = el.num_vertices;
    let expect = oracle_labels(n, &el.edges);
    for spec in UfSpec::all_variants() {
        let uf = spec.instantiate(n, 3);
        if !uf.concurrent_finds() {
            continue; // Rem+Splice is phase-concurrent only
        }
        let p = make_parents(n);
        cc_parallel::parallel_for_chunks(el.edges.len(), |r| {
            let mut hops = 0u64;
            for i in r {
                let (u, v) = el.edges[i];
                uf.unite(&p, u, v, &mut hops);
                // Interleave a find.
                let root = uf.find(&p, u, &mut hops);
                assert!((root as usize) < n);
            }
        });
        let got = snapshot_labels(&p);
        assert!(same_partition(&expect, &got), "variant {}", spec.name());
    }
}
