//! The subscription plane: push merge events at the epoch they land.
//!
//! Clients register interest in connectivity changes instead of polling
//! `Q u v`: a **pair** subscription (`SUB u v`) fires once, at the first
//! committed epoch at-or-after registration in whose batch `u` and `v`
//! became connected; a **component** subscription (`SUB COMPONENT v`)
//! fires every time the identity of `v`'s component changes — a merge
//! uniting it with another component during a clean window, or a rebuild
//! commit (a new generation trivially re-identifies every component).
//!
//! ## Trigger index
//!
//! [`SubsCore`] lives inside the generation engine's writer state, next
//! to the analytics aggregates, and consumes the *same* merge-event
//! stream: every clean-path [`SubsCore::merge`] is one union-find step.
//! Subscriptions are bucketed by the **root** of the component they are
//! watching, so a batch of `b` merges fires matching subscriptions in
//! O(b·α + moved + fired) — buckets merge smaller-into-larger alongside
//! the union, and a registry of a million idle subscriptions costs a
//! merge nothing. There is no registry rescan anywhere on the hot path.
//!
//! ## Stamping discipline
//!
//! Fires are buffered, not delivered inline: the engine does not know
//! the epoch a batch will commit as (the batch former assigns it after
//! the apply). The batcher drains the buffer via
//! [`crate::GenerationEngine::drain_sub_fires`] immediately after it
//! publishes an epoch, stamping every unstamped fire with exactly that
//! `(epoch, generation)`. Rebuild commits stamp their fires at the
//! deferred epoch high-water mark themselves (the same mark the
//! analytics republication uses), so deletions never strand a trigger
//! and never mislabel one. The invariant delivered to clients: an event
//! stamped `(e, g)` means the merge committed in the course of batch `e`
//! and the subscription's watch condition held in the serving state that
//! batch produced.
//!
//! ## Delivery
//!
//! [`SubsDispatch`] owns per-subscription channels *outside* the writer
//! lock: it assigns the per-subscription sequence numbers, pushes events
//! into whatever [`SubSink`] the owning connection attached (a bounded
//! text push queue, or a shard event queue for binary connections —
//! both non-blocking), and retains undelivered events for **durable**
//! subscriptions so a subscriber can crash, reconnect, and
//! `SUB ATTACH id after_seq` its way back to exactly-once delivery.
//! A sink that reports itself dead (connection gone, or its push queue
//! overflowed — the connection is then dropped with a typed
//! `ConnClosed{sub-overflow}`, never a silent event drop) detaches; an
//! ephemeral subscription dies with its sink, a durable one goes back
//! to retention.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Retained (undelivered) events kept per durable subscription while no
/// sink is attached. A pair subscription retains at most its single
/// event; a component subscription past the cap drops its *oldest*
/// retained event (the stream is documented as bounded-replay: the
/// re-attaching subscriber sees the most recent [`RETAIN_CAP`] identity
/// changes, with sequence numbers making any gap explicit).
pub const RETAIN_CAP: usize = 1024;

/// What a subscription watches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubKind {
    /// Fire once when two vertices become connected.
    Pair,
    /// Fire on every identity change of one vertex's component.
    Component,
}

impl SubKind {
    /// Wire code (`0` pair, `1` component) — shared by the WAL `'S'`
    /// record body and the binary SUBSCRIBE request.
    pub fn code(self) -> u8 {
        match self {
            SubKind::Pair => 0,
            SubKind::Component => 1,
        }
    }

    /// Inverse of [`SubKind::code`].
    pub fn from_code(c: u8) -> Option<SubKind> {
        match c {
            0 => Some(SubKind::Pair),
            1 => Some(SubKind::Component),
            _ => None,
        }
    }
}

/// One pushed subscription event, stamped with the exact
/// `(epoch, generation)` at which the merge (or rebuild commit)
/// committed. `seq` is per-subscription, 1-based and gap-free in
/// delivery order — the client-side dedupe key across reconnects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubEvent {
    /// The subscription this event belongs to.
    pub id: u64,
    /// Pair or component.
    pub kind: SubKind,
    /// Pair: the registered `u`. Component: the watched vertex.
    pub u: u32,
    /// Pair: the registered `v`. Component: the watched vertex again.
    pub v: u32,
    /// Root (representative vertex) of the watched component after the
    /// change.
    pub root: u32,
    /// Size of the watched component after the change.
    pub size: u64,
    /// Epoch of the batch in whose course the change committed.
    pub epoch: u64,
    /// Generation serving when the change committed.
    pub generation: u64,
    /// Per-subscription delivery sequence number (assigned by
    /// [`SubsDispatch`]; 0 until then).
    pub seq: u64,
}

/// A fire drained from the engine, paired with its creation instant so
/// the dispatch can record fire-to-sink latency.
#[derive(Clone, Copy, Debug)]
pub struct PendingEvent {
    /// The stamped event (seq still 0).
    pub ev: SubEvent,
    /// When the trigger fired inside the engine.
    pub at: Instant,
}

/// A durable subscription operation as logged to (and recovered from)
/// the WAL's `'S'` records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubWalOp {
    /// A durable subscription was registered.
    Register {
        /// Assigned subscription id.
        id: u64,
        /// What it watches.
        kind: SubKind,
        /// Pair `u` (== `v` for component subscriptions).
        u: u32,
        /// Pair `v`, or the watched component vertex.
        v: u32,
        /// Committed epoch at registration time.
        epoch: u64,
    },
    /// A durable subscription was cancelled.
    Cancel {
        /// The cancelled subscription id.
        id: u64,
    },
}

/// Point-in-time description of one registered subscription (the `SUBS`
/// verb).
#[derive(Clone, Copy, Debug)]
pub struct SubInfo {
    /// Subscription id.
    pub id: u64,
    /// Pair or component.
    pub kind: SubKind,
    /// Pair `u` / watched vertex.
    pub u: u32,
    /// Pair `v` / watched vertex.
    pub v: u32,
    /// Whether the subscription is WAL-logged.
    pub durable: bool,
    /// Committed epoch at registration.
    pub registered_epoch: u64,
    /// Pair subscriptions: whether the one-shot trigger has fired.
    pub fired: bool,
}

struct SubEntry {
    kind: SubKind,
    u: u32,
    v: u32,
    durable: bool,
    registered_epoch: u64,
    fired: bool,
}

/// An unstamped (or commit-stamped) fire awaiting the batcher's drain.
struct Fire {
    ev: SubEvent,
    /// `None` until the drain stamps the publishing epoch.
    epoch: Option<u64>,
    at: Instant,
}

/// The union-find-keyed trigger index. Lives inside the generation
/// engine's writer state; every method is called under the writer lock.
pub struct SubsCore {
    n: usize,
    /// Sequential union-find mirroring the engine's live partition while
    /// any subscription is registered (path-halving + union-by-size).
    parent: Vec<u32>,
    size: Vec<u64>,
    /// Whether `parent`/`size` mirror the current labeling. False while
    /// the registry is empty (the mirror costs nothing until the first
    /// registration resyncs it) and during recovery.
    synced: bool,
    subs: HashMap<u64, SubEntry>,
    /// root -> subscription ids triggered when that root's component
    /// changes. Pair subscriptions appear under both endpoints' roots.
    buckets: HashMap<u32, Vec<u64>>,
    fires: Vec<Fire>,
}

impl SubsCore {
    /// An empty registry over `n` vertices.
    pub fn new(n: usize) -> SubsCore {
        SubsCore {
            n,
            parent: Vec::new(),
            size: Vec::new(),
            synced: false,
            subs: HashMap::new(),
            buckets: HashMap::new(),
            fires: Vec::new(),
        }
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Whether the union-find mirror currently tracks the live labeling
    /// (when false, a registration must supply the current labels).
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut x = v as usize;
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x as u32
    }

    /// Rebuilds the union-find mirror from a labeling: one representative
    /// per label class, sizes counted exactly.
    fn resync_from(&mut self, labels: &[u32]) {
        self.parent.clear();
        self.parent.extend(0..self.n as u32);
        self.size.clear();
        self.size.resize(self.n, 1);
        let mut rep: HashMap<u32, u32> = HashMap::new();
        for (v, &lbl) in labels.iter().enumerate() {
            match rep.entry(lbl) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let r = *e.get();
                    self.parent[v] = r;
                    self.size[r as usize] += 1;
                    self.size[v] = 0;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v as u32);
                }
            }
        }
        self.synced = true;
    }

    /// Re-buckets every live trigger under the current roots (after a
    /// resync invalidated the old ones).
    fn rebucket(&mut self) {
        self.buckets.clear();
        let ids: Vec<u64> = self.subs.keys().copied().collect();
        for id in ids {
            let (kind, u, v, fired) = {
                let e = &self.subs[&id];
                (e.kind, e.u, e.v, e.fired)
            };
            match kind {
                SubKind::Pair => {
                    if !fired {
                        let (ru, rv) = (self.find(u), self.find(v));
                        self.buckets.entry(ru).or_default().push(id);
                        if rv != ru {
                            self.buckets.entry(rv).or_default().push(id);
                        }
                    }
                }
                SubKind::Component => {
                    let r = self.find(v);
                    self.buckets.entry(r).or_default().push(id);
                }
            }
        }
    }

    /// Registers a subscription under a caller-assigned id. `labels` is
    /// consulted (to resync the mirror) only when this is the first
    /// registration of an idle registry. While clean, a pair already
    /// connected at registration fires immediately (stamped at the next
    /// drain); while recovering/unsynced the evaluation is deferred to
    /// [`SubsCore::on_commit`].
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        id: u64,
        kind: SubKind,
        u: u32,
        v: u32,
        durable: bool,
        registered_epoch: u64,
        generation: u64,
        labels: Option<&[u32]>,
    ) {
        if !self.synced {
            if let Some(l) = labels {
                self.resync_from(l);
                self.rebucket();
            }
        }
        self.subs.insert(id, SubEntry { kind, u, v, durable, registered_epoch, fired: false });
        if !self.synced {
            return; // recovery replay: triggers are armed at finish_recovery
        }
        match kind {
            SubKind::Pair => {
                let (ru, rv) = (self.find(u), self.find(v));
                if ru == rv {
                    self.fire_pair(id, generation);
                    // Stamp the registration-time fire here, with the
                    // registration epoch: the prompt drain that follows
                    // a registration must never stamp a concurrent
                    // batch's still-unpublished merge fires, and a
                    // pre-stamped fire is what lets it tell the two
                    // apart (see [`SubsCore::drain_stamped_fires`]).
                    let f = self.fires.last_mut().expect("just fired");
                    f.epoch = Some(registered_epoch);
                    f.ev.epoch = registered_epoch;
                } else {
                    self.buckets.entry(ru).or_default().push(id);
                    self.buckets.entry(rv).or_default().push(id);
                }
            }
            SubKind::Component => {
                let r = self.find(v);
                self.buckets.entry(r).or_default().push(id);
            }
        }
    }

    fn fire_pair(&mut self, id: u64, generation: u64) {
        let entry = self.subs.get_mut(&id).expect("fired sub exists");
        entry.fired = true;
        let (u, v) = (entry.u, entry.v);
        let root = self.find(u);
        let size = self.size[root as usize];
        self.fires.push(Fire {
            ev: SubEvent {
                id,
                kind: SubKind::Pair,
                u,
                v,
                root,
                size,
                epoch: 0,
                generation,
                seq: 0,
            },
            epoch: None,
            at: Instant::now(),
        });
    }

    fn fire_component(&mut self, id: u64, generation: u64, epoch: Option<u64>) {
        let entry = self.subs.get(&id).expect("fired sub exists");
        let v = entry.v;
        let root = self.find(v);
        let size = self.size[root as usize];
        self.fires.push(Fire {
            ev: SubEvent {
                id,
                kind: SubKind::Component,
                u: v,
                v,
                root,
                size,
                epoch: epoch.unwrap_or(0),
                generation,
                seq: 0,
            },
            epoch,
            at: Instant::now(),
        });
    }

    /// Cancels a subscription; returns its entry's durability, or `None`
    /// for an unknown id. The trigger bucket entry (if any) is removed
    /// lazily — stale ids in buckets are skipped at fire time.
    pub fn cancel(&mut self, id: u64) -> Option<bool> {
        let entry = self.subs.remove(&id)?;
        if self.subs.is_empty() {
            // Idle registry: stop maintaining the mirror entirely; the
            // next registration resyncs from the labels of that moment.
            self.synced = false;
            self.buckets.clear();
            self.parent = Vec::new();
            self.size = Vec::new();
        }
        Some(entry.durable)
    }

    /// Folds one clean-path merge into the trigger index. Called from
    /// the engine's apply loop at exactly the points where
    /// `analytics.merge` observes a novel union. O(α + moved + fired).
    pub fn merge(&mut self, u: u32, v: u32, generation: u64) {
        if !self.synced {
            return;
        }
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return;
        }
        // Union by size; the smaller bucket migrates into the larger.
        let (big, small) =
            if self.size[ru as usize] >= self.size[rv as usize] { (ru, rv) } else { (rv, ru) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.size[small as usize] = 0;
        if self.subs.is_empty() {
            return;
        }
        let small_bucket = self.buckets.remove(&small).unwrap_or_default();
        let big_bucket = self.buckets.remove(&big).unwrap_or_default();
        let mut survivors: Vec<u64> = Vec::with_capacity(small_bucket.len() + big_bucket.len());
        for id in small_bucket.into_iter().chain(big_bucket) {
            let Some(entry) = self.subs.get(&id) else { continue }; // cancelled
            let (kind, su, sv, fired) = (entry.kind, entry.u, entry.v, entry.fired);
            match kind {
                SubKind::Pair => {
                    if fired {
                        continue;
                    }
                    if self.find(su) == self.find(sv) {
                        self.fire_pair(id, generation);
                    } else if !survivors.contains(&id) {
                        // The pair's *other* endpoint still lives in a
                        // different bucket; keep this side armed under
                        // the merged root.
                        survivors.push(id);
                    }
                }
                SubKind::Component => {
                    // Either side of the union is an identity change for
                    // the components it watched.
                    self.fire_component(id, generation, None);
                    survivors.push(id);
                }
            }
        }
        if !survivors.is_empty() {
            self.buckets.insert(big, survivors);
        }
    }

    /// Re-arms the registry against a fresh labeling at a rebuild commit
    /// (or at recovery's end): the mirror resyncs wholesale, pending
    /// pairs are re-evaluated (a pair the rebuild's drained inserts
    /// connected fires here — deletions never strand a trigger), and
    /// every component subscription fires once (`commit_epoch` when the
    /// caller is a rebuild commit, unstamped for recovery) because a new
    /// generation re-identifies every component.
    pub fn on_commit(
        &mut self,
        labels: &[u32],
        generation: u64,
        commit_epoch: Option<u64>,
        fire_components: bool,
    ) {
        if self.subs.is_empty() {
            // Nothing registered: drop the mirror (cheap no-op commits).
            self.synced = false;
            self.buckets.clear();
            return;
        }
        self.resync_from(labels);
        self.rebucket();
        let ids: Vec<u64> = self.subs.keys().copied().collect();
        for id in ids {
            let (kind, u, v, fired) = {
                let e = &self.subs[&id];
                (e.kind, e.u, e.v, e.fired)
            };
            match kind {
                SubKind::Pair => {
                    if !fired && self.find(u) == self.find(v) {
                        self.fire_pair(id, generation);
                        if let (Some(e), Some(f)) = (commit_epoch, self.fires.last_mut()) {
                            f.epoch = Some(e);
                            f.ev.epoch = e;
                        }
                    }
                }
                SubKind::Component => {
                    if fire_components {
                        self.fire_component(id, generation, commit_epoch);
                    }
                }
            }
        }
    }

    /// Drains buffered fires, stamping every unstamped one with `epoch`.
    /// Called by the batch former right after it publishes that epoch
    /// (and on its idle tick), and by the follower apply path.
    pub fn drain_fires(&mut self, epoch: u64) -> Vec<PendingEvent> {
        if self.fires.is_empty() {
            return Vec::new();
        }
        self.fires
            .drain(..)
            .map(|mut f| {
                if f.epoch.is_none() {
                    f.ev.epoch = epoch;
                }
                PendingEvent { ev: f.ev, at: f.at }
            })
            .collect()
    }

    /// Drains buffered fires only when every one already carries its
    /// epoch (registration-time and rebuild-commit fires do; clean-path
    /// merge fires do not until their batch publishes). The prompt
    /// delivery path after a registration uses this: if an applied but
    /// not-yet-published batch left unstamped fires in the buffer,
    /// draining now would stamp them with the *previous* epoch, so the
    /// whole buffer is left for the batcher's post-publish drain —
    /// which also keeps per-subscription delivery order intact.
    pub fn drain_stamped_fires(&mut self) -> Vec<PendingEvent> {
        if self.fires.is_empty() || self.fires.iter().any(|f| f.epoch.is_none()) {
            return Vec::new();
        }
        self.fires.drain(..).map(|f| PendingEvent { ev: f.ev, at: f.at }).collect()
    }

    /// Whether any buffered fire awaits a drain.
    pub fn has_fires(&self) -> bool {
        !self.fires.is_empty()
    }

    /// Lists every registered subscription, id-ascending.
    pub fn list(&self) -> Vec<SubInfo> {
        let mut out: Vec<SubInfo> = self
            .subs
            .iter()
            .map(|(&id, e)| SubInfo {
                id,
                kind: e.kind,
                u: e.u,
                v: e.v,
                durable: e.durable,
                registered_epoch: e.registered_epoch,
                fired: e.fired,
            })
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }
}

/// How a sink disposed of one event. A `false` return means the sink is
/// dead (connection gone or its queue overflowed — the connection layer
/// handles the typed close); the dispatch detaches it.
pub trait SubSink: Send + Sync {
    /// Pushes one event toward the subscriber. Must not block.
    fn deliver(&self, ev: &SubEvent) -> bool;
}

struct SubChannel {
    durable: bool,
    next_seq: u64,
    retained: VecDeque<SubEvent>,
    sink: Option<Arc<dyn SubSink>>,
}

/// Outcome of [`SubsDispatch::attach`].
#[derive(Debug, PartialEq, Eq)]
pub enum AttachError {
    /// No channel with that id (never registered, cancelled, or an
    /// ephemeral subscription that died with its connection).
    Unknown,
}

/// Per-subscription delivery channels, sequence numbering, and durable
/// retention. Owned by the service, mutated outside the engine's writer
/// lock; see the module docs for the delivery contract.
#[derive(Default)]
pub struct SubsDispatch {
    inner: Mutex<DispatchState>,
}

#[derive(Default)]
struct DispatchState {
    chans: HashMap<u64, SubChannel>,
    next_id: u64,
}

impl SubsDispatch {
    /// An empty dispatch.
    pub fn new() -> SubsDispatch {
        SubsDispatch { inner: Mutex::new(DispatchState { chans: HashMap::new(), next_id: 1 }) }
    }

    /// Reserves the next subscription id (monotone per service).
    pub fn reserve(&self) -> u64 {
        let mut st = self.inner.lock();
        let id = st.next_id;
        st.next_id += 1;
        id
    }

    /// Ensures ids assigned after recovery never collide with recovered
    /// ones.
    pub fn bump_next_id(&self, floor: u64) {
        let mut st = self.inner.lock();
        st.next_id = st.next_id.max(floor);
    }

    /// Opens the delivery channel for a freshly registered subscription.
    /// Must happen before the engine-side registration so a
    /// registration-time fire can never race past a missing channel.
    pub fn open(&self, id: u64, durable: bool, sink: Option<Arc<dyn SubSink>>) {
        self.inner
            .lock()
            .chans
            .insert(id, SubChannel { durable, next_seq: 1, retained: VecDeque::new(), sink });
    }

    /// Detaches the sink (connection closed); a durable channel keeps
    /// retaining, an ephemeral one is expected to be cancelled by the
    /// caller right after.
    pub fn detach(&self, id: u64) {
        if let Some(c) = self.inner.lock().chans.get_mut(&id) {
            c.sink = None;
        }
    }

    /// Removes the channel outright (UNSUB, or ephemeral death).
    pub fn close(&self, id: u64) {
        self.inner.lock().chans.remove(&id);
    }

    /// Re-binds a sink to a durable channel and replays retained events
    /// with `seq > after_seq` through it. Returns the highest sequence
    /// number assigned so far (0 if none).
    pub fn attach(
        &self,
        id: u64,
        after_seq: u64,
        sink: Arc<dyn SubSink>,
    ) -> Result<u64, AttachError> {
        let mut st = self.inner.lock();
        let c = st.chans.get_mut(&id).ok_or(AttachError::Unknown)?;
        let mut alive = true;
        c.retained.retain(|ev| {
            if ev.seq > after_seq && alive {
                if sink.deliver(ev) {
                    false // delivered; drop from retention
                } else {
                    alive = false;
                    true
                }
            } else {
                ev.seq > after_seq // acknowledged events leave retention
            }
        });
        c.sink = if alive { Some(sink) } else { None };
        Ok(c.next_seq - 1)
    }

    /// Delivers a drained batch of events in order: assigns sequence
    /// numbers, pushes through attached sinks, retains for detached
    /// durable channels. Returns the ids of **ephemeral** subscriptions
    /// whose sink died (the caller cancels them in the core). The
    /// `observe` callback sees every sequenced event (metrics).
    pub fn deliver(
        &self,
        events: &[PendingEvent],
        mut observe: impl FnMut(&SubEvent, Instant),
    ) -> Vec<u64> {
        let mut dead_ephemeral = Vec::new();
        let mut st = self.inner.lock();
        for pe in events {
            let Some(c) = st.chans.get_mut(&pe.ev.id) else { continue }; // cancelled mid-flight
            let mut ev = pe.ev;
            ev.seq = c.next_seq;
            c.next_seq += 1;
            observe(&ev, pe.at);
            let delivered = match &c.sink {
                Some(s) => s.deliver(&ev),
                None => false,
            };
            if !delivered {
                if c.sink.is_some() {
                    c.sink = None; // sink reported itself dead
                }
                if c.durable {
                    if c.retained.len() >= RETAIN_CAP {
                        c.retained.pop_front();
                    }
                    c.retained.push_back(ev);
                } else {
                    dead_ephemeral.push(ev.id);
                }
            }
        }
        for id in &dead_ephemeral {
            st.chans.remove(id);
        }
        dead_ephemeral
    }

    /// Number of open channels (active subscriptions as the delivery
    /// layer sees them).
    pub fn len(&self) -> usize {
        self.inner.lock().chans.len()
    }

    /// Whether no channel is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels_of(parts: &[&[u32]], n: usize) -> Vec<u32> {
        let mut labels: Vec<u32> = (0..n as u32).collect();
        for part in parts {
            for &v in part.iter() {
                labels[v as usize] = part[0];
            }
        }
        labels
    }

    #[test]
    fn pair_trigger_fires_once_at_the_connecting_merge() {
        let mut core = SubsCore::new(8);
        let labels: Vec<u32> = (0..8).collect();
        core.register(1, SubKind::Pair, 0, 3, false, 5, 0, Some(&labels));
        assert!(!core.has_fires(), "not connected at registration");
        core.merge(0, 1, 0);
        core.merge(2, 3, 0);
        assert!(!core.has_fires(), "still two components");
        core.merge(1, 2, 0);
        let evs = core.drain_fires(9);
        assert_eq!(evs.len(), 1);
        let ev = evs[0].ev;
        assert_eq!((ev.id, ev.kind, ev.u, ev.v), (1, SubKind::Pair, 0, 3));
        assert_eq!((ev.epoch, ev.generation), (9, 0));
        assert_eq!(ev.size, 4);
        // One-shot: further merges into the component do not re-fire.
        core.merge(3, 4, 0);
        assert!(!core.has_fires());
        assert!(core.list()[0].fired);
    }

    #[test]
    fn already_connected_pair_fires_at_registration() {
        let mut core = SubsCore::new(4);
        let labels = labels_of(&[&[0, 1]], 4);
        core.register(7, SubKind::Pair, 0, 1, true, 2, 3, Some(&labels));
        let evs = core.drain_fires(2);
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].ev.id, evs[0].ev.epoch, evs[0].ev.generation), (7, 2, 3));
    }

    #[test]
    fn component_sub_fires_on_merges_and_commits() {
        let mut core = SubsCore::new(8);
        let labels: Vec<u32> = (0..8).collect();
        core.register(1, SubKind::Component, 5, 5, false, 0, 0, Some(&labels));
        core.merge(0, 1, 0);
        assert!(!core.has_fires(), "a merge elsewhere is not an identity change");
        core.merge(5, 0, 0);
        let evs = core.drain_fires(3);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].ev.size, 3);
        // A rebuild commit re-identifies every component: fire again.
        let labels = labels_of(&[&[0, 1, 5]], 8);
        core.on_commit(&labels, 1, Some(4), true);
        let evs = core.drain_fires(99);
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].ev.epoch, evs[0].ev.generation), (4, 1));
    }

    #[test]
    fn commit_reevaluates_pending_pairs_after_deletions() {
        let mut core = SubsCore::new(8);
        let labels: Vec<u32> = (0..8).collect();
        core.register(1, SubKind::Pair, 0, 7, false, 0, 0, Some(&labels));
        // The rebuild's fresh labeling connected them (e.g. via drained
        // pending inserts): the commit must fire the stranded trigger.
        let fresh = labels_of(&[&[0, 3, 7]], 8);
        core.on_commit(&fresh, 2, Some(11), true);
        let evs = core.drain_fires(99);
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].ev.epoch, evs[0].ev.generation, evs[0].ev.size), (11, 2, 3));
    }

    #[test]
    fn cancel_removes_and_idle_registry_stops_mirroring() {
        let mut core = SubsCore::new(4);
        let labels: Vec<u32> = (0..4).collect();
        core.register(1, SubKind::Pair, 0, 1, true, 0, 0, Some(&labels));
        assert_eq!(core.cancel(1), Some(true));
        assert_eq!(core.cancel(1), None, "unknown after removal");
        assert!(core.is_empty());
        // Merges on an idle registry are free (no mirror maintained).
        core.merge(0, 1, 0);
        assert!(!core.has_fires());
        // A later registration resyncs from the labels of that moment.
        let labels = labels_of(&[&[0, 1]], 4);
        core.register(2, SubKind::Pair, 0, 1, false, 9, 0, Some(&labels));
        assert_eq!(core.drain_fires(9).len(), 1);
    }

    #[test]
    fn dispatch_sequences_retains_and_replays() {
        struct VecSink(Mutex<Vec<SubEvent>>, std::sync::atomic::AtomicBool);
        impl SubSink for VecSink {
            fn deliver(&self, ev: &SubEvent) -> bool {
                if self.1.load(std::sync::atomic::Ordering::Relaxed) {
                    return false;
                }
                self.0.lock().push(*ev);
                true
            }
        }
        let d = SubsDispatch::new();
        let id = d.reserve();
        assert_eq!(id, 1);
        d.open(id, true, None); // durable, no sink yet: retain
        let ev = |seq_hint: u64| PendingEvent {
            ev: SubEvent {
                id,
                kind: SubKind::Component,
                u: 3,
                v: 3,
                root: 0,
                size: 2 + seq_hint,
                epoch: seq_hint,
                generation: 0,
                seq: 0,
            },
            at: Instant::now(),
        };
        assert!(d.deliver(&[ev(1), ev(2)], |_, _| {}).is_empty());
        // Re-attach after "restart": replay everything past seq 1.
        let sink = Arc::new(VecSink(Mutex::new(Vec::new()), Default::default()));
        assert_eq!(d.attach(id, 1, Arc::clone(&sink) as Arc<dyn SubSink>), Ok(2));
        let got = sink.0.lock().clone();
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].seq, got[0].epoch), (2, 2));
        // Live delivery now flows through the sink with fresh seqs.
        assert!(d.deliver(&[ev(3)], |_, _| {}).is_empty());
        assert_eq!(sink.0.lock().last().unwrap().seq, 3);
        // A dead ephemeral sink reports back for core cancellation.
        let id2 = d.reserve();
        let dead = Arc::new(VecSink(Mutex::new(Vec::new()), Default::default()));
        dead.1.store(true, std::sync::atomic::Ordering::Relaxed);
        d.open(id2, false, Some(dead));
        let mut e2 = ev(1);
        e2.ev.id = id2;
        assert_eq!(d.deliver(&[e2], |_, _| {}), vec![id2]);
        assert_eq!(d.attach(id2, 0, sink), Err(AttachError::Unknown));
    }
}
