//! The sharded connectivity engine: vertex-range shards, each backed by a
//! [`connectit::UfStreaming`] over its local id space, stitched together
//! by a shared union-find *spine* over the full vertex set.
//!
//! [`ShardedEngine`] is generic over the union-find kernel: the whole
//! batch loop — shard inserts, spine forwards, queries — is monomorphized
//! per variant through [`cc_unionfind::UfSpec::dispatch`]
//! ([`build_engine`]), so no per-edge virtual calls survive anywhere in
//! the service. The service layer holds the engine behind the
//! batch-granular [`Engine`] trait.
//!
//! ## Why this is correct
//!
//! The spine receives (a) every cross-shard edge and (b) every intra-shard
//! edge that was *novel* — not already connected inside its shard — at the
//! time its batch was classified. By induction over batches, the spine's
//! equivalence relation equals the whole graph's connectivity relation: an
//! intra-shard edge is dropped only when its endpoints were already
//! locally connected, i.e. joined by a chain of earlier intra-shard edges
//! each of which was novel when applied and therefore forwarded. Queries
//! are answered from the spine alone (with a same-shard local fast path);
//! component counts and label snapshots also come from the spine.
//!
//! ## Why this is fast
//!
//! Each shard's parent array covers only its vertex range, so the hot
//! arrays for intra-shard traffic are small and per-shard, and a shard
//! can absorb any number of *redundant* intra-shard edges without ever
//! touching shared state. Spine traffic from intra-shard edges is
//! amortized: an edge forwards at most once per batch (duplicates are
//! deduplicated at classification) and never again once its endpoints
//! are locally connected, so a shard's lifetime forwards track its
//! distinct novel edges — close to its merge count (`w - 1` for a shard
//! of `w` vertices, plus per-batch novel cycles) — not its raw edge
//! volume. Over-forwarding is harmless (the spine union is idempotent).
//!
//! ## Execution modes
//!
//! - [`ExecMode::WaitFree`] (paper Type (i)): the whole batch — updates
//!   *and* queries — runs in one parallel pass; queries use the
//!   linearizable root-recheck loop.
//! - [`ExecMode::Phased`] (paper Type (iii), Theorem 3): an update phase
//!   over all shards and the spine, a barrier, then a query phase. This is
//!   the configurable fast path that unlocks the Rem + `SpliceAtomic`
//!   variants, which forbid finds concurrent with unions.

use cc_unionfind::{KernelVisitor, UfSpec, UniteKernel};
use connectit::{StreamType, UfStreaming, Update};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Requested batch-execution discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Pick [`ExecMode::WaitFree`] when the variant supports concurrent
    /// finds, [`ExecMode::Phased`] otherwise.
    Auto,
    /// Type (i): one concurrent pass over the whole mixed batch.
    WaitFree,
    /// Type (iii): update phase, barrier, query phase.
    Phased,
}

/// Resolved execution discipline (no `Auto`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Type (i) single-pass execution.
    WaitFree,
    /// Type (iii) phase-concurrent execution.
    Phased,
}

impl std::fmt::Display for RunMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunMode::WaitFree => write!(f, "wait-free"),
            RunMode::Phased => write!(f, "phased"),
        }
    }
}

/// An invalid engine configuration.
#[derive(Debug)]
pub enum EngineError {
    /// `n` must be at least 1.
    EmptyVertexSet,
    /// Wait-free execution was requested for a variant whose finds may not
    /// run concurrently with unions (Rem + `SpliceAtomic`).
    NotWaitFreeCapable(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::EmptyVertexSet => write!(f, "engine needs at least one vertex"),
            EngineError::NotWaitFreeCapable(name) => {
                write!(f, "{name} is phase-concurrent only; use ExecMode::Phased or Auto")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Monotone operation counters, readable at any time.
#[derive(Default)]
pub struct EngineCounters {
    /// Insertions whose endpoints shared a shard.
    pub intra_inserts: AtomicU64,
    /// Insertions spanning two shards (applied to the spine directly).
    pub cross_inserts: AtomicU64,
    /// Intra-shard insertions also forwarded to the spine because they
    /// were novel at classification time.
    pub forwarded: AtomicU64,
}

/// The batch-granular, object-safe face of [`ShardedEngine`] the service
/// layer holds: one virtual call per batch (or per read-side operation),
/// with the monomorphized per-edge loops underneath.
pub trait Engine: Send + Sync {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;
    /// Number of shards.
    fn num_shards(&self) -> usize;
    /// The resolved execution discipline.
    fn mode(&self) -> RunMode;
    /// The union-find variant's display name.
    fn algorithm_name(&self) -> String;
    /// The monotone operation counters.
    fn counters(&self) -> &EngineCounters;
    /// Applies a mixed batch; returns query answers in order of appearance.
    fn process_batch(&self, batch: &[Update]) -> Vec<bool>;
    /// Linearizable connectivity query.
    fn connected(&self, u: u32, v: u32) -> bool;
    /// Current global component label of `v` (exact when quiescent).
    fn current_label(&self, v: u32) -> u32;
    /// Number of global connected components (exact when quiescent).
    fn num_components(&self) -> usize;
    /// Read-only snapshot of the global component labeling.
    fn labels_readonly(&self) -> Vec<u32>;
}

/// Builds a [`ShardedEngine`] for the runtime-selected variant `spec`,
/// monomorphized through the dispatcher and erased at batch granularity.
pub fn build_engine(
    n: usize,
    shards: usize,
    spec: &UfSpec,
    mode: ExecMode,
    seed: u64,
) -> Result<Box<dyn Engine>, EngineError> {
    struct Builder {
        n: usize,
        shards: usize,
        mode: ExecMode,
        seed: u64,
    }
    impl KernelVisitor for Builder {
        type Out = Result<Box<dyn Engine>, EngineError>;
        fn visit<K: UniteKernel>(self, kernel: K) -> Self::Out {
            // The dispatched kernel was built for (n, seed) — exactly the
            // spine's parameters; stateful kernels (locks, ranks, hooks)
            // are O(n) to build, so reuse it rather than rebuilding.
            let e = ShardedEngine::with_spine_kernel(
                self.n,
                self.shards,
                self.mode,
                self.seed,
                kernel,
            )?;
            Ok(Box::new(e))
        }
    }
    if n == 0 {
        // Reject before dispatch: kernels for n = 0 are legal but useless.
        return Err(EngineError::EmptyVertexSet);
    }
    spec.dispatch(n, seed, Builder { n, shards, mode, seed })
}

/// One classified batch operation (see [`ShardedEngine::process_batch`]).
enum EngineOp {
    /// Intra-shard insert, pre-translated to shard-local ids; `forward`
    /// carries the novelty verdict from classification.
    Local { shard: u32, lu: u32, lv: u32, gu: u32, gv: u32, forward: bool },
    /// Cross-shard insert, applied to the spine.
    Spine { u: u32, v: u32 },
    /// Connectivity query, answered into `slot`.
    Query { u: u32, v: u32, slot: u32 },
}

/// A sharded, batch-incremental connectivity structure over `n` vertices,
/// monomorphized over the union-find kernel `K`.
///
/// `process_batch` must not be called concurrently with itself (the
/// service layer's batch former serializes batches); in wait-free mode,
/// read-side methods ([`Engine::connected`], [`Engine::current_label`],
/// [`Engine::num_components`], [`Engine::labels_readonly`]) may run
/// concurrently with an in-flight batch.
pub struct ShardedEngine<K: UniteKernel> {
    n: usize,
    shard_width: usize,
    shards: Vec<UfStreaming<K>>,
    spine: UfStreaming<K>,
    mode: RunMode,
    counters: EngineCounters,
}

impl<K: UniteKernel> ShardedEngine<K> {
    /// Builds an engine over `n` vertices split into (at most) `shards`
    /// contiguous vertex ranges, every shard and the spine running the
    /// kernel `K` (built from `seed`).
    pub fn new(n: usize, shards: usize, mode: ExecMode, seed: u64) -> Result<Self, EngineError> {
        if n == 0 {
            return Err(EngineError::EmptyVertexSet);
        }
        Self::with_spine_kernel(n, shards, mode, seed, K::build(n, seed))
    }

    /// [`Self::new`] with the spine's kernel instance supplied by the
    /// caller (it must have been built for `(n, seed)`); the dispatch
    /// path uses this to avoid constructing a second O(n) kernel.
    pub fn with_spine_kernel(
        n: usize,
        shards: usize,
        mode: ExecMode,
        seed: u64,
        spine_kernel: K,
    ) -> Result<Self, EngineError> {
        if n == 0 {
            return Err(EngineError::EmptyVertexSet);
        }
        let shards = shards.clamp(1, n);
        let shard_width = n.div_ceil(shards);
        let num_shards = n.div_ceil(shard_width);
        let spine: UfStreaming<K> = UfStreaming::with_kernel(n, spine_kernel);
        let wait_free_capable = spine.stream_type() == StreamType::WaitFree;
        let mode = match mode {
            ExecMode::Auto => {
                if wait_free_capable {
                    RunMode::WaitFree
                } else {
                    RunMode::Phased
                }
            }
            ExecMode::WaitFree => {
                if !wait_free_capable {
                    return Err(EngineError::NotWaitFreeCapable(spine.algorithm_name()));
                }
                RunMode::WaitFree
            }
            ExecMode::Phased => RunMode::Phased,
        };
        let shards = (0..num_shards)
            .map(|s| {
                let lo = s * shard_width;
                let size = shard_width.min(n - lo);
                UfStreaming::new(size, seed.wrapping_add(1 + s as u64))
            })
            .collect();
        Ok(ShardedEngine {
            n,
            shard_width,
            shards,
            spine,
            mode,
            counters: EngineCounters::default(),
        })
    }

    #[inline]
    fn shard_of(&self, v: u32) -> usize {
        v as usize / self.shard_width
    }
}

impl<K: UniteKernel> Engine for ShardedEngine<K> {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn mode(&self) -> RunMode {
        self.mode
    }

    fn algorithm_name(&self) -> String {
        self.spine.algorithm_name()
    }

    fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// Applies a mixed batch; returns query answers in order of appearance.
    ///
    /// Queries may observe any subset of the same batch's insertions
    /// (operations within a batch are concurrent); state from previous
    /// batches is always fully visible.
    fn process_batch(&self, batch: &[Update]) -> Vec<bool> {
        // Classify on the (quiescent) pre-batch state: route every op,
        // translate intra-shard edges to local ids, and decide spine
        // forwarding via the local novelty check. `fwd_seen` suppresses
        // duplicate copies of the same novel edge within this batch (the
        // novelty check alone runs against the pre-batch state, so every
        // copy would otherwise look novel); it only ever holds this
        // batch's novel edges, so it stays small.
        let mut ops: Vec<EngineOp> = Vec::with_capacity(batch.len());
        let mut fwd_seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut num_queries = 0u32;
        let (mut intra, mut cross, mut fwd) = (0u64, 0u64, 0u64);
        for &op in batch {
            match op {
                Update::Insert(u, v) => {
                    let (su, sv) = (self.shard_of(u), self.shard_of(v));
                    if su == sv {
                        let lo = (su * self.shard_width) as u32;
                        let (lu, lv) = (u - lo, v - lo);
                        let forward = !self.shards[su].connected(lu, lv)
                            && fwd_seen.insert((u.min(v), u.max(v)));
                        intra += 1;
                        fwd += u64::from(forward);
                        ops.push(EngineOp::Local {
                            shard: su as u32,
                            lu,
                            lv,
                            gu: u,
                            gv: v,
                            forward,
                        });
                    } else {
                        cross += 1;
                        ops.push(EngineOp::Spine { u, v });
                    }
                }
                // The sharded engine is monotone; the service's generation
                // layer splits deletion-bearing batches before it ever
                // reaches this loop.
                Update::Delete(..) => panic!("{}", connectit::streaming::DELETE_UNSUPPORTED),
                Update::Query(u, v) => {
                    ops.push(EngineOp::Query { u, v, slot: num_queries });
                    num_queries += 1;
                }
            }
        }
        self.counters.intra_inserts.fetch_add(intra, Ordering::Relaxed);
        self.counters.cross_inserts.fetch_add(cross, Ordering::Relaxed);
        self.counters.forwarded.fetch_add(fwd, Ordering::Relaxed);

        let results: Vec<AtomicU8> = (0..num_queries).map(|_| AtomicU8::new(0)).collect();
        match self.mode {
            RunMode::WaitFree => {
                cc_parallel::parallel_for_chunks(ops.len(), |r| {
                    for i in r {
                        match ops[i] {
                            EngineOp::Local { shard, lu, lv, gu, gv, forward } => {
                                self.shards[shard as usize].insert(lu, lv);
                                if forward {
                                    self.spine.insert(gu, gv);
                                }
                            }
                            EngineOp::Spine { u, v } => self.spine.insert(u, v),
                            EngineOp::Query { u, v, slot } => {
                                let c = self.connected(u, v);
                                results[slot as usize].store(u8::from(c), Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            RunMode::Phased => {
                // Update phase: unions only, across shards and spine.
                cc_parallel::parallel_for_chunks(ops.len(), |r| {
                    for i in r {
                        match ops[i] {
                            EngineOp::Local { shard, lu, lv, gu, gv, forward } => {
                                self.shards[shard as usize].insert_phase_concurrent(lu, lv);
                                if forward {
                                    self.spine.insert_phase_concurrent(gu, gv);
                                }
                            }
                            EngineOp::Spine { u, v } => self.spine.insert_phase_concurrent(u, v),
                            EngineOp::Query { .. } => {}
                        }
                    }
                });
                // Barrier fell out of the parallel region; query phase.
                cc_parallel::parallel_for_chunks(ops.len(), |r| {
                    for i in r {
                        if let EngineOp::Query { u, v, slot } = ops[i] {
                            let c = self.connected(u, v);
                            results[slot as usize].store(u8::from(c), Ordering::Relaxed);
                        }
                    }
                });
            }
        }
        results.iter().map(|r| r.load(Ordering::Relaxed) == 1).collect()
    }

    /// Linearizable connectivity query. Same-shard pairs that are locally
    /// connected short-circuit without touching the spine; everything else
    /// is answered by the spine, whose relation equals global
    /// connectivity (see module docs). Safe concurrently with an
    /// in-flight wait-free batch.
    fn connected(&self, u: u32, v: u32) -> bool {
        let (su, sv) = (self.shard_of(u), self.shard_of(v));
        if su == sv {
            let lo = (su * self.shard_width) as u32;
            if self.shards[su].connected(u - lo, v - lo) {
                return true;
            }
        }
        self.spine.connected(u, v)
    }

    fn current_label(&self, v: u32) -> u32 {
        self.spine.current_label(v)
    }

    fn num_components(&self) -> usize {
        self.spine.num_components()
    }

    fn labels_readonly(&self) -> Vec<u32> {
        self.spine.labels_readonly()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators::rmat_default;
    use cc_graph::stats::same_partition;
    use cc_unionfind::{oracle_labels, FindKind, SpliceKind, UniteKind};

    fn splice_spec() -> UfSpec {
        UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Naive)
    }

    #[test]
    fn mode_resolution() {
        let e = build_engine(8, 2, &UfSpec::fastest(), ExecMode::Auto, 0).expect("ok");
        assert_eq!(e.mode(), RunMode::WaitFree);
        let e = build_engine(8, 2, &splice_spec(), ExecMode::Auto, 0).expect("ok");
        assert_eq!(e.mode(), RunMode::Phased);
        let e = build_engine(8, 2, &UfSpec::fastest(), ExecMode::Phased, 0).expect("ok");
        assert_eq!(e.mode(), RunMode::Phased);
        assert!(build_engine(8, 2, &splice_spec(), ExecMode::WaitFree, 0).is_err());
        assert!(build_engine(0, 2, &UfSpec::fastest(), ExecMode::Auto, 0).is_err());
    }

    #[test]
    fn engine_reports_algorithm_name() {
        let e = build_engine(8, 2, &UfSpec::fastest(), ExecMode::Auto, 0).expect("ok");
        assert_eq!(e.algorithm_name(), UfSpec::fastest().name());
    }

    #[test]
    fn shard_count_clamps_to_n() {
        let e = build_engine(3, 16, &UfSpec::fastest(), ExecMode::Auto, 0).expect("ok");
        assert!(e.num_shards() <= 3);
        e.process_batch(&[Update::Insert(0, 2)]);
        assert!(e.connected(0, 2));
    }

    #[test]
    fn matches_oracle_across_shard_counts_and_modes() {
        let el = rmat_default(11, 14_000, 5);
        let n = el.num_vertices;
        let expect = oracle_labels(n, &el.edges);
        for shards in [1usize, 3, 4, 8] {
            for (spec, mode) in [
                (UfSpec::fastest(), ExecMode::WaitFree),
                (UfSpec::fastest(), ExecMode::Phased),
                (splice_spec(), ExecMode::Phased),
                (
                    UfSpec::rem(UniteKind::RemLock, SpliceKind::SplitOne, FindKind::Naive),
                    ExecMode::WaitFree,
                ),
            ] {
                let e = build_engine(n, shards, &spec, mode, 42).expect("ok");
                for chunk in el.edges.chunks(997) {
                    let batch: Vec<Update> =
                        chunk.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
                    e.process_batch(&batch);
                }
                assert!(
                    same_partition(&expect, &e.labels_readonly()),
                    "shards={shards} spec={} mode={mode:?}",
                    spec.name()
                );
                assert_eq!(
                    e.num_components(),
                    cc_graph::stats::count_distinct_labels(&expect),
                    "shards={shards}"
                );
            }
        }
    }

    #[test]
    fn generic_engine_direct_use() {
        // The monomorphized engine is usable without the boxed erasure.
        let e = ShardedEngine::<cc_unionfind::FastestKernel>::new(64, 4, ExecMode::Auto, 0)
            .expect("ok");
        e.process_batch(&[Update::Insert(0, 63), Update::Insert(1, 2)]);
        assert!(e.connected(0, 63));
        assert!(!e.connected(0, 1));
    }

    #[test]
    fn cross_shard_chains_answer_correctly() {
        // A path that zig-zags across every shard boundary.
        let n = 64usize;
        let e = build_engine(n, 4, &UfSpec::fastest(), ExecMode::Auto, 0).expect("ok");
        let mut batch = Vec::new();
        for i in 0..(n as u32 - 17) {
            batch.push(Update::Insert(i, i + 17)); // 17 and 16-wide shards: mostly cross
        }
        let answers = e.process_batch(&batch);
        assert!(answers.is_empty());
        // Everything reachable by +17 steps from 0 is one component.
        assert!(e.connected(0, 17));
        assert!(e.connected(0, 34));
        assert!(e.connected(17, 51));
        let c = e.counters();
        assert!(c.cross_inserts.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn forwarding_is_amortized() {
        let n = 1024usize;
        let e = build_engine(n, 4, &UfSpec::fastest(), ExecMode::Auto, 0).expect("ok");
        // Hammer one shard with the same spanning path many times over.
        for _ in 0..10 {
            let batch: Vec<Update> = (0..255u32).map(|i| Update::Insert(i, i + 1)).collect();
            e.process_batch(&batch);
        }
        let c = e.counters();
        assert_eq!(c.intra_inserts.load(Ordering::Relaxed), 2550);
        // Only the first pass was novel; later passes forward nothing.
        assert_eq!(c.forwarded.load(Ordering::Relaxed), 255);
        assert!(e.connected(0, 255));
        assert!(!e.connected(0, 256));
    }

    #[test]
    fn duplicate_edges_within_a_batch_forward_once() {
        let e = build_engine(64, 4, &UfSpec::fastest(), ExecMode::Auto, 0).expect("ok");
        // 20 copies of the same novel intra-shard edge in one batch: the
        // pre-state novelty check alone would forward all of them.
        let batch: Vec<Update> = (0..20).map(|_| Update::Insert(2, 3)).collect();
        e.process_batch(&batch);
        let c = e.counters();
        assert_eq!(c.intra_inserts.load(Ordering::Relaxed), 20);
        assert_eq!(c.forwarded.load(Ordering::Relaxed), 1);
        assert!(e.connected(2, 3));
    }

    #[test]
    fn mixed_batches_cross_batch_determinism() {
        let e = build_engine(40, 4, &UfSpec::fastest(), ExecMode::Auto, 0).expect("ok");
        e.process_batch(&[Update::Insert(0, 39), Update::Insert(10, 20)]);
        let r = e.process_batch(&[
            Update::Query(0, 39),
            Update::Query(39, 10),
            Update::Insert(20, 39),
            Update::Query(5, 6),
        ]);
        assert_eq!(r.len(), 3);
        assert!(r[0]);
        assert!(!r[2]);
        let r2 = e.process_batch(&[Update::Query(0, 10), Update::Query(0, 5)]);
        assert_eq!(r2, vec![true, false]);
        assert_eq!(e.current_label(0), e.current_label(10));
    }
}
