//! The deletion-capable **generation engine**: epoch-partitioned
//! connectivity over the insert-only [`crate::engine::ShardedEngine`].
//!
//! The streaming stack underneath is *monotone* — labels only coarsen, so
//! a deletion can never be applied in place. This module makes deletions
//! first-class anyway by partitioning time into **generations**:
//!
//! - **Inserts** apply incrementally to the live generation's engine,
//!   exactly as before (the whole monomorphized fast path is reused).
//! - **Deletes** classify through [`connectit::LivenessTracker`] against
//!   a maintained spanning forest. Deleting an absent or non-forest
//!   (cycle) edge cannot change connectivity and is *free* — no rebuild,
//!   just a counter. Only a *forest* deletion seals the current
//!   generation: its labels are frozen, the engine is marked dirty, and a
//!   background worker rebuilds a fresh generation from the surviving
//!   edge set (k-out-sampled [`mod@connectit::spanning_forest`] keeps the
//!   recompute cheap — the new engine replays a forest, not the full
//!   multiset).
//! - **Queries** during a rebuild are answered from the last *sealed*
//!   generation's labels — consistent, honestly stale, and reported as
//!   such: the `(epoch, generation)` pair extends the service's
//!   WAIT/EPOCH staleness contract (see `DESIGN.md` §9).
//!
//! Inserts and deletes that land while a rebuild is in flight are not
//! lost: inserts accumulate in the tracker *and* a pending list drained
//! into the new generation at the swap; a delete of a live edge
//! invalidates the in-flight edge snapshot and conservatively re-triggers
//! the rebuild (the stale forest cannot prove the edge redundant).
//!
//! Readers never block on a rebuild: they clone an `Arc`'d `View`
//! (live engine or sealed labels) under a short pointer lock, so the
//! wait-free read path of Type (i) engines is preserved.

use crate::analytics::{Analytics, AnalyticsView};
use crate::engine::{build_engine, Engine, ExecMode, RunMode};
use crate::obs::{Event, Obs};
use crate::subs::{PendingEvent, SubInfo, SubKind, SubsCore};
use cc_unionfind::UfSpec;
use connectit::{
    spanning_forest, supports_spanning_forest, DeleteClass, FinishMethod, InsertClass,
    LivenessTracker, SamplingMethod, Update,
};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Chunk size for replaying a rebuilt forest into a fresh engine.
const REBUILD_CHUNK: usize = 1 << 16;

/// Monotone telemetry counters of the generation engine. The
/// `deletes_nonforest` counter is the load-bearing one: the test harness
/// asserts that cycle-edge deletions re-converge with **zero** rebuilds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenCounters {
    /// Completed (committed) generation rebuilds.
    pub rebuilds: u64,
    /// Deletions of live non-forest (cycle) edges: free, by construction.
    pub deletes_nonforest: u64,
    /// Deletions of absent (or already-dead, or self-loop) edges: no-ops.
    pub deletes_absent: u64,
    /// Deletions of forest edges (or conservatively-forest while dirty):
    /// each seals a generation or re-triggers the in-flight rebuild.
    pub deletes_forest: u64,
}

/// A point-in-time view of the generation state (the `GEN` verb).
#[derive(Clone, Copy, Debug)]
pub struct GenInfo {
    /// The generation queries are currently served from.
    pub generation: u64,
    /// Whether a rebuild is owed or in flight (queries are sealed).
    pub dirty: bool,
    /// Telemetry counters.
    pub counters: GenCounters,
}

/// The sealed labeling of a generation: what queries see while the next
/// generation is being rebuilt.
struct Sealed {
    labels: Vec<u32>,
    num_components: usize,
}

/// What the read path sees: either the live engine of a clean generation
/// or the sealed labels of the last one. Swapped atomically (an `Arc`
/// behind a pointer lock), so readers never wait on a rebuild.
enum View {
    Live { engine: Arc<dyn Engine>, generation: u64 },
    Sealed { sealed: Arc<Sealed>, generation: u64 },
}

impl View {
    fn generation(&self) -> u64 {
        match self {
            View::Live { generation, .. } | View::Sealed { generation, .. } => *generation,
        }
    }
}

/// Writer-side state: the live engine, the liveness tracker, and the
/// rebuild bookkeeping. Held by the batch former and the rebuild worker.
struct WriteState {
    engine: Arc<dyn Engine>,
    tracker: LivenessTracker,
    sealed: Option<Arc<Sealed>>,
    /// Inserts that arrived while a rebuild was in flight; drained into
    /// the fresh generation at the swap (idempotent: the rebuild's edge
    /// snapshot may already contain a prefix of them).
    pending: Vec<(u32, u32)>,
    /// A live edge was deleted while a rebuild was in flight: the edge
    /// snapshot that rebuild is computing over is invalid, go again.
    retrigger: bool,
    dirty: bool,
    generation: u64,
    counters: GenCounters,
    /// Shard-counter totals of retired generations' engines
    /// (`[intra, cross, forwarded]`), so service stats stay monotone
    /// across rebuilds.
    retired: [u64; 3],
    /// The analytics plane's writer state: every clean-path merge folds
    /// its delta in here; a commit resyncs it wholesale (DESIGN.md §12).
    analytics: Analytics,
    /// The subscription plane's trigger index: consumes the same merge
    /// stream as `analytics`, buffers fires for the batcher to stamp and
    /// dispatch (DESIGN.md §13).
    subs: SubsCore,
}

struct Shared {
    n: usize,
    shards: usize,
    spec: UfSpec,
    mode: ExecMode,
    seed: u64,
    /// Test knob: hold every background rebuild open for at least this
    /// long, making the dirty window deterministically observable.
    rebuild_hold: Duration,
    mx: Mutex<WriteState>,
    /// Signaled on both clean→dirty (wakes the rebuild worker) and
    /// dirty→clean (wakes `quiesce` waiters) transitions.
    cv: Condvar,
    view: Mutex<Arc<View>>,
    /// The published analytics view (`TOPK`/`HIST`/`SIZE`), swapped
    /// whole like `view` so analytical reads never take `mx`.
    aview: Mutex<Arc<AnalyticsView>>,
    /// High-water mark of the epochs handed to
    /// [`GenerationEngine::publish_analytics`]; a publication deferred
    /// by a dirty window is republished at this epoch by the commit.
    published_epoch: AtomicU64,
    shutdown: AtomicBool,
    /// Metrics/trace sink: rebuild lifecycle and delete-classification
    /// counters are mirrored into the registry at the moment they change
    /// (under the writer lock already held), so a `METRICS` scrape never
    /// needs `mx` to report on this engine.
    obs: Option<Arc<Obs>>,
}

impl Shared {
    /// Freezes the current labels as the sealed generation and marks the
    /// engine dirty; the rebuild worker takes it from here.
    fn seal(&self, st: &mut WriteState) {
        let labels = st.engine.labels_readonly();
        // The delta-maintained count replaces the old O(n)
        // `count_distinct_labels` scan: the engine-bound run was flushed
        // before the delete classified, so engine labels, tracker mirror
        // and analytics aggregates all describe the same partition here.
        let num_components = st.analytics.components() as usize;
        debug_assert_eq!(
            num_components,
            cc_graph::stats::count_distinct_labels(&labels),
            "analytics delta count diverged from the sealed labels"
        );
        let sealed = Arc::new(Sealed { labels, num_components });
        st.sealed = Some(Arc::clone(&sealed));
        st.dirty = true;
        *self.view.lock() = Arc::new(View::Sealed { sealed, generation: st.generation });
        // Freeze the analytics view at the seal-time partition; deltas
        // are suspended until the commit resyncs wholesale.
        self.publish_analytics_locked(st, true);
        if let Some(o) = &self.obs {
            o.metrics.rebuilds_sealed_total.inc();
            o.metrics.gen_dirty.set(1);
            o.recorder.record(Event::RebuildSealed { generation: st.generation });
        }
        self.cv.notify_all();
    }

    /// Swaps in a fresh [`AnalyticsView`] of the writer aggregates,
    /// stamped with the epoch high-water mark, and mirrors the live
    /// component count into the metrics gauge. Caller holds `mx`.
    fn publish_analytics_locked(&self, st: &WriteState, sealed: bool) {
        let epoch = self.published_epoch.load(Ordering::Acquire);
        *self.aview.lock() = Arc::new(st.analytics.view(epoch, st.generation, sealed));
        if let Some(o) = &self.obs {
            o.metrics.components.set(st.analytics.components());
        }
    }

    /// Builds the next generation from a snapshot of the live edge set:
    /// a k-out-sampled spanning forest (the cheap part — the fresh engine
    /// replays at most `n - 1` edges, not the full multiset), then a
    /// fresh sharded engine seeded with it. Runs outside every lock.
    fn build_generation(&self, edges: &[(u32, u32)]) -> (Vec<(u32, u32)>, Arc<dyn Engine>) {
        let g = cc_graph::build_undirected(self.n, edges);
        // Rem+Splice destroys edges' identity mid-phase and cannot
        // witness a forest; fall back to the fastest supported variant
        // for the *forest computation only* — the engine itself is still
        // built with the configured spec.
        let configured = FinishMethod::UnionFind(self.spec);
        let finish = if supports_spanning_forest(&configured) {
            configured
        } else {
            FinishMethod::UnionFind(UfSpec::fastest())
        };
        let forest = spanning_forest(&g, &SamplingMethod::kout_default(), &finish, self.seed);
        let fresh: Arc<dyn Engine> = Arc::from(
            build_engine(self.n, self.shards, &self.spec, self.mode, self.seed)
                .expect("generation rebuild: engine parameters were validated at startup"),
        );
        for chunk in forest.chunks(REBUILD_CHUNK) {
            let batch: Vec<Update> = chunk.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
            fresh.process_batch(&batch);
        }
        (forest, fresh)
    }

    /// Folds the (about-to-retire) engine's shard counters into the
    /// monotone totals.
    fn retire_engine_counters(st: &mut WriteState) {
        let c = st.engine.counters();
        st.retired[0] += c.intra_inserts.load(Ordering::Relaxed);
        st.retired[1] += c.cross_inserts.load(Ordering::Relaxed);
        st.retired[2] += c.forwarded.load(Ordering::Relaxed);
    }
}

/// The background rebuild loop (one dedicated thread per service).
fn run_rebuilder(shared: &Arc<Shared>) {
    loop {
        let edges;
        {
            let mut st = shared.mx.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if st.dirty {
                    break;
                }
                shared.cv.wait(&mut st);
            }
            st.retrigger = false;
            edges = st.tracker.edge_list();
        }
        if !shared.rebuild_hold.is_zero() {
            // Sleep in slices so a shutdown is not pinned behind a long
            // hold (tests use holds of many seconds to freeze a dirty
            // window open).
            let until = std::time::Instant::now() + shared.rebuild_hold;
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let left = until.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    break;
                }
                std::thread::sleep(left.min(Duration::from_millis(10)));
            }
        }
        let build_start = Instant::now();
        let (forest, fresh) = shared.build_generation(&edges);
        let mut st = shared.mx.lock();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if st.retrigger {
            // A live edge died mid-rebuild: the snapshot (and its forest)
            // may span a dead edge. Discard and rebuild from the current
            // edge set; `pending` stays (the drain below is idempotent).
            continue;
        }
        st.tracker.adopt_forest(&forest);
        let drained: Vec<(u32, u32)> = std::mem::take(&mut st.pending);
        let num_drained = drained.len() as u64;
        let mut merges: Vec<Update> = Vec::new();
        for (u, v) in drained {
            if st.tracker.reclassify_live(u, v) {
                merges.push(Update::Insert(u, v));
            }
        }
        if !merges.is_empty() {
            fresh.process_batch(&merges);
        }
        Shared::retire_engine_counters(&mut st);
        st.engine = fresh;
        st.generation += 1;
        st.dirty = false;
        st.sealed = None;
        st.counters.rebuilds += 1;
        *shared.view.lock() =
            Arc::new(View::Live { engine: Arc::clone(&st.engine), generation: st.generation });
        // The deletion rebuild invalidated every delta: resync the
        // analytics plane wholesale from the fresh labels (the drained
        // pending merges are already in them) and republish at the
        // epoch high-water mark the dirty window deferred.
        let labels = st.engine.labels_readonly();
        st.analytics.resync(&labels);
        // Re-arm the trigger index against the fresh labeling: pending
        // pairs the drained inserts connected fire here (stamped at the
        // deferred epoch high-water mark), and every component
        // subscription observes the new generation's identity change.
        let commit_epoch = shared.published_epoch.load(Ordering::Acquire);
        let gen = st.generation;
        st.subs.on_commit(&labels, gen, Some(commit_epoch), true);
        shared.publish_analytics_locked(&st, false);
        if let Some(o) = &shared.obs {
            o.metrics.rebuilds_committed_total.inc();
            o.metrics.generation.set_max(st.generation);
            o.metrics.gen_dirty.set(0);
            o.metrics.rebuild_duration_ns.record_duration(build_start.elapsed());
            o.metrics.rebuild_drained_ops.record(num_drained);
            o.recorder.record(Event::RebuildCommitted {
                generation: st.generation,
                drained: num_drained,
            });
        }
        shared.cv.notify_all();
    }
}

/// The deletion-capable engine (see module docs). One per service;
/// dropping it stops and joins the rebuild worker.
pub struct GenerationEngine {
    shared: Arc<Shared>,
    resolved_mode: RunMode,
    algorithm: String,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl GenerationEngine {
    /// Builds an empty generation engine (generation 0, clean) and spawns
    /// its rebuild worker. The error string carries the rejected
    /// configuration's reason (see [`crate::engine::EngineError`]).
    /// `obs`, when given, receives rebuild lifecycle events and the
    /// delete-classification counters as they happen.
    pub fn new(
        n: usize,
        shards: usize,
        spec: &UfSpec,
        mode: ExecMode,
        seed: u64,
        rebuild_hold: Duration,
        obs: Option<Arc<Obs>>,
    ) -> Result<GenerationEngine, String> {
        let engine: Arc<dyn Engine> =
            Arc::from(build_engine(n, shards, spec, mode, seed).map_err(|e| e.to_string())?);
        let resolved_mode = engine.mode();
        let algorithm = engine.algorithm_name();
        let view = Arc::new(View::Live { engine: Arc::clone(&engine), generation: 0 });
        let analytics = Analytics::fresh(n);
        let aview = Arc::new(analytics.view(0, 0, false));
        let shared = Arc::new(Shared {
            n,
            shards,
            spec: *spec,
            mode,
            seed,
            rebuild_hold,
            mx: Mutex::new(WriteState {
                engine,
                tracker: LivenessTracker::new(n),
                sealed: None,
                pending: Vec::new(),
                retrigger: false,
                dirty: false,
                generation: 0,
                counters: GenCounters::default(),
                retired: [0; 3],
                analytics,
                subs: SubsCore::new(n),
            }),
            cv: Condvar::new(),
            view: Mutex::new(view),
            aview: Mutex::new(aview),
            published_epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            obs,
        });
        let w_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("cc-gen-rebuild".into())
            .spawn(move || run_rebuilder(&w_shared))
            .map_err(|e| format!("failed to spawn rebuild worker: {e}"))?;
        Ok(GenerationEngine { shared, resolved_mode, algorithm, worker: Some(worker) })
    }

    fn view(&self) -> Arc<View> {
        Arc::clone(&self.shared.view.lock())
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.shared.n
    }

    /// Number of vertex-range shards per generation.
    pub fn num_shards(&self) -> usize {
        self.shared.shards
    }

    /// The resolved execution discipline (stable across rebuilds: every
    /// generation is built from the same spec).
    pub fn mode(&self) -> RunMode {
        self.resolved_mode
    }

    /// The union-find variant's display name.
    pub fn algorithm_name(&self) -> String {
        self.algorithm.clone()
    }

    /// Applies a mixed insert/delete/query batch; returns query answers
    /// in order of appearance. Inserts and queries between deletions run
    /// through the live engine with the usual concurrent-batch semantics;
    /// each deletion is a sequential cut point (operations before it see
    /// the pre-delete state, operations after it the post-delete state).
    /// While dirty, inserts accumulate for the next generation and
    /// queries answer from the sealed one.
    pub fn process_batch(&self, batch: &[Update]) -> Vec<bool> {
        self.process_batch_tagged(batch).into_iter().map(|(a, _)| a).collect()
    }

    /// [`Self::process_batch`], additionally tagging each answer with the
    /// sealed generation it was served from (`Some(gen)` iff the engine
    /// was dirty at the moment that query was answered, `None` for exact
    /// live-engine answers). The tag is decided under the same lock that
    /// answered the query, so it can never disagree with the answer's
    /// source the way a separate dirty-flag read could.
    pub fn process_batch_tagged(&self, batch: &[Update]) -> Vec<(bool, Option<u64>)> {
        let mut st = self.shared.mx.lock();
        let mut answers: Vec<(bool, Option<u64>)> = Vec::new();
        self.apply_batch_locked(&mut st, batch, &mut answers);
        answers
    }

    /// The batch loop proper, with the writer lock already held. Shared
    /// by [`Self::process_batch_tagged`] and
    /// [`Self::converge_to_edge_set`].
    fn apply_batch_locked(
        &self,
        st: &mut WriteState,
        batch: &[Update],
        answers: &mut Vec<(bool, Option<u64>)>,
    ) {
        let mut run: Vec<Update> = Vec::new();
        for &op in batch {
            match op {
                Update::Insert(u, v) => {
                    let class = st.tracker.insert(u, v);
                    if st.dirty {
                        // Deltas are suspended while sealed (the stale
                        // tracker classifies everything `Cycle` anyway);
                        // the commit's resync covers these.
                        st.pending.push((u, v));
                    } else {
                        if class == InsertClass::Merge {
                            // The one point where two components join:
                            // fold the delta into the analytics plane and
                            // fire any subscription watching either side.
                            st.analytics.merge(u, v);
                            let gen = st.generation;
                            st.subs.merge(u, v, gen);
                            if let Some(o) = &self.shared.obs {
                                o.metrics.components.set(st.analytics.components());
                            }
                        }
                        run.push(op);
                    }
                }
                Update::Query(u, v) => {
                    if st.dirty {
                        let s = st.sealed.as_ref().expect("dirty implies a sealed generation");
                        answers.push((
                            s.labels[u as usize] == s.labels[v as usize],
                            Some(st.generation),
                        ));
                    } else {
                        run.push(op);
                    }
                }
                Update::Delete(u, v) => {
                    // Flush the engine-bound run first, so classification
                    // (and a possible seal) sees a consistent engine.
                    flush_run(st, &mut run, answers);
                    let obs = self.shared.obs.as_deref();
                    match st.tracker.delete(u, v) {
                        DeleteClass::Absent => {
                            st.counters.deletes_absent += 1;
                            if let Some(o) = obs {
                                o.metrics.deletes_absent_total.inc();
                            }
                        }
                        DeleteClass::NonForest => {
                            st.counters.deletes_nonforest += 1;
                            if let Some(o) = obs {
                                o.metrics.deletes_nonforest_total.inc();
                            }
                        }
                        DeleteClass::Forest => {
                            st.counters.deletes_forest += 1;
                            if let Some(o) = obs {
                                o.metrics.deletes_forest_total.inc();
                            }
                            if st.dirty {
                                st.retrigger = true;
                            } else {
                                self.shared.seal(st);
                            }
                        }
                    }
                }
            }
        }
        flush_run(st, &mut run, answers);
    }

    /// Makes the live edge set exactly `target` (self-loops excluded —
    /// they are never live): edges live here but absent from `target` are
    /// deleted, edges in `target` but not live here are inserted, all
    /// under one writer lock. Deletions classify as usual, so retracting
    /// a forest edge seals the current generation and schedules a
    /// rebuild. Returns `(inserts, deletes)` applied.
    ///
    /// This is the follower's snapshot-bootstrap primitive: a replica
    /// whose missed deletions were pruned from the primary's WAL cannot
    /// learn them as operations, but the snapshot states the exact live
    /// set — converging to it retracts every stale edge in one step.
    pub fn converge_to_edge_set(&self, target: &[(u32, u32)]) -> (u64, u64) {
        let mut st = self.shared.mx.lock();
        let target_set: std::collections::HashSet<u64> = target
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| connectit::canon_edge(u, v))
            .collect();
        let mut ops: Vec<Update> = Vec::new();
        for (u, v) in st.tracker.edge_list() {
            if !target_set.contains(&connectit::canon_edge(u, v)) {
                ops.push(Update::Delete(u, v));
            }
        }
        let deletes = ops.len() as u64;
        for &e in &target_set {
            let (u, v) = connectit::uncanon_edge(e);
            if !st.tracker.contains(u, v) {
                ops.push(Update::Insert(u, v));
            }
        }
        let inserts = ops.len() as u64 - deletes;
        let mut answers = Vec::new();
        self.apply_batch_locked(&mut st, &ops, &mut answers);
        (inserts, deletes)
    }

    /// Connectivity query against the serving view (live engine, or the
    /// sealed labels while a rebuild is in flight). Never blocks on a
    /// rebuild.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.connected_with_gen(u, v).0
    }

    /// [`Self::connected`], tagged with the sealed generation the answer
    /// came from (`Some(gen)` iff a rebuild was in flight). Both halves
    /// come from the *same* view read, so the tag is atomic with the
    /// answer — a seal or commit between two separate reads cannot
    /// mislabel it.
    pub fn connected_with_gen(&self, u: u32, v: u32) -> (bool, Option<u64>) {
        match &*self.view() {
            View::Live { engine, .. } => (engine.connected(u, v), None),
            View::Sealed { sealed, generation } => {
                (sealed.labels[u as usize] == sealed.labels[v as usize], Some(*generation))
            }
        }
    }

    /// [`Self::connected_with_gen`] over many pairs against **one** view
    /// acquire: every answer in the result comes from the same serving
    /// view, which is what makes cross-connection read coalescing in the
    /// network shards both cheap and consistent.
    pub fn connected_many_with_gen(&self, pairs: &[(u32, u32)]) -> Vec<(bool, Option<u64>)> {
        match &*self.view() {
            View::Live { engine, .. } => {
                pairs.iter().map(|&(u, v)| (engine.connected(u, v), None)).collect()
            }
            View::Sealed { sealed, generation } => pairs
                .iter()
                .map(|&(u, v)| {
                    (sealed.labels[u as usize] == sealed.labels[v as usize], Some(*generation))
                })
                .collect(),
        }
    }

    /// Component label of `v` in the serving view.
    pub fn current_label(&self, v: u32) -> u32 {
        match &*self.view() {
            View::Live { engine, .. } => engine.current_label(v),
            View::Sealed { sealed, .. } => sealed.labels[v as usize],
        }
    }

    /// Number of components in the serving view.
    pub fn num_components(&self) -> usize {
        match &*self.view() {
            View::Live { engine, .. } => engine.num_components(),
            View::Sealed { sealed, .. } => sealed.num_components,
        }
    }

    /// Read-only labeling of the serving view.
    pub fn labels_readonly(&self) -> Vec<u32> {
        match &*self.view() {
            View::Live { engine, .. } => engine.labels_readonly(),
            View::Sealed { sealed, .. } => sealed.labels.clone(),
        }
    }

    /// The serving generation and telemetry counters (the `GEN` verb).
    pub fn info(&self) -> GenInfo {
        let st = self.shared.mx.lock();
        GenInfo { generation: st.generation, dirty: st.dirty, counters: st.counters }
    }

    /// The serving generation number, read off the view — never contends
    /// with the writer lock.
    pub fn generation(&self) -> u64 {
        self.view().generation()
    }

    /// Whether a rebuild is owed or in flight.
    pub fn is_dirty(&self) -> bool {
        self.shared.mx.lock().dirty
    }

    /// Number of live edges in the tracker.
    pub fn num_live_edges(&self) -> usize {
        self.shared.mx.lock().tracker.num_edges()
    }

    /// Blocks until the engine is clean (no rebuild owed or in flight);
    /// returns the generation reached, or `Err` with the generation still
    /// serving when the timeout lapses or the engine shuts down.
    pub fn quiesce(&self, timeout: Duration) -> Result<u64, u64> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.mx.lock();
        loop {
            if !st.dirty {
                return Ok(st.generation);
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(st.generation);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(st.generation);
            }
            self.shared.cv.wait_for(&mut st, deadline - now);
        }
    }

    /// A consistent `(labels, live edge list)` pair for durable
    /// snapshots — only while clean. While dirty the tracker runs ahead
    /// of the sealed labels, so durable and replicated snapshots are
    /// deferred (see the sealed-generation audit in `DESIGN.md` §9).
    #[allow(clippy::type_complexity)]
    pub fn snapshot_parts(&self) -> Option<(Vec<u32>, Vec<(u32, u32)>)> {
        let st = self.shared.mx.lock();
        if st.dirty {
            return None;
        }
        Some((st.engine.labels_readonly(), st.tracker.edge_list()))
    }

    /// Monotone shard-counter totals `(intra, cross, forwarded)` summed
    /// across all generations' engines.
    pub fn shard_counters(&self) -> (u64, u64, u64) {
        let st = self.shared.mx.lock();
        let c = st.engine.counters();
        (
            st.retired[0] + c.intra_inserts.load(Ordering::Relaxed),
            st.retired[1] + c.cross_inserts.load(Ordering::Relaxed),
            st.retired[2] + c.forwarded.load(Ordering::Relaxed),
        )
    }

    /// Recovery: feeds one replayed WAL batch into the *tracker only*
    /// (queries are skipped; classification counters stay at zero — they
    /// are live-traffic telemetry). The engine is materialized once at
    /// [`Self::finish_recovery`], so a deletion-bearing history costs one
    /// rebuild total, not one per forest delete.
    pub fn recover_ops(&self, ops: &[Update]) {
        let mut st = self.shared.mx.lock();
        for &op in ops {
            match op {
                Update::Insert(u, v) => {
                    st.tracker.insert(u, v);
                }
                Update::Delete(u, v) => {
                    st.tracker.delete(u, v);
                }
                Update::Query(..) => {}
            }
        }
    }

    /// Recovery: feeds a durable snapshot's live edge set into the
    /// tracker (the edge multiset *is* the state — labels follow from
    /// it at [`Self::finish_recovery`]).
    pub fn recover_edges(&self, edges: &[(u32, u32)]) {
        let mut st = self.shared.mx.lock();
        for &(u, v) in edges {
            st.tracker.insert(u, v);
        }
    }

    /// Finishes recovery: materializes generation 0's engine from the
    /// recovered edge set (one spanning-forest rebuild, regardless of how
    /// many deletions the history held) and leaves the engine clean.
    pub fn finish_recovery(&self) {
        let edges = { self.shared.mx.lock().tracker.edge_list() };
        if edges.is_empty() {
            let mut st = self.shared.mx.lock();
            st.tracker.rebuild_forest();
            if !st.subs.is_empty() {
                let labels = st.engine.labels_readonly();
                let gen = st.generation;
                st.subs.on_commit(&labels, gen, None, true);
            }
            return;
        }
        let (forest, fresh) = self.shared.build_generation(&edges);
        let mut st = self.shared.mx.lock();
        st.tracker.adopt_forest(&forest);
        Shared::retire_engine_counters(&mut st);
        st.engine = fresh;
        *self.shared.view.lock() =
            Arc::new(View::Live { engine: Arc::clone(&st.engine), generation: st.generation });
        // Recovery bypassed the per-insert delta hook (the tracker alone
        // absorbed the history): resync the analytics plane from the
        // materialized labels and publish the initial view.
        let labels = st.engine.labels_readonly();
        st.analytics.resync(&labels);
        // Recovered durable subscriptions arm here, against the
        // materialized labeling: a pending pair the history connected
        // fires (stamped at the first post-recovery drain — a possible
        // duplicate of a pre-crash delivery, which the per-subscription
        // sequence numbers let clients absorb), and component
        // subscriptions observe the restart's identity reset.
        let gen = st.generation;
        st.subs.on_commit(&labels, gen, None, true);
        self.shared.publish_analytics_locked(&st, false);
    }

    /// Publishes the analytics view at batch epoch `epoch` (a
    /// high-water mark — concurrent callers cannot regress it). While a
    /// rebuild is in flight this is a no-op beyond recording the epoch:
    /// the view stays frozen (sealed) at the seal-time partition and the
    /// commit republishes the resynced aggregates at the recorded mark.
    pub fn publish_analytics(&self, epoch: u64) {
        self.shared.published_epoch.fetch_max(epoch, Ordering::AcqRel);
        let st = self.shared.mx.lock();
        if st.dirty {
            return;
        }
        self.shared.publish_analytics_locked(&st, false);
    }

    /// The current analytics view — one `Arc` clone, never contends
    /// with the writer lock (`TOPK`/`HIST`/`SIZE` read path).
    pub fn analytics_view(&self) -> Arc<AnalyticsView> {
        Arc::clone(&self.shared.aview.lock())
    }

    /// A consistent `(labels, num_components)` pair for snapshot
    /// publication: the count is the delta-maintained one (sealed
    /// generations cached it at seal time), so no O(n) label scan runs
    /// on the publish path.
    pub fn labels_with_components(&self) -> (Vec<u32>, usize) {
        let st = self.shared.mx.lock();
        if let Some(s) = &st.sealed {
            (s.labels.clone(), s.num_components)
        } else {
            (st.engine.labels_readonly(), st.analytics.components() as usize)
        }
    }

    /// The delta-maintained live component count.
    pub fn components_live(&self) -> u64 {
        self.shared.mx.lock().analytics.components()
    }

    /// Registers a subscription under a caller-assigned id (the service
    /// reserves ids through its dispatch so a registration-time fire can
    /// never outrun its delivery channel). An already-connected pair
    /// fires immediately, stamped at the next drain.
    pub fn subs_register(
        &self,
        id: u64,
        kind: SubKind,
        u: u32,
        v: u32,
        durable: bool,
        registered_epoch: u64,
    ) {
        let mut st = self.shared.mx.lock();
        let labels = if st.subs.is_synced() { None } else { Some(st.engine.labels_readonly()) };
        let gen = st.generation;
        st.subs.register(id, kind, u, v, durable, registered_epoch, gen, labels.as_deref());
    }

    /// Recovery replay of a WAL `'S'` register record: the entry is
    /// stored but its trigger stays unarmed until
    /// [`Self::finish_recovery`] evaluates it against the materialized
    /// labeling (so replay order versus batch records cannot matter).
    pub fn subs_register_recovered(
        &self,
        id: u64,
        kind: SubKind,
        u: u32,
        v: u32,
        registered_epoch: u64,
    ) {
        let mut st = self.shared.mx.lock();
        let gen = st.generation;
        st.subs.register(id, kind, u, v, true, registered_epoch, gen, None);
    }

    /// Cancels a subscription. Returns its durability, or `None` for an
    /// unknown id.
    pub fn subs_cancel(&self, id: u64) -> Option<bool> {
        self.shared.mx.lock().subs.cancel(id)
    }

    /// Number of registered subscriptions.
    pub fn subs_len(&self) -> usize {
        self.shared.mx.lock().subs.len()
    }

    /// Lists every registered subscription, id-ascending (the `SUBS`
    /// verb).
    pub fn subs_list(&self) -> Vec<SubInfo> {
        self.shared.mx.lock().subs.list()
    }

    /// Drains buffered subscription fires, stamping unstamped ones with
    /// `epoch` (see [`crate::subs::SubsCore::drain_fires`]). Called by
    /// the batch former right after it publishes that epoch, and by the
    /// follower apply path at its replicated epoch.
    pub fn drain_sub_fires(&self, epoch: u64) -> Vec<PendingEvent> {
        let mut st = self.shared.mx.lock();
        st.subs.drain_fires(epoch)
    }

    /// Drains buffered subscription fires only when all of them are
    /// pre-stamped (see [`crate::subs::SubsCore::drain_stamped_fires`]);
    /// the registration-time prompt delivery path uses this so it can
    /// never mis-stamp an applied-but-unpublished batch's merge fires.
    pub fn drain_sub_fires_stamped(&self) -> Vec<PendingEvent> {
        self.shared.mx.lock().subs.drain_stamped_fires()
    }

    /// Whether any buffered subscription fire awaits a drain.
    pub fn has_sub_fires(&self) -> bool {
        self.shared.mx.lock().subs.has_fires()
    }
}

fn flush_run(st: &mut WriteState, run: &mut Vec<Update>, answers: &mut Vec<(bool, Option<u64>)>) {
    if run.is_empty() {
        return;
    }
    let sub = std::mem::take(run);
    answers.extend(st.engine.process_batch(&sub).into_iter().map(|a| (a, None)));
}

impl Drop for GenerationEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.mx.lock();
            self.shared.cv.notify_all();
        }
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_baselines::DynamicOracle;

    fn gen_engine(n: usize, hold: Duration) -> GenerationEngine {
        GenerationEngine::new(n, 2, &UfSpec::fastest(), ExecMode::Auto, 7, hold, None)
            .expect("engine builds")
    }

    fn quiesced(g: &GenerationEngine) -> u64 {
        g.quiesce(Duration::from_secs(30)).expect("quiesce")
    }

    #[test]
    fn nonforest_deletes_are_free_and_forest_deletes_seal() {
        let g = gen_engine(8, Duration::ZERO);
        g.process_batch(&[
            Update::Insert(0, 1),
            Update::Insert(1, 2),
            Update::Insert(2, 0), // closes the triangle: a cycle edge
        ]);
        assert_eq!(g.generation(), 0);
        // Deleting any one triangle edge cannot split: once the tracker
        // has it as non-forest, the delete is free.
        let a = g.process_batch(&[Update::Delete(2, 0), Update::Query(0, 2)]);
        assert_eq!(a, vec![true]);
        let info = g.info();
        assert_eq!(info.counters.rebuilds, 0, "cycle-edge delete must be free");
        assert_eq!(info.counters.deletes_nonforest, 1);
        assert!(!info.dirty);
        // Deleting a forest edge seals and rebuilds.
        let a = g.process_batch(&[Update::Delete(0, 1), Update::Query(0, 2)]);
        // The query may see sealed (pre-delete: connected) or the rebuilt
        // generation (split) depending on rebuild timing — both are valid
        // under the staleness contract; after quiescing it is exact.
        assert_eq!(a.len(), 1);
        assert!(quiesced(&g) >= 1);
        assert!(!g.connected(0, 2));
        assert!(g.connected(1, 2));
        let info = g.info();
        assert_eq!(info.counters.deletes_forest, 1);
        assert!(info.counters.rebuilds >= 1);
    }

    #[test]
    fn sealed_generation_serves_stale_but_consistent_answers() {
        let g = gen_engine(8, Duration::from_millis(200));
        g.process_batch(&[Update::Insert(0, 1), Update::Insert(1, 2)]);
        g.process_batch(&[Update::Delete(1, 2)]);
        // The hold keeps the rebuild in flight: the sealed generation
        // still answers the pre-delete state, and says so.
        assert!(g.is_dirty());
        assert_eq!(g.generation(), 0);
        assert!(g.connected(0, 2), "sealed labels are the pre-delete state");
        let a = g.process_batch(&[Update::Query(0, 2)]);
        assert_eq!(a, vec![true]);
        assert!(quiesced(&g) >= 1);
        assert!(!g.connected(0, 2), "the rebuilt generation sees the cut");
    }

    #[test]
    fn inserts_during_rebuild_land_in_the_next_generation() {
        let g = gen_engine(16, Duration::from_millis(100));
        g.process_batch(&[Update::Insert(0, 1), Update::Insert(2, 3)]);
        g.process_batch(&[Update::Delete(0, 1)]);
        assert!(g.is_dirty());
        // These arrive mid-rebuild: they must survive the swap.
        g.process_batch(&[Update::Insert(0, 2), Update::Insert(1, 3)]);
        quiesced(&g);
        assert!(g.connected(0, 3), "pending inserts drained into the new generation");
        // 0-2-3-1 spans all four: 0 and 1 reconnect through the pending
        // inserts even though their direct edge died.
        assert!(g.connected(0, 1));
    }

    #[test]
    fn deletes_during_rebuild_retrigger() {
        let g = gen_engine(16, Duration::from_millis(80));
        g.process_batch(&[Update::Insert(0, 1), Update::Insert(1, 2), Update::Insert(3, 4)]);
        g.process_batch(&[Update::Delete(0, 1)]);
        assert!(g.is_dirty());
        // A second live-edge delete while the first rebuild is in flight:
        // its snapshot is now invalid and must be discarded.
        g.process_batch(&[Update::Delete(3, 4)]);
        quiesced(&g);
        assert!(!g.connected(3, 4), "the retriggered rebuild saw the second delete");
        assert!(!g.connected(0, 1));
        assert!(g.connected(1, 2));
        assert!(g.info().counters.deletes_forest >= 2);
    }

    #[test]
    fn agrees_with_the_dynamic_oracle_under_quiesced_churn() {
        let n = 64usize;
        let g = gen_engine(n, Duration::ZERO);
        let mut oracle = DynamicOracle::new(n);
        // Deterministic churn: apply I/D traffic, quiesce, then validate
        // a query round exactly (the harness pattern the server tests and
        // the loadgen's --churn mode both use).
        for round in 0..12u32 {
            let mut muts: Vec<Update> = Vec::new();
            for i in 0..40u32 {
                let x = round * 191 + i * 37;
                let (u, v) = (x % n as u32, (x * 13 + 1) % n as u32);
                muts.push(if x % 4 == 3 { Update::Delete(u, v) } else { Update::Insert(u, v) });
            }
            g.process_batch(&muts);
            for &op in &muts {
                oracle.apply(op);
            }
            quiesced(&g);
            let queries: Vec<Update> =
                (0..n as u32).map(|u| Update::Query(u, (u * 7 + 3) % n as u32)).collect();
            let got = g.process_batch(&queries);
            let want = oracle.apply_batch(&queries);
            assert_eq!(got, want, "round {round}");
        }
        assert!(cc_graph::stats::same_partition(&oracle.labels(), &g.labels_readonly()));
    }

    #[test]
    fn tagged_answers_name_the_sealed_generation_atomically() {
        let g = gen_engine(8, Duration::from_millis(200));
        g.process_batch(&[Update::Insert(0, 1), Update::Insert(1, 2)]);
        assert_eq!(
            g.process_batch_tagged(&[Update::Query(0, 2)]),
            vec![(true, None)],
            "clean answers are untagged"
        );
        assert_eq!(g.connected_with_gen(0, 2), (true, None));
        g.process_batch(&[Update::Delete(1, 2)]);
        assert!(g.is_dirty());
        assert_eq!(
            g.process_batch_tagged(&[Update::Query(0, 2)]),
            vec![(true, Some(0))],
            "sealed answers carry the generation that served them"
        );
        assert_eq!(g.connected_with_gen(0, 2), (true, Some(0)));
        assert!(quiesced(&g) >= 1);
        assert_eq!(g.connected_with_gen(0, 2), (false, None));
    }

    #[test]
    fn converge_to_edge_set_retracts_stale_edges_and_adds_missing_ones() {
        let g = gen_engine(16, Duration::ZERO);
        g.process_batch(&[Update::Insert(0, 1), Update::Insert(1, 2), Update::Insert(3, 4)]);
        // Target: (0,1) survives, (1,2) and (3,4) must be retracted,
        // (5,6) is new; the self-loop is ignored (never live).
        let (ins, dels) = g.converge_to_edge_set(&[(0, 1), (5, 6), (7, 7)]);
        assert_eq!((ins, dels), (1, 2));
        quiesced(&g);
        assert!(g.connected(0, 1));
        assert!(!g.connected(1, 2), "stale edge retracted by convergence");
        assert!(!g.connected(3, 4), "stale edge retracted by convergence");
        assert!(g.connected(5, 6));
        assert_eq!(g.num_live_edges(), 2);
        // Converging to the set already held is a no-op (orientation-free).
        assert_eq!(g.converge_to_edge_set(&[(1, 0), (5, 6)]), (0, 0));
        assert!(!g.is_dirty());
    }

    #[test]
    fn delta_count_pins_to_full_scan_across_schedules() {
        // The satellite bugfix pin: the delta-maintained component count
        // must equal a full `count_distinct_labels` scan after every
        // quiesced round of a mixed insert/delete/rebuild schedule (the
        // seal path additionally cross-checks via its debug assertion).
        let n = 48usize;
        let g = gen_engine(n, Duration::ZERO);
        for round in 0..10u32 {
            let mut muts: Vec<Update> = Vec::new();
            for i in 0..30u32 {
                let x = round * 173 + i * 41;
                let (u, v) = (x % n as u32, (x * 11 + 3) % n as u32);
                muts.push(if x % 5 == 4 { Update::Delete(u, v) } else { Update::Insert(u, v) });
            }
            g.process_batch(&muts);
            quiesced(&g);
            g.publish_analytics(u64::from(round) + 1);
            let scan = cc_graph::stats::count_distinct_labels(&g.labels_readonly());
            assert_eq!(g.components_live() as usize, scan, "round {round}");
            let view = g.analytics_view();
            assert_eq!(view.components as usize, scan, "round {round} (view)");
            assert_eq!(view.hist.iter().sum::<u64>(), view.components, "round {round} (hist)");
        }
        assert!(g.info().counters.rebuilds >= 1, "schedule must exercise rebuilds");
    }

    #[test]
    fn analytics_view_tracks_merges_and_seals_honestly() {
        let g = gen_engine(8, Duration::from_millis(200));
        g.process_batch(&[Update::Insert(0, 1), Update::Insert(1, 2)]);
        g.publish_analytics(1);
        let v = g.analytics_view();
        assert_eq!((v.epoch, v.generation, v.sealed), (1, 0, false));
        assert_eq!(v.components, 6);
        assert_eq!(v.hist[0], 5, "five singletons");
        assert_eq!(v.hist[1], 1, "one component of three");
        assert_eq!(v.topk(10).len(), 1, "singletons are excluded from TOPK");
        assert_eq!(v.topk[0].1, 3);
        assert_eq!(v.component_of(2).1, 3);
        g.process_batch(&[Update::Delete(1, 2)]);
        assert!(g.is_dirty());
        let v = g.analytics_view();
        assert!(v.sealed, "forest delete freezes the analytics view");
        assert_eq!(v.components, 6, "sealed view keeps the pre-delete partition");
        g.publish_analytics(2);
        assert!(g.analytics_view().sealed, "publication is deferred while dirty");
        assert!(quiesced(&g) >= 1);
        let v = g.analytics_view();
        assert!(!v.sealed);
        assert_eq!(v.epoch, 2, "commit republishes at the deferred epoch mark");
        assert_eq!(v.generation, g.generation());
        assert_eq!(v.components, 7);
        assert_eq!(v.component_of(0).1, 2, "0-1 survives the rebuild");
        assert_eq!(v.component_of(2).1, 1, "2 is a singleton again");
    }

    #[test]
    fn recovery_materializes_one_generation() {
        let g = gen_engine(16, Duration::ZERO);
        g.recover_edges(&[(0, 1), (1, 2)]);
        g.recover_ops(&[
            Update::Insert(3, 4),
            Update::Delete(1, 2),
            Update::Insert(2, 3),
            Update::Query(0, 4), // skipped
        ]);
        g.finish_recovery();
        assert!(!g.is_dirty());
        assert_eq!(g.generation(), 0);
        assert_eq!(g.info().counters.rebuilds, 0, "recovery is not a live rebuild");
        assert!(g.connected(0, 1));
        // 1-2 died; 2-3-4 live; 0-1 live.
        assert!(!g.connected(0, 2));
        assert!(g.connected(2, 4));
        assert_eq!(g.num_live_edges(), 3);
    }
}
