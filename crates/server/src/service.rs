//! The long-running connectivity service: a time/size-bounded batch
//! former in front of a [`crate::generation::GenerationEngine`] (a
//! [`crate::engine::ShardedEngine`] per generation, so the per-edge
//! loops stay monomorphized, plus the edge-liveness tracker and the
//! background rebuilder that give the service deletions), with
//! epoch-versioned label snapshots and per-operation latency tracking.
//!
//! Clients ([`Client`], cheaply cloneable) enqueue submissions — each a
//! small vector of [`Update`]s — and block on a per-submission reply
//! slot. A dedicated batch-former thread drains the queue, lingering up
//! to [`ServiceConfig::batch_max_wait`] to coalesce traffic from many
//! clients into one engine batch of at most
//! [`ServiceConfig::batch_max_ops`] operations, then runs it through
//! [`crate::engine::Engine::process_batch`] on the shared `cc_parallel` pool (the
//! same pool the rest of the workspace reuses — no second thread fleet)
//! and fans the query answers back out. Every completed batch bumps the
//! service epoch; label snapshots are published as `Arc`-swapped
//! immutable values, so readers never block writers and writers never
//! wait for readers.

use crate::analytics::AnalyticsView;
use crate::engine::{EngineError, ExecMode, RunMode};
use crate::generation::{GenInfo, GenerationEngine};
use crate::obs::{self, Event, Obs};
use crate::snapshot;
use crate::subs::{AttachError, PendingEvent, SubInfo, SubKind, SubSink, SubWalOp, SubsDispatch};
use crate::wal::{DurabilityConfig, Wal, WalError, WalStats};
use cc_unionfind::UfSpec;
use connectit::Update;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Chunk size for replaying recovered state into the engine.
const REPLAY_CHUNK: usize = 1 << 16;

/// How long the batcher waits for an in-flight generation rebuild before
/// declining an explicit `SNAPSHOT` request (durable snapshots are only
/// taken on clean generations; see `DESIGN.md` §9).
const SNAPSHOT_QUIESCE_TIMEOUT: Duration = Duration::from_secs(30);

/// How often the batcher appends fresh flight-recorder events to the
/// trace file while durability is on: a SIGKILL loses at most this
/// window of events (plus whatever the ring had not yet flushed).
const TRACE_FLUSH_INTERVAL: Duration = Duration::from_millis(500);

/// Trailing lines of a previous run's trace file surfaced on recovery.
const TRACE_TAIL_LINES: usize = 20;

/// Which side of the replication topology a service plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes, owns the WAL, and (optionally) streams it to
    /// followers.
    Primary,
    /// A read replica: state arrives exclusively through
    /// [`Client::apply_replicated`] / [`Client::apply_replicated_ops`] /
    /// [`Client::apply_replicated_labels`] (fed by
    /// `cc_server::replication`); local writes — inserts *and* deletes —
    /// are rejected, and queries are answered directly against the engine
    /// at the follower's honestly-reported replication epoch.
    Follower,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Primary => write!(f, "primary"),
            Role::Follower => write!(f, "follower"),
        }
    }
}

/// Configuration of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of vertices (fixed for the lifetime of the service).
    pub n: usize,
    /// Number of vertex-range shards.
    pub shards: usize,
    /// Union-find variant backing every shard and the spine.
    pub spec: UfSpec,
    /// Batch execution discipline.
    pub mode: ExecMode,
    /// Soft cap on operations per formed batch: the former stops taking
    /// whole submissions once the cap is reached (a single oversized
    /// submission still runs as one batch).
    pub batch_max_ops: usize,
    /// How long the former lingers for more traffic before running a
    /// partially-filled batch.
    pub batch_max_wait: Duration,
    /// Publish a label snapshot every this many batches (0 disables
    /// periodic snapshots; [`Client::snapshot_now`] always works).
    pub snapshot_every: u64,
    /// Seed for the union-find variants that use randomness.
    pub seed: u64,
    /// Test knob: hold every background generation rebuild open for at
    /// least this long, making the dirty window (sealed-generation
    /// queries, `G <gen>` staleness reporting) deterministically
    /// observable. Zero (the default) in production.
    pub rebuild_hold: Duration,
    /// Durability: `Some` turns on the write-ahead log (and durable
    /// snapshots) in the given directory, including crash recovery from
    /// whatever that directory already holds at startup.
    pub durability: Option<DurabilityConfig>,
    /// Primary (default) or read-replica follower (see [`Role`]).
    pub role: Role,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            n: 1 << 20,
            shards: 4,
            spec: UfSpec::fastest(),
            mode: ExecMode::Auto,
            batch_max_ops: 1 << 16,
            batch_max_wait: Duration::from_micros(100),
            snapshot_every: 0,
            seed: 0x5eed,
            rebuild_hold: Duration::ZERO,
            durability: None,
            role: Role::Primary,
        }
    }
}

/// Why a service call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The service has been shut down.
    Closed,
    /// An operation referenced a vertex outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        v: u32,
        /// The service's vertex count.
        n: usize,
    },
    /// The configuration was rejected at startup.
    Config(String),
    /// The write-ahead log or snapshot store failed (the message carries
    /// file and offset context from [`WalError`]).
    Durability(String),
    /// A durability-only operation (`FLUSH`, `SNAPSHOT`, `WALSTATS`) was
    /// requested but the service runs without a WAL.
    DurabilityDisabled,
    /// An insert or delete was submitted to a read-replica follower.
    ReadOnlyFollower,
    /// A `WAIT` did not reach its target epoch within the timeout.
    WaitTimeout {
        /// The epoch waited for.
        target: u64,
        /// The epoch the service had reached when the wait gave up.
        at: u64,
    },
    /// A `QUIESCE` did not see the generation engine come clean within
    /// the timeout (a rebuild was still in flight).
    QuiesceTimeout {
        /// The generation still serving when the wait gave up.
        at: u64,
    },
    /// An `UNSUB` or `SUB ATTACH` referenced a subscription id this
    /// service does not hold (never issued, already cancelled, or — for
    /// an ephemeral subscription — dropped with its connection).
    UnknownSubscription {
        /// The offending subscription id.
        id: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Closed => write!(f, "service is shut down"),
            ServiceError::VertexOutOfRange { v, n } => {
                write!(f, "vertex {v} out of range (n = {n})")
            }
            ServiceError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ServiceError::Durability(msg) => write!(f, "durability failure: {msg}"),
            ServiceError::DurabilityDisabled => {
                write!(f, "durability is not enabled (start the service with a wal dir)")
            }
            ServiceError::ReadOnlyFollower => {
                write!(f, "read-only follower: route updates to the primary")
            }
            ServiceError::WaitTimeout { target, at } => {
                write!(f, "wait for epoch {target} timed out at epoch {at}")
            }
            ServiceError::QuiesceTimeout { at } => {
                write!(f, "quiesce timed out at generation {at}")
            }
            ServiceError::UnknownSubscription { id } => {
                write!(f, "unknown subscription id {id}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Config(e.to_string())
    }
}

impl From<WalError> for ServiceError {
    fn from(e: WalError) -> Self {
        ServiceError::Durability(e.to_string())
    }
}

/// An immutable, epoch-versioned snapshot of the global labeling.
pub struct LabelSnapshot {
    /// The epoch (number of completed batches) the snapshot was taken at.
    pub epoch: u64,
    /// Component label per vertex: same label iff same component.
    pub labels: Vec<u32>,
    /// Number of connected components in the snapshot.
    pub num_components: usize,
}

/// A point-in-time view of the service's counters and latency profile.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Completed batches (equals the current epoch).
    pub epoch: u64,
    /// Operations processed so far.
    pub ops: u64,
    /// Insert operations processed so far.
    pub inserts: u64,
    /// Delete operations processed so far.
    pub deletes: u64,
    /// Query operations processed so far.
    pub queries: u64,
    /// Intra-shard insertions.
    pub intra_inserts: u64,
    /// Cross-shard insertions (spine direct).
    pub cross_inserts: u64,
    /// Intra-shard insertions forwarded to the spine (novel at
    /// classification).
    pub forwarded: u64,
    /// Current number of connected components (read-only root count; may
    /// lag an in-flight batch).
    pub num_components: usize,
    /// `[p50, p90, p99, p999]` submission-to-completion latency, ns.
    pub latency_ns: [u64; 4],
    /// One-line human latency summary (see `cc_parallel::hist`).
    pub latency_summary: String,
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch={} ops={} inserts={} deletes={} queries={} intra={} cross={} forwarded={} \
             components={} latency[{}]",
            self.epoch,
            self.ops,
            self.inserts,
            self.deletes,
            self.queries,
            self.intra_inserts,
            self.cross_inserts,
            self.forwarded,
            self.num_components,
            self.latency_summary,
        )
    }
}

/// One client submission awaiting batching.
struct Pending {
    ops: Vec<Update>,
    num_queries: usize,
    num_deletes: usize,
    enqueued: Instant,
    reply: Arc<ReplySlot>,
    /// Ask the batcher to write a durable snapshot after the batch this
    /// submission lands in (the `SNAPSHOT` control path).
    durable_snapshot: bool,
}

/// A query answer paired with the sealed generation it was served from
/// (`None` when the engine was clean): the tag travels with the answer
/// from the moment the engine produced both under one lock, so the wire
/// layer never has to re-derive staleness with a racy second read.
pub type TaggedAnswers = Vec<(bool, Option<u64>)>;

/// A single-use reply mailbox a submitting thread blocks on (or, through
/// [`SubmitTicket`], polls after a completion callback).
struct ReplySlot {
    state: Mutex<Option<Result<TaggedAnswers, ServiceError>>>,
    cv: Condvar,
    /// Fired after the result is stored — the event-loop shards hang a
    /// poll waker here so a fulfilled ticket wakes the owning shard.
    notify: Option<Box<dyn Fn() + Send + Sync>>,
}

impl ReplySlot {
    fn new() -> Arc<Self> {
        Self::with_notify(None)
    }

    fn with_notify(notify: Option<Box<dyn Fn() + Send + Sync>>) -> Arc<Self> {
        Arc::new(ReplySlot { state: Mutex::new(None), cv: Condvar::new(), notify })
    }

    fn fulfill(&self, r: Result<TaggedAnswers, ServiceError>) {
        *self.state.lock() = Some(r);
        self.cv.notify_all();
        if let Some(f) = &self.notify {
            f();
        }
    }

    fn wait(&self) -> Result<TaggedAnswers, ServiceError> {
        let mut g = self.state.lock();
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            // Timeout is a lost-wakeup backstop, mirroring the pool.
            self.cv.wait_for(&mut g, Duration::from_millis(10));
        }
    }
}

/// Handle to an asynchronously submitted operation group (see
/// [`Client::submit_tagged_async`]): poll with [`SubmitTicket::try_take`]
/// after the completion callback fires, or block with
/// [`SubmitTicket::wait`].
pub struct SubmitTicket {
    reply: Arc<ReplySlot>,
}

impl SubmitTicket {
    /// Takes the result if the batch containing the submission has
    /// completed; `None` while it is still in flight. A taken result is
    /// gone — callers poll until `Some`, then stop.
    pub fn try_take(&self) -> Option<Result<TaggedAnswers, ServiceError>> {
        self.reply.state.lock().take()
    }

    /// Blocks until the result is available (the synchronous fallback).
    pub fn wait(&self) -> Result<TaggedAnswers, ServiceError> {
        self.reply.wait()
    }
}

struct SubmitQueue {
    queue: VecDeque<Pending>,
    queued_ops: usize,
    closed: bool,
}

struct Inner {
    engine: GenerationEngine,
    cfg: ServiceConfig,
    q: Mutex<SubmitQueue>,
    work_cv: Condvar,
    epoch: AtomicU64,
    /// The observability plane. The registry's `inserts/deletes/queries`
    /// counters and `latency_ns` histogram are the *authoritative*
    /// service counters (`stats()` reads them back); everything else in
    /// it is a write-time mirror of subsystem state.
    obs: Arc<Obs>,
    /// Where the flight recorder flushes (`<wal-dir>/trace-<pid>.log`);
    /// `None` without durability (the ring stays in memory for `TRACE`).
    trace_path: Option<PathBuf>,
    snapshot: Mutex<Arc<LabelSnapshot>>,
    /// The write-ahead log, when durability is on. Locked by the batcher
    /// for appends and by clients for `FLUSH`/`WALSTATS`.
    wal: Option<Mutex<Wal>>,
    /// Epoch of the newest durable snapshot on disk.
    durable_snapshot_epoch: AtomicU64,
    /// The most recent durability failure, surfaced through `WALSTATS`.
    last_wal_error: Mutex<Option<String>>,
    /// Serializes replicated applies on a follower (and, on phased
    /// engines, the read path against them — phase-concurrent engines do
    /// not take concurrent queries during an insert batch).
    apply_mx: Mutex<()>,
    /// Per-subscription delivery channels (sequence numbers, retained
    /// events for detached durable subscribers, and the live sinks).
    /// The trigger *index* lives in the engine; this is the fan-out side.
    subs: SubsDispatch,
    /// Serializes [`Inner::drain_sub_events`]: draining reads the fire
    /// buffer and hands events to the dispatcher in one critical
    /// section, so two concurrent drains cannot reorder deliveries
    /// within a subscription.
    sub_drain_mx: Mutex<()>,
    /// Every epoch advance notifies waiters (`WAIT <epoch>`).
    epoch_mx: Mutex<()>,
    epoch_cv: Condvar,
    /// Set by shutdown; the follower read path has no queue to observe
    /// closure through, so it checks this flag instead.
    closed: std::sync::atomic::AtomicBool,
}

impl Inner {
    fn bump_epoch_to(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
        self.obs.metrics.epoch.set_max(epoch);
        let _g = self.epoch_mx.lock();
        self.epoch_cv.notify_all();
    }

    fn publish_snapshot(&self, epoch: u64) -> Arc<LabelSnapshot> {
        // The component count is the analytics plane's delta-maintained
        // one: publishing no longer performs the O(n) distinct-label
        // scan it used to (the label copy itself remains, same as the
        // durable-snapshot path). The build can race another publisher
        // (an on-demand `snapshot_now` vs the periodic batcher
        // snapshot), so the swap is guarded to keep the published epoch
        // monotone.
        let (labels, num_components) = self.engine.labels_with_components();
        let snap = Arc::new(LabelSnapshot { epoch, labels, num_components });
        let mut published = self.snapshot.lock();
        if published.epoch <= epoch {
            *published = Arc::clone(&snap);
        }
        drop(published);
        // The `connectit_components` gauge is kept live at merge/commit
        // time by the analytics plane; the publish event only records
        // what this snapshot saw.
        self.obs
            .recorder
            .record(Event::SnapshotPublished { epoch, components: num_components as u64 });
        snap
    }

    fn note_wal_error(&self, msg: &str) {
        *self.last_wal_error.lock() = Some(msg.to_string());
    }

    /// Appends fresh flight-recorder events to the trace file. Best
    /// effort and a no-op without durability: the trace file is a
    /// post-mortem aid, and observability must never take the service
    /// down with it.
    fn flush_trace(&self) {
        if let Some(path) = &self.trace_path {
            self.obs.recorder.flush_to_file(path).ok();
        }
    }

    /// The batcher's idle tick: sync pending WAL bytes once the
    /// group-commit window lapses with no append to piggyback on. Must
    /// be called without the queue lock held — an `fdatasync` can take
    /// milliseconds and clients block on that lock to submit.
    fn maybe_sync_wal(&self) {
        if let Some(w) = &self.wal {
            if let Err(e) = w.lock().sync_if_due() {
                self.note_wal_error(&e.to_string());
            }
        }
    }

    /// Drains buffered subscription fires out of the engine and hands
    /// them to the per-subscription channels. Fires not pre-stamped
    /// (by a registration or a rebuild commit) are stamped with the
    /// service epoch read *here* — after the batch that produced them
    /// advanced it — so every event carries the exact epoch its merge
    /// committed at. Only epoch-authoritative callers may use this:
    /// the batcher right after publishing, and the follower apply
    /// paths at their replicated epoch.
    fn drain_sub_events(&self) {
        if !self.engine.has_sub_fires() {
            return;
        }
        let _g = self.sub_drain_mx.lock();
        let epoch = self.epoch.load(Ordering::Acquire);
        let fires = self.engine.drain_sub_fires(epoch);
        self.deliver_sub_fires(fires);
    }

    /// Prompt-path drain, for delivering a registration-time fire
    /// without waiting on the batcher: it only drains when every
    /// buffered fire is already stamped. A concurrently applied but
    /// not-yet-published batch leaves unstamped merge fires in the
    /// buffer, and stamping those with the still-old committed epoch
    /// would violate the delivery contract — in that case the whole
    /// buffer (registration fire included, order preserved) is left
    /// for the batcher's imminent post-publish drain.
    fn drain_sub_events_prompt(&self) {
        if !self.engine.has_sub_fires() {
            return;
        }
        let _g = self.sub_drain_mx.lock();
        let fires = self.engine.drain_sub_fires_stamped();
        self.deliver_sub_fires(fires);
    }

    /// Delivery tail shared by both drains: hands stamped fires to the
    /// per-subscription channels. Dead ephemeral subscribers found
    /// during delivery are cancelled so their triggers stop costing
    /// the merge path.
    fn deliver_sub_fires(&self, fires: Vec<PendingEvent>) {
        if fires.is_empty() {
            return;
        }
        let metrics = &self.obs.metrics;
        let dead = self.subs.deliver(&fires, |ev, at| {
            metrics.sub_events_total.inc();
            metrics.sub_fire_ns.record_duration(at.elapsed());
            self.obs.recorder.record(Event::SubFired { id: ev.id, epoch: ev.epoch });
        });
        for id in dead {
            self.engine.subs_cancel(id);
        }
        metrics.subs_active.set(self.engine.subs_len() as u64);
    }

    /// Writes a durable snapshot — the labeling *and* the live edge set,
    /// a consistent pair — keyed by `epoch`. Called only from the batcher
    /// between batches, so no new operations race it; a generation
    /// rebuild may still be in flight, though, and a dirty engine has no
    /// consistent pair to offer (the tracker runs ahead of the sealed
    /// labels). `wait` bounds how long to quiesce first: cadence
    /// snapshots pass zero and silently defer to a later epoch, the
    /// explicit `SNAPSHOT` verb waits and then reports the deferral. On
    /// success the WAL rolls its active segment and prunes everything the
    /// snapshot covers.
    /// Returns `Ok(false)` when the snapshot was *deferred* because the
    /// engine stayed dirty past `wait` — not a durability failure.
    fn write_durable_snapshot(&self, epoch: u64, wait: Duration) -> Result<bool, ServiceError> {
        let dcfg = self
            .cfg
            .durability
            .as_ref()
            .expect("durable snapshot requested without durability config");
        if !wait.is_zero() {
            let _ = self.engine.quiesce(wait);
        }
        let Some((labels, edges)) = self.engine.snapshot_parts() else {
            return Ok(false);
        };
        snapshot::write_snapshot(&dcfg.dir, epoch, &labels, &edges).map_err(|e| {
            ServiceError::Durability(format!("snapshot write in {}: {e}", dcfg.dir.display()))
        })?;
        self.durable_snapshot_epoch.store(epoch, Ordering::Release);
        self.obs.metrics.durable_snapshot_epoch.set_max(epoch);
        snapshot::prune_older_than(&dcfg.dir, epoch);
        if let Some(w) = &self.wal {
            let mut w = w.lock();
            w.roll()?;
            w.prune_covered_by(epoch);
            // The snapshot covers *edges*, not subscriptions: pruning
            // just dropped the segments holding the `'S'` records, so
            // re-register every live durable subscription into the fresh
            // active segment (at its original registration epoch —
            // recovery replays these by id, so repeats are idempotent).
            for sub in self.engine.subs_list() {
                if !sub.durable {
                    continue;
                }
                w.append_sub(&SubWalOp::Register {
                    id: sub.id,
                    kind: sub.kind,
                    u: sub.u,
                    v: sub.v,
                    epoch: sub.registered_epoch,
                })?;
            }
        }
        Ok(true)
    }
}

/// The batch former: runs on a dedicated thread until the service closes
/// and the queue drains.
fn run_batcher(inner: &Arc<Inner>) {
    let mut last_trace_flush = Instant::now();
    loop {
        if last_trace_flush.elapsed() >= TRACE_FLUSH_INTERVAL {
            inner.flush_trace();
            last_trace_flush = Instant::now();
        }
        let mut pendings: Vec<Pending> = Vec::new();
        {
            let mut q = inner.q.lock();
            loop {
                if !q.queue.is_empty() {
                    break;
                }
                if q.closed {
                    return;
                }
                if inner.work_cv.wait_for(&mut q, Duration::from_millis(5)).timed_out() {
                    // Idle tick: the group-commit window may have lapsed
                    // with no new append to piggyback on, so sync the
                    // pending WAL bytes — with the queue lock released,
                    // because clients block on it to submit and an
                    // fdatasync can take milliseconds. Fresh trace events
                    // ride along to the trace file on the same cadence.
                    drop(q);
                    inner.maybe_sync_wal();
                    // A rebuild commit may have landed fires while the
                    // queue sat empty; push them out now rather than at
                    // the next batch.
                    inner.drain_sub_events();
                    if last_trace_flush.elapsed() >= TRACE_FLUSH_INTERVAL {
                        inner.flush_trace();
                        last_trace_flush = Instant::now();
                    }
                    q = inner.q.lock();
                }
            }
            // Time/size-bounded forming: linger for more traffic while
            // below the size cap and within the time bound.
            let deadline = Instant::now() + inner.cfg.batch_max_wait;
            while q.queued_ops < inner.cfg.batch_max_ops && !q.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                if inner.work_cv.wait_for(&mut q, deadline - now).timed_out() {
                    break;
                }
            }
            let mut took = 0usize;
            while let Some(front) = q.queue.front() {
                if took > 0 && took + front.ops.len() > inner.cfg.batch_max_ops {
                    break;
                }
                let p = q.queue.pop_front().expect("front exists");
                q.queued_ops -= p.ops.len();
                took += p.ops.len();
                pendings.push(p);
            }
        }

        let total: usize = pendings.iter().map(|p| p.ops.len()).sum();
        let mut batch = Vec::with_capacity(total);
        for p in &pendings {
            batch.extend_from_slice(&p.ops);
        }

        // Stage boundaries of the per-batch latency breakdown: queue
        // wait (per submission, below) → WAL append (fsync inside, timed
        // by the WAL itself) → engine apply → snapshot publish. All
        // instrumentation is a few relaxed atomics per *batch*, not per
        // operation — that amortization is the near-zero-cost claim the
        // obs bench gate holds us to.
        let metrics = &inner.obs.metrics;
        let formed_at = Instant::now();
        let next_epoch = inner.epoch.load(Ordering::Relaxed) + 1;
        metrics.batches_total.inc();
        inner.obs.recorder.record(Event::BatchFormed { epoch: next_epoch, ops: total as u64 });
        for p in &pendings {
            let waited = formed_at.saturating_duration_since(p.enqueued);
            metrics.queue_wait_ns.record_duration(waited);
        }

        // Write-ahead: log the batch's mutations — inserts *and
        // deletions*, in submission order — under the epoch it is about
        // to commit as, *before* touching the engine. If the log cannot
        // take the record, the batch is rejected wholesale (the engine is
        // not mutated), so the in-memory state never runs ahead of what a
        // restart could reconstruct. Insert-only batches keep the
        // original `'I'` record kind on disk and on the wire.
        if let Some(w) = &inner.wal {
            let append_start = Instant::now();
            let append_res = w.lock().append_ops(next_epoch, &batch);
            metrics.wal_append_ns.record_duration(append_start.elapsed());
            if let Err(e) = append_res {
                let err = ServiceError::from(e);
                inner.note_wal_error(&err.to_string());
                metrics.batch_rejects_total.inc();
                for p in pendings {
                    p.reply.fulfill(Err(err.clone()));
                }
                continue;
            }
        }
        let apply_start = Instant::now();
        let answers = inner.engine.process_batch_tagged(&batch);

        // Account everything *before* fulfilling any reply, so a client
        // that returns from `submit` observes stats covering its batch.
        let done_at = Instant::now();
        metrics.apply_ns.record_duration(done_at.saturating_duration_since(apply_start));
        inner.obs.recorder.record(Event::EngineApplied { epoch: next_epoch, ops: total as u64 });
        let (mut ins, mut dels, mut qrs) = (0u64, 0u64, 0u64);
        for p in &pendings {
            qrs += p.num_queries as u64;
            dels += p.num_deletes as u64;
            ins += (p.ops.len() - p.num_queries - p.num_deletes) as u64;
            let elapsed = done_at.saturating_duration_since(p.enqueued);
            metrics.latency_ns.record_n(
                u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
                p.ops.len() as u64,
            );
        }
        metrics.inserts_total.add(ins);
        metrics.deletes_total.add(dels);
        metrics.queries_total.add(qrs);
        let epoch = inner.epoch.fetch_add(1, Ordering::Release) + 1;
        metrics.epoch.set_max(epoch);
        debug_assert_eq!(epoch, next_epoch);
        {
            // Wake any `WAIT <epoch>` blocked on this advance.
            let _g = inner.epoch_mx.lock();
            inner.epoch_cv.notify_all();
        }
        // Advance the analytics view to this batch's epoch (deferred to
        // the rebuild commit while the engine is dirty).
        inner.engine.publish_analytics(epoch);
        // Push out any subscription fires this batch's merges produced,
        // stamped with the epoch that just advanced.
        inner.drain_sub_events();
        if inner.cfg.snapshot_every > 0 && epoch.is_multiple_of(inner.cfg.snapshot_every) {
            let publish_start = Instant::now();
            inner.publish_snapshot(epoch);
            metrics.publish_ns.record_duration(publish_start.elapsed());
        }

        // Durable snapshots: on the configured epoch cadence, or when a
        // `SNAPSHOT` control submission rode this batch. A failure is
        // reported to the requesting submissions (and WALSTATS); the
        // batch itself already committed.
        let durable_cadence = inner.cfg.durability.as_ref().map_or(0, |d| d.snapshot_every);
        let snapshot_requested = pendings.iter().any(|p| p.durable_snapshot);
        let mut snapshot_err: Option<ServiceError> = None;
        if inner.wal.is_some()
            && (snapshot_requested
                || (durable_cadence > 0 && epoch.is_multiple_of(durable_cadence)))
        {
            // Explicit requests wait out an in-flight rebuild (someone is
            // blocked on the answer); cadence snapshots defer silently to
            // a later epoch.
            let wait = if snapshot_requested { SNAPSHOT_QUIESCE_TIMEOUT } else { Duration::ZERO };
            match inner.write_durable_snapshot(epoch, wait) {
                Ok(true) => {}
                Ok(false) if snapshot_requested => {
                    snapshot_err = Some(ServiceError::Durability(
                        "durable snapshot deferred: a generation rebuild is in flight".into(),
                    ));
                }
                Ok(false) => {}
                Err(e) => {
                    inner.note_wal_error(&e.to_string());
                    snapshot_err = Some(e);
                }
            }
        }

        let mut qi = 0usize;
        for p in pendings {
            let res = answers[qi..qi + p.num_queries].to_vec();
            qi += p.num_queries;
            match (&snapshot_err, p.durable_snapshot) {
                (Some(e), true) => p.reply.fulfill(Err(e.clone())),
                _ => p.reply.fulfill(Ok(res)),
            }
        }
    }
}

/// A running connectivity service. Dropping it (or calling
/// [`Service::shutdown`]) closes the submission queue, drains what is
/// already enqueued, and joins the batch-former thread.
pub struct Service {
    inner: Arc<Inner>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

/// Validates that every endpoint of `edges` lies in `0..n` (`what` names
/// the source for the error).
fn validate_edges(edges: &[(u32, u32)], n: usize, what: &str) -> Result<(), ServiceError> {
    for &(u, v) in edges {
        if u as usize >= n || v as usize >= n {
            return Err(ServiceError::Config(format!(
                "{what} references vertex {} but the service was started with n = {n}; \
                 restart with the original vertex count",
                u.max(v)
            )));
        }
    }
    Ok(())
}

/// [`validate_edges`] over a mixed operation list.
fn validate_ops(ops: &[Update], n: usize, what: &str) -> Result<(), ServiceError> {
    for op in ops {
        let (Update::Insert(u, v) | Update::Delete(u, v) | Update::Query(u, v)) = *op;
        if u as usize >= n || v as usize >= n {
            return Err(ServiceError::Config(format!(
                "{what} references vertex {} but the service was started with n = {n}; \
                 restart with the original vertex count",
                u.max(v)
            )));
        }
    }
    Ok(())
}

impl Service {
    /// Starts the service: builds the generation engine (a sharded
    /// engine per generation plus the edge-liveness tracker), and — when
    /// durability is configured — rebuilds it from the newest durable
    /// snapshot plus the WAL suffix past it, resuming at the recovered
    /// epoch before spawning the batch former.
    pub fn start(cfg: ServiceConfig) -> Result<Service, ServiceError> {
        if cfg.batch_max_ops == 0 {
            return Err(ServiceError::Config("batch_max_ops must be at least 1".into()));
        }
        if cfg.role == Role::Follower && cfg.durability.is_some() {
            return Err(ServiceError::Config(
                "a follower is in-memory: durability (the WAL) belongs to the primary it \
                 replicates from"
                    .into(),
            ));
        }
        let obs = Obs::new();
        let engine = GenerationEngine::new(
            cfg.n,
            cfg.shards,
            &cfg.spec,
            cfg.mode,
            cfg.seed,
            cfg.rebuild_hold,
            Some(Arc::clone(&obs)),
        )
        .map_err(ServiceError::Config)?;

        let mut recovered_epoch = 0u64;
        let mut snap_epoch = 0u64;
        let mut wal = None;
        let mut trace_path = None;
        let subs_dispatch = SubsDispatch::new();
        if let Some(dcfg) = &cfg.durability {
            // Scan (and re-open) the log first — this also creates the
            // directory — then seed from the newest snapshot and replay
            // only the records past its epoch. Recovery feeds the
            // liveness tracker only; `finish_recovery` materializes
            // generation 0 with a single rebuild at the end, so a
            // deletion-heavy history does not pay one rebuild per
            // retraction.
            let (w, report) = Wal::open(dcfg)?;
            if let Some(snap) = snapshot::load_latest(&dcfg.dir)? {
                if snap.labels.len() != cfg.n {
                    return Err(ServiceError::Config(format!(
                        "snapshot in {} covers {} vertices but the service was started \
                         with n = {}; restart with the original vertex count",
                        dcfg.dir.display(),
                        snap.labels.len(),
                        cfg.n
                    )));
                }
                // New-format snapshots carry the live edge set (exact
                // liveness for later retractions); legacy label-only
                // files degrade to spanning edges, sound over the
                // insert-only histories that wrote them.
                let edges: Vec<(u32, u32)> = match snap.edges {
                    Some(edges) => edges,
                    None => snap
                        .labels
                        .iter()
                        .enumerate()
                        .filter(|&(v, &l)| l as usize != v)
                        .map(|(v, &l)| (v as u32, l))
                        .collect(),
                };
                validate_edges(&edges, cfg.n, &format!("snapshot at epoch {}", snap.epoch))?;
                for chunk in edges.chunks(REPLAY_CHUNK) {
                    engine.recover_edges(chunk);
                }
                snap_epoch = snap.epoch;
                recovered_epoch = snap.epoch;
            }
            for (epoch, ops) in &report.batches {
                if *epoch <= snap_epoch {
                    continue; // covered by the snapshot
                }
                validate_ops(ops, cfg.n, &format!("wal record at epoch {epoch}"))?;
                for chunk in ops.chunks(REPLAY_CHUNK) {
                    engine.recover_ops(chunk);
                }
                recovered_epoch = recovered_epoch.max(*epoch);
            }
            // Replay durable subscriptions before `finish_recovery`: the
            // triggers register unarmed (labels are not final yet) and
            // the recovery commit re-evaluates every pending pair
            // against the recovered labeling, so a pair that connected
            // while the subscriber was down still fires on restart.
            let mut max_sub_id = 0u64;
            for op in &report.sub_ops {
                match *op {
                    SubWalOp::Register { id, kind, u, v, epoch } => {
                        for x in [u, v] {
                            if x as usize >= cfg.n {
                                return Err(ServiceError::Config(format!(
                                    "wal subscription {id} references vertex {x} but the \
                                     service was started with n = {}; restart with the \
                                     original vertex count",
                                    cfg.n
                                )));
                            }
                        }
                        engine.subs_register_recovered(id, kind, u, v, epoch);
                        subs_dispatch.open(id, true, None);
                        max_sub_id = max_sub_id.max(id);
                    }
                    SubWalOp::Cancel { id } => {
                        engine.subs_cancel(id);
                        subs_dispatch.close(id);
                    }
                }
            }
            subs_dispatch.bump_next_id(max_sub_id + 1);
            engine.finish_recovery();
            let mut w = w;
            w.attach_obs(Arc::clone(&obs));
            wal = Some(Mutex::new(w));
            // Surface (and consume) the trace a previous run flushed here
            // — after a SIGKILL this is the crash post-mortem — then
            // claim this run's own trace file.
            for (file, tail) in obs::drain_previous_traces(&dcfg.dir, TRACE_TAIL_LINES) {
                eprintln!("recovered flight-recorder tail from {file}:");
                for line in tail {
                    eprintln!("  {line}");
                }
            }
            trace_path = Some(dcfg.dir.join(format!("trace-{}.log", std::process::id())));
        }

        let initial = if recovered_epoch > 0 {
            // The recovery resync left the analytics plane describing the
            // recovered partition: its delta count replaces the old O(n)
            // distinct-label scan here too.
            let (labels, num_components) = engine.labels_with_components();
            Arc::new(LabelSnapshot { epoch: recovered_epoch, labels, num_components })
        } else {
            Arc::new(LabelSnapshot {
                epoch: 0,
                labels: (0..cfg.n as u32).collect(),
                num_components: cfg.n,
            })
        };
        let role = cfg.role;
        obs.metrics.epoch.set_max(recovered_epoch);
        obs.metrics.durable_snapshot_epoch.set_max(snap_epoch);
        obs.metrics.components.set(initial.num_components as u64);
        // Stamp the analytics view with the recovered epoch so TOPK/HIST
        // report an honest starting point.
        engine.publish_analytics(recovered_epoch);
        obs.metrics.subs_active.set(engine.subs_len() as u64);
        let inner = Arc::new(Inner {
            engine,
            cfg,
            q: Mutex::new(SubmitQueue { queue: VecDeque::new(), queued_ops: 0, closed: false }),
            work_cv: Condvar::new(),
            epoch: AtomicU64::new(recovered_epoch),
            obs,
            trace_path,
            snapshot: Mutex::new(initial),
            wal,
            durable_snapshot_epoch: AtomicU64::new(snap_epoch),
            last_wal_error: Mutex::new(None),
            apply_mx: Mutex::new(()),
            subs: subs_dispatch,
            sub_drain_mx: Mutex::new(()),
            epoch_mx: Mutex::new(()),
            epoch_cv: Condvar::new(),
            closed: std::sync::atomic::AtomicBool::new(false),
        });
        // A follower has no batch former: writes arrive only through the
        // replication apply path, and reads go straight to the engine.
        let batcher = match role {
            Role::Follower => None,
            Role::Primary => {
                let b_inner = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name("cc-batch-former".into())
                        .spawn(move || run_batcher(&b_inner))
                        .map_err(|e| {
                            ServiceError::Config(format!("failed to spawn batch former: {e}"))
                        })?,
                )
            }
        };
        Ok(Service { inner, batcher })
    }

    /// A handle for submitting operations; clone freely across threads.
    pub fn client(&self) -> Client {
        Client { inner: Arc::clone(&self.inner) }
    }

    /// Closes the queue, drains already-enqueued submissions, joins the
    /// batch former, and (when durability is on) syncs the WAL so a clean
    /// shutdown leaves nothing in volatile buffers. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.inner.q.lock();
            q.closed = true;
        }
        self.inner.closed.store(true, Ordering::Release);
        self.inner.work_cv.notify_all();
        {
            // Unblock `WAIT`ers: the epoch will never advance again.
            let _g = self.inner.epoch_mx.lock();
            self.inner.epoch_cv.notify_all();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        if let Some(w) = &self.inner.wal {
            if let Err(e) = w.lock().flush() {
                self.inner.note_wal_error(&e.to_string());
            }
        }
        // The ring's remaining events go to the trace file last, so the
        // final shutdown fsync is itself on record for the next run.
        self.inner.flush_trace();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A cheap, cloneable handle for talking to a [`Service`] in-process.
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
}

impl Client {
    /// Number of vertices the service was started with.
    pub fn num_vertices(&self) -> usize {
        self.inner.engine.num_vertices()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.engine.num_shards()
    }

    /// The engine's resolved execution discipline.
    pub fn mode(&self) -> RunMode {
        self.inner.engine.mode()
    }

    /// Submits a group of operations as one unit and blocks until the
    /// batch containing them completes. Returns the answers to the
    /// submission's queries, in order. Queries may observe other
    /// operations grouped into the same service batch (batch semantics
    /// are concurrent); all earlier completed submissions are visible.
    pub fn submit(&self, ops: Vec<Update>) -> Result<Vec<bool>, ServiceError> {
        Ok(self.submit_tagged(ops)?.into_iter().map(|(a, _)| a).collect())
    }

    /// [`Self::submit`], with each query answer tagged by the sealed
    /// generation it was served from (`Some(gen)` iff a rebuild was in
    /// flight when that query was answered, `None` for exact answers).
    /// The tag is produced by the engine under the same lock (or from
    /// the same view read) as the answer, so it is atomic with it.
    pub fn submit_tagged(&self, ops: Vec<Update>) -> Result<TaggedAnswers, ServiceError> {
        let n = self.num_vertices();
        let mut num_queries = 0usize;
        let mut num_deletes = 0usize;
        for op in &ops {
            let (Update::Insert(u, v) | Update::Delete(u, v) | Update::Query(u, v)) = *op;
            for x in [u, v] {
                if x as usize >= n {
                    return Err(ServiceError::VertexOutOfRange { v: x, n });
                }
            }
            num_queries += usize::from(matches!(op, Update::Query(..)));
            num_deletes += usize::from(matches!(op, Update::Delete(..)));
        }
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        if self.role() == Role::Follower {
            return self.answer_on_follower(&ops, num_queries);
        }
        self.enqueue(ops, num_queries, num_deletes, false)
    }

    /// [`Self::submit_tagged`] without blocking: the group is queued for
    /// the batch former and a [`SubmitTicket`] comes back immediately.
    /// `notify` (if any) fires once the result is stored — the network
    /// shards pass their poll waker so a completed batch wakes the event
    /// loop instead of parking a thread per submission. Validation errors
    /// are still synchronous; on a follower the ticket is fulfilled
    /// before returning (the follower read path has no batch former).
    pub fn submit_tagged_async(
        &self,
        ops: Vec<Update>,
        notify: Option<Box<dyn Fn() + Send + Sync>>,
    ) -> Result<SubmitTicket, ServiceError> {
        let n = self.num_vertices();
        let mut num_queries = 0usize;
        let mut num_deletes = 0usize;
        for op in &ops {
            let (Update::Insert(u, v) | Update::Delete(u, v) | Update::Query(u, v)) = *op;
            for x in [u, v] {
                if x as usize >= n {
                    return Err(ServiceError::VertexOutOfRange { v: x, n });
                }
            }
            num_queries += usize::from(matches!(op, Update::Query(..)));
            num_deletes += usize::from(matches!(op, Update::Delete(..)));
        }
        let reply = ReplySlot::with_notify(notify);
        if ops.is_empty() {
            reply.fulfill(Ok(Vec::new()));
            return Ok(SubmitTicket { reply });
        }
        if self.role() == Role::Follower {
            reply.fulfill(self.answer_on_follower(&ops, num_queries));
            return Ok(SubmitTicket { reply });
        }
        {
            let mut q = self.inner.q.lock();
            if q.closed {
                return Err(ServiceError::Closed);
            }
            q.queued_ops += ops.len();
            q.queue.push_back(Pending {
                num_queries,
                num_deletes,
                ops,
                enqueued: Instant::now(),
                reply: Arc::clone(&reply),
                durable_snapshot: false,
            });
        }
        self.inner.work_cv.notify_all();
        Ok(SubmitTicket { reply })
    }

    /// Answers many connectivity queries against **one** view acquire,
    /// skipping the batch former: the read-coalescing primitive behind
    /// cross-connection batch execution in the network shards. On
    /// wait-free engines the whole group runs concurrently with in-flight
    /// batches; on a phased follower it serializes with the replication
    /// apply (one lock for the whole group instead of one per query). On
    /// a phased *primary* direct reads would race the batch former, so
    /// the group falls back to one batched submission — still a single
    /// epoch acquire, just a linearized one.
    pub fn query_many_tagged(&self, pairs: &[(u32, u32)]) -> Result<TaggedAnswers, ServiceError> {
        let n = self.num_vertices();
        for &(u, v) in pairs {
            for x in [u, v] {
                if x as usize >= n {
                    return Err(ServiceError::VertexOutOfRange { v: x, n });
                }
            }
        }
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(ServiceError::Closed);
        }
        if self.inner.engine.mode() == RunMode::Phased && self.role() == Role::Primary {
            return self.submit_tagged(pairs.iter().map(|&(u, v)| Update::Query(u, v)).collect());
        }
        let t0 = Instant::now();
        let _guard = match self.inner.engine.mode() {
            RunMode::WaitFree => None,
            RunMode::Phased => Some(self.inner.apply_mx.lock()),
        };
        let answers = self.inner.engine.connected_many_with_gen(pairs);
        self.inner.obs.metrics.queries_total.add(pairs.len() as u64);
        self.inner.obs.metrics.latency_ns.record_n(
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            pairs.len() as u64,
        );
        Ok(answers)
    }

    /// The follower read path: no batch former, no epoch bump — queries
    /// are answered straight off the engine at whatever replication
    /// epoch the follower has reached (readers see at *least* the state
    /// of the reported [`Client::epoch`]; `WAIT` turns that bound into
    /// read-your-writes). Inserts and deletes are rejected: a follower's
    /// only write path is the replication stream.
    fn answer_on_follower(
        &self,
        ops: &[Update],
        num_queries: usize,
    ) -> Result<TaggedAnswers, ServiceError> {
        if num_queries != ops.len() {
            return Err(ServiceError::ReadOnlyFollower);
        }
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(ServiceError::Closed);
        }
        let t0 = Instant::now();
        // Wait-free engines take concurrent reads during an insert batch
        // (paper Type (i)); phased engines must not, so reads serialize
        // with the replication apply there.
        let _guard = match self.inner.engine.mode() {
            RunMode::WaitFree => None,
            RunMode::Phased => Some(self.inner.apply_mx.lock()),
        };
        let answers = ops
            .iter()
            .map(|op| {
                let (Update::Insert(u, v) | Update::Delete(u, v) | Update::Query(u, v)) = *op;
                self.inner.engine.connected_with_gen(u, v)
            })
            .collect();
        self.inner.obs.metrics.queries_total.add(num_queries as u64);
        self.inner.obs.metrics.latency_ns.record_n(
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            num_queries as u64,
        );
        Ok(answers)
    }

    /// Applies one replicated insert-only WAL batch — `(epoch, inserts)`
    /// exactly as the primary logged it — to a follower's engine, then
    /// advances the follower's epoch to at least `epoch` (idempotent:
    /// re-delivered inserts re-apply harmlessly and the epoch never moves
    /// backwards). The primary also ships its durable snapshot's *edge
    /// set* through this path, giving the follower exact liveness for the
    /// deletions that may follow. Rejected on a primary.
    pub fn apply_replicated(&self, epoch: u64, edges: &[(u32, u32)]) -> Result<(), ServiceError> {
        let ops: Vec<Update> = edges.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
        self.apply_from_stream(epoch, &ops, "replicated batch")
    }

    /// Converges this follower's live edge set to *exactly* `edges` — the
    /// primary's durable snapshot shipped as an edge-set bootstrap. Unlike
    /// [`Client::apply_replicated`], which can only add, this retracts
    /// live edges absent from the snapshot: a follower that reconnects
    /// past a WAL prune horizon may hold edges whose deletions it never
    /// saw, and replaying the surviving WAL suffix would leave those
    /// phantoms live forever. Retractions classify through the normal
    /// delete path, so a forest retraction seals and rebuilds exactly as
    /// a replicated delete would. Idempotent; rejected on a primary.
    pub fn apply_replicated_edge_set(
        &self,
        epoch: u64,
        edges: &[(u32, u32)],
    ) -> Result<(), ServiceError> {
        if self.role() != Role::Follower {
            return Err(ServiceError::Config(
                "replicated edge-set bootstrap rejected: this service is a primary, not a \
                 follower"
                    .to_string(),
            ));
        }
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(ServiceError::Closed);
        }
        let n = self.num_vertices();
        validate_edges(edges, n, &format!("replicated edge-set bootstrap at epoch {epoch}"))?;
        let (ins, dels) = {
            let _apply = self.inner.apply_mx.lock();
            self.inner.engine.converge_to_edge_set(edges)
        };
        self.inner.obs.metrics.inserts_total.add(ins);
        self.inner.obs.metrics.deletes_total.add(dels);
        self.inner.bump_epoch_to(epoch);
        // The follower tails the same history, so its analytics view
        // converges at the honestly-replicated epoch.
        self.inner.engine.publish_analytics(epoch);
        self.inner.drain_sub_events();
        if self.inner.cfg.snapshot_every > 0 && epoch.is_multiple_of(self.inner.cfg.snapshot_every)
        {
            self.inner.publish_snapshot(epoch);
        }
        Ok(())
    }

    /// Applies one replicated deletion-bearing WAL batch — `(epoch, ops)`
    /// exactly as the primary logged it, inserts and deletions in
    /// submission order. Redelivering a *contiguous suffix* of the
    /// history through the head (what a reconnect replays) is idempotent:
    /// each edge's liveness is decided by the last operation that touches
    /// it, and the replay repeats those last operations in order.
    /// Rejected on a primary.
    pub fn apply_replicated_ops(&self, epoch: u64, ops: &[Update]) -> Result<(), ServiceError> {
        self.apply_from_stream(epoch, ops, "replicated delta")
    }

    /// Applies a replicated label snapshot (the legacy bootstrap record,
    /// shipped only for insert-only histories): the labeling is turned
    /// into spanning edges and merged in. Safe at any point in such a
    /// stream — the snapshot only states connectivity facts the primary
    /// already committed. Deletion-bearing primaries bootstrap via
    /// [`Client::apply_replicated`] with the real edge set instead, so
    /// the follower's liveness tracker never learns phantom edges.
    pub fn apply_replicated_labels(&self, epoch: u64, labels: &[u32]) -> Result<(), ServiceError> {
        let n = self.num_vertices();
        if labels.len() != n {
            return Err(ServiceError::Config(format!(
                "replicated snapshot covers {} vertices but this follower was started with \
                 n = {n}; restart with the primary's vertex count",
                labels.len()
            )));
        }
        let spanning: Vec<Update> = labels
            .iter()
            .enumerate()
            .filter(|&(v, &l)| l as usize != v)
            .map(|(v, &l)| Update::Insert(v as u32, l))
            .collect();
        self.apply_from_stream(epoch, &spanning, "replicated snapshot")
    }

    fn apply_from_stream(
        &self,
        epoch: u64,
        ops: &[Update],
        what: &str,
    ) -> Result<(), ServiceError> {
        if self.role() != Role::Follower {
            return Err(ServiceError::Config(format!(
                "{what} rejected: this service is a primary, not a follower"
            )));
        }
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(ServiceError::Closed);
        }
        let n = self.num_vertices();
        validate_ops(ops, n, &format!("{what} at epoch {epoch}"))?;
        let (mut ins, mut dels) = (0u64, 0u64);
        for op in ops {
            match op {
                Update::Insert(..) => ins += 1,
                Update::Delete(..) => dels += 1,
                Update::Query(..) => {}
            }
        }
        {
            let _apply = self.inner.apply_mx.lock();
            for chunk in ops.chunks(REPLAY_CHUNK) {
                self.inner.engine.process_batch(chunk);
            }
        }
        self.inner.obs.metrics.inserts_total.add(ins);
        self.inner.obs.metrics.deletes_total.add(dels);
        self.inner.bump_epoch_to(epoch);
        // Same contract as the edge-set bootstrap: the analytics view
        // advances with every applied replicated batch.
        self.inner.engine.publish_analytics(epoch);
        // A follower serves subscriptions off the replicated stream: the
        // merges this apply produced fire at the honestly-replicated
        // epoch just reached.
        self.inner.drain_sub_events();
        if self.inner.cfg.snapshot_every > 0 && epoch.is_multiple_of(self.inner.cfg.snapshot_every)
        {
            self.inner.publish_snapshot(epoch);
        }
        Ok(())
    }

    /// Blocks until the service's epoch reaches `target` (the `WAIT`
    /// protocol verb: on a follower this is the bounded-staleness
    /// contract — once it returns, every batch the primary committed up
    /// to `target` is visible here). Returns the epoch actually reached;
    /// times out with [`ServiceError::WaitTimeout`].
    pub fn wait_for_epoch(&self, target: u64, timeout: Duration) -> Result<u64, ServiceError> {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.epoch_mx.lock();
        loop {
            let at = self.epoch();
            if at >= target {
                return Ok(at);
            }
            if self.inner.closed.load(Ordering::Acquire) {
                return Err(ServiceError::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServiceError::WaitTimeout { target, at });
            }
            self.inner.epoch_cv.wait_for(&mut g, deadline - now);
        }
    }

    /// Registers a subscription (the `SUB` verb): `kind` selects a pair
    /// trigger (`u`/`v` — fire once when they connect) or a component
    /// trigger (`v` watched, `u` ignored — fire on every identity change
    /// of `v`'s component). `sink` receives pushed events (`None`
    /// registers detached, as recovery does); `durable` logs an `'S'`
    /// record so the subscription survives restarts — it requires the
    /// WAL and is therefore a primary-only option. Returns the assigned
    /// id and the registration epoch; a pair already connected at
    /// registration fires immediately (at that epoch).
    pub fn subscribe(
        &self,
        kind: SubKind,
        u: u32,
        v: u32,
        durable: bool,
        sink: Option<Arc<dyn SubSink>>,
    ) -> Result<(u64, u64), ServiceError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(ServiceError::Closed);
        }
        let n = self.num_vertices();
        let endpoints: &[u32] = match kind {
            SubKind::Pair => &[u, v],
            SubKind::Component => &[v],
        };
        for &x in endpoints {
            if x as usize >= n {
                return Err(ServiceError::VertexOutOfRange { v: x, n });
            }
        }
        if durable && self.inner.wal.is_none() {
            return Err(ServiceError::DurabilityDisabled);
        }
        let id = self.inner.subs.reserve();
        // Channel before trigger: a registration-time fire must find its
        // delivery channel already open.
        self.inner.subs.open(id, durable, sink);
        let epoch = self.epoch();
        if durable {
            let res = self
                .inner
                .wal
                .as_ref()
                .expect("checked above")
                .lock()
                .append_sub(&SubWalOp::Register { id, kind, u, v, epoch });
            if let Err(e) = res {
                self.inner.subs.close(id);
                let err = ServiceError::from(e);
                self.inner.note_wal_error(&err.to_string());
                return Err(err);
            }
        }
        self.inner.engine.subs_register(id, kind, u, v, durable, epoch);
        self.inner.obs.metrics.subs_active.set(self.inner.engine.subs_len() as u64);
        // Deliver a registration-time fire (already-connected pair)
        // promptly instead of waiting for the next batch — but never
        // stamp another batch's in-flight fires with a stale epoch.
        self.inner.drain_sub_events_prompt();
        Ok((id, epoch))
    }

    /// Cancels a subscription (the `UNSUB` verb). Durable cancellations
    /// log an `'S'` cancel record (best effort — the trigger is gone
    /// either way; a failure is surfaced through `WALSTATS` and at worst
    /// re-registers a one-shot trigger on recovery).
    pub fn unsubscribe(&self, id: u64) -> Result<(), ServiceError> {
        let Some(durable) = self.inner.engine.subs_cancel(id) else {
            return Err(ServiceError::UnknownSubscription { id });
        };
        if durable {
            if let Some(w) = &self.inner.wal {
                if let Err(e) = w.lock().append_sub(&SubWalOp::Cancel { id }) {
                    self.inner.note_wal_error(&e.to_string());
                }
            }
        }
        self.inner.subs.close(id);
        self.inner.obs.metrics.subs_active.set(self.inner.engine.subs_len() as u64);
        Ok(())
    }

    /// Re-binds a sink to a durable subscription (the `SUB ATTACH` verb)
    /// and replays retained events with sequence numbers past
    /// `after_seq` — the resume path after a subscriber crash. Returns
    /// the highest sequence number assigned to the subscription so far.
    pub fn attach_sub(
        &self,
        id: u64,
        after_seq: u64,
        sink: Arc<dyn SubSink>,
    ) -> Result<u64, ServiceError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(ServiceError::Closed);
        }
        match self.inner.subs.attach(id, after_seq, sink) {
            Ok(last_seq) => Ok(last_seq),
            Err(AttachError::Unknown) => Err(ServiceError::UnknownSubscription { id }),
        }
    }

    /// Detaches the sink from a subscription without cancelling it: the
    /// connection-close path. A durable subscription keeps retaining
    /// events for a later [`Client::attach_sub`]; an ephemeral one
    /// should be [`Client::unsubscribe`]d instead.
    pub fn detach_sub(&self, id: u64) {
        self.inner.subs.detach(id);
    }

    /// Lists the live subscriptions (the `SUBS` verb), id-ascending.
    pub fn subs_info(&self) -> Vec<SubInfo> {
        self.inner.engine.subs_list()
    }

    /// This service's replication role.
    pub fn role(&self) -> Role {
        self.inner.cfg.role
    }

    /// Whether the service has shut down (new submissions are rejected).
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Queues a submission (or a zero-op control carrying only a
    /// durable-snapshot request) and blocks for its batch.
    fn enqueue(
        &self,
        ops: Vec<Update>,
        num_queries: usize,
        num_deletes: usize,
        durable_snapshot: bool,
    ) -> Result<TaggedAnswers, ServiceError> {
        let reply = ReplySlot::new();
        {
            let mut q = self.inner.q.lock();
            if q.closed {
                return Err(ServiceError::Closed);
            }
            q.queued_ops += ops.len();
            q.queue.push_back(Pending {
                num_queries,
                num_deletes,
                ops,
                enqueued: Instant::now(),
                reply: Arc::clone(&reply),
                durable_snapshot,
            });
        }
        self.inner.work_cv.notify_all();
        reply.wait()
    }

    /// Inserts one edge (batched like any submission).
    pub fn insert(&self, u: u32, v: u32) -> Result<(), ServiceError> {
        self.submit(vec![Update::Insert(u, v)]).map(|_| ())
    }

    /// Deletes one edge (batched like any submission). Deleting an edge
    /// that is absent — never inserted, or already deleted — is a no-op,
    /// as is deleting a live non-forest edge (a cycle edge cannot change
    /// connectivity). Deleting a spanning-forest edge seals the current
    /// generation and schedules a background rebuild; queries serve the
    /// sealed labels until the next generation commits (`DESIGN.md` §9).
    pub fn delete(&self, u: u32, v: u32) -> Result<(), ServiceError> {
        self.submit(vec![Update::Delete(u, v)]).map(|_| ())
    }

    /// Asks whether `u` and `v` are connected (batched like any
    /// submission; linearized at its batch).
    pub fn query(&self, u: u32, v: u32) -> Result<bool, ServiceError> {
        Ok(self.submit(vec![Update::Query(u, v)])?[0])
    }

    /// [`Self::query`], additionally reporting the sealed generation the
    /// answer was served from: `(answer, None)` for an exact answer,
    /// `(answer, Some(gen))` when a rebuild was in flight and the answer
    /// came from generation `gen`'s sealed labels. The pair is read
    /// atomically with the answer (the `QG` protocol verb).
    pub fn query_gen(&self, u: u32, v: u32) -> Result<(bool, Option<u64>), ServiceError> {
        Ok(self.submit_tagged(vec![Update::Query(u, v)])?[0])
    }

    /// Lock-free read-side query: answered directly against the live
    /// structure without going through the batch former. On wait-free
    /// engines this runs concurrently with in-flight batches (Type (i));
    /// on phased engines it falls back to a batched [`Self::query`].
    pub fn query_now(&self, u: u32, v: u32) -> Result<bool, ServiceError> {
        let n = self.num_vertices();
        for x in [u, v] {
            if x as usize >= n {
                return Err(ServiceError::VertexOutOfRange { v: x, n });
            }
        }
        match self.inner.engine.mode() {
            RunMode::WaitFree => Ok(self.inner.engine.connected(u, v)),
            RunMode::Phased => self.query(u, v),
        }
    }

    /// The current component label of `v` without snapshotting the whole
    /// labeling. Exact between batches on a clean generation; while a
    /// rebuild is in flight it reads the sealed generation's labels.
    pub fn current_label(&self, v: u32) -> Result<u32, ServiceError> {
        let n = self.num_vertices();
        if v as usize >= n {
            return Err(ServiceError::VertexOutOfRange { v, n });
        }
        Ok(self.inner.engine.current_label(v))
    }

    /// Current number of connected components, served O(1) from the
    /// delta-maintained analytics publication — no label scan. May lag
    /// an in-flight batch (the batcher publishes before fulfilling its
    /// pendings, so a client always observes its own completed writes);
    /// during a sealed generation it reports the frozen pre-deletion
    /// partition, exactly like `Q` does.
    pub fn num_components(&self) -> usize {
        self.inner.engine.analytics_view().components as usize
    }

    /// The current analytics view — one `Arc` clone off the
    /// epoch-versioned publication, never contending with the write
    /// path. Backs the `TOPK`, `HIST` and `SIZE` protocol verbs; on a
    /// follower it converges at the honestly-replicated epoch.
    pub fn analytics(&self) -> Arc<AnalyticsView> {
        self.inner.engine.analytics_view()
    }

    /// The `k` largest components as `(root, size)` in descending size
    /// order (singletons excluded; at most
    /// [`crate::analytics::TOPK_CAP`] are materialized per view),
    /// with the view's `(epoch, generation, sealed)` stamp.
    pub fn topk(&self, k: usize) -> (Vec<(u32, u64)>, u64, u64, bool) {
        let view = self.inner.engine.analytics_view();
        (view.topk(k).to_vec(), view.epoch, view.generation, view.sealed)
    }

    /// `(root, size)` of `v`'s component, read lock-free from the
    /// analytics core (the `SIZE` verb). Between publications the
    /// answer may run ahead of the view's epoch, never behind it.
    pub fn component_size(&self, v: u32) -> Result<(u32, u64), ServiceError> {
        let n = self.num_vertices();
        if v as usize >= n {
            return Err(ServiceError::VertexOutOfRange { v, n });
        }
        Ok(self.inner.engine.analytics_view().component_of(v))
    }

    /// Number of completed batches (the current epoch).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// The most recently published label snapshot (the identity labeling
    /// at epoch 0 before any snapshot is published). Never blocks
    /// writers: this only clones an `Arc` under a short pointer lock.
    pub fn snapshot(&self) -> Arc<LabelSnapshot> {
        Arc::clone(&self.inner.snapshot.lock())
    }

    /// Builds and publishes a fresh snapshot from the read-only spine
    /// path right now. Exact if no batch is in flight; a concurrent
    /// wait-free batch may tear it (labels then mix pre/post-merge
    /// values for that batch only). The stamped epoch is a lower bound:
    /// the labels contain at least every batch up to it. The published
    /// snapshot's epoch never goes backwards, so a newer periodic
    /// snapshot is not overwritten by a slower on-demand build.
    pub fn snapshot_now(&self) -> Arc<LabelSnapshot> {
        self.inner.publish_snapshot(self.epoch())
    }

    /// Whether the service runs with a write-ahead log.
    pub fn wal_enabled(&self) -> bool {
        self.inner.wal.is_some()
    }

    /// Forces the WAL to disk right now, regardless of the fsync policy
    /// (the `FLUSH` protocol verb). Everything acknowledged before this
    /// returns survives a machine crash.
    pub fn flush_wal(&self) -> Result<(), ServiceError> {
        let w = self.inner.wal.as_ref().ok_or(ServiceError::DurabilityDisabled)?;
        w.lock().flush().map_err(|e| {
            let err = ServiceError::from(e);
            self.inner.note_wal_error(&err.to_string());
            err
        })
    }

    /// Writes a durable label snapshot at the next batch boundary and
    /// blocks until it is on disk (the `SNAPSHOT` protocol verb); returns
    /// the epoch it is keyed by. Recovery from that epoch replays only
    /// the WAL suffix past it, and fully-covered segments are pruned.
    pub fn durable_snapshot(&self) -> Result<u64, ServiceError> {
        if !self.wal_enabled() {
            return Err(ServiceError::DurabilityDisabled);
        }
        self.enqueue(Vec::new(), 0, 0, true)?;
        Ok(self.inner.durable_snapshot_epoch.load(Ordering::Acquire))
    }

    /// The generation currently serving queries, its dirty flag, and the
    /// engine's delete-classification counters (the `GEN` protocol verb).
    pub fn generation_info(&self) -> GenInfo {
        self.inner.engine.info()
    }

    /// Blocks until no generation rebuild is in flight (the `QUIESCE`
    /// protocol verb) and returns the clean generation then serving.
    /// Once it returns — and until the next forest deletion — queries
    /// are exact, not sealed-generation stale, which is what the churn
    /// loadgen's exact validation phases rely on. Times out with
    /// [`ServiceError::QuiesceTimeout`], reporting the generation still
    /// serving.
    pub fn quiesce(&self, timeout: Duration) -> Result<u64, ServiceError> {
        self.inner.engine.quiesce(timeout).map_err(|at| ServiceError::QuiesceTimeout { at })
    }

    /// One-line WAL statistics (the `WALSTATS` protocol verb): policy,
    /// segment/record/byte/sync counters, the last logged and
    /// last-snapshotted epochs, torn bytes dropped by recovery, and the
    /// most recent durability error if any. A compat shim over the
    /// metrics registry — the counters are the WAL's write-time mirrors,
    /// so this takes no WAL lock and its wire spelling is unchanged.
    pub fn wal_stats(&self) -> Result<String, ServiceError> {
        if self.inner.wal.is_none() {
            return Err(ServiceError::DurabilityDisabled);
        }
        let m = &self.inner.obs.metrics;
        let stats = WalStats {
            policy: self
                .inner
                .cfg
                .durability
                .as_ref()
                .expect("a live wal implies a durability config")
                .fsync,
            segments: m.wal_segments.get(),
            records: m.wal_records_total.get(),
            appended_bytes: m.wal_bytes_total.get(),
            syncs: m.wal_fsyncs_total.get(),
            last_epoch: m.wal_last_epoch.get(),
            torn_bytes: m.wal_torn_bytes.get(),
        };
        let snap_epoch = self.inner.durable_snapshot_epoch.load(Ordering::Acquire);
        let last_error = self
            .inner
            .last_wal_error
            .lock()
            .as_deref()
            .map_or_else(|| "-".to_string(), sanitize_error_token);
        Ok(format!("{stats} snap_epoch={snap_epoch} last_error={last_error}"))
    }

    /// A point-in-time stats view — a compat shim over the metrics
    /// registry for the op counters and latency histogram. The shard
    /// counters aggregate across generation rebuilds (retired engines'
    /// counts are folded in), so they never regress.
    pub fn stats(&self) -> ServiceStats {
        let (intra_inserts, cross_inserts, forwarded) = self.inner.engine.shard_counters();
        let m = &self.inner.obs.metrics;
        let inserts = m.inserts_total.get();
        let deletes = m.deletes_total.get();
        let queries = m.queries_total.get();
        ServiceStats {
            epoch: self.epoch(),
            ops: inserts + deletes + queries,
            inserts,
            deletes,
            queries,
            intra_inserts,
            cross_inserts,
            forwarded,
            num_components: self.inner.engine.analytics_view().components as usize,
            latency_ns: m.latency_ns.percentiles(),
            latency_summary: m.latency_ns.to_string(),
        }
    }

    /// The service's observability plane (shared by the wire layer, the
    /// replication hub, and embedders that want to scrape in-process).
    pub fn observability(&self) -> Arc<Obs> {
        Arc::clone(&self.inner.obs)
    }

    /// Renders the metrics registry in the `METRICS` verb's exposition
    /// format, without the `# EOF` terminator (the wire layer and file
    /// writers append it). Lock-free: every value is a relaxed atomic
    /// load of a write-time mirror — no batcher, WAL, or engine lock.
    pub fn render_metrics(&self) -> Vec<String> {
        self.inner.obs.metrics.render()
    }

    /// Renders the most recent `n` flight-recorder events (the `TRACE`
    /// verb), oldest first, without the `# EOF` terminator.
    pub fn trace_events(&self, n: usize) -> Vec<String> {
        self.inner.obs.recorder.render_last(n)
    }
}

/// Collapses a free-form error message into one whitespace-free token so
/// it can ride the one-line `key=value` grammar of `WALSTATS`: a
/// `Durability` error carries paths, offsets, and io::Error text with
/// spaces (and potentially newlines), and interpolating it raw would
/// break every split-on-whitespace `STATS` parser. Whitespace runs
/// become a single `_`; an empty message renders as the `-` sentinel.
fn sanitize_error_token(s: &str) -> String {
    let out = s.split_whitespace().collect::<Vec<_>>().join("_");
    if out.is_empty() {
        "-".to_string()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::FsyncPolicy;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        crate::scratch_dir(&format!("svc_{tag}"))
    }

    fn durable_cfg(n: usize, dir: &std::path::Path) -> ServiceConfig {
        ServiceConfig {
            n,
            shards: 2,
            batch_max_wait: Duration::from_micros(20),
            durability: Some(DurabilityConfig {
                fsync: FsyncPolicy::Off,
                ..DurabilityConfig::new(dir)
            }),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn durable_service_survives_restart() {
        let dir = tmp_dir("restart");
        {
            let mut svc = Service::start(durable_cfg(32, &dir)).expect("service");
            let c = svc.client();
            c.insert(1, 2).expect("insert");
            c.insert(2, 3).expect("insert");
            c.insert(10, 11).expect("insert");
            assert!(c.wal_enabled());
            c.flush_wal().expect("flush");
            assert_eq!(c.epoch(), 3);
            svc.shutdown();
        }
        let mut svc = Service::start(durable_cfg(32, &dir)).expect("recovers");
        let c = svc.client();
        // Epoch resumes where the durable history ended; state is exact.
        // (Read-side queries, so nothing here forms new batches.)
        assert_eq!(c.epoch(), 3);
        assert!(c.query_now(1, 3).expect("query"));
        assert!(c.query_now(10, 11).expect("query"));
        assert!(!c.query_now(1, 10).expect("query"));
        assert_eq!(c.num_components(), 32 - 3);
        // The initial published snapshot reflects the recovered state.
        let snap = c.snapshot();
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.num_components, 32 - 3);
        // New traffic continues the epoch sequence durably.
        c.insert(3, 4).expect("insert");
        assert_eq!(c.epoch(), 4);
        svc.shutdown();
        let mut svc = Service::start(durable_cfg(32, &dir)).expect("recovers again");
        assert!(svc.client().query_now(1, 4).expect("query"));
        assert_eq!(svc.client().epoch(), 4);
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_snapshot_bounds_replay_and_prunes() {
        let dir = tmp_dir("snap");
        {
            let mut svc = Service::start(durable_cfg(16, &dir)).expect("service");
            let c = svc.client();
            c.insert(0, 1).expect("insert");
            c.insert(1, 2).expect("insert");
            let se = c.durable_snapshot().expect("snapshot");
            assert!(se >= 2, "snapshot epoch {se}");
            c.insert(8, 9).expect("insert past the snapshot");
            let stats = c.wal_stats().expect("wal stats");
            assert!(stats.contains("snap_epoch="), "{stats}");
            assert!(stats.contains("last_error=-"), "{stats}");
            svc.shutdown();
        }
        // Recovery = snapshot + suffix: both the pre- and post-snapshot
        // edges are there.
        let mut svc = Service::start(durable_cfg(16, &dir)).expect("recovers");
        let c = svc.client();
        assert!(c.query(0, 2).expect("query"));
        assert!(c.query(8, 9).expect("query"));
        assert!(!c.query(0, 8).expect("query"));
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_stats_last_error_is_one_whitespace_free_token() {
        assert_eq!(sanitize_error_token(""), "-");
        assert_eq!(sanitize_error_token("plain"), "plain");
        assert_eq!(
            sanitize_error_token("wal append failed: No space left\non device (os error 28)"),
            "wal_append_failed:_No_space_left_on_device_(os_error_28)"
        );
        let dir = tmp_dir("last_error");
        let mut svc = Service::start(durable_cfg(16, &dir)).expect("service");
        let c = svc.client();
        c.insert(0, 1).expect("insert");
        // Plant a multi-word, multi-line error the way the append / sync
        // paths do, then check the one-line grammar survives it: the
        // whole dump must stay a single line of whitespace-free
        // `key=value` tokens.
        c.inner.note_wal_error("boom with spaces\nand a newline");
        let stats = c.wal_stats().expect("wal stats");
        assert!(stats.contains("last_error=boom_with_spaces_and_a_newline"), "{stats}");
        assert_eq!(stats.lines().count(), 1, "{stats}");
        for token in stats.split(' ') {
            assert!(token.contains('='), "non key=value token {token:?} in {stats}");
        }
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_disabled_is_typed() {
        let mut svc = small_service();
        let c = svc.client();
        assert!(!c.wal_enabled());
        assert_eq!(c.flush_wal(), Err(ServiceError::DurabilityDisabled));
        assert_eq!(c.durable_snapshot(), Err(ServiceError::DurabilityDisabled));
        assert_eq!(c.wal_stats(), Err(ServiceError::DurabilityDisabled));
        svc.shutdown();
    }

    #[test]
    fn restart_with_wrong_n_is_rejected_with_context() {
        let dir = tmp_dir("wrong_n");
        {
            let mut svc = Service::start(durable_cfg(16, &dir)).expect("service");
            svc.client().insert(14, 15).expect("insert");
            svc.shutdown();
        }
        let err = match Service::start(durable_cfg(8, &dir)) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("recovery with a smaller n must fail"),
        };
        assert!(err.contains("n = 8"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn small_service() -> Service {
        Service::start(ServiceConfig {
            n: 64,
            shards: 4,
            batch_max_wait: Duration::from_micros(50),
            ..ServiceConfig::default()
        })
        .expect("service starts")
    }

    #[test]
    fn follower_applies_stream_and_serves_reads_at_honest_epoch() {
        let mut svc = Service::start(ServiceConfig {
            n: 64,
            shards: 4,
            role: Role::Follower,
            ..ServiceConfig::default()
        })
        .expect("follower starts");
        let c = svc.client();
        assert_eq!(c.role(), Role::Follower);
        assert_eq!(c.epoch(), 0);
        // Local writes are rejected with the routing hint.
        assert_eq!(c.insert(1, 2), Err(ServiceError::ReadOnlyFollower));
        assert_eq!(
            c.submit(vec![Update::Insert(1, 2), Update::Query(1, 2)]),
            Err(ServiceError::ReadOnlyFollower)
        );
        // The replication stream is the only write path; epochs mirror
        // the primary's (here: a snapshot at 3 then batches 4 and 5).
        let mut labels: Vec<u32> = (0..64).collect();
        labels[2] = 1; // {1, 2} connected at the snapshot
        c.apply_replicated_labels(3, &labels).expect("snapshot bootstrap");
        assert_eq!(c.epoch(), 3);
        c.apply_replicated(4, &[(2, 3)]).expect("batch");
        c.apply_replicated(5, &[]).expect("query-only epoch");
        assert_eq!(c.epoch(), 5);
        assert!(c.query(1, 3).expect("read"));
        assert!(!c.query(1, 4).expect("read"));
        // Redelivery (a reconnect replays a suffix) is harmless and the
        // epoch never regresses.
        c.apply_replicated(4, &[(2, 3)]).expect("redelivery");
        assert_eq!(c.epoch(), 5);
        let stats = c.stats();
        assert!(stats.queries >= 2);
        svc.shutdown();
        assert_eq!(c.query(1, 3), Err(ServiceError::Closed));
    }

    #[test]
    fn follower_rejects_durability_and_primary_rejects_apply() {
        let dir = tmp_dir("follower_wal");
        let err = match Service::start(ServiceConfig {
            n: 16,
            role: Role::Follower,
            durability: Some(DurabilityConfig::new(&dir)),
            ..ServiceConfig::default()
        }) {
            Err(e) => e,
            Ok(_) => panic!("follower + wal must be rejected"),
        };
        assert!(err.to_string().contains("belongs to the primary"), "{err}");
        let mut svc = small_service();
        let err = svc.client().apply_replicated(1, &[(0, 1)]).expect_err("primary apply");
        assert!(err.to_string().contains("not a follower"), "{err}");
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wait_for_epoch_blocks_until_reached_and_times_out_honestly() {
        let mut svc = Service::start(ServiceConfig {
            n: 32,
            shards: 2,
            role: Role::Follower,
            ..ServiceConfig::default()
        })
        .expect("follower starts");
        let c = svc.client();
        // Already-reached targets return immediately.
        assert_eq!(c.wait_for_epoch(0, Duration::from_millis(1)).expect("no wait"), 0);
        // A timeout reports both sides of the gap.
        assert_eq!(
            c.wait_for_epoch(7, Duration::from_millis(20)),
            Err(ServiceError::WaitTimeout { target: 7, at: 0 })
        );
        // A concurrent apply wakes the waiter.
        let waiter = c.clone();
        let h = std::thread::spawn(move || waiter.wait_for_epoch(2, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(10));
        c.apply_replicated(2, &[(0, 1)]).expect("apply");
        assert_eq!(h.join().expect("thread").expect("wait succeeds"), 2);
        svc.shutdown();
        assert_eq!(c.wait_for_epoch(99, Duration::from_secs(10)), Err(ServiceError::Closed));
    }

    #[test]
    fn wait_for_epoch_works_on_primary_batches() {
        let mut svc = small_service();
        let c = svc.client();
        c.insert(0, 1).expect("insert");
        let e = c.epoch();
        assert!(c.wait_for_epoch(e, Duration::from_secs(5)).expect("reached") >= e);
        svc.shutdown();
    }

    #[test]
    fn insert_then_query_roundtrip() {
        let mut svc = small_service();
        let c = svc.client();
        c.insert(1, 2).expect("insert");
        c.insert(2, 3).expect("insert");
        assert!(c.query(1, 3).expect("query"));
        assert!(!c.query(1, 4).expect("query"));
        assert!(c.query_now(1, 3).expect("query_now"));
        assert_eq!(c.current_label(1).expect("label"), c.current_label(3).expect("label"));
        assert_eq!(c.num_components(), 62);
        let stats = c.stats();
        assert_eq!(stats.inserts, 2);
        assert!(stats.queries >= 2);
        assert!(stats.epoch >= 1);
        assert!(stats.latency_summary.contains("p999="));
        svc.shutdown();
    }

    #[test]
    fn submit_validates_and_preserves_query_order() {
        let mut svc = small_service();
        let c = svc.client();
        let r = c
            .submit(vec![
                Update::Insert(0, 1),
                Update::Query(0, 1),
                Update::Insert(2, 3),
                Update::Query(63, 0),
            ])
            .expect("submit");
        assert_eq!(r.len(), 2);
        assert!(!r[1], "63 is isolated from 0 in every linearization");
        assert_eq!(
            c.submit(vec![Update::Insert(0, 64)]),
            Err(ServiceError::VertexOutOfRange { v: 64, n: 64 })
        );
        assert_eq!(c.submit(Vec::new()).expect("empty"), Vec::new());
        svc.shutdown();
    }

    #[test]
    fn shutdown_closes_queue() {
        let mut svc = small_service();
        let c = svc.client();
        c.insert(0, 1).expect("insert");
        svc.shutdown();
        svc.shutdown(); // idempotent
        assert_eq!(c.insert(2, 3), Err(ServiceError::Closed));
        assert_eq!(c.query(4, 5), Err(ServiceError::Closed));
        // Read paths stay alive after shutdown.
        assert!(c.query_now(0, 1).expect("read"));
    }

    #[test]
    fn snapshots_are_epoch_versioned() {
        let mut svc = Service::start(ServiceConfig {
            n: 16,
            shards: 2,
            snapshot_every: 1,
            batch_max_wait: Duration::from_micros(10),
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let c = svc.client();
        let s0 = c.snapshot();
        assert_eq!(s0.epoch, 0);
        assert_eq!(s0.num_components, 16);
        c.insert(3, 4).expect("insert");
        c.insert(4, 5).expect("insert");
        let s = c.snapshot_now();
        assert_eq!(s.num_components, 14);
        assert_eq!(s.labels[3], s.labels[5]);
        assert!(s.epoch >= 1);
        // The periodic snapshot advanced with the batches too.
        let published = c.snapshot();
        assert!(published.epoch >= 1);
        svc.shutdown();
    }

    #[test]
    fn many_threads_one_service() {
        let mut svc = Service::start(ServiceConfig {
            n: 4096,
            shards: 4,
            batch_max_wait: Duration::from_micros(200),
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let c = svc.client();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = c.clone();
                s.spawn(move || {
                    // Each thread links its own arithmetic progression.
                    let base = t * 1024;
                    for i in 0..255u32 {
                        c.insert(base + i, base + i + 1).expect("insert");
                    }
                    assert!(c.query(base, base + 255).expect("query"));
                    assert!(!c.query(base, (base + 1024) % 4096).expect("query"));
                });
            }
        });
        let stats = c.stats();
        assert_eq!(stats.inserts, 4 * 255);
        svc.shutdown();
    }
}
