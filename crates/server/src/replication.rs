//! WAL shipping: the primary streams its durable history — label
//! snapshots and write-ahead-log batch records — over a length-prefixed
//! TCP protocol to read-replica followers.
//!
//! ## Wire protocol
//!
//! Both directions start with the magic [`REPL_MAGIC`] and then carry
//! [`cc_graph::io::binary`] record frames (`len | crc32 | payload`) — the
//! exact framing WAL segments and snapshots use on disk, so a shipped
//! record is byte-identical to its durable source. The first payload byte
//! tags the record:
//!
//! | tag   | payload after the tag                       | direction | meaning |
//! |-------|---------------------------------------------|-----------|---------|
//! | `'H'` | `last_epoch: u64 LE`                        | follower → primary | handshake: resume past this epoch |
//! | `'S'` | [`binary::encode_labels`] `(epoch, labels)` | primary → follower | legacy label bootstrap (label-only snapshot) |
//! | `'E'` | [`binary::encode_edge_batch`] `(epoch, live edges)` | primary → follower | snapshot bootstrap: the exact live edge set |
//! | `'B'` | [`binary::encode_edge_batch`] `(epoch, inserts)` | primary → follower | one insert-only WAL batch record |
//! | `'D'` | [`wal::encode_update_batch`] `(epoch, ops)` | primary → follower | one deletion-bearing WAL batch record |
//!
//! ## Primary side
//!
//! [`serve_replication`] binds a listener next to the query port. Each
//! follower connection gets a sender thread that reads the handshake,
//! decides whether the follower needs a snapshot bootstrap (its epoch
//! predates the newest durable snapshot — older WAL segments may already
//! be pruned), and then *tails the WAL directory* through
//! [`crate::wal::WalCursor`]: the sender reads the same segment files the
//! service is appending to, so replication needs no hooks in the hot
//! write path at all. A [`crate::wal::TailEvent::Pruned`] mid-stream
//! (a durable snapshot retired the cursor's segment) re-bootstraps from
//! the newest snapshot — correct because the snapshot states *exactly*
//! the live edge set at its epoch, which is ahead of everything shipped
//! so far, and the follower applies it by *converging* to that set
//! ([`Client::apply_replicated_edge_set`]): missing edges are inserted
//! and, crucially, live edges absent from the snapshot are retracted.
//! The retraction matters whenever the follower's epoch predates the
//! snapshot by more than the surviving WAL — deletions committed in
//! that gap were pruned with their segments, so no later record would
//! ever remove the follower's stale edges. When a snapshot carries
//! its edge set, that set ships (`'E'`) *instead of* the labeling:
//! label-derived spanning edges would teach the follower's liveness
//! tracker phantom edges and corrupt its later delete classification.
//! The label record (`'S'`) survives only for legacy label-only
//! snapshot stores, whose histories are insert-only by construction.
//!
//! ## Follower side
//!
//! [`run_follower`] connects (and reconnects, forever, until shutdown) to
//! the primary, handshakes with the follower's current epoch, and applies
//! every received record through [`Client::apply_replicated`] /
//! [`Client::apply_replicated_ops`] / [`Client::apply_replicated_edge_set`]
//! / [`Client::apply_replicated_labels`].
//! Socket reads carry a timeout wrapped in [`binary::RetryRead`], so a
//! shutdown request interrupts a quiet stream without ever tearing a
//! half-received record. Everything is idempotent end to end: a reconnect
//! replays a *contiguous suffix* of the history in order, so each edge's
//! liveness is re-decided by the same last operation that decided it the
//! first time, and the follower's epoch is a `max`, never a blind store.
//!
//! The three follower-recovery invariants this module upholds are spelled
//! out in DESIGN.md §8.

use crate::obs::{Event, FollowerSlot, Obs};
use crate::service::Client;
use crate::snapshot;
use crate::wal::{self, TailEvent, WalCursor};
use cc_graph::io::binary;
use connectit::Update;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Magic prefix of both directions of the replication stream.
pub const REPL_MAGIC: &[u8; 8] = b"CCREPL01";

/// Record tag: follower handshake (`last_epoch: u64 LE`).
pub const TAG_HELLO: u8 = b'H';
/// Record tag: legacy label-snapshot bootstrap
/// ([`binary::encode_labels`]; shipped only when the durable snapshot
/// has no edge set).
pub const TAG_SNAPSHOT: u8 = b'S';
/// Record tag: edge-set snapshot bootstrap ([`binary::encode_edge_batch`]
/// over the exact live edge set at the snapshot epoch).
pub const TAG_EDGES: u8 = b'E';
/// Record tag: one insert-only WAL batch ([`binary::encode_edge_batch`]).
pub const TAG_BATCH: u8 = b'B';
/// Record tag: one deletion-bearing WAL batch
/// ([`wal::encode_update_batch`], inserts and deletions in order).
pub const TAG_DELTA: u8 = b'D';
/// Record tag: idle heartbeat (`last_sent_epoch: u64 LE`). Followers
/// ignore it; its purpose is making a caught-up sender *write*, so a
/// dead follower surfaces as a send error instead of a leaked sender
/// thread polling the WAL forever.
pub const TAG_PING: u8 = b'P';

/// How long a caught-up sender sleeps before polling the WAL again. Kept
/// short: this bounds the added replication latency over the primary's
/// group-commit window.
const TAIL_POLL: Duration = Duration::from_millis(2);

/// How often a caught-up sender heartbeats the follower.
const HEARTBEAT: Duration = Duration::from_millis(500);

/// Socket read timeout — the granularity at which blocked reads notice a
/// shutdown request (reads retry through [`binary::RetryRead`], so a
/// timeout never tears a record).
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// How long a follower waits between reconnect attempts.
const RECONNECT_PAUSE: Duration = Duration::from_millis(300);

fn proto_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Counters a live replication endpoint exposes (all monotone).
#[derive(Debug, Default)]
pub struct ReplicationCounters {
    /// Batch records shipped (primary) or applied (follower).
    pub batches: AtomicU64,
    /// Snapshot records shipped (primary) or applied (follower).
    pub snapshots: AtomicU64,
    /// Follower only: completed (re)connections to the primary.
    pub connects: AtomicU64,
}

/// A running replication listener on the primary. Dropping it (or
/// calling [`ReplicationHub::stop`]) stops accepting and asks every
/// sender thread to wind down.
pub struct ReplicationHub {
    shared: Arc<HubShared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

struct HubShared {
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    counters: ReplicationCounters,
    /// The primary service's observability plane, when the hub was
    /// started with [`serve_replication_observed`]: per-follower slots
    /// (epoch lag, records/bytes shipped) and lifecycle events mirror
    /// into it alongside the legacy [`ReplicationCounters`].
    obs: Option<Arc<Obs>>,
}

impl ReplicationHub {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Shipped-record counters, summed over all follower connections.
    pub fn counters(&self) -> &ReplicationCounters {
        &self.shared.counters
    }

    /// Stops accepting followers and signals sender threads to exit (they
    /// notice within one poll interval). Idempotent.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicationHub {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` and serves the WAL directory `wal_dir` to every follower
/// that connects. The primary's `Service` must already have been started
/// with durability in the same directory (replication ships the WAL; an
/// in-memory primary has nothing to ship).
pub fn serve_replication(
    wal_dir: impl Into<PathBuf>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ReplicationHub> {
    serve_replication_observed(wal_dir, addr, None)
}

/// [`serve_replication`] with the primary service's observability plane
/// attached: each follower connection additionally registers a
/// per-follower telemetry slot (rendered as `connectit_follower_*`
/// series by `METRICS`), mirrors shipped records/bytes into the
/// registry, and stamps connect / caught-up / pruned-rebootstrap
/// lifecycle events into the flight recorder.
pub fn serve_replication_observed(
    wal_dir: impl Into<PathBuf>,
    addr: impl ToSocketAddrs,
    obs: Option<Arc<Obs>>,
) -> std::io::Result<ReplicationHub> {
    let dir = wal_dir.into();
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(HubShared {
        shutdown: AtomicBool::new(false),
        local_addr: listener.local_addr()?,
        counters: ReplicationCounters::default(),
        obs,
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new().name("cc-repl-accept".into()).spawn(move || {
        while !accept_shared.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let dir = dir.clone();
                    let conn_shared = Arc::clone(&accept_shared);
                    let _ =
                        std::thread::Builder::new().name("cc-repl-send".into()).spawn(move || {
                            if let Err(e) = stream_to_follower(stream, &dir, &conn_shared) {
                                // A follower going away mid-stream is
                                // normal (it reconnects and handshakes);
                                // only log decode-side failures.
                                if e.kind() == std::io::ErrorKind::InvalidData {
                                    eprintln!("cc-repl-send: {e}");
                                }
                            }
                        });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    })?;
    Ok(ReplicationHub { shared, accept: Some(accept) })
}

/// Sends one tagged record frame.
fn send_record(w: &mut impl Write, tag: u8, payload: &[u8]) -> std::io::Result<()> {
    let mut framed = Vec::with_capacity(1 + payload.len());
    framed.push(tag);
    framed.extend_from_slice(payload);
    binary::append_record(w, &framed)?;
    Ok(())
}

/// Ships the newest durable snapshot if it is ahead of `sent_epoch`;
/// returns the epoch the follower is now guaranteed to hold. Absence of
/// any snapshot is fine (a young primary streams from the WAL alone),
/// but an *unreadable* snapshot store is fatal to the connection: WAL
/// segments below the snapshot may already be pruned, so degrading to
/// WAL-only streaming would silently ship a history with holes — the
/// same state the primary's own recovery refuses to start from.
fn ship_snapshot_if_newer(
    w: &mut impl Write,
    dir: &Path,
    sent_epoch: u64,
    shared: &HubShared,
) -> std::io::Result<u64> {
    match snapshot::load_latest(dir) {
        Ok(Some(snap)) if snap.epoch > sent_epoch => {
            // Counted before the bytes go out, so the counter is never
            // behind what a follower demonstrably received.
            shared.counters.snapshots.fetch_add(1, Ordering::Relaxed);
            // Ship the real live edge set when the snapshot has one:
            // the follower's liveness tracker then holds exactly the
            // primary's edges, so later deletions classify the same
            // way on both sides. (Labels would do for connectivity,
            // but their derived spanning edges are phantoms.)
            let (tag, payload) = match &snap.edges {
                Some(edges) => (TAG_EDGES, binary::encode_edge_batch(snap.epoch, edges)),
                None => (TAG_SNAPSHOT, binary::encode_labels(snap.epoch, &snap.labels)),
            };
            if let Some(obs) = &shared.obs {
                obs.metrics.repl_snapshots_shipped_total.inc();
                obs.metrics.repl_bytes_shipped_total.add(payload.len() as u64 + 1);
            }
            send_record(w, tag, &payload)?;
            w.flush()?;
            Ok(snap.epoch)
        }
        Ok(_) => Ok(sent_epoch),
        Err(e) => Err(proto_err(format!(
            "snapshot store unreadable; refusing to stream a history with holes: {e}"
        ))),
    }
}

/// Keeps a follower's telemetry slot registered for exactly the sender
/// thread's lifetime: dropping the guard (any exit path, `?` included)
/// removes the slot, so `METRICS` never renders series for a follower
/// that is gone.
struct FollowerGuard {
    obs: Arc<Obs>,
    slot: Arc<FollowerSlot>,
}

impl Drop for FollowerGuard {
    fn drop(&mut self) {
        self.obs.metrics.unregister_follower(self.slot.id);
    }
}

/// The per-follower sender loop: handshake, bootstrap, then tail the WAL.
fn stream_to_follower(stream: TcpStream, dir: &Path, shared: &HubShared) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let keep_going = || !shared.shutdown.load(Ordering::Acquire);
    let mut reader = BufReader::new(binary::RetryRead::new(stream.try_clone()?, keep_going));
    binary::read_magic(&mut reader, REPL_MAGIC).map_err(|e| proto_err(e.to_string()))?;
    let mut records = binary::RecordReader::new(reader, binary::MAGIC_LEN as u64);
    let hello = records
        .next()
        .map_err(|e| proto_err(e.to_string()))?
        .ok_or_else(|| proto_err("follower closed before the handshake"))?;
    if hello.len() != 9 || hello[0] != TAG_HELLO {
        return Err(proto_err(format!(
            "bad handshake record: {} bytes, tag {:?}",
            hello.len(),
            hello.first()
        )));
    }
    let follower_epoch = u64::from_le_bytes(hello[1..9].try_into().expect("8 bytes"));
    let guard = shared.obs.as_ref().map(|obs| {
        obs.metrics.repl_connects_total.inc();
        let slot = obs.metrics.register_follower(follower_epoch);
        obs.recorder.record(Event::FollowerConnected { id: slot.id, epoch: follower_epoch });
        FollowerGuard { obs: Arc::clone(obs), slot }
    });

    let mut w = BufWriter::new(stream);
    binary::write_magic(&mut w, REPL_MAGIC)?;
    w.flush()?;

    // Bootstrap: a follower whose epoch predates the newest durable
    // snapshot may need records that pruning already retired, so it gets
    // the snapshot; a fresh-enough follower resumes from the WAL alone.
    let mut sent_epoch = ship_snapshot_if_newer(&mut w, dir, follower_epoch, shared)?;
    if let Some(g) = &guard {
        g.slot.sent_epoch.store(sent_epoch, Ordering::Relaxed);
    }

    let mut cursor = WalCursor::open(dir, 0, binary::MAGIC_LEN as u64);
    cursor.oldest()?;
    let mut last_write = std::time::Instant::now();
    let mut reported_caught_up = false;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        match cursor.next() {
            Ok(TailEvent::Record(epoch, ops)) => {
                // The WAL holds history the follower already has (its
                // handshake epoch, or the snapshot's); skip those.
                if epoch > sent_epoch {
                    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
                    // Insert-only batches keep the compact legacy frame;
                    // a batch with any deletion ships as an op record so
                    // the follower replays it in submission order.
                    let edges: Option<Vec<(u32, u32)>> = ops
                        .iter()
                        .map(|op| match *op {
                            Update::Insert(u, v) => Some((u, v)),
                            _ => None,
                        })
                        .collect();
                    let (tag, payload) = match edges {
                        Some(edges) => (TAG_BATCH, binary::encode_edge_batch(epoch, &edges)),
                        None => (TAG_DELTA, wal::encode_update_batch(epoch, &ops)),
                    };
                    if let Some(g) = &guard {
                        g.obs.metrics.repl_records_shipped_total.inc();
                        g.obs.metrics.repl_bytes_shipped_total.add(payload.len() as u64 + 1);
                        g.slot.records.fetch_add(1, Ordering::Relaxed);
                        g.slot.bytes.fetch_add(payload.len() as u64 + 1, Ordering::Relaxed);
                        g.slot.sent_epoch.store(epoch, Ordering::Relaxed);
                    }
                    send_record(&mut w, tag, &payload)?;
                    w.flush()?;
                    sent_epoch = epoch;
                    last_write = std::time::Instant::now();
                }
            }
            Ok(TailEvent::CaughtUp) => {
                // The first catch-up after the bootstrap replay is the
                // interesting lifecycle fact; steady-state polling would
                // flood the recorder, so it is stamped once.
                if !reported_caught_up {
                    reported_caught_up = true;
                    if let Some(g) = &guard {
                        g.obs
                            .recorder
                            .record(Event::FollowerCaughtUp { id: g.slot.id, epoch: sent_epoch });
                    }
                }
                // Heartbeat a quiet stream: the write is how a sender
                // notices its follower died (the WAL poll never would),
                // bounding this thread's lifetime to one heartbeat past
                // the disconnect instead of forever.
                if last_write.elapsed() >= HEARTBEAT {
                    send_record(&mut w, TAG_PING, &sent_epoch.to_le_bytes())?;
                    w.flush()?;
                    last_write = std::time::Instant::now();
                }
                std::thread::sleep(TAIL_POLL);
            }
            Ok(TailEvent::Pruned) => {
                // A durable snapshot retired the cursor's segment. The
                // snapshot covers everything the pruned records held, so
                // ship it and resume from the oldest surviving segment.
                if let Some(g) = &guard {
                    g.obs.recorder.record(Event::FollowerPruned { id: g.slot.id });
                }
                sent_epoch = ship_snapshot_if_newer(&mut w, dir, sent_epoch, shared)?;
                if let Some(g) = &guard {
                    g.slot.sent_epoch.store(sent_epoch, Ordering::Relaxed);
                }
                cursor.oldest()?;
            }
            Err(e) => return Err(proto_err(format!("wal tail failed: {e}"))),
        }
    }
}

/// Spawns the follower's replication receiver: connects to the primary
/// at `primary_addr`, handshakes with the follower's current epoch, and
/// applies the stream through `client` until `shutdown` flips (or the
/// follower service closes). Reconnects forever on connection loss —
/// a follower keeps serving (stale) reads while its primary is away.
/// Returns the thread handle and the live counters.
pub fn run_follower(
    client: Client,
    primary_addr: String,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<(std::thread::JoinHandle<()>, Arc<ReplicationCounters>)> {
    let counters = Arc::new(ReplicationCounters::default());
    let thread_counters = Arc::clone(&counters);
    let handle = std::thread::Builder::new().name("cc-repl-recv".into()).spawn(move || {
        while !shutdown.load(Ordering::Acquire) {
            match follow_once(&client, &primary_addr, &shutdown, &thread_counters) {
                // The follower service itself closed: nothing left to
                // apply into, so the receiver is done.
                Ok(StreamEnd::FollowerClosed) => return,
                Ok(StreamEnd::Disconnected) | Err(_) => {}
            }
            // Connection lost (or never made): retry after a pause,
            // keeping the follower serving whatever it has.
            let deadline = std::time::Instant::now() + RECONNECT_PAUSE;
            while std::time::Instant::now() < deadline {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    })?;
    Ok((handle, counters))
}

/// Why one connection's apply loop ended.
enum StreamEnd {
    /// The socket died (primary restart, network): reconnect.
    Disconnected,
    /// The follower service shut down: stop replicating entirely.
    FollowerClosed,
}

/// One connection lifetime: handshake, then apply records until the
/// stream breaks or shutdown.
fn follow_once(
    client: &Client,
    primary_addr: &str,
    shutdown: &Arc<AtomicBool>,
    counters: &ReplicationCounters,
) -> std::io::Result<StreamEnd> {
    let obs = client.observability();
    let stream = TcpStream::connect(primary_addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;

    let mut w = BufWriter::new(stream.try_clone()?);
    binary::write_magic(&mut w, REPL_MAGIC)?;
    let mut hello = Vec::with_capacity(9);
    hello.push(TAG_HELLO);
    hello.extend_from_slice(&client.epoch().to_le_bytes());
    binary::append_record(&mut w, &hello)?;
    w.flush()?;

    let keep = {
        let shutdown = Arc::clone(shutdown);
        move || !shutdown.load(Ordering::Acquire)
    };
    let mut reader = BufReader::new(binary::RetryRead::new(stream, keep));
    if binary::read_magic(&mut reader, REPL_MAGIC).is_err() {
        return Ok(StreamEnd::Disconnected);
    }
    counters.connects.fetch_add(1, Ordering::Relaxed);
    obs.metrics.repl_connects_total.inc();
    let mut records = binary::RecordReader::new(reader, binary::MAGIC_LEN as u64);
    loop {
        let payload = match records.next() {
            Ok(Some(p)) => p,
            // Clean EOF, torn record, or timeout-at-shutdown: the
            // connection is over either way.
            Ok(None) | Err(_) => return Ok(StreamEnd::Disconnected),
        };
        let (Some(&tag), rest) = (payload.first(), &payload[1.min(payload.len())..]) else {
            return Ok(StreamEnd::Disconnected);
        };
        // Counters tick on receipt, before the apply: an observer that
        // saw the follower's epoch advance must also see the counter
        // (the apply is what publishes the epoch), and a failed apply
        // kills the connection anyway.
        let applied = match tag {
            // An idle-stream heartbeat: nothing to apply (every epoch it
            // names already arrived in order on this same stream).
            TAG_PING => Ok(()),
            TAG_BATCH => binary::decode_edge_batch(rest, 0)
                .map_err(|e| proto_err(e.to_string()))
                .and_then(|(epoch, edges)| {
                    counters.batches.fetch_add(1, Ordering::Relaxed);
                    obs.metrics.repl_records_applied_total.inc();
                    client.apply_replicated(epoch, &edges).map_err(|e| proto_err(e.to_string()))
                }),
            TAG_DELTA => wal::decode_update_batch(rest, 0)
                .map_err(|e| proto_err(e.to_string()))
                .and_then(|(epoch, ops)| {
                    counters.batches.fetch_add(1, Ordering::Relaxed);
                    obs.metrics.repl_records_applied_total.inc();
                    client.apply_replicated_ops(epoch, &ops).map_err(|e| proto_err(e.to_string()))
                }),
            TAG_EDGES => binary::decode_edge_batch(rest, 0)
                .map_err(|e| proto_err(e.to_string()))
                .and_then(|(epoch, edges)| {
                    counters.snapshots.fetch_add(1, Ordering::Relaxed);
                    obs.metrics.repl_snapshots_applied_total.inc();
                    client
                        .apply_replicated_edge_set(epoch, &edges)
                        .map_err(|e| proto_err(e.to_string()))
                }),
            TAG_SNAPSHOT => binary::decode_labels(rest, 0)
                .map_err(|e| proto_err(e.to_string()))
                .and_then(|(epoch, labels)| {
                    counters.snapshots.fetch_add(1, Ordering::Relaxed);
                    obs.metrics.repl_snapshots_applied_total.inc();
                    client
                        .apply_replicated_labels(epoch, &labels)
                        .map_err(|e| proto_err(e.to_string()))
                }),
            other => Err(proto_err(format!("unknown replication record tag {other:?}"))),
        };
        if let Err(e) = applied {
            if client.is_closed() {
                return Ok(StreamEnd::FollowerClosed);
            }
            // A malformed or inapplicable record is not recoverable by
            // reconnecting harder; surface it and let the supervisor
            // (the serve binary) decide. The reconnect loop will retry —
            // a primary restarted with different parameters keeps
            // logging this rather than silently serving a wrong state.
            eprintln!("cc-repl-recv: apply failed: {e}");
            return Ok(StreamEnd::Disconnected);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Role, Service, ServiceConfig};
    use crate::wal::{DurabilityConfig, FsyncPolicy};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        crate::scratch_dir(&format!("repl_{tag}"))
    }

    fn primary_cfg(n: usize, dir: &Path) -> ServiceConfig {
        ServiceConfig {
            n,
            shards: 2,
            batch_max_wait: Duration::from_micros(20),
            durability: Some(DurabilityConfig {
                fsync: FsyncPolicy::Off,
                ..DurabilityConfig::new(dir)
            }),
            ..ServiceConfig::default()
        }
    }

    fn follower(n: usize) -> Service {
        Service::start(ServiceConfig {
            n,
            shards: 2,
            role: Role::Follower,
            ..ServiceConfig::default()
        })
        .expect("follower starts")
    }

    fn wait_epoch(c: &Client, target: u64) {
        c.wait_for_epoch(target, Duration::from_secs(20)).expect("replica catches up");
    }

    #[test]
    fn follower_tails_live_primary() {
        let dir = tmp_dir("tail");
        let mut primary = Service::start(primary_cfg(64, &dir)).expect("primary");
        let mut hub = serve_replication(&dir, "127.0.0.1:0").expect("hub");
        let addr = hub.local_addr().to_string();

        let shutdown = Arc::new(AtomicBool::new(false));
        let mut f = follower(64);
        let (h, counters) = run_follower(f.client(), addr, Arc::clone(&shutdown)).expect("recv");

        let p = primary.client();
        p.insert(1, 2).expect("insert");
        p.insert(2, 3).expect("insert");
        let e = p.epoch();
        let fc = f.client();
        wait_epoch(&fc, e);
        assert!(fc.query(1, 3).expect("replicated read"));
        assert!(!fc.query(1, 10).expect("replicated read"));
        // More traffic while the stream is live.
        p.insert(10, 11).expect("insert");
        wait_epoch(&fc, p.epoch());
        assert!(fc.query(10, 11).expect("replicated read"));
        assert!(counters.batches.load(Ordering::Relaxed) >= 3);
        assert_eq!(counters.connects.load(Ordering::Relaxed), 1);
        assert!(hub.counters().batches.load(Ordering::Relaxed) >= 3);

        shutdown.store(true, Ordering::Release);
        h.join().expect("receiver exits");
        hub.stop();
        primary.shutdown();
        f.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A raw fake follower: handshakes at `epoch` and returns the framed
    /// reader for manual record inspection.
    fn fake_follower(
        addr: std::net::SocketAddr,
        epoch: u64,
    ) -> binary::RecordReader<BufReader<TcpStream>> {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let mut w = BufWriter::new(stream.try_clone().expect("clone"));
        binary::write_magic(&mut w, REPL_MAGIC).expect("magic");
        let mut hello = vec![TAG_HELLO];
        hello.extend_from_slice(&epoch.to_le_bytes());
        binary::append_record(&mut w, &hello).expect("hello");
        w.flush().expect("flush");
        let mut reader = BufReader::new(stream);
        binary::read_magic(&mut reader, REPL_MAGIC).expect("server magic");
        binary::RecordReader::new(reader, binary::MAGIC_LEN as u64)
    }

    #[test]
    fn idle_stream_heartbeats_and_follower_ignores_them() {
        let dir = tmp_dir("ping");
        let mut primary = Service::start(primary_cfg(32, &dir)).expect("primary");
        primary.client().insert(1, 2).expect("insert");
        let mut hub = serve_replication(&dir, "127.0.0.1:0").expect("hub");

        // Raw inspection: a caught-up sender pings within ~one beat.
        let mut records = fake_follower(hub.local_addr(), 0);
        let mut saw_ping = false;
        for _ in 0..10 {
            let payload = records.next().expect("framed record").expect("stream open");
            match payload[0] {
                TAG_PING => {
                    assert_eq!(payload.len(), 9, "ping carries the last sent epoch");
                    saw_ping = true;
                    break;
                }
                TAG_BATCH | TAG_DELTA | TAG_SNAPSHOT | TAG_EDGES => continue, // bootstrap history
                other => panic!("unexpected tag {other:?}"),
            }
        }
        assert!(saw_ping, "an idle stream must heartbeat");
        drop(records);

        // A real follower rides out an idle (heartbeat-carrying) stream
        // and still applies what comes after it.
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut f = follower(32);
        let (h, _) = run_follower(f.client(), hub.local_addr().to_string(), Arc::clone(&shutdown))
            .expect("recv");
        let p = primary.client();
        wait_epoch(&f.client(), p.epoch());
        std::thread::sleep(Duration::from_millis(700)); // > one heartbeat
        p.insert(2, 3).expect("insert after idle");
        wait_epoch(&f.client(), p.epoch());
        assert!(f.client().query(1, 3).expect("read"), "stream survived the idle window");

        shutdown.store(true, Ordering::Release);
        h.join().expect("receiver exits");
        hub.stop();
        primary.shutdown();
        f.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_snapshot_store_fails_the_stream_not_silently_skips() {
        let dir = tmp_dir("badsnap");
        let mut primary = Service::start(primary_cfg(16, &dir)).expect("primary");
        primary.client().insert(0, 1).expect("insert");
        primary.shutdown();
        // Snapshot files present but none decodable: the exact state the
        // primary's own recovery refuses. The sender must drop the
        // connection rather than stream a WAL whose prefix may be pruned.
        std::fs::write(dir.join("snap-00000000000000000009.ccsnap"), b"garbage").expect("write");
        let mut hub = serve_replication(&dir, "127.0.0.1:0").expect("hub");
        let mut records = fake_follower(hub.local_addr(), 0);
        let got = records.next();
        assert!(matches!(got, Ok(None) | Err(_)), "stream must end without records, got {got:?}");
        hub.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_follower_bootstraps_from_snapshot_after_pruning() {
        let dir = tmp_dir("boot");
        let mut primary = Service::start(primary_cfg(32, &dir)).expect("primary");
        let p = primary.client();
        p.insert(0, 1).expect("insert");
        p.insert(1, 2).expect("insert");
        // The durable snapshot prunes every covered WAL segment, so a
        // fresh follower cannot be served from the WAL alone.
        let snap_epoch = p.durable_snapshot().expect("snapshot");
        assert!(snap_epoch >= 2);
        p.insert(8, 9).expect("insert past the snapshot");
        let target = p.epoch();

        let mut hub = serve_replication(&dir, "127.0.0.1:0").expect("hub");
        let addr = hub.local_addr().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut f = follower(32);
        let (h, counters) = run_follower(f.client(), addr, Arc::clone(&shutdown)).expect("recv");
        let fc = f.client();
        wait_epoch(&fc, target);
        assert!(fc.query(0, 2).expect("pre-snapshot fact"));
        assert!(fc.query(8, 9).expect("post-snapshot fact"));
        assert!(!fc.query(0, 8).expect("negative"));
        assert!(counters.snapshots.load(Ordering::Relaxed) >= 1, "bootstrap used the snapshot");

        shutdown.store(true, Ordering::Release);
        h.join().expect("receiver exits");
        hub.stop();
        primary.shutdown();
        f.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follower_replays_deletions_in_order() {
        let dir = tmp_dir("delete");
        let mut primary = Service::start(primary_cfg(64, &dir)).expect("primary");
        let mut hub = serve_replication(&dir, "127.0.0.1:0").expect("hub");
        let addr = hub.local_addr().to_string();

        let shutdown = Arc::new(AtomicBool::new(false));
        let mut f = follower(64);
        let (h, counters) = run_follower(f.client(), addr, Arc::clone(&shutdown)).expect("recv");

        let p = primary.client();
        p.insert(1, 2).expect("insert");
        p.insert(2, 3).expect("insert");
        p.insert(1, 3).expect("cycle edge");
        // A non-forest deletion (free) and a forest deletion (rebuild)
        // both cross the wire as `'D'` records and replay in order.
        p.delete(1, 3).expect("non-forest delete");
        p.delete(2, 3).expect("forest delete");
        let fc = f.client();
        wait_epoch(&fc, p.epoch());
        // The follower's own rebuild may still be in flight; quiesce so
        // the read below is exact rather than sealed-generation stale.
        fc.quiesce(Duration::from_secs(20)).expect("follower quiesces");
        assert!(fc.query(1, 2).expect("still connected"));
        assert!(!fc.query(2, 3).expect("severed by the replayed deletions"));
        let info = fc.generation_info();
        assert_eq!(info.counters.deletes_nonforest, 1, "cycle delete classified: {info:?}");
        assert!(counters.batches.load(Ordering::Relaxed) >= 5);

        shutdown.store(true, Ordering::Release);
        h.join().expect("receiver exits");
        hub.stop();
        primary.shutdown();
        f.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deletion_aware_bootstrap_ships_the_edge_set_not_labels() {
        let dir = tmp_dir("edgeboot");
        let mut primary = Service::start(primary_cfg(32, &dir)).expect("primary");
        let p = primary.client();
        p.insert(0, 1).expect("insert");
        p.insert(1, 2).expect("insert");
        p.insert(0, 2).expect("cycle edge");
        p.quiesce(Duration::from_secs(20)).expect("clean for the snapshot");
        let snap_epoch = p.durable_snapshot().expect("snapshot with edges");
        assert!(snap_epoch >= 3);

        // Raw inspection: the bootstrap record is the edge set, not the
        // labeling (phantom spanning edges would mis-classify the
        // follower's later deletes).
        let mut hub = serve_replication(&dir, "127.0.0.1:0").expect("hub");
        let mut records = fake_follower(hub.local_addr(), 0);
        let payload = records.next().expect("framed record").expect("stream open");
        assert_eq!(payload[0], TAG_EDGES, "bootstrap must ship the live edge set");
        let (epoch, edges) = binary::decode_edge_batch(&payload[1..], 0).expect("decode");
        assert_eq!(epoch, snap_epoch);
        assert_eq!(edges.len(), 3, "all three live edges, the cycle edge included");
        drop(records);

        // A real follower bootstrapped this way classifies a post-
        // snapshot forest deletion exactly like the primary does.
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut f = follower(32);
        let (h, counters) =
            run_follower(f.client(), hub.local_addr().to_string(), Arc::clone(&shutdown))
                .expect("recv");
        p.delete(0, 1).expect("forest delete past the snapshot");
        let fc = f.client();
        wait_epoch(&fc, p.epoch());
        fc.quiesce(Duration::from_secs(20)).expect("follower quiesces");
        assert!(fc.query(0, 1).expect("cycle closed the gap: still connected"));
        assert_eq!(fc.generation_info().counters.deletes_absent, 0, "no phantom edges");
        assert!(counters.snapshots.load(Ordering::Relaxed) >= 1, "bootstrap used the snapshot");

        shutdown.store(true, Ordering::Release);
        h.join().expect("receiver exits");
        hub.stop();
        primary.shutdown();
        f.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observed_hub_registers_follower_slots() {
        let dir = tmp_dir("obs");
        let mut primary = Service::start(primary_cfg(32, &dir)).expect("primary");
        let p = primary.client();
        let obs = p.observability();
        let mut hub =
            serve_replication_observed(&dir, "127.0.0.1:0", Some(Arc::clone(&obs))).expect("hub");
        p.insert(1, 2).expect("insert");

        let shutdown = Arc::new(AtomicBool::new(false));
        let mut f = follower(32);
        let (h, _) = run_follower(f.client(), hub.local_addr().to_string(), Arc::clone(&shutdown))
            .expect("recv");
        wait_epoch(&f.client(), p.epoch());

        // Primary side: the slot exists, ships are mirrored, and the
        // per-follower series render.
        assert_eq!(obs.metrics.followers_live.get(), 1);
        assert!(obs.metrics.repl_records_shipped_total.get() >= 1);
        assert!(obs.metrics.repl_bytes_shipped_total.get() > 0);
        assert_eq!(obs.metrics.repl_connects_total.get(), 1);
        let lines = obs.metrics.render().join("\n");
        assert!(
            lines.contains("connectit_follower_epoch_lag{follower=\"1\"}"),
            "per-follower lag series missing:\n{lines}"
        );
        // Follower side: applies and connects mirror into its own plane.
        let fobs = f.client().observability();
        assert!(fobs.metrics.repl_records_applied_total.get() >= 1);
        assert_eq!(fobs.metrics.repl_connects_total.get(), 1);

        shutdown.store(true, Ordering::Release);
        h.join().expect("receiver exits");
        hub.stop();
        // The sender thread notices the hub shutdown within one poll and
        // its guard unregisters the slot.
        for _ in 0..500 {
            if obs.metrics.followers_live.get() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(obs.metrics.followers_live.get(), 0, "slot must unregister on disconnect");
        primary.shutdown();
        f.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follower_survives_primary_restart() {
        let dir = tmp_dir("restart");
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut f = follower(48);
        let fc = f.client();

        let (port, h) = {
            let mut primary = Service::start(primary_cfg(48, &dir)).expect("primary");
            let mut hub = serve_replication(&dir, "127.0.0.1:0").expect("hub");
            let addr = hub.local_addr();
            let (h, _) =
                run_follower(f.client(), addr.to_string(), Arc::clone(&shutdown)).expect("recv");
            let p = primary.client();
            p.insert(1, 2).expect("insert");
            wait_epoch(&fc, p.epoch());
            assert!(fc.query(1, 2).expect("read"));
            hub.stop();
            primary.shutdown();
            (addr.port(), h)
        };

        // Primary (and hub) come back on the same port from the same WAL
        // dir; the follower reconnects, handshakes with its epoch, and
        // resumes the stream.
        let mut primary = Service::start(primary_cfg(48, &dir)).expect("primary recovers");
        let mut hub = serve_replication(&dir, format!("127.0.0.1:{port}")).expect("hub rebinds");
        let p = primary.client();
        p.insert(2, 3).expect("insert after restart");
        wait_epoch(&fc, p.epoch());
        assert!(fc.query(1, 3).expect("fact spanning the restart"));

        shutdown.store(true, Ordering::Release);
        h.join().expect("receiver exits");
        hub.stop();
        primary.shutdown();
        f.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The pruning hole: a follower disconnects, the primary deletes an
    /// edge the follower holds, and a durable snapshot prunes the WAL
    /// segment carrying that deletion. On reconnect the follower's only
    /// source of truth is the edge-set bootstrap — which must *retract*
    /// the stale edge, not merely add missing ones, or the phantom stays
    /// live forever.
    #[test]
    fn follower_retracts_edges_deleted_while_disconnected() {
        let dir = tmp_dir("retract");
        let mut primary = Service::start(primary_cfg(32, &dir)).expect("primary");
        let mut hub = serve_replication(&dir, "127.0.0.1:0").expect("hub");
        let addr = hub.local_addr().to_string();
        let p = primary.client();
        p.insert(0, 1).expect("insert");
        p.insert(1, 2).expect("insert");

        // The follower catches up, then loses its connection — but the
        // service (and its liveness tracker) stays alive.
        let shutdown1 = Arc::new(AtomicBool::new(false));
        let mut f = follower(32);
        let (h1, _) = run_follower(f.client(), addr.clone(), Arc::clone(&shutdown1)).expect("recv");
        let fc = f.client();
        wait_epoch(&fc, p.epoch());
        assert!(fc.query(1, 2).expect("replicated read"));
        shutdown1.store(true, Ordering::Release);
        h1.join().expect("receiver exits");

        // While the follower is away: a forest deletion commits, and the
        // durable snapshot prunes the WAL segment that carried it.
        p.delete(1, 2).expect("forest delete while disconnected");
        p.quiesce(Duration::from_secs(20)).expect("primary rebuild commits");
        let snap_epoch = p.durable_snapshot().expect("snapshot prunes the deletion");
        assert!(snap_epoch > fc.epoch(), "the follower's epoch predates the snapshot");

        // Reconnect. The handshake epoch predates the snapshot, so the
        // sender bootstraps with the edge set; converging to it must
        // retract the follower's stale 1-2 edge.
        let shutdown2 = Arc::new(AtomicBool::new(false));
        let (h2, counters) = run_follower(f.client(), addr, Arc::clone(&shutdown2)).expect("recv");
        wait_epoch(&fc, snap_epoch);
        fc.quiesce(Duration::from_secs(20)).expect("follower rebuild commits");
        assert!(!fc.query(1, 2).expect("read"), "pruned deletion must still take effect");
        assert!(fc.query(0, 1).expect("read"), "surviving edge stays live");
        assert!(counters.snapshots.load(Ordering::Relaxed) >= 1, "reconnect used the bootstrap");

        shutdown2.store(true, Ordering::Release);
        h2.join().expect("receiver exits");
        hub.stop();
        primary.shutdown();
        f.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restarted_follower_reconverges() {
        let dir = tmp_dir("fresh");
        let mut primary = Service::start(primary_cfg(32, &dir)).expect("primary");
        let mut hub = serve_replication(&dir, "127.0.0.1:0").expect("hub");
        let addr = hub.local_addr().to_string();
        let p = primary.client();
        p.insert(5, 6).expect("insert");

        // First follower incarnation.
        let shutdown1 = Arc::new(AtomicBool::new(false));
        let mut f1 = follower(32);
        let (h1, _) =
            run_follower(f1.client(), addr.clone(), Arc::clone(&shutdown1)).expect("recv");
        wait_epoch(&f1.client(), p.epoch());
        // "SIGKILL": drop it without ceremony.
        shutdown1.store(true, Ordering::Release);
        h1.join().expect("receiver exits");
        f1.shutdown();

        p.insert(6, 7).expect("insert while the follower is down");
        let target = p.epoch();

        // The restarted follower is empty (followers are in-memory) and
        // must reconverge from the stream alone.
        let shutdown2 = Arc::new(AtomicBool::new(false));
        let mut f2 = follower(32);
        let (h2, _) = run_follower(f2.client(), addr, Arc::clone(&shutdown2)).expect("recv");
        let fc = f2.client();
        wait_epoch(&fc, target);
        assert!(fc.query(5, 7).expect("full history replayed"));
        assert_eq!(fc.epoch(), target);

        shutdown2.store(true, Ordering::Release);
        h2.join().expect("receiver exits");
        hub.stop();
        primary.shutdown();
        f2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
