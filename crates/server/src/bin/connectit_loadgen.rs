//! `connectit-loadgen` — closed-loop load generator and correctness
//! checker for the connectivity service.
//!
//! Each client thread owns a private slice of the vertex space (so its
//! traffic never interferes with other clients'), keeps a sequential
//! union-find oracle over that slice, and submits mixed insert/query
//! batches. Every answered query is validated against the oracle by
//! *bracketing*: a query whose oracle answer is identical before and
//! after its batch's insertions has exactly one legal answer; a query
//! whose component forms within its own batch may legally answer either
//! way (batch operations are concurrent). Connectivity is monotone, so
//! those two cases are exhaustive. Throughput is reported over the whole
//! closed loop, oracle maintenance included.
//!
//! ```text
//! connectit-loadgen [--mode inproc|tcp] [--addr HOST:PORT] [--n N]
//!                   [--shards S] [--clients C] [--batches B] [--batch-ops K]
//!                   [--query-frac F] [--layout blocked|strided]
//!                   [--alg fastest|async|rem-splice] [--finish SPEC] [--phased]
//!                   [--seed X] [--shutdown]
//! ```
//!
//! `--finish` (pass-through to the in-process service, mirroring
//! `connectit-serve`) accepts any valid union-find variant as
//! `unite[+splice][+find]`; invalid combinations are rejected with the
//! rule they violate.
//!
//! Exits non-zero on any oracle mismatch or zero throughput. In `tcp`
//! mode, `--n` must match the server's vertex count.

use cc_parallel::SplitMix64;
use cc_server::{parse_alg, ExecMode, Service, ServiceConfig, TcpClient};
use cc_unionfind::{SeqUnionFind, UfSpec};
use connectit::Update;
use std::process::ExitCode;
use std::time::Instant;

#[derive(Clone)]
struct GenOpts {
    tcp_addr: Option<String>,
    n: usize,
    shards: usize,
    clients: usize,
    batches: usize,
    batch_ops: usize,
    query_frac: f64,
    strided: bool,
    spec: UfSpec,
    phased: bool,
    seed: u64,
    send_shutdown: bool,
}

impl Default for GenOpts {
    fn default() -> Self {
        GenOpts {
            tcp_addr: None,
            n: 1 << 20,
            shards: 4,
            clients: 8,
            batches: 64,
            batch_ops: 8192,
            query_frac: 0.5,
            strided: false,
            spec: UfSpec::fastest(),
            phased: false,
            seed: 0x10ad,
            send_shutdown: false,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: connectit-loadgen [--mode inproc|tcp] [--addr HOST:PORT] [--n N]\n\
         \x20                        [--shards S] [--clients C] [--batches B] [--batch-ops K]\n\
         \x20                        [--query-frac F] [--layout blocked|strided]\n\
         \x20                        [--alg fastest|async|rem-splice] [--finish SPEC] [--phased]\n\
         \x20                        [--seed X] [--shutdown]\n\
         \x20  SPEC: unite[+splice][+find], e.g. rem-lock+halve-one+compress (see\n\
         \x20        connectit-serve --help)"
    );
    ExitCode::from(2)
}

fn parse_args(args: &[String]) -> Result<GenOpts, String> {
    let mut o = GenOpts::default();
    let mut it = args.iter();
    let next_val = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => match next_val(a, &mut it)?.as_str() {
                "inproc" => o.tcp_addr = None,
                "tcp" => {
                    o.tcp_addr.get_or_insert_with(|| "127.0.0.1:7411".to_string());
                }
                other => return Err(format!("unknown --mode {other:?}")),
            },
            "--addr" => o.tcp_addr = Some(next_val(a, &mut it)?),
            "--n" => o.n = next_val(a, &mut it)?.parse().map_err(|_| "bad --n")?,
            "--shards" => o.shards = next_val(a, &mut it)?.parse().map_err(|_| "bad --shards")?,
            "--clients" => {
                o.clients = next_val(a, &mut it)?.parse().map_err(|_| "bad --clients")?
            }
            "--batches" => {
                o.batches = next_val(a, &mut it)?.parse().map_err(|_| "bad --batches")?
            }
            "--batch-ops" => {
                o.batch_ops = next_val(a, &mut it)?.parse().map_err(|_| "bad --batch-ops")?
            }
            "--query-frac" => {
                o.query_frac = next_val(a, &mut it)?.parse().map_err(|_| "bad --query-frac")?
            }
            "--layout" => match next_val(a, &mut it)?.as_str() {
                "blocked" => o.strided = false,
                "strided" => o.strided = true,
                other => return Err(format!("unknown --layout {other:?}")),
            },
            "--alg" => o.spec = parse_alg(&next_val(a, &mut it)?)?,
            "--finish" => o.spec = next_val(a, &mut it)?.parse()?,
            "--phased" => o.phased = true,
            "--seed" => o.seed = next_val(a, &mut it)?.parse().map_err(|_| "bad --seed")?,
            "--shutdown" => o.send_shutdown = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if o.clients == 0 || o.n / o.clients < 2 {
        return Err("need n / clients >= 2".to_string());
    }
    if !(0.0..=1.0).contains(&o.query_frac) {
        return Err("--query-frac must be in [0, 1]".to_string());
    }
    Ok(o)
}

/// One transport connection, in-process or TCP.
enum Conn {
    InProc(cc_server::Client),
    Tcp(Box<TcpClient>),
}

impl Conn {
    fn submit(&mut self, ops: &[Update]) -> Result<Vec<bool>, String> {
        match self {
            Conn::InProc(c) => c.submit(ops.to_vec()).map_err(|e| e.to_string()),
            Conn::Tcp(c) => c.submit(ops).map_err(|e| e.to_string()),
        }
    }
}

#[derive(Default)]
struct WorkerReport {
    ops: u64,
    queries: u64,
    exact: u64,
    transitions: u64,
    mismatches: u64,
    first_mismatch: Option<String>,
}

/// The closed loop for one client thread.
fn run_worker(o: &GenOpts, idx: usize, mut conn: Conn) -> Result<WorkerReport, String> {
    let sz = o.n / o.clients;
    let to_global = |l: usize| -> u32 {
        if o.strided {
            (idx + l * o.clients) as u32
        } else {
            (idx * sz + l) as u32
        }
    };
    let mut oracle = SeqUnionFind::new(sz);
    let mut rng = SplitMix64::new(o.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(idx as u64 + 1)));
    let mut rep = WorkerReport::default();
    let mut local_ops: Vec<(bool, u32, u32)> = Vec::with_capacity(o.batch_ops);
    let mut wire_ops: Vec<Update> = Vec::with_capacity(o.batch_ops);
    let mut before: Vec<bool> = Vec::new();
    let query_cut = (o.query_frac * (1u64 << 32) as f64) as u64;
    for _ in 0..o.batches {
        local_ops.clear();
        wire_ops.clear();
        before.clear();
        for _ in 0..o.batch_ops {
            let r = rng.next_u64();
            let lu = (r >> 32) as usize % sz;
            let lv = (rng.next_u64() >> 32) as usize % sz;
            let is_query = (r & 0xffff_ffff) < query_cut;
            local_ops.push((is_query, lu as u32, lv as u32));
            let (gu, gv) = (to_global(lu), to_global(lv));
            if is_query {
                before.push(oracle.connected(lu as u32, lv as u32));
                wire_ops.push(Update::Query(gu, gv));
            } else {
                wire_ops.push(Update::Insert(gu, gv));
            }
        }
        let answers = conn.submit(&wire_ops)?;
        // Advance the oracle past this batch's insertions.
        for &(is_query, lu, lv) in &local_ops {
            if !is_query {
                oracle.union(lu, lv);
            }
        }
        // Bracket-check every answer.
        let mut qi = 0usize;
        for &(is_query, lu, lv) in &local_ops {
            if !is_query {
                continue;
            }
            let got = *answers
                .get(qi)
                .ok_or_else(|| format!("short answer vector: {} < …", answers.len()))?;
            let was = before[qi];
            let now = oracle.connected(lu, lv);
            qi += 1;
            rep.queries += 1;
            if was == now {
                rep.exact += 1;
                if got != was {
                    rep.mismatches += 1;
                    rep.first_mismatch.get_or_insert_with(|| {
                        format!(
                            "client {idx}: query({}, {}) answered {got}, oracle says {was} \
                             (stable across the batch)",
                            to_global(lu as usize),
                            to_global(lv as usize)
                        )
                    });
                }
            } else {
                // false -> true within this batch: either answer is a
                // valid linearization.
                rep.transitions += 1;
            }
        }
        if qi != answers.len() {
            return Err(format!("answer count {} != queries {qi}", answers.len()));
        }
        rep.ops += o.batch_ops as u64;
    }
    Ok(rep)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    let o = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("connectit-loadgen: {e}");
            return usage();
        }
    };

    // In-process mode hosts its own service; TCP mode talks to a running
    // connectit-serve.
    let mut service: Option<Service> = None;
    if o.tcp_addr.is_none() {
        let cfg = ServiceConfig {
            n: o.n,
            shards: o.shards,
            spec: o.spec,
            mode: if o.phased { ExecMode::Phased } else { ExecMode::Auto },
            ..ServiceConfig::default()
        };
        match Service::start(cfg) {
            Ok(s) => service = Some(s),
            Err(e) => {
                eprintln!("connectit-loadgen: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let t0 = Instant::now();
    let reports: Vec<Result<WorkerReport, String>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for idx in 0..o.clients {
            let o = o.clone();
            let conn = match (&service, &o.tcp_addr) {
                (Some(svc), _) => Ok(Conn::InProc(svc.client())),
                (None, Some(addr)) => {
                    TcpClient::connect(addr.as_str()).map(|c| Conn::Tcp(Box::new(c)))
                }
                (None, None) => unreachable!("inproc mode always has a service"),
            };
            handles.push(scope.spawn(move || {
                let conn = conn.map_err(|e| format!("connect failed: {e}"))?;
                run_worker(&o, idx, conn)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let elapsed = t0.elapsed();

    let mut total = WorkerReport::default();
    let mut failed = false;
    for (i, r) in reports.into_iter().enumerate() {
        match r {
            Ok(r) => {
                total.ops += r.ops;
                total.queries += r.queries;
                total.exact += r.exact;
                total.transitions += r.transitions;
                total.mismatches += r.mismatches;
                if total.first_mismatch.is_none() {
                    total.first_mismatch = r.first_mismatch;
                }
            }
            Err(e) => {
                eprintln!("connectit-loadgen: client {i} failed: {e}");
                failed = true;
            }
        }
    }

    let ops_per_sec = (total.ops as f64 / elapsed.as_secs_f64()) as u64;
    let mode = if o.tcp_addr.is_some() { "tcp" } else { "inproc" };
    let layout = if o.strided { "strided" } else { "blocked" };
    println!(
        "connectit-loadgen: mode={mode} n={} shards={} clients={} batches={} batch_ops={} \
         query_frac={} layout={layout} alg={}",
        o.n,
        o.shards,
        o.clients,
        o.batches,
        o.batch_ops,
        o.query_frac,
        o.spec.name()
    );
    println!(
        "ops={} elapsed={:.3}s ops_per_sec={ops_per_sec} verified_queries={} exact={} \
         intra_batch_transitions={} mismatches={}",
        total.ops,
        elapsed.as_secs_f64(),
        total.queries,
        total.exact,
        total.transitions,
        total.mismatches
    );
    if let Some(m) = &total.first_mismatch {
        eprintln!("connectit-loadgen: FIRST MISMATCH: {m}");
    }

    // Final server-side stats (and optional remote shutdown). A failed
    // `--shutdown` delivery is fatal: the caller (e.g. CI) is about to
    // `wait` on the server process.
    match (&service, &o.tcp_addr) {
        (Some(svc), _) => println!("server: {}", svc.client().stats()),
        (None, Some(addr)) => match TcpClient::connect(addr.as_str()) {
            Ok(mut c) => {
                if let Ok(s) = c.stats_line() {
                    println!("server: {s}");
                }
                if o.send_shutdown {
                    if let Err(e) = c.shutdown_server() {
                        eprintln!("connectit-loadgen: SHUTDOWN delivery failed: {e}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("connectit-loadgen: final connection failed: {e}");
                if o.send_shutdown {
                    failed = true;
                }
            }
        },
        (None, None) => {}
    }
    if let Some(mut svc) = service {
        svc.shutdown();
    }

    if failed || total.mismatches > 0 || ops_per_sec == 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
