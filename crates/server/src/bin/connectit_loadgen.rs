//! `connectit-loadgen` — closed-loop load generator and correctness
//! checker for the connectivity service.
//!
//! Each client thread owns a private slice of the vertex space (so its
//! traffic never interferes with other clients'), keeps a sequential
//! union-find oracle over that slice, and submits mixed insert/query
//! batches. Every answered query is validated against the oracle by
//! *bracketing*: a query whose oracle answer is identical before and
//! after its batch's insertions has exactly one legal answer; a query
//! whose component forms within its own batch may legally answer either
//! way (batch operations are concurrent). Connectivity is monotone, so
//! those two cases are exhaustive. Throughput is reported over the whole
//! closed loop, oracle maintenance included.
//!
//! ```text
//! connectit-loadgen [--mode inproc|tcp] [--addr HOST:PORT] [--n N]
//!                   [--shards S] [--clients C] [--batches B] [--batch-ops K]
//!                   [--query-frac F] [--churn F] [--layout blocked|strided]
//!                   [--alg fastest|async|rem-splice] [--finish SPEC] [--phased]
//!                   [--seed X] [--shutdown] [--follower HOST:PORT]...
//!                   [--binary [--pipeline N]]
//! ```
//!
//! ## Binary mode (`--binary [--pipeline N]`)
//!
//! `--binary` drives the framed binary protocol (DESIGN.md §11) on the
//! same server port — the server sniffs the first byte. All oracle
//! validation applies unchanged: the transport swaps under the same
//! closed loop. `--pipeline N` splits each batch into up to `N` framed
//! requests kept in flight concurrently on the connection; replies are
//! reassembled by correlation id, so the protocol's out-of-order
//! completion contract is exercised on every batch. Bracketing stays
//! sound because the oracle brackets the whole pipelined group exactly
//! as it brackets one batch.
//!
//! ## Split routing (`--follower`, repeatable)
//!
//! With one or more `--follower` addresses (tcp mode only), each client
//! splits its traffic across the replication topology: **inserts go to
//! the primary** (`--addr`), then the client reads the primary's `EPOCH`
//! and issues `WAIT <epoch>` on its follower (clients round-robin over
//! the follower list), and only then sends its **queries to the
//! follower**. The `WAIT` barrier turns the follower's bounded staleness
//! into read-your-writes, so every follower answer has exactly one legal
//! value under the client's private-slice oracle — all follower queries
//! are validated *exactly*, both positives and negatives. A follower
//! that dies mid-run is retried (reconnect + re-`WAIT` + re-query, all
//! idempotent) for `--retry-secs`, which is precisely the
//! kill-one-follower CI drill.
//!
//! ## Churn mode (`--churn F`)
//!
//! With `--churn F` (F in `(0, 1]`), each client's update traffic mixes
//! deletions in at fraction `F` — mostly retractions of live edges (so
//! the engine's forest/non-forest classifier gets exercised both ways),
//! with a sprinkle of absent and duplicate deletions. Deletions break
//! the monotonicity that bracketing relies on, so churn validation is
//! *exact* instead: each client keeps a `cc_baselines::DynamicOracle`
//! (incremental adjacency + BFS) over its private slice, and after each
//! mutation batch issues `QUIESCE` and a query-only batch *sandwiched*
//! between two `GEN` probes. If the engine was clean at the same
//! generation on both sides of the batch, every answer was served from
//! fully-rebuilt labels that include all of this client's committed
//! mutations, and must match the oracle bit-for-bit. Batches for which
//! no clean window appears (another client's rebuild in flight) are
//! counted as `stale_skipped` rather than guessed at. `--kill-after` /
//! `--resume` compose with churn: the checkpoint stores each client's
//! live *edge set* (labels alone cannot seed a deletion oracle), and the
//! post-restore sweep re-validates it against the recovered server.
//!
//! `--finish` (pass-through to the in-process service, mirroring
//! `connectit-serve`) accepts any valid union-find variant as
//! `unite[+splice][+find]`; invalid combinations are rejected with the
//! rule they violate.
//!
//! Exits non-zero on any oracle mismatch or zero throughput. In `tcp`
//! mode, `--n` must match the server's vertex count.
//!
//! ## Crash-drill mode (`--kill-after` / `--resume`)
//!
//! The loadgen can act as one logical load session spanning a server
//! crash. `--kill-after B --state FILE` runs `B` batches per client,
//! checkpoints every client's oracle (via the `cc_graph::io::binary`
//! codec) to `FILE`, and exits with the server still running — the
//! harness then hard-kills and restarts the server from its `--wal-dir`.
//! `--resume --state FILE` reloads the checkpoint, first re-validates the
//! restored oracle against the recovered server (every intra-slice
//! connectivity fact must have survived, positives and negatives), then
//! continues the remaining batches under full validation. `--resume`
//! also makes in-flight failures survivable: a dropped connection is
//! retried for `--retry-secs`, the interrupted batch's insertions are
//! resubmitted (inserts are idempotent), and only that batch's query
//! answers are skipped.
//!
//! ## Subscription mode (`--subscribe`)
//!
//! With `--subscribe` (tcp text mode), each client registers pair
//! subscriptions (`SUB u v`) against an insert-only stream over its
//! private slice and validates the push-delivery contract *exactly*:
//! a subscription fires exactly once, if and only if its pair is
//! connected, stamped with an epoch inside the `(EPOCH-before,
//! EPOCH-after]` window of the batch that connected it — connectivity
//! is monotone without deletions, so there is no slack in any of those
//! clauses. Registrations over already-connected pairs must fire
//! immediately; cancelled subscriptions must stay silent forever; a
//! missed, duplicate, ghost, early, or mis-stamped event counts into
//! `sub_mismatches` and fails the run. Composes with
//! `--kill-after`/`--resume`: subscriptions are registered `DURABLE`,
//! checkpointed to a `FILE.subs` sidecar, and re-attached after the
//! server restart with `SUB ATTACH id after_seq` — which absorbs the
//! recovery re-fire of already-acknowledged pairs while still
//! demanding the fire a connected-but-unfired pair is owed.

use cc_baselines::DynamicOracle;
use cc_graph::io::binary;
use cc_parallel::SplitMix64;
use cc_server::{
    parse_alg, BinClient, ExecMode, Reply, Service, ServiceConfig, SubEvent, SubKind, TcpClient,
};
use cc_unionfind::{SeqUnionFind, UfSpec};
use connectit::Update;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Magic prefix of the `--state` checkpoint file.
const STATE_MAGIC: &[u8; 8] = b"CCLGST02";

/// `QUIESCE` timeout used before each exact churn validation batch. A
/// lapse is not fatal — the generation sandwich just retries.
const CHURN_QUIESCE_MS: u64 = 10_000;

#[derive(Clone)]
struct GenOpts {
    tcp_addr: Option<String>,
    n: usize,
    shards: usize,
    clients: usize,
    batches: usize,
    batch_ops: usize,
    query_frac: f64,
    churn: f64,
    strided: bool,
    spec: UfSpec,
    phased: bool,
    seed: u64,
    send_shutdown: bool,
    kill_after: Option<usize>,
    resume: bool,
    state: Option<String>,
    retry_secs: u64,
    followers: Vec<String>,
    metrics_out: Option<String>,
    binary: bool,
    pipeline: usize,
    subscribe: bool,
}

impl Default for GenOpts {
    fn default() -> Self {
        GenOpts {
            tcp_addr: None,
            n: 1 << 20,
            shards: 4,
            clients: 8,
            batches: 64,
            batch_ops: 8192,
            query_frac: 0.5,
            churn: 0.0,
            strided: false,
            spec: UfSpec::fastest(),
            phased: false,
            seed: 0x10ad,
            send_shutdown: false,
            kill_after: None,
            resume: false,
            state: None,
            retry_secs: 30,
            followers: Vec::new(),
            metrics_out: None,
            binary: false,
            pipeline: 1,
            subscribe: false,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: connectit-loadgen [--mode inproc|tcp] [--addr HOST:PORT] [--n N]\n\
         \x20                        [--shards S] [--clients C] [--batches B] [--batch-ops K]\n\
         \x20                        [--query-frac F] [--churn F] [--layout blocked|strided]\n\
         \x20                        [--alg fastest|async|rem-splice] [--finish SPEC] [--phased]\n\
         \x20                        [--seed X] [--shutdown]\n\
         \x20                        [--kill-after B --state FILE] [--resume [--state FILE]]\n\
         \x20                        [--retry-secs S] [--follower HOST:PORT]...\n\
         \x20                        [--metrics-out FILE] [--binary [--pipeline N]]\n\
         \x20                        [--subscribe]\n\
         \x20  SPEC: unite[+splice][+find], e.g. rem-lock+halve-one+compress (see\n\
         \x20        connectit-serve --help)\n\
         \x20  --follower (repeatable): split-route — inserts to --addr (the primary),\n\
         \x20        queries to the followers behind a WAIT read-your-writes barrier\n\
         \x20  --kill-after B: stop after B batches/client and checkpoint the oracle to\n\
         \x20        --state FILE (tcp mode; the harness then kills/restarts the server)\n\
         \x20  --resume: survive server restarts (reconnect + resubmit in-flight inserts);\n\
         \x20        with --state FILE, first restore and re-validate the checkpoint\n\
         \x20  --churn F: mix deletions in at fraction F of update traffic and validate\n\
         \x20        queries EXACTLY against a dynamic oracle (QUIESCE + generation\n\
         \x20        sandwich); incompatible with --follower\n\
         \x20  --metrics-out FILE: after the run, scrape the server's METRICS exposition\n\
         \x20        (in-proc or over TCP) and write it to FILE, `# EOF` terminated\n\
         \x20  --binary: drive the pipelined binary protocol (tcp mode; same port, the\n\
         \x20        server sniffs the first byte); all oracle validation applies unchanged\n\
         \x20  --pipeline N: with --binary, keep up to N request frames in flight per\n\
         \x20        connection (batches split into N windows reaped out of order)\n\
         \x20  --subscribe: register pair subscriptions (SUB u v) alongside an insert-only\n\
         \x20        stream and validate every pushed event exactly — no missed, duplicate,\n\
         \x20        ghost, or mis-stamped fires (tcp text mode; incompatible with --binary,\n\
         \x20        --churn and --follower); composes with --kill-after/--resume using a\n\
         \x20        durable-subscription sidecar next to --state FILE"
    );
    ExitCode::from(2)
}

fn parse_args(args: &[String]) -> Result<GenOpts, String> {
    let mut o = GenOpts::default();
    let mut it = args.iter();
    let next_val = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => match next_val(a, &mut it)?.as_str() {
                "inproc" => o.tcp_addr = None,
                "tcp" => {
                    o.tcp_addr.get_or_insert_with(|| "127.0.0.1:7411".to_string());
                }
                other => return Err(format!("unknown --mode {other:?}")),
            },
            "--addr" => o.tcp_addr = Some(next_val(a, &mut it)?),
            "--n" => o.n = next_val(a, &mut it)?.parse().map_err(|_| "bad --n")?,
            "--shards" => o.shards = next_val(a, &mut it)?.parse().map_err(|_| "bad --shards")?,
            "--clients" => {
                o.clients = next_val(a, &mut it)?.parse().map_err(|_| "bad --clients")?
            }
            "--batches" => {
                o.batches = next_val(a, &mut it)?.parse().map_err(|_| "bad --batches")?
            }
            "--batch-ops" => {
                o.batch_ops = next_val(a, &mut it)?.parse().map_err(|_| "bad --batch-ops")?
            }
            "--query-frac" => {
                o.query_frac = next_val(a, &mut it)?.parse().map_err(|_| "bad --query-frac")?
            }
            "--churn" => o.churn = next_val(a, &mut it)?.parse().map_err(|_| "bad --churn")?,
            "--layout" => match next_val(a, &mut it)?.as_str() {
                "blocked" => o.strided = false,
                "strided" => o.strided = true,
                other => return Err(format!("unknown --layout {other:?}")),
            },
            "--alg" => o.spec = parse_alg(&next_val(a, &mut it)?)?,
            "--finish" => o.spec = next_val(a, &mut it)?.parse()?,
            "--phased" => o.phased = true,
            "--seed" => o.seed = next_val(a, &mut it)?.parse().map_err(|_| "bad --seed")?,
            "--shutdown" => o.send_shutdown = true,
            "--kill-after" => {
                o.kill_after = Some(next_val(a, &mut it)?.parse().map_err(|_| "bad --kill-after")?)
            }
            "--resume" => o.resume = true,
            "--state" => o.state = Some(next_val(a, &mut it)?),
            "--metrics-out" => o.metrics_out = Some(next_val(a, &mut it)?),
            "--binary" => o.binary = true,
            "--subscribe" => o.subscribe = true,
            "--pipeline" => {
                o.pipeline = next_val(a, &mut it)?.parse().map_err(|_| "bad --pipeline")?
            }
            "--retry-secs" => {
                o.retry_secs = next_val(a, &mut it)?.parse().map_err(|_| "bad --retry-secs")?
            }
            "--follower" => {
                // Repeatable; commas also split for convenience.
                o.followers.extend(next_val(a, &mut it)?.split(',').map(str::to_string));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !o.followers.is_empty() && o.tcp_addr.is_none() {
        return Err("--follower split-routing needs --mode tcp (inserts go to --addr, the \
                    primary)"
            .into());
    }
    if o.clients == 0 || o.n / o.clients < 2 {
        return Err("need n / clients >= 2".to_string());
    }
    if !(0.0..=1.0).contains(&o.query_frac) {
        return Err("--query-frac must be in [0, 1]".to_string());
    }
    if !(0.0..=1.0).contains(&o.churn) {
        return Err("--churn must be in [0, 1]".to_string());
    }
    if o.churn > 0.0 && !o.followers.is_empty() {
        return Err("--churn validates against a single endpoint (deletes route to the \
                    primary); drop --follower"
            .into());
    }
    if (o.kill_after.is_some() || o.resume) && o.tcp_addr.is_none() {
        return Err("--kill-after/--resume need --mode tcp (the server must outlive us)".into());
    }
    if o.kill_after.is_some() && o.state.is_none() {
        return Err("--kill-after needs --state FILE to checkpoint the oracle into".into());
    }
    if o.kill_after == Some(0) {
        return Err("--kill-after must be at least 1".into());
    }
    if o.kill_after.is_some() && o.send_shutdown {
        return Err("--kill-after keeps the server running; drop --shutdown".into());
    }
    if o.binary && o.tcp_addr.is_none() {
        return Err("--binary needs --mode tcp (the protocol lives on the wire)".into());
    }
    if o.pipeline == 0 {
        return Err("--pipeline must be at least 1".to_string());
    }
    if o.pipeline > 1 && !o.binary {
        return Err("--pipeline needs --binary (the text protocol is strictly \
                    request/reply)"
            .into());
    }
    if o.subscribe {
        if o.tcp_addr.is_none() {
            return Err("--subscribe needs --mode tcp (events are pushed over the wire)".into());
        }
        if o.binary {
            return Err("--subscribe drives the text protocol's push lines; drop --binary".into());
        }
        if o.churn > 0.0 {
            return Err("--subscribe validates one-shot pair fires over an insert-only \
                        stream (monotone connectivity makes expectations exact); drop --churn"
                .into());
        }
        if !o.followers.is_empty() {
            return Err("--subscribe registers on the primary; drop --follower".into());
        }
    }
    Ok(o)
}

/// One client's checkpointed oracle state: a label array for the
/// insert-only workload, or the live edge set (local coordinates) for
/// churn — labels alone cannot seed a deletion oracle.
enum ClientCheckpoint {
    Labels(Vec<u32>),
    Edges(Vec<(u32, u32)>),
}

/// Writes the crash-drill checkpoint: a header record (run parameters +
/// batches completed) then one oracle record per client — labels for an
/// insert-only run, the live edge set for a churn run.
fn write_state(
    path: &str,
    o: &GenOpts,
    batches_done: usize,
    states: &[ClientCheckpoint],
) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    binary::write_magic(&mut w, STATE_MAGIC)?;
    let mut header = Vec::new();
    header.extend_from_slice(&(o.n as u64).to_le_bytes());
    header.extend_from_slice(&(o.clients as u64).to_le_bytes());
    header.extend_from_slice(&(batches_done as u64).to_le_bytes());
    header.extend_from_slice(&o.seed.to_le_bytes());
    header.push(u8::from(o.strided));
    header.push(u8::from(o.churn > 0.0));
    binary::append_record(&mut w, &header)?;
    for (idx, state) in states.iter().enumerate() {
        let payload = match state {
            ClientCheckpoint::Labels(labels) => binary::encode_labels(idx as u64, labels),
            ClientCheckpoint::Edges(edges) => binary::encode_edge_batch(idx as u64, edges),
        };
        binary::append_record(&mut w, &payload)?;
    }
    w.flush()?;
    w.get_ref().sync_data()
}

/// Reads a [`write_state`] checkpoint back, validating it against the
/// current run parameters. Returns `(batches_done, per-client states)`.
fn read_state(path: &str, o: &GenOpts) -> Result<(usize, Vec<ClientCheckpoint>), String> {
    let fail = |e: &dyn std::fmt::Display| format!("state file {path}: {e}");
    let file = std::fs::File::open(path).map_err(|e| fail(&e))?;
    let mut reader = std::io::BufReader::new(file);
    binary::read_magic(&mut reader, STATE_MAGIC).map_err(|e| fail(&e))?;
    let mut records = binary::RecordReader::new(reader, binary::MAGIC_LEN as u64);
    let header =
        records.next().map_err(|e| fail(&e))?.ok_or_else(|| fail(&"missing header record"))?;
    if header.len() != 34 {
        return Err(fail(&format!("header is {} bytes, want 34", header.len())));
    }
    let word = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().expect("8 bytes"));
    let (n, clients, batches_done, seed) = (word(0), word(8), word(16), word(24));
    let strided = header[32] != 0;
    let churn = header[33] != 0;
    if n != o.n as u64 || clients != o.clients as u64 || seed != o.seed || strided != o.strided {
        return Err(fail(&format!(
            "checkpointed run (n={n} clients={clients} seed={seed} strided={strided}) does \
             not match the flags of this run; resume with the original parameters"
        )));
    }
    if churn != (o.churn > 0.0) {
        return Err(fail(&format!(
            "checkpoint was written {} --churn but this run is {} it; resume with the \
             original workload",
            if churn { "with" } else { "without" },
            if o.churn > 0.0 { "using" } else { "not using" }
        )));
    }
    let sz = o.n / o.clients;
    let mut states: Vec<ClientCheckpoint> = Vec::with_capacity(o.clients);
    while let Some(payload) = records.next().map_err(|e| fail(&e))? {
        let (idx, state) = if churn {
            let (idx, edges) =
                binary::decode_edge_batch(&payload, records.offset()).map_err(|e| fail(&e))?;
            if edges.iter().any(|&(u, v)| u as usize >= sz || v as usize >= sz) {
                return Err(fail(&"checkpointed edge outside the client's slice"));
            }
            (idx, ClientCheckpoint::Edges(edges))
        } else {
            let (idx, labels) =
                binary::decode_labels(&payload, records.offset()).map_err(|e| fail(&e))?;
            if labels.len() != sz {
                return Err(fail(&"client label record mis-sized"));
            }
            (idx, ClientCheckpoint::Labels(labels))
        };
        if idx as usize != states.len() {
            return Err(fail(&"client records out of order"));
        }
        states.push(state);
    }
    if states.len() != o.clients {
        return Err(fail(&format!("{} client records, want {}", states.len(), o.clients)));
    }
    Ok((batches_done as usize, states))
}

/// One wire connection: the text line protocol or the pipelined binary
/// protocol, both on the server's single port (first-byte sniff).
enum Wire {
    Text(Box<TcpClient>),
    /// Binary with a pipeline window: submitted batches are split into up
    /// to `usize` framed `B` requests kept in flight concurrently and
    /// reaped in whatever order the server completes them.
    Bin(Box<BinClient>, usize),
}

impl Wire {
    fn connect(addr: &str, o: &GenOpts) -> std::io::Result<Wire> {
        if o.binary {
            Ok(Wire::Bin(Box::new(BinClient::connect(addr)?), o.pipeline))
        } else {
            Ok(Wire::Text(Box::new(TcpClient::connect(addr)?)))
        }
    }

    /// Submits a mixed batch; answers in query submission order. On the
    /// binary wire this is the pipelined hot path.
    fn submit(&mut self, ops: &[Update]) -> std::io::Result<Vec<bool>> {
        match self {
            Wire::Text(c) => c.submit(ops),
            Wire::Bin(c, windows) => {
                // Split into up to `windows` framed requests, all in
                // flight at once. Reaping is order-free: answers are
                // reassembled by correlation id, so out-of-order
                // completion (the protocol's contract) is exercised, not
                // just tolerated.
                let chunk = ops.len().div_ceil((*windows).max(1)).max(1);
                let mut order: Vec<u64> = Vec::new();
                for window in ops.chunks(chunk) {
                    order.push(c.send_batch(window)?);
                }
                let mut by_corr: HashMap<u64, Vec<bool>> = HashMap::new();
                while c.in_flight() > 0 {
                    let (corr, reply) = c.reap()?;
                    let answers = match reply {
                        Reply::Answers(a) => a.iter().map(|&(bit, _)| bit).collect(),
                        Reply::Err(msg) => {
                            return Err(std::io::Error::other(format!("server error: {msg}")))
                        }
                        other => {
                            return Err(std::io::Error::other(format!(
                                "unexpected B reply {other:?}"
                            )))
                        }
                    };
                    by_corr.insert(corr, answers);
                }
                let mut out = Vec::new();
                for corr in order {
                    out.extend(by_corr.remove(&corr).ok_or_else(|| {
                        std::io::Error::other(format!("no reply for correlation id {corr}"))
                    })?);
                }
                Ok(out)
            }
        }
    }

    fn epoch(&mut self) -> std::io::Result<u64> {
        match self {
            Wire::Text(c) => c.epoch(),
            Wire::Bin(c, _) => c.epoch(),
        }
    }

    fn wait_epoch(&mut self, epoch: u64, timeout_ms: u64) -> std::io::Result<u64> {
        match self {
            Wire::Text(c) => c.wait_epoch(epoch, timeout_ms),
            Wire::Bin(c, _) => c.wait_epoch(epoch, timeout_ms),
        }
    }

    fn quiesce(&mut self, timeout_ms: u64) -> std::io::Result<u64> {
        match self {
            Wire::Text(c) => c.quiesce(timeout_ms),
            Wire::Bin(c, _) => c.quiesce(timeout_ms),
        }
    }

    /// `TOPK k`: `(entries, epoch, generation, sealed)`, sizes descending.
    #[allow(clippy::type_complexity)]
    fn topk(&mut self, k: usize) -> std::io::Result<(Vec<(u32, u64)>, u64, u64, bool)> {
        match self {
            Wire::Text(c) => c.topk(Some(k)),
            Wire::Bin(c, _) => c.topk(k.min(u8::MAX as usize) as u8),
        }
    }

    /// `HIST`: `(components, dense buckets, epoch, generation, sealed)`.
    #[allow(clippy::type_complexity)]
    fn hist(&mut self) -> std::io::Result<(u64, Vec<u64>, u64, u64, bool)> {
        match self {
            Wire::Text(c) => c.hist(),
            Wire::Bin(c, _) => c.hist(),
        }
    }

    /// `SIZE v`: `(size, root)` of `v`'s component.
    fn component_size(&mut self, v: u32) -> std::io::Result<(u64, u32)> {
        match self {
            Wire::Text(c) => c.component_size(v),
            Wire::Bin(c, _) => c.component_size(v),
        }
    }

    /// Reads `(generation, dirty)` — one side of the churn sandwich.
    fn generation(&mut self) -> std::io::Result<(u64, bool)> {
        let bad = |line: &dyn std::fmt::Debug| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad GEN reply {line:?}"))
        };
        match self {
            Wire::Text(c) => {
                let line = c.gen_line()?;
                let mut it = line.split_whitespace();
                let generation =
                    it.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad(&line))?;
                let dirty = match it.next() {
                    Some("dirty=0") => false,
                    Some("dirty=1") => true,
                    _ => return Err(bad(&line)),
                };
                Ok((generation, dirty))
            }
            Wire::Bin(c, _) => {
                let corr = c.send_gen()?;
                loop {
                    let (got, reply) = c.reap()?;
                    if got != corr {
                        continue;
                    }
                    return match reply {
                        Reply::Gen { generation, dirty, .. } => Ok((generation, dirty)),
                        other => Err(bad(&other)),
                    };
                }
            }
        }
    }
}

/// One transport connection, in-process or over the wire.
enum Conn {
    InProc(cc_server::Client),
    Tcp(Box<Wire>),
}

impl Conn {
    fn submit(&mut self, ops: &[Update]) -> Result<Vec<bool>, String> {
        match self {
            Conn::InProc(c) => c.submit(ops.to_vec()).map_err(|e| e.to_string()),
            Conn::Tcp(c) => c.submit(ops).map_err(|e| e.to_string()),
        }
    }

    fn epoch(&mut self) -> Result<u64, String> {
        match self {
            Conn::InProc(c) => Ok(c.epoch()),
            Conn::Tcp(c) => c.epoch().map_err(|e| e.to_string()),
        }
    }

    /// Blocks until no generation rebuild is in flight (or the timeout
    /// lapses, which surfaces as `Err` and is survivable: the caller's
    /// generation sandwich just won't find a clean window).
    fn quiesce(&mut self, timeout_ms: u64) -> Result<u64, String> {
        match self {
            Conn::InProc(c) => {
                c.quiesce(Duration::from_millis(timeout_ms)).map_err(|e| e.to_string())
            }
            Conn::Tcp(c) => c.quiesce(timeout_ms).map_err(|e| e.to_string()),
        }
    }

    /// Reads `(generation, dirty)` — one side of the churn sandwich.
    fn generation(&mut self) -> Result<(u64, bool), String> {
        match self {
            Conn::InProc(c) => {
                let info = c.generation_info();
                Ok((info.generation, info.dirty))
            }
            Conn::Tcp(c) => c.generation().map_err(|e| e.to_string()),
        }
    }

    /// `TOPK k`: size-descending `(root, size)` entries (singletons
    /// excluded by the verb's contract).
    fn topk(&mut self, k: usize) -> Result<Vec<(u32, u64)>, String> {
        match self {
            Conn::InProc(c) => Ok(c.topk(k).0),
            Conn::Tcp(c) => c.topk(k).map(|(entries, ..)| entries).map_err(|e| e.to_string()),
        }
    }

    /// `HIST`: `(components, dense log2 buckets)`.
    fn hist(&mut self) -> Result<(u64, Vec<u64>), String> {
        match self {
            Conn::InProc(c) => {
                let view = c.analytics();
                Ok((view.components, view.hist.to_vec()))
            }
            Conn::Tcp(c) => {
                c.hist().map(|(comp, buckets, ..)| (comp, buckets)).map_err(|e| e.to_string())
            }
        }
    }

    /// `SIZE v`: the size of `v`'s component.
    fn component_size(&mut self, v: u32) -> Result<u64, String> {
        match self {
            Conn::InProc(c) => {
                c.component_size(v).map(|(_root, size)| size).map_err(|e| e.to_string())
            }
            Conn::Tcp(c) => {
                c.component_size(v).map(|(size, _root)| size).map_err(|e| e.to_string())
            }
        }
    }
}

/// One client's connection to its follower replica, with the reconnect
/// resilience the kill-a-follower drill leans on: every operation that
/// fails is retried against a fresh connection until `--retry-secs`
/// lapses (reads and `WAIT` are idempotent, so a retry is always safe).
struct FollowerLink {
    addr: String,
    conn: Option<Wire>,
    retry: Duration,
    opts: GenOpts,
    /// The largest epoch this follower ever reported: `WAIT` replies
    /// must never regress (the honesty half of the staleness contract).
    max_epoch_seen: u64,
}

impl FollowerLink {
    fn connect(addr: String, o: &GenOpts) -> FollowerLink {
        FollowerLink {
            conn: Wire::connect(addr.as_str(), o).ok(),
            addr,
            retry: Duration::from_secs(o.retry_secs),
            opts: o.clone(),
            max_epoch_seen: 0,
        }
    }

    /// Runs `op` with reconnect-retry. The closure gets a live client;
    /// any error drops the connection and retries until the deadline.
    fn with_retry<T>(
        &mut self,
        what: &str,
        mut op: impl FnMut(&mut Wire) -> std::io::Result<T>,
    ) -> Result<T, String> {
        let deadline = Instant::now() + self.retry;
        loop {
            if let Some(c) = self.conn.as_mut() {
                match op(c) {
                    Ok(v) => return Ok(v),
                    Err(_) => self.conn = None,
                }
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "follower {}: {what} kept failing for {:?} (is it down for good?)",
                    self.addr, self.retry
                ));
            }
            std::thread::sleep(Duration::from_millis(200));
            self.conn = Wire::connect(self.addr.as_str(), &self.opts).ok();
        }
    }

    /// `WAIT`s until the follower reaches `epoch`, then submits the
    /// query-only batch — as ONE retry unit, so a reconnect (say, to a
    /// follower that was just SIGKILLed and restarted empty) always
    /// re-establishes the read-your-writes barrier before re-querying.
    /// Also checks the honesty half of the staleness contract: the
    /// follower's reported epoch never regresses.
    fn wait_and_query(&mut self, epoch: u64, queries: &[Update]) -> Result<Vec<bool>, String> {
        let timeout_ms = self.retry.as_millis() as u64;
        let (reached, answers) = self.with_retry("WAIT + queries", |c| {
            let reached = c.wait_epoch(epoch, timeout_ms)?;
            let answers = c.submit(queries)?;
            Ok((reached, answers))
        })?;
        if reached < self.max_epoch_seen {
            return Err(format!(
                "follower {}: reported epoch went backwards ({reached} after {})",
                self.addr, self.max_epoch_seen
            ));
        }
        self.max_epoch_seen = reached;
        if answers.len() != queries.len() {
            return Err(format!(
                "follower {}: {} answers to {} queries",
                self.addr,
                answers.len(),
                queries.len()
            ));
        }
        Ok(answers)
    }
}

#[derive(Default)]
struct WorkerReport {
    ops: u64,
    queries: u64,
    exact: u64,
    transitions: u64,
    mismatches: u64,
    /// Batches whose query answers were skipped because the connection
    /// died mid-submit and the inserts were replayed after reconnecting.
    skipped_batches: u64,
    /// Post-restore sweep queries validating the checkpointed oracle
    /// against the recovered server.
    sweep_checks: u64,
    /// Queries answered by a follower behind the WAIT barrier (all of
    /// them exactly validated).
    follower_verified: u64,
    /// Deletions submitted (churn mode).
    deletes: u64,
    /// Churn queries whose generation sandwich never found a clean
    /// window; their answers are advisory and were not validated.
    stale_skipped: u64,
    /// Analytics answers (`TOPK`/`HIST`/`SIZE`) validated exactly
    /// against the oracle partition (churn mode).
    analytics_checks: u64,
    /// Pair subscriptions registered (`--subscribe`).
    subs_registered: u64,
    /// Push events received (`--subscribe`).
    sub_events: u64,
    /// Subscription contract violations: missed, duplicated, ghost,
    /// early, or mis-stamped fires (`--subscribe`).
    sub_mismatches: u64,
    first_mismatch: Option<String>,
    /// The oracle state at exit, captured for `--kill-after`
    /// checkpointing.
    final_state: Option<ClientCheckpoint>,
    /// Live durable subscriptions at exit, captured for the
    /// `--kill-after` sidecar so a `--resume` run can re-attach them.
    final_subs: Option<Vec<SavedSub>>,
    /// The oracle's final component-size multiset over this client's
    /// private slice (churn mode), aggregated by the end-of-run global
    /// `TOPK`/`HIST` validation.
    final_sizes: Option<Vec<u64>>,
}

/// Submits with crash resilience: on a transport error in `--resume`
/// mode, reconnects (for up to `--retry-secs`) and resubmits the batch's
/// updates. Replaying the full insert/delete sequence in order is
/// idempotent at the liveness level (each edge ends in the state its
/// last operation left it in), so a partially-applied first attempt is
/// harmless. Returns `Ok(None)` for such a replayed batch (its query
/// answers are unknowable and must be skipped).
fn submit_resilient(
    o: &GenOpts,
    conn: &mut Conn,
    wire_ops: &[Update],
) -> Result<Option<Vec<bool>>, String> {
    let first_err = match conn.submit(wire_ops) {
        Ok(answers) => return Ok(Some(answers)),
        Err(e) => e,
    };
    let (true, Some(addr)) = (o.resume, o.tcp_addr.as_deref()) else {
        return Err(first_err);
    };
    let updates: Vec<Update> =
        wire_ops.iter().filter(|op| !matches!(op, Update::Query(..))).copied().collect();
    let deadline = Instant::now() + Duration::from_secs(o.retry_secs);
    loop {
        std::thread::sleep(Duration::from_millis(200));
        if let Ok(mut c) = Wire::connect(addr, o) {
            if c.submit(&updates).is_ok() {
                *conn = Conn::Tcp(Box::new(c));
                return Ok(None);
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "connection lost ({first_err}) and not restored within {}s",
                o.retry_secs
            ));
        }
    }
}

/// Reads the primary's epoch, with the same reconnect resilience as
/// [`submit_resilient`] when `--resume` allows it.
fn primary_epoch_resilient(o: &GenOpts, conn: &mut Conn) -> Result<u64, String> {
    let first_err = match conn.epoch() {
        Ok(e) => return Ok(e),
        Err(e) => e,
    };
    let (true, Some(addr)) = (o.resume, o.tcp_addr.as_deref()) else {
        return Err(first_err);
    };
    let deadline = Instant::now() + Duration::from_secs(o.retry_secs);
    loop {
        std::thread::sleep(Duration::from_millis(200));
        if let Ok(mut c) = Wire::connect(addr, o) {
            if let Ok(e) = c.epoch() {
                *conn = Conn::Tcp(Box::new(c));
                return Ok(e);
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "connection lost ({first_err}) and not restored within {}s",
                o.retry_secs
            ));
        }
    }
}

/// Submits a query-only batch so its answers are *exact* under churn.
/// Quiesce (drain any in-flight rebuild), read `(generation, dirty)`,
/// query, read it again: a rebuild commit always bumps the generation,
/// so clean-at-the-same-generation on both sides proves the engine was
/// clean for the whole batch, and every answer was served from live
/// labels that include all of this client's committed mutations (other
/// clients never touch this slice). Returns `Ok(None)` when no clean
/// window appears within a few attempts — the caller counts the batch
/// as `stale_skipped` instead of guessing.
fn sandwiched_queries(
    o: &GenOpts,
    conn: &mut Conn,
    queries: &[Update],
) -> Result<Option<Vec<bool>>, String> {
    for _ in 0..5 {
        // A quiesce timeout (or a cut connection — the next call retries
        // through `submit_resilient`) only costs this attempt.
        let _ = conn.quiesce(CHURN_QUIESCE_MS);
        let (g1, dirty1) = match conn.generation() {
            Ok(g) => g,
            Err(_) => continue,
        };
        if dirty1 {
            continue;
        }
        let Some(answers) = submit_resilient(o, conn, queries)? else {
            continue;
        };
        let (g2, dirty2) = conn.generation()?;
        if !dirty2 && g2 == g1 {
            if answers.len() != queries.len() {
                return Err(format!("answer count {} != queries {}", answers.len(), queries.len()));
            }
            return Ok(Some(answers));
        }
    }
    Ok(None)
}

/// Re-validates a restored oracle against the recovered server: every
/// `v ~ rep(v)` fact must still hold, and representatives of distinct
/// components must still be disconnected (slices are private, so both
/// directions are forced). `labels` is the oracle's component labeling.
/// Under churn the sweep queries go through the generation sandwich.
fn revalidate_restored(
    o: &GenOpts,
    idx: usize,
    conn: &mut Conn,
    labels: &[u32],
    to_global: &impl Fn(usize) -> u32,
    rep: &mut WorkerReport,
) -> Result<(), String> {
    let sz = o.n / o.clients;
    let mut expected: Vec<bool> = Vec::new();
    let mut wire: Vec<Update> = Vec::new();
    // Positives: vertex ~ its component representative.
    for (v, &label) in labels.iter().enumerate() {
        let l = label as usize;
        if l != v {
            wire.push(Update::Query(to_global(v), to_global(l)));
            expected.push(true);
        }
    }
    // Negatives: consecutive distinct representatives are disconnected.
    let mut reps: Vec<usize> = (0..sz).filter(|&v| labels[v] as usize == v).collect();
    reps.truncate(2048);
    for pair in reps.windows(2) {
        wire.push(Update::Query(to_global(pair[0]), to_global(pair[1])));
        expected.push(false);
    }
    for (chunk, expect_chunk) in wire.chunks(4096).zip(expected.chunks(4096)) {
        let answers = if o.churn > 0.0 {
            match sandwiched_queries(o, conn, chunk)? {
                Some(answers) => answers,
                None => {
                    rep.stale_skipped += chunk.len() as u64;
                    continue;
                }
            }
        } else {
            conn.submit(chunk)?
        };
        if answers.len() != expect_chunk.len() {
            return Err(format!(
                "sweep answer count {} != queries {}",
                answers.len(),
                expect_chunk.len()
            ));
        }
        for (i, (&got, &want)) in answers.iter().zip(expect_chunk).enumerate() {
            rep.sweep_checks += 1;
            if got != want {
                rep.mismatches += 1;
                rep.first_mismatch.get_or_insert_with(|| {
                    let (Update::Insert(u, v) | Update::Delete(u, v) | Update::Query(u, v)) =
                        chunk[i];
                    format!(
                        "client {idx}: restored-oracle sweep: query({u}, {v}) answered \
                         {got}, checkpoint says {want} — recovery lost or invented an edge"
                    )
                });
            }
        }
    }
    Ok(())
}

/// The closed loop for one client thread. `start_batch` and `restored`
/// carry `--resume` checkpoint state; the loop runs batches
/// `start_batch..end` where `end` honors `--kill-after`.
fn run_worker(
    o: &GenOpts,
    idx: usize,
    mut conn: Conn,
    start_batch: usize,
    restored: Option<ClientCheckpoint>,
) -> Result<WorkerReport, String> {
    let sz = o.n / o.clients;
    let to_global = |l: usize| -> u32 {
        if o.strided {
            (idx + l * o.clients) as u32
        } else {
            (idx * sz + l) as u32
        }
    };
    let mut oracle = SeqUnionFind::new(sz);
    let mut rep = WorkerReport::default();
    // Split routing: this worker's queries go to one follower replica
    // (workers round-robin over the list), inserts to the primary.
    let mut follower = (!o.followers.is_empty())
        .then(|| FollowerLink::connect(o.followers[idx % o.followers.len()].clone(), o));
    if let Some(state) = restored {
        let ClientCheckpoint::Labels(labels) = state else {
            return Err("checkpoint holds an edge set but this run is not --churn".into());
        };
        for (v, &l) in labels.iter().enumerate() {
            if l as usize != v {
                oracle.union(v as u32, l);
            }
        }
        revalidate_restored(o, idx, &mut conn, &oracle.labels(), &to_global, &mut rep)?;
    }
    // Phase-distinct RNG stream: a resumed run must not replay the
    // pre-checkpoint op sequence.
    let mut rng = SplitMix64::new(
        o.seed
            ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(idx as u64 + 1))
            ^ (0x2545_f491_4f6c_dd1du64.wrapping_mul(start_batch as u64)),
    );
    let mut local_ops: Vec<(bool, u32, u32)> = Vec::with_capacity(o.batch_ops);
    let mut wire_ops: Vec<Update> = Vec::with_capacity(o.batch_ops);
    let mut before: Vec<bool> = Vec::new();
    let query_cut = (o.query_frac * (1u64 << 32) as f64) as u64;
    let end_batch = match o.kill_after {
        Some(k) => o.batches.min(start_batch + k),
        None => o.batches,
    };
    for _ in start_batch..end_batch {
        local_ops.clear();
        wire_ops.clear();
        before.clear();
        for _ in 0..o.batch_ops {
            let r = rng.next_u64();
            let lu = (r >> 32) as usize % sz;
            let lv = (rng.next_u64() >> 32) as usize % sz;
            let is_query = (r & 0xffff_ffff) < query_cut;
            local_ops.push((is_query, lu as u32, lv as u32));
            let (gu, gv) = (to_global(lu), to_global(lv));
            if is_query {
                before.push(oracle.connected(lu as u32, lv as u32));
                wire_ops.push(Update::Query(gu, gv));
            } else {
                wire_ops.push(Update::Insert(gu, gv));
            }
        }
        if let Some(link) = follower.as_mut() {
            // Split-route: inserts to the primary first...
            let inserts: Vec<Update> =
                wire_ops.iter().copied().filter(|op| matches!(op, Update::Insert(..))).collect();
            let queries: Vec<Update> =
                wire_ops.iter().copied().filter(|op| matches!(op, Update::Query(..))).collect();
            if !inserts.is_empty() {
                submit_resilient(o, &mut conn, &inserts)?;
            }
            for &(is_query, lu, lv) in &local_ops {
                if !is_query {
                    oracle.union(lu, lv);
                }
            }
            rep.ops += o.batch_ops as u64;
            if queries.is_empty() {
                continue;
            }
            // ...then WAIT the primary's epoch on the follower and query
            // it there. The barrier makes every answer exact: the oracle
            // already holds this batch's inserts, and the follower is
            // guaranteed to as well.
            let target = primary_epoch_resilient(o, &mut conn)?;
            let answers = link.wait_and_query(target, &queries)?;
            let mut ai = 0usize;
            for &(is_query, lu, lv) in &local_ops {
                if !is_query {
                    continue;
                }
                let got = answers[ai];
                ai += 1;
                let want = oracle.connected(lu, lv);
                rep.queries += 1;
                rep.exact += 1;
                rep.follower_verified += 1;
                if got != want {
                    rep.mismatches += 1;
                    rep.first_mismatch.get_or_insert_with(|| {
                        format!(
                            "client {idx}: follower {}: query({}, {}) answered {got} behind \
                             WAIT {target}, oracle says {want}",
                            link.addr,
                            to_global(lu as usize),
                            to_global(lv as usize)
                        )
                    });
                }
            }
            continue;
        }
        let answers = submit_resilient(o, &mut conn, &wire_ops)?;
        // Advance the oracle past this batch's insertions (a replayed
        // batch applied exactly these inserts too).
        for &(is_query, lu, lv) in &local_ops {
            if !is_query {
                oracle.union(lu, lv);
            }
        }
        rep.ops += o.batch_ops as u64;
        let Some(answers) = answers else {
            rep.skipped_batches += 1;
            continue;
        };
        // Bracket-check every answer.
        let mut qi = 0usize;
        for &(is_query, lu, lv) in &local_ops {
            if !is_query {
                continue;
            }
            let got = *answers
                .get(qi)
                .ok_or_else(|| format!("short answer vector: {} < …", answers.len()))?;
            let was = before[qi];
            let now = oracle.connected(lu, lv);
            qi += 1;
            rep.queries += 1;
            if was == now {
                rep.exact += 1;
                if got != was {
                    rep.mismatches += 1;
                    rep.first_mismatch.get_or_insert_with(|| {
                        format!(
                            "client {idx}: query({}, {}) answered {got}, oracle says {was} \
                             (stable across the batch)",
                            to_global(lu as usize),
                            to_global(lv as usize)
                        )
                    });
                }
            } else {
                // false -> true within this batch: either answer is a
                // valid linearization.
                rep.transitions += 1;
            }
        }
        if qi != answers.len() {
            return Err(format!("answer count {} != queries {qi}", answers.len()));
        }
    }
    if o.kill_after.is_some() {
        rep.final_state = Some(ClientCheckpoint::Labels(oracle.labels()));
    }
    Ok(rep)
}

/// Magic first line of the `--subscribe` crash-drill sidecar (written
/// next to `--state FILE` as `FILE.subs`).
const SUB_STATE_MAGIC: &str = "CCLGSUBS01";

/// A durable subscription carried across a `--kill-after` checkpoint:
/// enough to re-`SUB ATTACH` after the server restarts and to absorb
/// recovery re-fires without double-counting.
#[derive(Clone)]
struct SavedSub {
    id: u64,
    lu: u32,
    lv: u32,
    fired: bool,
}

/// Per-subscription expectation state in the `--subscribe` worker.
struct SubTrack {
    lu: u32,
    lv: u32,
    /// A fire is owed within this epoch window `(lo, hi]`. `(0, MAX)`
    /// means "any epoch": registration-time fires (the pair was already
    /// connected when `SUB` was accepted) and recovery re-evaluations.
    /// `None` means no fire is legal yet — the oracle says the pair is
    /// still disconnected.
    expect: Option<(u64, u64)>,
    fired: bool,
}

/// Writes the durable-subscription sidecar: one `client` header per
/// worker, then `<id> <lu> <lv> <fired>` lines.
fn write_sub_state(path: &str, per_client: &[Vec<SavedSub>]) -> std::io::Result<()> {
    let mut out = String::from(SUB_STATE_MAGIC);
    out.push('\n');
    for (idx, subs) in per_client.iter().enumerate() {
        out.push_str(&format!("client {idx} {}\n", subs.len()));
        for s in subs {
            out.push_str(&format!("{} {} {} {}\n", s.id, s.lu, s.lv, u8::from(s.fired)));
        }
    }
    std::fs::write(path, out)
}

/// Reads a [`write_sub_state`] sidecar back.
fn read_sub_state(path: &str, clients: usize) -> Result<Vec<Vec<SavedSub>>, String> {
    let fail = |e: &dyn std::fmt::Display| format!("subscription sidecar {path}: {e}");
    let text = std::fs::read_to_string(path).map_err(|e| fail(&e))?;
    let mut lines = text.lines();
    if lines.next() != Some(SUB_STATE_MAGIC) {
        return Err(fail(&"bad magic"));
    }
    let mut out: Vec<Vec<SavedSub>> = Vec::with_capacity(clients);
    while let Some(header) = lines.next() {
        let mut it = header.split_whitespace();
        if it.next() != Some("client") {
            return Err(fail(&"bad client header"));
        }
        let idx: usize =
            it.next().and_then(|s| s.parse().ok()).ok_or_else(|| fail(&"bad client index"))?;
        let count: usize =
            it.next().and_then(|s| s.parse().ok()).ok_or_else(|| fail(&"bad sub count"))?;
        if idx != out.len() {
            return Err(fail(&"client records out of order"));
        }
        let mut subs = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| fail(&"truncated sub record"))?;
            let mut f = line.split_whitespace();
            let mut num = || f.next().and_then(|s| s.parse::<u64>().ok());
            let (Some(id), Some(lu), Some(lv), Some(fired)) = (num(), num(), num(), num()) else {
                return Err(fail(&"bad sub record"));
            };
            subs.push(SavedSub { id, lu: lu as u32, lv: lv as u32, fired: fired != 0 });
        }
        out.push(subs);
    }
    if out.len() != clients {
        return Err(fail(&format!("{} client records, want {clients}", out.len())));
    }
    Ok(out)
}

/// Records one subscription contract violation.
fn sub_mismatch(rep: &mut WorkerReport, idx: usize, msg: String) {
    rep.sub_mismatches += 1;
    rep.first_mismatch.get_or_insert_with(|| format!("client {idx}: subscription: {msg}"));
}

/// Classifies every received push event against the worker's
/// expectation table: ghost (fired after `UNSUB`), unknown id, wrong
/// kind/endpoints, duplicate, early (oracle says still disconnected),
/// or epoch outside the committing batch's window. A legal fire settles
/// its subscription.
fn process_sub_events(
    events: Vec<SubEvent>,
    idx: usize,
    subs: &mut HashMap<u64, SubTrack>,
    cancelled: &HashSet<u64>,
    rep: &mut WorkerReport,
) {
    for ev in events {
        rep.sub_events += 1;
        if cancelled.contains(&ev.id) {
            sub_mismatch(rep, idx, format!("ghost event for sub {} after UNSUB", ev.id));
            continue;
        }
        let Some(t) = subs.get_mut(&ev.id) else {
            sub_mismatch(rep, idx, format!("event for unknown sub {}", ev.id));
            continue;
        };
        if ev.kind != SubKind::Pair {
            sub_mismatch(rep, idx, format!("sub {}: non-pair event kind", ev.id));
            continue;
        }
        if t.fired {
            sub_mismatch(
                rep,
                idx,
                format!("sub {}: duplicate fire (seq {}, epoch {})", ev.id, ev.seq, ev.epoch),
            );
            continue;
        }
        if ev.seq != 1 {
            sub_mismatch(rep, idx, format!("sub {}: first fire carries seq {}", ev.id, ev.seq));
        }
        match t.expect {
            None => sub_mismatch(
                rep,
                idx,
                format!(
                    "sub {}: fired at epoch {} before the oracle saw ({}, {}) connect \
                     (early fire)",
                    ev.id, ev.epoch, t.lu, t.lv
                ),
            ),
            Some((lo, hi)) => {
                if ev.epoch <= lo || ev.epoch > hi {
                    sub_mismatch(
                        rep,
                        idx,
                        format!(
                            "sub {}: fire epoch {} outside the committing window ({lo}, {hi}]",
                            ev.id, ev.epoch
                        ),
                    );
                }
            }
        }
        t.fired = true;
        t.expect = None;
    }
}

/// The closed loop for one `--subscribe` client: an insert-only stream
/// over the private slice, with pair subscriptions registered against
/// it and every pushed event validated *exactly*. Connectivity is
/// monotone without deletions, so the contract has no slack: a pair
/// subscription fires exactly once, if and only if the pair is
/// connected, stamped with an epoch inside the `(EPOCH-before,
/// EPOCH-after]` window of the batch that connected it (registrations
/// over already-connected pairs fire immediately, at any epoch). A
/// cancelled subscription must stay silent forever. With
/// `--kill-after`/`--resume` the subscriptions are durable: the worker
/// re-attaches them with `SUB ATTACH id after_seq` after the server
/// restarts, absorbing the recovery re-fire of already-acknowledged
/// pairs while still demanding the fire that a connected-but-unfired
/// pair is owed.
fn run_sub_worker(
    o: &GenOpts,
    idx: usize,
    start_batch: usize,
    restored: Option<ClientCheckpoint>,
    resumed_subs: Vec<SavedSub>,
) -> Result<WorkerReport, String> {
    let sz = o.n / o.clients;
    let to_global = |l: usize| -> u32 {
        if o.strided {
            (idx + l * o.clients) as u32
        } else {
            (idx * sz + l) as u32
        }
    };
    let addr = o.tcp_addr.as_deref().expect("--subscribe is tcp-only");
    let mut client = TcpClient::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    // Insert-only workload: a sequential union-find is an exact oracle.
    let mut oracle = SeqUnionFind::new(sz);
    let mut rep = WorkerReport::default();
    let mut subs: HashMap<u64, SubTrack> = HashMap::new();
    let mut cancelled: HashSet<u64> = HashSet::new();
    let durable = o.kill_after.is_some() || o.resume;

    if let Some(state) = restored {
        let ClientCheckpoint::Labels(labels) = state else {
            return Err("checkpoint holds an edge set but --subscribe runs insert-only".into());
        };
        for (v, &l) in labels.iter().enumerate() {
            if l as usize != v {
                oracle.union(v as u32, l);
            }
        }
    }
    // Re-attach durable subscriptions that survived the restart.
    // `after_seq = 1` for already-acknowledged fires absorbs the
    // recovery re-fire server-side; receiving one anyway is a
    // duplicate-delivery bug. A connected-but-unfired pair is owed a
    // fire from recovery's re-evaluation — at whatever epoch the
    // recovered engine stamps it.
    for s in resumed_subs {
        client
            .attach_sub(s.id, u64::from(s.fired))
            .map_err(|e| format!("SUB ATTACH {} failed: {e}", s.id))?;
        let expect = (!s.fired && oracle.connected(s.lu, s.lv)).then_some((0u64, u64::MAX));
        subs.insert(s.id, SubTrack { lu: s.lu, lv: s.lv, expect, fired: s.fired });
    }

    // Phase-distinct RNG stream, mirroring [`run_worker`].
    let mut rng = SplitMix64::new(
        o.seed
            ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(idx as u64 + 1))
            ^ (0x2545_f491_4f6c_dd1du64.wrapping_mul(start_batch as u64)),
    );
    let mut live_edges: Vec<(u32, u32)> = Vec::new();
    let mut wire_ops: Vec<Update> = Vec::with_capacity(o.batch_ops);
    let mut batch_edges: Vec<(u32, u32)> = Vec::with_capacity(o.batch_ops);
    let end_batch = match o.kill_after {
        Some(k) => o.batches.min(start_batch + k),
        None => o.batches,
    };
    for batch in start_batch..end_batch {
        // Register two fresh pair subscriptions: one over a known live
        // edge (already connected — must fire immediately), one random
        // (usually pending until some batch connects it).
        for pick_connected in [true, false] {
            let (lu, lv) = if pick_connected && !live_edges.is_empty() {
                live_edges[(rng.next_u64() % live_edges.len() as u64) as usize]
            } else {
                (
                    ((rng.next_u64() >> 32) as usize % sz) as u32,
                    ((rng.next_u64() >> 32) as usize % sz) as u32,
                )
            };
            let (id, _epoch) = client
                .subscribe_pair(to_global(lu as usize), to_global(lv as usize), durable)
                .map_err(|e| format!("SUB failed: {e}"))?;
            let expect = oracle.connected(lu, lv).then_some((0u64, u64::MAX));
            subs.insert(id, SubTrack { lu, lv, expect, fired: false });
            rep.subs_registered += 1;
        }
        // Every few batches, cancel one idle (never fired, still
        // disconnected, so no fire can be in flight) subscription and
        // hold it to silence forever.
        if batch % 4 == 3 {
            let victim =
                subs.iter().find(|(_, t)| !t.fired && t.expect.is_none()).map(|(&id, _)| id);
            if let Some(id) = victim {
                client.unsubscribe(id).map_err(|e| format!("UNSUB {id} failed: {e}"))?;
                subs.remove(&id);
                cancelled.insert(id);
            }
        }
        // The insert batch, bracketed by EPOCH reads: everything it
        // commits lands at an epoch in (e_pre, e_post].
        wire_ops.clear();
        batch_edges.clear();
        for _ in 0..o.batch_ops {
            let lu = ((rng.next_u64() >> 32) as usize % sz) as u32;
            let lv = ((rng.next_u64() >> 32) as usize % sz) as u32;
            batch_edges.push((lu, lv));
            wire_ops.push(Update::Insert(to_global(lu as usize), to_global(lv as usize)));
        }
        let e_pre = client.epoch().map_err(|e| e.to_string())?;
        client.submit(&wire_ops).map_err(|e| e.to_string())?;
        let e_post = client.epoch().map_err(|e| e.to_string())?;
        rep.ops += o.batch_ops as u64;
        for &(lu, lv) in &batch_edges {
            oracle.union(lu, lv);
            live_edges.push((lu, lv));
        }
        // Pending subscriptions whose endpoints this batch connected now
        // owe a fire stamped inside the batch's committing window.
        for t in subs.values_mut() {
            if !t.fired && t.expect.is_none() && oracle.connected(t.lu, t.lv) {
                t.expect = Some((e_pre, e_post));
            }
        }
        // Events stashed while reading replies (plus any already pushed
        // but not yet read) are classified after the oracle advanced, so
        // this batch's fires meet their freshly-set windows.
        let mut evs = client.take_events();
        evs.extend(client.poll_events(Duration::from_millis(1)).map_err(|e| e.to_string())?);
        process_sub_events(evs, idx, &mut subs, &cancelled, &mut rep);
    }

    // Drain: every owed fire must arrive; silence past the deadline is a
    // missed delivery.
    let deadline = Instant::now() + Duration::from_secs(15);
    while subs.values().any(|t| t.expect.is_some()) && Instant::now() < deadline {
        let evs = client.poll_events(Duration::from_millis(200)).map_err(|e| e.to_string())?;
        process_sub_events(evs, idx, &mut subs, &cancelled, &mut rep);
    }
    for (id, t) in &subs {
        if let Some((lo, hi)) = t.expect {
            sub_mismatch(
                &mut rep,
                idx,
                format!(
                    "sub {id}: pair ({}, {}) connected in window ({lo}, {hi}] but no event \
                     arrived (missed delivery)",
                    to_global(t.lu as usize),
                    to_global(t.lv as usize)
                ),
            );
        }
    }

    // Cross-check the server's registry: every live subscription must be
    // listed with the fired flag we observed; cancelled ids must be gone.
    // (SUBS is global, but ids are unique across clients.)
    let listing = client.subs().map_err(|e| e.to_string())?;
    let listed: HashMap<u64, bool> = listing
        .iter()
        .filter_map(|line| {
            let mut it = line.split_whitespace();
            let id: u64 = it.next()?.parse().ok()?;
            Some((id, it.nth(5)? == "1"))
        })
        .collect();
    for (id, t) in &subs {
        match listed.get(id) {
            None => sub_mismatch(&mut rep, idx, format!("sub {id} missing from SUBS listing")),
            Some(&f) if f != t.fired => sub_mismatch(
                &mut rep,
                idx,
                format!(
                    "sub {id}: SUBS lists fired={f} but this client observed fired={}",
                    t.fired
                ),
            ),
            _ => {}
        }
    }
    for id in &cancelled {
        if listed.contains_key(id) {
            sub_mismatch(&mut rep, idx, format!("cancelled sub {id} still in SUBS listing"));
        }
    }

    if o.kill_after.is_some() {
        rep.final_state = Some(ClientCheckpoint::Labels(oracle.labels()));
        rep.final_subs = Some(
            subs.iter()
                .map(|(&id, t)| SavedSub { id, lu: t.lu, lv: t.lv, fired: t.fired })
                .collect(),
        );
    }
    Ok(rep)
}

/// The closed loop for one churn-mode client: mutation batches mixing
/// inserts and deletes at `--churn`, each followed by an exactly
/// validated query batch (see the module doc's churn section). The
/// oracle is a [`DynamicOracle`] over the private slice; a live-edge
/// pool (vector + index map, O(1) insert/remove/sample) drives deletion
/// sampling without rescanning the adjacency.
fn run_churn_worker(
    o: &GenOpts,
    idx: usize,
    mut conn: Conn,
    start_batch: usize,
    restored: Option<ClientCheckpoint>,
) -> Result<WorkerReport, String> {
    let sz = o.n / o.clients;
    let to_global = |l: usize| -> u32 {
        if o.strided {
            (idx + l * o.clients) as u32
        } else {
            (idx * sz + l) as u32
        }
    };
    let mut oracle = DynamicOracle::new(sz);
    let mut live: Vec<(u32, u32)> = Vec::new();
    let mut live_at: HashMap<(u32, u32), usize> = HashMap::new();
    let mut rep = WorkerReport::default();
    let pool_insert =
        |live: &mut Vec<(u32, u32)>, live_at: &mut HashMap<(u32, u32), usize>, e: (u32, u32)| {
            live_at.insert(e, live.len());
            live.push(e);
        };
    let pool_remove =
        |live: &mut Vec<(u32, u32)>, live_at: &mut HashMap<(u32, u32), usize>, e: (u32, u32)| {
            if let Some(i) = live_at.remove(&e) {
                let last = live.pop().expect("pool and index agree");
                if i < live.len() {
                    live[i] = last;
                    live_at.insert(last, i);
                }
            }
        };
    if let Some(state) = restored {
        let ClientCheckpoint::Edges(edges) = state else {
            return Err("checkpoint holds labels but this run is --churn".into());
        };
        for &(u, v) in &edges {
            if oracle.insert(u, v) {
                pool_insert(&mut live, &mut live_at, (u.min(v), u.max(v)));
            }
        }
        revalidate_restored(o, idx, &mut conn, &oracle.labels(), &to_global, &mut rep)?;
    }
    // Phase-distinct RNG stream, exactly as in the insert-only loop.
    let mut rng = SplitMix64::new(
        o.seed
            ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(idx as u64 + 1))
            ^ (0x2545_f491_4f6c_dd1du64.wrapping_mul(start_batch as u64)),
    );
    let delete_cut = (o.churn * (1u64 << 32) as f64) as u64;
    let num_queries = (o.query_frac * o.batch_ops as f64).max(1.0) as usize;
    let end_batch = match o.kill_after {
        Some(k) => o.batches.min(start_batch + k),
        None => o.batches,
    };
    let mut wire_ops: Vec<Update> = Vec::with_capacity(o.batch_ops);
    for _ in start_batch..end_batch {
        wire_ops.clear();
        let mut batch_deletes = 0u64;
        for _ in 0..o.batch_ops {
            let r = rng.next_u64();
            let is_delete = (r & 0xffff_ffff) < delete_cut;
            if is_delete {
                // Mostly retract live edges (the engine classifies each
                // as forest or non-forest); every fourth deletion is a
                // random pair, covering absent and duplicate deletions.
                let (lu, lv) = if !live.is_empty() && (r >> 32) & 3 != 0 {
                    live[(rng.next_u64() % live.len() as u64) as usize]
                } else {
                    (
                        ((rng.next_u64() >> 32) as usize % sz) as u32,
                        ((rng.next_u64() >> 32) as usize % sz) as u32,
                    )
                };
                if oracle.delete(lu, lv) {
                    pool_remove(&mut live, &mut live_at, (lu.min(lv), lu.max(lv)));
                }
                wire_ops.push(Update::Delete(to_global(lu as usize), to_global(lv as usize)));
                batch_deletes += 1;
            } else {
                let lu = ((r >> 32) as usize % sz) as u32;
                let lv = ((rng.next_u64() >> 32) as usize % sz) as u32;
                if oracle.insert(lu, lv) {
                    pool_insert(&mut live, &mut live_at, (lu.min(lv), lu.max(lv)));
                }
                wire_ops.push(Update::Insert(to_global(lu as usize), to_global(lv as usize)));
            }
        }
        submit_resilient(o, &mut conn, &wire_ops)?;
        rep.ops += o.batch_ops as u64;
        rep.deletes += batch_deletes;
        // Exact validation: random intra-slice queries, answered inside
        // a clean generation window and matched against the oracle.
        let mut queries: Vec<Update> = Vec::with_capacity(num_queries);
        let mut expected: Vec<bool> = Vec::with_capacity(num_queries);
        for _ in 0..num_queries {
            let lu = ((rng.next_u64() >> 32) as usize % sz) as u32;
            let lv = ((rng.next_u64() >> 32) as usize % sz) as u32;
            queries.push(Update::Query(to_global(lu as usize), to_global(lv as usize)));
            expected.push(oracle.connected(lu, lv));
        }
        rep.ops += num_queries as u64;
        match sandwiched_queries(o, &mut conn, &queries)? {
            Some(answers) => {
                for (i, (&got, &want)) in answers.iter().zip(&expected).enumerate() {
                    rep.queries += 1;
                    rep.exact += 1;
                    if got != want {
                        rep.mismatches += 1;
                        rep.first_mismatch.get_or_insert_with(|| {
                            let (Update::Insert(u, v)
                            | Update::Delete(u, v)
                            | Update::Query(u, v)) = queries[i];
                            format!(
                                "client {idx}: churn: query({u}, {v}) answered {got} in a \
                                 clean generation window, oracle says {want}"
                            )
                        });
                    }
                }
            }
            None => rep.stale_skipped += num_queries as u64,
        }
        // Analytics spot checks: `SIZE` for a few random slice vertices,
        // validated exactly against the oracle component's cardinality
        // inside its own clean generation window. Slices are private, so
        // the expected size depends on no other client. The vertices are
        // drawn before the retry loop to keep the RNG stream independent
        // of window-timing luck.
        let spots: Vec<u32> =
            (0..4).map(|_| ((rng.next_u64() >> 32) as usize % sz) as u32).collect();
        let mut window_found = false;
        for _ in 0..5 {
            let _ = conn.quiesce(CHURN_QUIESCE_MS);
            let Ok((g1, false)) = conn.generation() else { continue };
            let labels = oracle.labels();
            let mut size_of: HashMap<u32, u64> = HashMap::new();
            for &l in &labels {
                *size_of.entry(l).or_insert(0) += 1;
            }
            let sized: Option<Vec<u64>> =
                spots.iter().map(|&lv| conn.component_size(to_global(lv as usize)).ok()).collect();
            let Some(sized) = sized else { continue };
            let Ok((g2, false)) = conn.generation() else { continue };
            if g2 != g1 {
                continue;
            }
            for (&lv, &got) in spots.iter().zip(&sized) {
                rep.analytics_checks += 1;
                let want = size_of[&labels[lv as usize]];
                if got != want {
                    rep.mismatches += 1;
                    rep.first_mismatch.get_or_insert_with(|| {
                        format!(
                            "client {idx}: churn: SIZE {} answered {got} in a clean \
                             generation window, oracle component has {want} vertices",
                            to_global(lv as usize)
                        )
                    });
                }
            }
            window_found = true;
            break;
        }
        if !window_found {
            rep.stale_skipped += spots.len() as u64;
        }
    }
    // The final slice partition, for the global TOPK/HIST validation.
    let labels = oracle.labels();
    let mut size_of: HashMap<u32, u64> = HashMap::new();
    for &l in &labels {
        *size_of.entry(l).or_insert(0) += 1;
    }
    rep.final_sizes = Some(size_of.into_values().collect());
    if o.kill_after.is_some() {
        rep.final_state = Some(ClientCheckpoint::Edges(live));
    }
    Ok(rep)
}

/// End-of-run global analytics validation (churn mode). Clients own
/// disjoint private slices, so the expected component-size multiset
/// over the whole vertex space is exactly the union of every client's
/// final slice partition plus the `n % clients` vertices no slice
/// covers (global singletons forever). `TOPK`, `HIST`, and the live
/// component count must match that multiset bit-for-bit inside a clean
/// generation window — the analytics plane's deltas and rebuild resyncs
/// have no room for drift.
fn validate_global_analytics(
    o: &GenOpts,
    conn: &mut Conn,
    client_sizes: &[Vec<u64>],
    total: &mut WorkerReport,
) -> Result<(), String> {
    let leftover = o.n - (o.n / o.clients) * o.clients;
    let mut sizes: Vec<u64> = client_sizes.iter().flatten().copied().collect();
    sizes.extend(std::iter::repeat_n(1u64, leftover));
    let expected_components = sizes.len() as u64;
    let mut expected_hist = vec![0u64; cc_server::HIST_BUCKETS];
    for &s in &sizes {
        expected_hist[(63 - s.leading_zeros()) as usize] += 1;
    }
    // TOPK excludes singletons and materializes at most TOPK_CAP.
    let mut expected_topk: Vec<u64> = sizes.into_iter().filter(|&s| s >= 2).collect();
    expected_topk.sort_unstable_by(|a, b| b.cmp(a));
    expected_topk.truncate(cc_server::TOPK_CAP);

    for _ in 0..5 {
        let _ = conn.quiesce(CHURN_QUIESCE_MS);
        let Ok((g1, false)) = conn.generation() else { continue };
        let (Ok(entries), Ok((components, hist))) = (conn.topk(cc_server::TOPK_CAP), conn.hist())
        else {
            continue;
        };
        let Ok((g2, false)) = conn.generation() else { continue };
        if g2 != g1 {
            continue;
        }
        let mut check = |what: &str, ok: bool, detail: String| {
            total.analytics_checks += 1;
            if !ok {
                total.mismatches += 1;
                total
                    .first_mismatch
                    .get_or_insert_with(|| format!("global analytics: {what}: {detail}"));
            }
        };
        check(
            "component count",
            components == expected_components,
            format!("HIST reported {components}, oracle partition has {expected_components}"),
        );
        check(
            "HIST",
            hist == expected_hist,
            format!("buckets {hist:?} != oracle {expected_hist:?}"),
        );
        let got_topk: Vec<u64> = entries.iter().map(|&(_, s)| s).collect();
        check(
            "TOPK",
            got_topk == expected_topk,
            format!("sizes {got_topk:?} != oracle {expected_topk:?}"),
        );
        return Ok(());
    }
    Err("no clean generation window for the end-of-run analytics validation".into())
}

/// Writes a scraped `METRICS` exposition to `path`, restoring the `# EOF`
/// wire terminator so the file parses exactly like a live scrape.
fn write_metrics_file(path: &str, lines: &[String]) -> std::io::Result<()> {
    let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum::<usize>() + 8);
    for l in lines {
        out.push_str(l);
        out.push('\n');
    }
    out.push_str("# EOF\n");
    std::fs::write(path, out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    let o = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("connectit-loadgen: {e}");
            return usage();
        }
    };

    // A --resume run restores the checkpointed per-client oracles first.
    let (start_batch, mut restored): (usize, Vec<Option<ClientCheckpoint>>) =
        match (o.resume, &o.state) {
            (true, Some(path)) => match read_state(path, &o) {
                Ok((done, states)) => {
                    println!(
                        "connectit-loadgen: resuming from {path}: {done} batches/client \
                         already validated before the restart"
                    );
                    (done, states.into_iter().map(Some).collect())
                }
                Err(e) => {
                    eprintln!("connectit-loadgen: {e}");
                    return ExitCode::FAILURE;
                }
            },
            _ => (0, std::iter::repeat_with(|| None).take(o.clients).collect()),
        };
    if start_batch >= o.batches {
        eprintln!(
            "connectit-loadgen: checkpoint already covers {start_batch} batches; \
             raise --batches past it"
        );
        return ExitCode::FAILURE;
    }
    // A --subscribe resume also restores the durable-subscription
    // sidecar so each worker can re-attach and keep validating.
    let mut resumed_subs: Vec<Vec<SavedSub>> = match (o.subscribe && o.resume, &o.state) {
        (true, Some(path)) => match read_sub_state(&format!("{path}.subs"), o.clients) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("connectit-loadgen: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => vec![Vec::new(); o.clients],
    };

    // In-process mode hosts its own service; TCP mode talks to a running
    // connectit-serve.
    let mut service: Option<Service> = None;
    if o.tcp_addr.is_none() {
        let cfg = ServiceConfig {
            n: o.n,
            shards: o.shards,
            spec: o.spec,
            mode: if o.phased { ExecMode::Phased } else { ExecMode::Auto },
            ..ServiceConfig::default()
        };
        match Service::start(cfg) {
            Ok(s) => service = Some(s),
            Err(e) => {
                eprintln!("connectit-loadgen: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let t0 = Instant::now();
    let reports: Vec<Result<WorkerReport, String>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for idx in 0..o.clients {
            let o = o.clone();
            let restored = restored[idx].take();
            let resumed = std::mem::take(&mut resumed_subs[idx]);
            // The subscription worker owns its own text connection (push
            // lines interleave with replies on it).
            let conn = match (&service, &o.tcp_addr, o.subscribe) {
                (_, _, true) => None,
                (Some(svc), _, _) => Some(Ok(Conn::InProc(svc.client()))),
                (None, Some(addr), _) => {
                    Some(Wire::connect(addr.as_str(), &o).map(|c| Conn::Tcp(Box::new(c))))
                }
                (None, None, _) => unreachable!("inproc mode always has a service"),
            };
            handles.push(scope.spawn(move || {
                if o.subscribe {
                    return run_sub_worker(&o, idx, start_batch, restored, resumed);
                }
                let conn = conn
                    .expect("non-subscribe workers have a connection")
                    .map_err(|e| format!("connect failed: {e}"))?;
                if o.churn > 0.0 {
                    run_churn_worker(&o, idx, conn, start_batch, restored)
                } else {
                    run_worker(&o, idx, conn, start_batch, restored)
                }
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let elapsed = t0.elapsed();

    let mut total = WorkerReport::default();
    let mut failed = false;
    let mut final_states: Vec<ClientCheckpoint> = Vec::with_capacity(o.clients);
    let mut final_sizes: Vec<Vec<u64>> = Vec::with_capacity(o.clients);
    let mut final_subs: Vec<Vec<SavedSub>> = Vec::with_capacity(o.clients);
    for (i, r) in reports.into_iter().enumerate() {
        match r {
            Ok(mut r) => {
                total.ops += r.ops;
                total.queries += r.queries;
                total.exact += r.exact;
                total.transitions += r.transitions;
                total.mismatches += r.mismatches;
                total.skipped_batches += r.skipped_batches;
                total.sweep_checks += r.sweep_checks;
                total.follower_verified += r.follower_verified;
                total.deletes += r.deletes;
                total.stale_skipped += r.stale_skipped;
                total.analytics_checks += r.analytics_checks;
                total.subs_registered += r.subs_registered;
                total.sub_events += r.sub_events;
                total.sub_mismatches += r.sub_mismatches;
                if total.first_mismatch.is_none() {
                    total.first_mismatch = r.first_mismatch;
                }
                if let Some(state) = r.final_state.take() {
                    final_states.push(state);
                }
                if let Some(sizes) = r.final_sizes.take() {
                    final_sizes.push(sizes);
                }
                if let Some(subs) = r.final_subs.take() {
                    final_subs.push(subs);
                }
            }
            Err(e) => {
                eprintln!("connectit-loadgen: client {i} failed: {e}");
                failed = true;
            }
        }
    }

    // Global analytics validation: with every churn worker's final slice
    // partition in hand, TOPK/HIST and the component count over the full
    // vertex space have exactly one legal value.
    if o.churn > 0.0 && !failed && final_sizes.len() == o.clients {
        let conn = match (&service, &o.tcp_addr) {
            (Some(svc), _) => Ok(Conn::InProc(svc.client())),
            (None, Some(addr)) => Wire::connect(addr.as_str(), &o).map(|c| Conn::Tcp(Box::new(c))),
            (None, None) => unreachable!("inproc mode always has a service"),
        };
        match conn {
            Ok(mut conn) => {
                if let Err(e) = validate_global_analytics(&o, &mut conn, &final_sizes, &mut total) {
                    eprintln!("connectit-loadgen: {e}");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("connectit-loadgen: analytics validation connect failed: {e}");
                failed = true;
            }
        }
    }

    // Crash-drill checkpoint: persist every client oracle so a --resume
    // run can re-validate across the server restart.
    if let (Some(k), Some(path), false) = (o.kill_after, &o.state, failed) {
        let done = o.batches.min(start_batch + k);
        match write_state(path, &o, done, &final_states) {
            Ok(()) => println!(
                "connectit-loadgen: checkpoint: {done} batches/client validated, oracle \
                 state saved to {path}; kill/restart the server, then rerun with \
                 --resume --state {path}"
            ),
            Err(e) => {
                eprintln!("connectit-loadgen: checkpoint write to {path} failed: {e}");
                failed = true;
            }
        }
        if o.subscribe && !failed {
            let side = format!("{path}.subs");
            match write_sub_state(&side, &final_subs) {
                Ok(()) => println!(
                    "connectit-loadgen: durable subscriptions saved to {side}; they will be \
                     re-attached on --resume"
                ),
                Err(e) => {
                    eprintln!("connectit-loadgen: sidecar write to {side} failed: {e}");
                    failed = true;
                }
            }
        }
    }

    let ops_per_sec = (total.ops as f64 / elapsed.as_secs_f64()) as u64;
    let mode = match (&o.tcp_addr, o.binary) {
        (Some(_), true) => "tcp-binary",
        (Some(_), false) => "tcp",
        (None, _) => "inproc",
    };
    let layout = if o.strided { "strided" } else { "blocked" };
    println!(
        "connectit-loadgen: mode={mode} n={} shards={} clients={} batches={} batch_ops={} \
         query_frac={} churn={} layout={layout} alg={} followers={} pipeline={}",
        o.n,
        o.shards,
        o.clients,
        o.batches,
        o.batch_ops,
        o.query_frac,
        o.churn,
        o.spec.name(),
        o.followers.len(),
        o.pipeline
    );
    println!(
        "ops={} elapsed={:.3}s ops_per_sec={ops_per_sec} verified_queries={} exact={} \
         intra_batch_transitions={} sweep_checks={} follower_verified={} skipped_batches={} \
         deletes={} stale_skipped={} analytics_checks={} subs_registered={} sub_events={} \
         sub_mismatches={} mismatches={}",
        total.ops,
        elapsed.as_secs_f64(),
        total.queries,
        total.exact,
        total.transitions,
        total.sweep_checks,
        total.follower_verified,
        total.skipped_batches,
        total.deletes,
        total.stale_skipped,
        total.analytics_checks,
        total.subs_registered,
        total.sub_events,
        total.sub_mismatches,
        total.mismatches
    );
    if let Some(m) = &total.first_mismatch {
        eprintln!("connectit-loadgen: FIRST MISMATCH: {m}");
    }

    // Final server-side stats (and optional remote shutdown). A failed
    // `--shutdown` delivery is fatal: the caller (e.g. CI) is about to
    // `wait` on the server process.
    match (&service, &o.tcp_addr) {
        (Some(svc), _) => {
            println!("server: {}", svc.client().stats());
            if let Some(path) = &o.metrics_out {
                if let Err(e) = write_metrics_file(path, &svc.client().render_metrics()) {
                    eprintln!("connectit-loadgen: metrics write to {path} failed: {e}");
                    failed = true;
                }
            }
        }
        (None, Some(addr)) => match TcpClient::connect(addr.as_str()) {
            Ok(mut c) => {
                if let Ok(s) = c.stats_line() {
                    println!("server: {s}");
                }
                if let Some(path) = &o.metrics_out {
                    match c.metrics().and_then(|lines| write_metrics_file(path, &lines)) {
                        Ok(()) => {}
                        Err(e) => {
                            eprintln!("connectit-loadgen: metrics scrape to {path} failed: {e}");
                            failed = true;
                        }
                    }
                }
                if o.send_shutdown {
                    if let Err(e) = c.shutdown_server() {
                        eprintln!("connectit-loadgen: SHUTDOWN delivery failed: {e}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("connectit-loadgen: final connection failed: {e}");
                if o.send_shutdown {
                    failed = true;
                }
            }
        },
        (None, None) => {}
    }
    if let Some(mut svc) = service {
        svc.shutdown();
    }

    if failed || total.mismatches > 0 || total.sub_mismatches > 0 || ops_per_sec == 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
