//! `connectit-stat` — a `top`-style live view over a running server's
//! `METRICS` exposition.
//!
//! ```text
//! connectit-stat [--addr HOST:PORT] [--interval-ms MS] [--count N]
//! ```
//!
//! Polls the `METRICS` verb every interval and renders one row per
//! series: the current value, and — for monotone `_total` counters —
//! the per-second rate over the last interval. With a TTY the screen is
//! redrawn in place; piped output appends one block per sample, so the
//! tool doubles as a plain-text scraper (`--count 1` takes a single
//! snapshot and exits). `--count 0` (the default) polls until killed.

use cc_server::TcpClient;
use std::collections::BTreeMap;
use std::io::IsTerminal;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Opts {
    addr: String,
    interval: Duration,
    count: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: connectit-stat [--addr HOST:PORT] [--interval-ms MS] [--count N]\n\
         \x20  --addr          server to poll (default 127.0.0.1:7411)\n\
         \x20  --interval-ms   poll interval (default 1000)\n\
         \x20  --count N       stop after N samples (default 0 = forever)"
    );
    ExitCode::from(2)
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        addr: "127.0.0.1:7411".to_string(),
        interval: Duration::from_millis(1000),
        count: 0,
    };
    let mut it = args.iter();
    let next_val = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => opts.addr = next_val(a, &mut it)?,
            "--interval-ms" => {
                let ms: u64 =
                    next_val(a, &mut it)?.parse().map_err(|_| "bad --interval-ms".to_string())?;
                opts.interval = Duration::from_millis(ms.max(1));
            }
            "--count" => {
                opts.count = next_val(a, &mut it)?.parse().map_err(|_| "bad --count".to_string())?
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// One scrape, flattened: series name (labels included) → value. `# TYPE`
/// comments are dropped; the name/value split is the final space, so
/// labeled series (`…{follower="1"} 7`) parse like plain ones.
fn parse_sample(lines: &[String]) -> BTreeMap<String, u64> {
    let mut sample = BTreeMap::new();
    for l in lines {
        if l.starts_with('#') {
            continue;
        }
        if let Some((name, val)) = l.rsplit_once(' ') {
            if let Ok(v) = val.parse::<u64>() {
                sample.insert(name.to_string(), v);
            }
        }
    }
    sample
}

fn render(
    addr: &str,
    seq: u64,
    sample: &BTreeMap<String, u64>,
    prev: Option<&BTreeMap<String, u64>>,
    dt: Duration,
    redraw: bool,
) -> std::io::Result<()> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut w = std::io::BufWriter::new(stdout.lock());
    if redraw {
        // Clear and home, like top: each sample repaints the screen.
        write!(w, "\x1b[2J\x1b[H")?;
    }
    writeln!(
        w,
        "connectit-stat {addr} sample={seq} interval={:.1}s series={}",
        dt.as_secs_f64(),
        sample.len()
    )?;
    let width = sample.keys().map(|k| k.len()).max().unwrap_or(0);
    for (name, &v) in sample {
        // A rate is meaningful only for monotone counters with a prior
        // sample; gauges and summary quantiles print their value alone.
        let is_counter = name.contains("_total") || name == "connectit_epoch";
        match (is_counter, prev.and_then(|p| p.get(name))) {
            (true, Some(&pv)) => {
                let rate = v.saturating_sub(pv) as f64 / dt.as_secs_f64().max(1e-9);
                writeln!(w, "{name:<width$}  {v:>14}  {rate:>12.1}/s")?;
            }
            _ => writeln!(w, "{name:<width$}  {v:>14}")?,
        }
    }
    w.flush()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("connectit-stat: {e}");
            return usage();
        }
    };
    let mut client = match TcpClient::connect(opts.addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connectit-stat: connect to {} failed: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let redraw = std::io::stdout().is_terminal();
    let mut prev: Option<(BTreeMap<String, u64>, Instant)> = None;
    let mut seq = 0u64;
    loop {
        let lines = match client.metrics() {
            Ok(lines) => lines,
            Err(e) => {
                eprintln!("connectit-stat: scrape failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let now = Instant::now();
        let sample = parse_sample(&lines);
        let (prev_sample, dt) = match &prev {
            Some((p, at)) => (Some(p), now.duration_since(*at)),
            None => (None, opts.interval),
        };
        seq += 1;
        if let Err(e) = render(&opts.addr, seq, &sample, prev_sample, dt, redraw) {
            // A closed pipe (`connectit-stat | head`) is a clean exit,
            // not a failure.
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                return ExitCode::SUCCESS;
            }
            eprintln!("connectit-stat: write failed: {e}");
            return ExitCode::FAILURE;
        }
        if opts.count != 0 && seq >= opts.count {
            return ExitCode::SUCCESS;
        }
        prev = Some((sample, now));
        std::thread::sleep(opts.interval);
    }
}
