//! `connectit-serve` — the long-running sharded connectivity daemon.
//!
//! ```text
//! connectit-serve [--n N] [--shards S] [--bind ADDR] [--port P]
//!                 [--alg fastest|async|rem-splice] [--finish SPEC] [--phased]
//!                 [--batch-ops K] [--batch-wait-us U] [--snapshot-every B]
//!                 [--wal-dir DIR] [--fsync always|batch|off]
//!                 [--replication-port R | --replicate-from HOST:PORT]
//!                 [--net-shards S] [--idle-timeout-ms MS]
//! ```
//!
//! `--net-shards` sets the number of event-loop shards in the wire front
//! end (default: one per core, capped at 8); `--idle-timeout-ms` closes
//! connections (text and binary alike) idle past the limit with a typed
//! `idle-timeout` close reason in the flight recorder.
//!
//! `--finish` accepts any valid union-find variant as
//! `unite[+splice][+find]` (e.g. `rem-lock+halve-one+compress`,
//! `async+split`, `jtb+two-try`), superseding the `--alg` shorthand;
//! invalid combinations are rejected with the rule they violate.
//!
//! `--wal-dir` turns on durability: every applied batch is logged to a
//! segmented, checksummed write-ahead log before it commits, and startup
//! recovers whatever state (snapshot + WAL suffix) the directory already
//! holds, resuming at the recovered epoch. `--fsync` picks the sync
//! discipline (see `cc_server::wal`); with a WAL, `--snapshot-every`
//! also writes a *durable* label snapshot on that epoch cadence, which
//! bounds replay and prunes covered segments.
//!
//! `--replication-port` (primary side; requires `--wal-dir`) additionally
//! serves the WAL-shipping replication stream to followers on that port.
//! `--replicate-from HOST:PORT` starts this process as a read-replica
//! *follower* instead: an in-memory engine fed exclusively by the
//! primary's replication stream, serving `Q`/`B`/`LABEL`/`COMPONENTS`/
//! `EPOCH`/`WAIT` (inserts answer `ERR read-only follower …`) at an
//! honestly-reported replication epoch. See DESIGN.md §8.
//!
//! Serves the line protocol documented in `cc_server::net` until a client
//! sends `SHUTDOWN`, then prints final stats and exits.

use cc_server::{
    parse_alg, serve_replication_observed, serve_with, DurabilityConfig, ExecMode, NetConfig, Role,
    Service, ServiceConfig,
};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: connectit-serve [--n N] [--shards S] [--bind ADDR] [--port P]\n\
         \x20                      [--alg fastest|async|rem-splice] [--finish SPEC] [--phased]\n\
         \x20                      [--batch-ops K] [--batch-wait-us U] [--snapshot-every B]\n\
         \x20                      [--wal-dir DIR] [--fsync always|batch|off]\n\
         \x20                      [--replication-port R | --replicate-from HOST:PORT]\n\
         \x20                      [--net-shards S] [--idle-timeout-ms MS] [--sub-queue-cap K]\n\
         \x20  SPEC: unite[+splice][+find], e.g. rem-lock+halve-one+compress, async+split,\n\
         \x20        jtb+two-try (unites: async|hooks|early|rem-cas|rem-lock|jtb)\n\
         \x20  --wal-dir enables the write-ahead log + crash recovery; --snapshot-every\n\
         \x20  then also controls the durable snapshot cadence\n\
         \x20  --replication-port streams the WAL to followers (requires --wal-dir)\n\
         \x20  --replicate-from makes this a read-only follower of that primary\n\
         \x20  --net-shards: event-loop shards in the wire front end (default: one per\n\
         \x20  core, capped at 8); --idle-timeout-ms: close idle connections typed;\n\
         \x20  --sub-queue-cap: pending subscription events a slow text consumer may\n\
         \x20  queue before a typed sub-overflow close (default 4096)"
    );
    ExitCode::from(2)
}

struct Opts {
    cfg: ServiceConfig,
    bind: String,
    port: u16,
    wal_dir: Option<String>,
    fsync: cc_server::FsyncPolicy,
    replication_port: Option<u16>,
    replicate_from: Option<String>,
    net: NetConfig,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        cfg: ServiceConfig { n: 1 << 20, shards: 4, ..ServiceConfig::default() },
        bind: "127.0.0.1".to_string(),
        port: 7411,
        wal_dir: None,
        fsync: cc_server::FsyncPolicy::Batch,
        replication_port: None,
        replicate_from: None,
        net: NetConfig::default(),
    };
    let mut it = args.iter();
    let next_val = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => {
                opts.cfg.n = next_val(a, &mut it)?.parse().map_err(|_| "bad --n".to_string())?
            }
            "--shards" => {
                opts.cfg.shards =
                    next_val(a, &mut it)?.parse().map_err(|_| "bad --shards".to_string())?
            }
            "--bind" => opts.bind = next_val(a, &mut it)?,
            "--port" => {
                opts.port = next_val(a, &mut it)?.parse().map_err(|_| "bad --port".to_string())?
            }
            "--alg" => opts.cfg.spec = parse_alg(&next_val(a, &mut it)?)?,
            "--finish" => opts.cfg.spec = next_val(a, &mut it)?.parse()?,
            "--phased" => opts.cfg.mode = ExecMode::Phased,
            "--batch-ops" => {
                opts.cfg.batch_max_ops =
                    next_val(a, &mut it)?.parse().map_err(|_| "bad --batch-ops".to_string())?
            }
            "--batch-wait-us" => {
                let us: u64 =
                    next_val(a, &mut it)?.parse().map_err(|_| "bad --batch-wait-us".to_string())?;
                opts.cfg.batch_max_wait = Duration::from_micros(us);
            }
            "--snapshot-every" => {
                opts.cfg.snapshot_every =
                    next_val(a, &mut it)?.parse().map_err(|_| "bad --snapshot-every".to_string())?
            }
            "--wal-dir" => opts.wal_dir = Some(next_val(a, &mut it)?),
            "--fsync" => opts.fsync = next_val(a, &mut it)?.parse()?,
            "--replication-port" => {
                opts.replication_port = Some(
                    next_val(a, &mut it)?
                        .parse()
                        .map_err(|_| "bad --replication-port".to_string())?,
                )
            }
            "--replicate-from" => opts.replicate_from = Some(next_val(a, &mut it)?),
            "--net-shards" => {
                opts.net.shards =
                    next_val(a, &mut it)?.parse().map_err(|_| "bad --net-shards".to_string())?;
                if opts.net.shards == 0 {
                    return Err("--net-shards must be at least 1".into());
                }
            }
            "--idle-timeout-ms" => {
                let ms: u64 = next_val(a, &mut it)?
                    .parse()
                    .map_err(|_| "bad --idle-timeout-ms".to_string())?;
                if ms == 0 {
                    return Err("--idle-timeout-ms must be at least 1".into());
                }
                opts.net.idle_timeout = Some(Duration::from_millis(ms));
            }
            "--sub-queue-cap" => {
                opts.net.sub_queue_cap =
                    next_val(a, &mut it)?.parse().map_err(|_| "bad --sub-queue-cap".to_string())?;
                if opts.net.sub_queue_cap == 0 {
                    return Err("--sub-queue-cap must be at least 1".into());
                }
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.replicate_from.is_some() {
        if opts.wal_dir.is_some() {
            return Err("--replicate-from starts an in-memory follower; the WAL belongs to \
                        the primary (drop --wal-dir)"
                .into());
        }
        if opts.replication_port.is_some() {
            return Err("--replicate-from and --replication-port are mutually exclusive \
                        (a follower does not re-ship the stream)"
                .into());
        }
        opts.cfg.role = Role::Follower;
    }
    if opts.replication_port.is_some() && opts.wal_dir.is_none() {
        return Err("--replication-port streams the WAL to followers and needs --wal-dir".into());
    }
    if let Some(dir) = &opts.wal_dir {
        opts.cfg.durability = Some(DurabilityConfig {
            fsync: opts.fsync,
            // With durability on, the snapshot cadence also writes
            // epoch-keyed snapshots to disk (bounding recovery replay).
            snapshot_every: opts.cfg.snapshot_every,
            ..DurabilityConfig::new(dir)
        });
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("connectit-serve: {e}");
            return usage();
        }
    };
    let mut service = match Service::start(opts.cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connectit-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let client = service.client();
    let mut server = match serve_with(&service, (opts.bind.as_str(), opts.port), opts.net.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connectit-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Durability on: a panic anywhere in the process flushes the flight
    // recorder to the run's trace file before unwinding, so the restart
    // can surface the final recorded events (the service's own periodic
    // and shutdown flushes append to the same file).
    if let Some(dir) = &opts.wal_dir {
        let obs = client.observability();
        let path = std::path::Path::new(dir).join(format!("trace-{}.log", std::process::id()));
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = obs.recorder.flush_to_file(&path);
            prev(info);
        }));
    }

    // Primary side of replication: stream the WAL directory to followers
    // with the service's observability plane attached (per-follower lag
    // gauges, shipped-record counters, lifecycle events).
    let mut hub = None;
    if let Some(rport) = opts.replication_port {
        let dir = opts.wal_dir.as_deref().expect("checked in parse_args");
        match serve_replication_observed(
            dir,
            (opts.bind.as_str(), rport),
            Some(client.observability()),
        ) {
            Ok(h) => hub = Some(h),
            Err(e) => {
                eprintln!("connectit-serve: replication bind failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Follower side: connect to the primary and apply its stream forever.
    let repl_shutdown = Arc::new(AtomicBool::new(false));
    let mut receiver = None;
    if let Some(primary) = &opts.replicate_from {
        match cc_server::run_follower(client.clone(), primary.clone(), Arc::clone(&repl_shutdown)) {
            Ok((h, _counters)) => receiver = Some(h),
            Err(e) => {
                eprintln!("connectit-serve: replication receiver failed to start: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let wal_info = match &opts.wal_dir {
        Some(dir) => {
            format!(" wal_dir={dir} fsync={} recovered_epoch={}", opts.fsync, client.epoch())
        }
        None => String::new(),
    };
    let repl_info = match (&hub, &opts.replicate_from) {
        (Some(h), _) => format!(" replication_addr={}", h.local_addr()),
        (None, Some(primary)) => format!(" replicate_from={primary}"),
        (None, None) => String::new(),
    };
    println!(
        "connectit-serve listening on {} role={} n={} shards={} alg={} mode={} batch_ops={} batch_wait={:?}{wal_info}{repl_info}",
        server.local_addr(),
        client.role(),
        client.num_vertices(),
        client.num_shards(),
        opts.cfg.spec.name(),
        client.mode(),
        opts.cfg.batch_max_ops,
        opts.cfg.batch_max_wait,
    );
    server.wait_shutdown();
    if let Some(mut h) = hub {
        h.stop();
    }
    repl_shutdown.store(true, Ordering::Release);
    service.shutdown();
    if let Some(h) = receiver {
        let _ = h.join();
    }
    println!("connectit-serve: shutdown; final stats: {}", client.stats());
    if let Ok(wal) = client.wal_stats() {
        println!("connectit-serve: final wal stats: {wal}");
    }
    ExitCode::SUCCESS
}
