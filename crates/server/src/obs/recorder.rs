//! The flight recorder: a fixed-capacity, lock-free ring buffer of
//! stamped lifecycle events, cheap enough to leave on in production and
//! dense enough to reconstruct *why* a latency spike or a stuck rebuild
//! happened after the fact.
//!
//! ## Concurrency contract
//!
//! Writers claim a slot with one `fetch_add` on the head sequence, fill
//! the slot's fields with relaxed stores, and publish the slot by
//! storing its sequence number last with `Release`. Readers load the
//! stamp with `Acquire`, copy the fields, and re-check the stamp: a
//! mismatch means the slot was being overwritten mid-read and the event
//! is skipped. The recorder therefore never blocks a writer, and a
//! reader can only lose events that were being *overwritten* during the
//! read — the trade the paper's monitoring-isolation argument asks for.
//!
//! ## Capacity and overwrite semantics
//!
//! Capacity is fixed at construction ([`DEFAULT_RECORDER_CAPACITY`]
//! slots, a power of two). When full, the oldest event is silently
//! overwritten; `TRACE [n]` dumps the most recent `n` events still
//! resident. On shutdown (and periodically from the batcher) the ring
//! is appended to `<wal-dir>/trace-<pid>.log`; on restart the previous
//! run's file tail is surfaced and the file removed, so SIGKILL
//! post-mortems are self-serve.

use parking_lot::Mutex;
use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default number of ring slots (power of two).
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// Default number of events a bare `TRACE` dumps.
pub const DEFAULT_TRACE_EVENTS: usize = 64;

/// Why a connection handler returned (the payload of
/// [`Event::ConnClosed`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// Peer closed its write half between requests.
    Eof,
    /// Client sent `QUIT`.
    Quit,
    /// Client sent `SHUTDOWN`.
    Shutdown,
    /// Request line exceeded the line cap.
    OversizedLine,
    /// `B` header promised more ops than the wire cap allows.
    BadBatchHeader,
    /// Peer died mid-batch (fewer body lines than promised).
    TruncatedBatch,
    /// Read or write on the socket failed.
    IoError,
    /// Connection sat idle past the configured read/idle timeout.
    IdleTimeout,
    /// Binary stream damage: bad magic, CRC mismatch, oversized or
    /// short-headered frame.
    BadFrame,
    /// The connection's subscription push queue overflowed (slow
    /// consumer): the connection is dropped rather than silently losing
    /// events; durable subscriptions retain for a later `SUB ATTACH`.
    SubOverflow,
}

impl CloseReason {
    fn code(self) -> u64 {
        match self {
            CloseReason::Eof => 0,
            CloseReason::Quit => 1,
            CloseReason::Shutdown => 2,
            CloseReason::OversizedLine => 3,
            CloseReason::BadBatchHeader => 4,
            CloseReason::TruncatedBatch => 5,
            CloseReason::IoError => 6,
            CloseReason::IdleTimeout => 7,
            CloseReason::BadFrame => 8,
            CloseReason::SubOverflow => 9,
        }
    }

    fn from_code(c: u64) -> &'static str {
        match c {
            0 => "eof",
            1 => "quit",
            2 => "shutdown",
            3 => "oversized-line",
            4 => "bad-batch-header",
            5 => "truncated-batch",
            7 => "idle-timeout",
            8 => "bad-frame",
            9 => "sub-overflow",
            _ => "io-error",
        }
    }
}

/// One lifecycle event. Payload fields are two `u64`s chosen per kind;
/// the rendered line names them, so trace consumers never need this
/// enum's layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// The batcher coalesced pending submissions into one batch.
    BatchFormed {
        /// Epoch the batch will commit as.
        epoch: u64,
        /// Operations in the batch.
        ops: u64,
    },
    /// A batch was appended (and made durable per policy) to the WAL.
    WalAppend {
        /// Epoch of the appended record.
        epoch: u64,
        /// Encoded record bytes written.
        bytes: u64,
    },
    /// One `fsync` (data sync) of the active WAL segment completed.
    FsyncDone {
        /// Wall time the sync took, nanoseconds.
        nanos: u64,
    },
    /// The engine applied a batch.
    EngineApplied {
        /// Epoch the batch committed as.
        epoch: u64,
        /// Operations applied.
        ops: u64,
    },
    /// A fresh label snapshot was published for lock-free readers.
    SnapshotPublished {
        /// Epoch the snapshot reflects.
        epoch: u64,
        /// Connected components in the snapshot.
        components: u64,
    },
    /// A generation was sealed (labels frozen, rebuild scheduled).
    RebuildSealed {
        /// The generation that was sealed.
        generation: u64,
    },
    /// A rebuild committed and the next generation went live.
    RebuildCommitted {
        /// The generation that just went live.
        generation: u64,
        /// Pending ops drained into the new generation at commit.
        drained: u64,
    },
    /// A replication follower completed its handshake.
    FollowerConnected {
        /// Follower slot id (matches the `follower` metric label).
        id: u64,
        /// Epoch the follower reported having.
        epoch: u64,
    },
    /// A follower finished replaying the backlog and is tailing live.
    FollowerCaughtUp {
        /// Follower slot id.
        id: u64,
        /// Epoch at which it caught up.
        epoch: u64,
    },
    /// A follower fell behind a pruned WAL and must re-handshake.
    FollowerPruned {
        /// Follower slot id.
        id: u64,
    },
    /// A client connection handler returned.
    ConnClosed {
        /// Why the handler returned.
        reason: CloseReason,
    },
    /// A subscription event was dispatched (sequence assigned, pushed to
    /// its sink or retained for replay).
    SubFired {
        /// The subscription id.
        id: u64,
        /// Epoch the event was stamped with.
        epoch: u64,
    },
}

impl Event {
    fn encode(self) -> (u64, u64, u64) {
        match self {
            Event::BatchFormed { epoch, ops } => (1, epoch, ops),
            Event::WalAppend { epoch, bytes } => (2, epoch, bytes),
            Event::FsyncDone { nanos } => (3, nanos, 0),
            Event::EngineApplied { epoch, ops } => (4, epoch, ops),
            Event::SnapshotPublished { epoch, components } => (5, epoch, components),
            Event::RebuildSealed { generation } => (6, generation, 0),
            Event::RebuildCommitted { generation, drained } => (7, generation, drained),
            Event::FollowerConnected { id, epoch } => (8, id, epoch),
            Event::FollowerCaughtUp { id, epoch } => (9, id, epoch),
            Event::FollowerPruned { id } => (10, id, 0),
            Event::ConnClosed { reason } => (11, reason.code(), 0),
            Event::SubFired { id, epoch } => (12, id, epoch),
        }
    }
}

/// A decoded ring entry, as returned by [`Recorder::events`].
#[derive(Clone, Copy, Debug)]
pub struct TraceEntry {
    /// Monotone sequence number (1-based, gap-free per recorder).
    pub seq: u64,
    /// Microseconds since the recorder (i.e. the service) started.
    pub at_micros: u64,
    kind: u64,
    a: u64,
    b: u64,
}

impl fmt::Display for TraceEntry {
    /// Wire-stable trace line: `T <seq> <t_us> <Kind> <k>=<v> [<k>=<v>]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T {} {} ", self.seq, self.at_micros)?;
        let (a, b) = (self.a, self.b);
        match self.kind {
            1 => write!(f, "BatchFormed epoch={a} ops={b}"),
            2 => write!(f, "WalAppend epoch={a} bytes={b}"),
            3 => write!(f, "FsyncDone nanos={a}"),
            4 => write!(f, "EngineApplied epoch={a} ops={b}"),
            5 => write!(f, "SnapshotPublished epoch={a} components={b}"),
            6 => write!(f, "RebuildSealed generation={a}"),
            7 => write!(f, "RebuildCommitted generation={a} drained={b}"),
            8 => write!(f, "FollowerConnected follower={a} epoch={b}"),
            9 => write!(f, "FollowerCaughtUp follower={a} epoch={b}"),
            10 => write!(f, "FollowerPruned follower={a}"),
            11 => write!(f, "ConnClosed reason={}", CloseReason::from_code(a)),
            12 => write!(f, "SubFired sub={a} epoch={b}"),
            k => write!(f, "Unknown kind={k} a={a} b={b}"),
        }
    }
}

struct Slot {
    /// Sequence number of the resident event; 0 = never written. Written
    /// last with `Release`, so a matching pre/post read brackets a
    /// consistent field copy.
    stamp: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    at_micros: AtomicU64,
}

/// The flight recorder. See the module docs for the concurrency and
/// overwrite contract.
pub struct Recorder {
    slots: Vec<Slot>,
    head: AtomicU64,
    start: Instant,
    /// Sequence already appended to the trace file; guards the file
    /// against duplicate flushes. Only the batcher's periodic flush and
    /// shutdown take it — never an event writer.
    flushed: Mutex<u64>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }
}

impl Recorder {
    /// A recorder with `capacity` slots (rounded up to a power of two,
    /// minimum 8).
    pub fn with_capacity(capacity: usize) -> Recorder {
        let cap = capacity.next_power_of_two().max(8);
        Recorder {
            slots: (0..cap)
                .map(|_| Slot {
                    stamp: AtomicU64::new(0),
                    kind: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                    at_micros: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            start: Instant::now(),
            flushed: Mutex::new(0),
        }
    }

    /// Records one event: one `fetch_add` plus five stores, no locks.
    pub fn record(&self, ev: Event) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &self.slots[(seq as usize - 1) & (self.slots.len() - 1)];
        let (kind, a, b) = ev.encode();
        // Invalidate the slot first so a concurrent reader of the old
        // event sees a stamp change instead of mixed fields.
        slot.stamp.store(0, Ordering::Release);
        slot.kind.store(kind, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.at_micros.store(self.start.elapsed().as_micros() as u64, Ordering::Relaxed);
        slot.stamp.store(seq, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The most recent `n` events still resident, oldest first. Slots
    /// caught mid-overwrite are skipped (see the module docs).
    pub fn events(&self, n: usize) -> Vec<TraceEntry> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        if head == 0 || n == 0 {
            return Vec::new();
        }
        let lo = head.saturating_sub((n as u64).min(cap)) + 1;
        let mut out = Vec::with_capacity((head - lo + 1).min(cap) as usize);
        for seq in lo..=head {
            let slot = &self.slots[(seq as usize - 1) & (self.slots.len() - 1)];
            if slot.stamp.load(Ordering::Acquire) != seq {
                continue; // not yet published, or already overwritten
            }
            let entry = TraceEntry {
                seq,
                at_micros: slot.at_micros.load(Ordering::Relaxed),
                kind: slot.kind.load(Ordering::Relaxed),
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            };
            if slot.stamp.load(Ordering::Acquire) == seq {
                out.push(entry);
            }
        }
        out
    }

    /// Renders the most recent `n` events as wire-stable `T ...` lines
    /// (without the `# EOF` terminator — the wire layer appends it).
    pub fn render_last(&self, n: usize) -> Vec<String> {
        self.events(n).iter().map(|e| e.to_string()).collect()
    }

    /// Appends every event not yet flushed to `path`, creating the file
    /// on first use. Returns the number of lines appended. Callers are
    /// the batcher's idle tick, shutdown, and the serve binary's panic
    /// hook — never an event writer.
    pub fn flush_to_file(&self, path: &Path) -> std::io::Result<usize> {
        let mut flushed = self.flushed.lock();
        let head = self.head.load(Ordering::Acquire);
        if head == *flushed {
            return Ok(0);
        }
        let fresh = self
            .events(self.slots.len())
            .into_iter()
            .filter(|e| e.seq > *flushed)
            .collect::<Vec<_>>();
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut buf = String::with_capacity(fresh.len() * 48);
        for e in &fresh {
            buf.push_str(&e.to_string());
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())?;
        *flushed = head;
        Ok(fresh.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_and_overwrite_oldest() {
        let r = Recorder::with_capacity(8);
        assert!(r.events(8).is_empty());
        for i in 0..12 {
            r.record(Event::BatchFormed { epoch: i, ops: 2 });
        }
        assert_eq!(r.recorded(), 12);
        // Capacity 8: events 5..=12 resident, oldest overwritten.
        let evs = r.events(100);
        assert_eq!(evs.len(), 8);
        assert_eq!(evs.first().unwrap().seq, 5);
        assert_eq!(evs.last().unwrap().seq, 12);
        let lines = r.render_last(2);
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("T 12 "), "{}", lines[1]);
        assert!(lines[1].ends_with("BatchFormed epoch=11 ops=2"), "{}", lines[1]);
    }

    #[test]
    fn every_kind_renders_named_fields() {
        let r = Recorder::with_capacity(16);
        for ev in [
            Event::BatchFormed { epoch: 1, ops: 2 },
            Event::WalAppend { epoch: 1, bytes: 64 },
            Event::FsyncDone { nanos: 500 },
            Event::EngineApplied { epoch: 1, ops: 2 },
            Event::SnapshotPublished { epoch: 1, components: 9 },
            Event::RebuildSealed { generation: 0 },
            Event::RebuildCommitted { generation: 1, drained: 3 },
            Event::FollowerConnected { id: 1, epoch: 0 },
            Event::FollowerCaughtUp { id: 1, epoch: 5 },
            Event::FollowerPruned { id: 1 },
            Event::ConnClosed { reason: CloseReason::Quit },
            Event::ConnClosed { reason: CloseReason::IdleTimeout },
            Event::ConnClosed { reason: CloseReason::BadFrame },
            Event::ConnClosed { reason: CloseReason::SubOverflow },
            Event::SubFired { id: 4, epoch: 11 },
        ] {
            r.record(ev);
        }
        let text = r.render_last(16).join("\n");
        for needle in [
            "BatchFormed epoch=1 ops=2",
            "WalAppend epoch=1 bytes=64",
            "FsyncDone nanos=500",
            "EngineApplied epoch=1 ops=2",
            "SnapshotPublished epoch=1 components=9",
            "RebuildSealed generation=0",
            "RebuildCommitted generation=1 drained=3",
            "FollowerConnected follower=1 epoch=0",
            "FollowerCaughtUp follower=1 epoch=5",
            "FollowerPruned follower=1",
            "ConnClosed reason=quit",
            "ConnClosed reason=idle-timeout",
            "ConnClosed reason=bad-frame",
            "ConnClosed reason=sub-overflow",
            "SubFired sub=4 epoch=11",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn flush_appends_only_fresh_events() {
        let dir = crate::scratch_dir("obs-recorder-flush");
        let path = dir.join("trace-test.log");
        let r = Recorder::with_capacity(32);
        r.record(Event::FsyncDone { nanos: 1 });
        r.record(Event::FsyncDone { nanos: 2 });
        assert_eq!(r.flush_to_file(&path).unwrap(), 2);
        assert_eq!(r.flush_to_file(&path).unwrap(), 0, "no duplicates");
        r.record(Event::FsyncDone { nanos: 3 });
        assert_eq!(r.flush_to_file(&path).unwrap(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().last().unwrap().contains("FsyncDone nanos=3"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_never_tear_a_read() {
        let r = std::sync::Arc::new(Recorder::with_capacity(64));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let (r, stop) = (std::sync::Arc::clone(&r), std::sync::Arc::clone(&stop));
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        r.record(Event::EngineApplied { epoch: t * 1_000_000_000 + i, ops: t });
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for e in r.events(64) {
                // A torn slot would pair epoch and ops from different
                // writers; published slots must be self-consistent.
                assert_eq!(e.a / 1_000_000_000, e.b, "torn slot: {e}");
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }
}
