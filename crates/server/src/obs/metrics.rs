//! The metrics registry: every exported series of the service stack,
//! registered statically as a named field and rendered in a stable
//! Prometheus-style text exposition (the `METRICS` verb).
//!
//! ## Write path
//!
//! Instrumentation writes are relaxed atomic increments (or one
//! [`LatencyHist`] record, itself a handful of relaxed `fetch_add`s) on
//! pre-registered series — no allocation, no locking, no formatting.
//! Subsystems update the registry *at write time*, so the scrape never
//! has to reach into the batcher, the WAL writer, or the generation
//! engine's writer lock to compute a value.
//!
//! ## Read path
//!
//! [`Metrics::render`] reads every series with relaxed atomic loads and
//! formats the exposition. The only lock it takes is the registry's own
//! follower-table mutex (see [`Metrics::register_follower`]) — held for
//! a `Vec` clone, never taken by the batch former, the WAL writer, or
//! any query path. The lock-by-lock audit lives in `DESIGN.md` §10.
//!
//! ## Exposition grammar (wire-stable)
//!
//! ```text
//! # TYPE connectit_<name> counter|gauge|summary
//! connectit_<name>[{label="value"}] <integer>
//! ```
//!
//! Histograms export as summaries: four `{quantile="..."}` lines
//! (p50/p90/p99/p999, nanoseconds), a `_sum` (approximated as
//! `mean * count`, same ~3% quantization as the histogram itself) and a
//! `_count`. The `METRICS` (and `TRACE`) reply is terminated by a
//! literal `# EOF` line so scrapers never have to guess at the end of a
//! multi-line reply.

use cc_parallel::hist::LatencyHist;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone counter (exported with the `counter` type).
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge (exported with the `gauge` type).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Stores `v` if it is larger than the current value (used for
    /// monotone gauges like the epoch, where concurrent writers must
    /// never regress the published value).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds 1 (live-object gauges).
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts 1 (live-object gauges).
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Protocol verbs with a per-verb request counter, in export order.
/// `METRICS` and `TRACE` count themselves like any other verb.
pub const VERB_NAMES: [&str; 27] = [
    "I",
    "D",
    "Q",
    "QG",
    "B",
    "LABEL",
    "COMPONENTS",
    "EPOCH",
    "WAIT",
    "GEN",
    "QUIESCE",
    "ROLE",
    "STATS",
    "FLUSH",
    "SNAPSHOT",
    "WALSTATS",
    "PING",
    "QUIT",
    "SHUTDOWN",
    "METRICS",
    "TRACE",
    "TOPK",
    "HIST",
    "SIZE",
    "SUB",
    "UNSUB",
    "SUBS",
];

/// Per-follower replication telemetry, registered by the hub's sender
/// thread for the lifetime of one follower connection. All fields are
/// plain atomics the sender updates lock-free on its shipping path; the
/// registry lock is only taken to add/remove the slot and to clone the
/// table for a scrape.
pub struct FollowerSlot {
    /// Stable id of this follower connection (unique per process).
    pub id: u64,
    /// The highest epoch shipped to (and acknowledged implicitly by
    /// in-order delivery at) this follower.
    pub sent_epoch: AtomicU64,
    /// WAL batch records shipped to this follower.
    pub records: AtomicU64,
    /// Payload bytes shipped to this follower.
    pub bytes: AtomicU64,
}

/// The service-wide metrics registry. One per [`crate::Service`]
/// (shared by its WAL, generation engine, network front end, and
/// replication hub through `Arc<Obs>`), never process-global, so tests
/// and embedders running several services per process stay isolated.
///
/// Counters end in `_total`; gauges are instantaneous; histograms are
/// nanosecond-valued unless the name says otherwise.
#[allow(missing_docs)] // each field is named by its exported series; see render()
pub struct Metrics {
    // service plane
    pub inserts_total: Counter,
    pub deletes_total: Counter,
    pub queries_total: Counter,
    pub batches_total: Counter,
    pub batch_rejects_total: Counter,
    pub epoch: Gauge,
    pub components: Gauge,
    pub durable_snapshot_epoch: Gauge,
    pub latency_ns: LatencyHist,
    pub queue_wait_ns: LatencyHist,
    pub wal_append_ns: LatencyHist,
    pub apply_ns: LatencyHist,
    pub publish_ns: LatencyHist,
    // wal plane
    pub wal_records_total: Counter,
    pub wal_bytes_total: Counter,
    pub wal_fsyncs_total: Counter,
    pub wal_rolls_total: Counter,
    pub wal_prunes_total: Counter,
    pub wal_segments: Gauge,
    pub wal_last_epoch: Gauge,
    pub wal_torn_bytes: Gauge,
    pub fsync_ns: LatencyHist,
    // generation plane
    pub rebuilds_sealed_total: Counter,
    pub rebuilds_committed_total: Counter,
    pub deletes_forest_total: Counter,
    pub deletes_nonforest_total: Counter,
    pub deletes_absent_total: Counter,
    pub generation: Gauge,
    pub gen_dirty: Gauge,
    pub rebuild_duration_ns: LatencyHist,
    pub rebuild_drained_ops: LatencyHist,
    // subs plane
    pub subs_active: Gauge,
    pub sub_events_total: Counter,
    pub sub_fire_ns: LatencyHist,
    // net plane
    pub connections_total: Counter,
    pub connections_live: Gauge,
    pub request_errors_total: Counter,
    pub frames_in_total: Counter,
    pub frames_out_total: Counter,
    pub net_coalesce_width: LatencyHist,
    pub net_pipeline_depth: LatencyHist,
    net_shards: Mutex<Vec<Arc<Gauge>>>,
    requests: [Counter; VERB_NAMES.len()],
    // replication plane
    pub repl_records_shipped_total: Counter,
    pub repl_bytes_shipped_total: Counter,
    pub repl_snapshots_shipped_total: Counter,
    pub repl_records_applied_total: Counter,
    pub repl_snapshots_applied_total: Counter,
    pub repl_connects_total: Counter,
    pub followers_live: Gauge,
    followers: Mutex<Vec<Arc<FollowerSlot>>>,
    next_follower_id: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics {
            inserts_total: Counter::default(),
            deletes_total: Counter::default(),
            queries_total: Counter::default(),
            batches_total: Counter::default(),
            batch_rejects_total: Counter::default(),
            epoch: Gauge::default(),
            components: Gauge::default(),
            durable_snapshot_epoch: Gauge::default(),
            latency_ns: LatencyHist::new(),
            queue_wait_ns: LatencyHist::new(),
            wal_append_ns: LatencyHist::new(),
            apply_ns: LatencyHist::new(),
            publish_ns: LatencyHist::new(),
            wal_records_total: Counter::default(),
            wal_bytes_total: Counter::default(),
            wal_fsyncs_total: Counter::default(),
            wal_rolls_total: Counter::default(),
            wal_prunes_total: Counter::default(),
            wal_segments: Gauge::default(),
            wal_last_epoch: Gauge::default(),
            wal_torn_bytes: Gauge::default(),
            fsync_ns: LatencyHist::new(),
            rebuilds_sealed_total: Counter::default(),
            rebuilds_committed_total: Counter::default(),
            deletes_forest_total: Counter::default(),
            deletes_nonforest_total: Counter::default(),
            deletes_absent_total: Counter::default(),
            generation: Gauge::default(),
            gen_dirty: Gauge::default(),
            rebuild_duration_ns: LatencyHist::new(),
            rebuild_drained_ops: LatencyHist::new(),
            subs_active: Gauge::default(),
            sub_events_total: Counter::default(),
            sub_fire_ns: LatencyHist::new(),
            connections_total: Counter::default(),
            connections_live: Gauge::default(),
            request_errors_total: Counter::default(),
            frames_in_total: Counter::default(),
            frames_out_total: Counter::default(),
            net_coalesce_width: LatencyHist::new(),
            net_pipeline_depth: LatencyHist::new(),
            net_shards: Mutex::new(Vec::new()),
            requests: std::array::from_fn(|_| Counter::default()),
            repl_records_shipped_total: Counter::default(),
            repl_bytes_shipped_total: Counter::default(),
            repl_snapshots_shipped_total: Counter::default(),
            repl_records_applied_total: Counter::default(),
            repl_snapshots_applied_total: Counter::default(),
            repl_connects_total: Counter::default(),
            followers_live: Gauge::default(),
            followers: Mutex::new(Vec::new()),
            next_follower_id: AtomicU64::new(1),
        }
    }

    /// Counts one request of the given verb (a [`VERB_NAMES`] entry;
    /// unknown verbs are counted only by [`Metrics::request_errors_total`]
    /// at the caller).
    pub fn record_request(&self, verb: &str) {
        if let Some(i) = VERB_NAMES.iter().position(|&v| v == verb) {
            self.requests[i].inc();
        }
    }

    /// The request count of one verb (testing / tooling).
    pub fn requests_for(&self, verb: &str) -> u64 {
        VERB_NAMES.iter().position(|&v| v == verb).map_or(0, |i| self.requests[i].get())
    }

    /// Registers the event-loop shard table: one connection gauge per
    /// shard, exported as `net_shard_connections{shard="i"}`. Called once
    /// at server start; calling again (tests restarting a server on the
    /// same registry) replaces the table.
    pub fn register_net_shards(&self, n: usize) -> Vec<Arc<Gauge>> {
        let gauges: Vec<Arc<Gauge>> = (0..n).map(|_| Arc::new(Gauge::default())).collect();
        *self.net_shards.lock() = gauges.clone();
        gauges
    }

    /// Registers a follower connection and returns its telemetry slot.
    /// The registry lock is held only for the push; drop the slot's
    /// registration with [`Metrics::unregister_follower`] on disconnect.
    pub fn register_follower(&self, epoch: u64) -> Arc<FollowerSlot> {
        let slot = Arc::new(FollowerSlot {
            id: self.next_follower_id.fetch_add(1, Ordering::Relaxed),
            sent_epoch: AtomicU64::new(epoch),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        });
        self.followers.lock().push(Arc::clone(&slot));
        self.followers_live.set(self.followers.lock().len() as u64);
        slot
    }

    /// Removes a follower slot registered by
    /// [`Metrics::register_follower`].
    pub fn unregister_follower(&self, id: u64) {
        let mut f = self.followers.lock();
        f.retain(|s| s.id != id);
        self.followers_live.set(f.len() as u64);
    }

    /// Renders the full exposition (without the `# EOF` terminator —
    /// the wire layer and file writers append it). Every value is read
    /// with a relaxed atomic load; see the module docs for the locking
    /// contract.
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(160);
        let counter = |out: &mut Vec<String>, name: &str, c: &Counter| {
            out.push(format!("# TYPE connectit_{name} counter"));
            out.push(format!("connectit_{name} {}", c.get()));
        };
        let gauge = |out: &mut Vec<String>, name: &str, g: &Gauge| {
            out.push(format!("# TYPE connectit_{name} gauge"));
            out.push(format!("connectit_{name} {}", g.get()));
        };
        let summary = |out: &mut Vec<String>, name: &str, h: &LatencyHist| {
            let [p50, p90, p99, p999] = h.percentiles();
            let count = h.count();
            out.push(format!("# TYPE connectit_{name} summary"));
            out.push(format!("connectit_{name}{{quantile=\"0.5\"}} {p50}"));
            out.push(format!("connectit_{name}{{quantile=\"0.9\"}} {p90}"));
            out.push(format!("connectit_{name}{{quantile=\"0.99\"}} {p99}"));
            out.push(format!("connectit_{name}{{quantile=\"0.999\"}} {p999}"));
            out.push(format!("connectit_{name}_sum {}", h.mean().saturating_mul(count)));
            out.push(format!("connectit_{name}_count {count}"));
        };

        counter(&mut out, "inserts_total", &self.inserts_total);
        counter(&mut out, "deletes_total", &self.deletes_total);
        counter(&mut out, "queries_total", &self.queries_total);
        counter(&mut out, "batches_total", &self.batches_total);
        counter(&mut out, "batch_rejects_total", &self.batch_rejects_total);
        gauge(&mut out, "epoch", &self.epoch);
        gauge(&mut out, "components", &self.components);
        gauge(&mut out, "durable_snapshot_epoch", &self.durable_snapshot_epoch);
        summary(&mut out, "latency_ns", &self.latency_ns);
        summary(&mut out, "queue_wait_ns", &self.queue_wait_ns);
        summary(&mut out, "wal_append_ns", &self.wal_append_ns);
        summary(&mut out, "apply_ns", &self.apply_ns);
        summary(&mut out, "publish_ns", &self.publish_ns);

        counter(&mut out, "wal_records_total", &self.wal_records_total);
        counter(&mut out, "wal_bytes_total", &self.wal_bytes_total);
        counter(&mut out, "wal_fsyncs_total", &self.wal_fsyncs_total);
        counter(&mut out, "wal_rolls_total", &self.wal_rolls_total);
        counter(&mut out, "wal_prunes_total", &self.wal_prunes_total);
        gauge(&mut out, "wal_segments", &self.wal_segments);
        gauge(&mut out, "wal_last_epoch", &self.wal_last_epoch);
        gauge(&mut out, "wal_torn_bytes", &self.wal_torn_bytes);
        summary(&mut out, "fsync_ns", &self.fsync_ns);

        counter(&mut out, "rebuilds_sealed_total", &self.rebuilds_sealed_total);
        counter(&mut out, "rebuilds_committed_total", &self.rebuilds_committed_total);
        counter(&mut out, "deletes_forest_total", &self.deletes_forest_total);
        counter(&mut out, "deletes_nonforest_total", &self.deletes_nonforest_total);
        counter(&mut out, "deletes_absent_total", &self.deletes_absent_total);
        gauge(&mut out, "generation", &self.generation);
        gauge(&mut out, "gen_dirty", &self.gen_dirty);
        summary(&mut out, "rebuild_duration_ns", &self.rebuild_duration_ns);
        summary(&mut out, "rebuild_drained_ops", &self.rebuild_drained_ops);

        gauge(&mut out, "subs_active", &self.subs_active);
        counter(&mut out, "sub_events_total", &self.sub_events_total);
        summary(&mut out, "sub_fire_ns", &self.sub_fire_ns);

        counter(&mut out, "connections_total", &self.connections_total);
        gauge(&mut out, "connections_live", &self.connections_live);
        counter(&mut out, "request_errors_total", &self.request_errors_total);
        out.push("# TYPE connectit_frames_total counter".to_string());
        out.push(format!("connectit_frames_total{{dir=\"in\"}} {}", self.frames_in_total.get()));
        out.push(format!("connectit_frames_total{{dir=\"out\"}} {}", self.frames_out_total.get()));
        summary(&mut out, "net_coalesce_width", &self.net_coalesce_width);
        summary(&mut out, "net_pipeline_depth", &self.net_pipeline_depth);
        let shards: Vec<Arc<Gauge>> = self.net_shards.lock().clone();
        out.push("# TYPE connectit_net_shard_connections gauge".to_string());
        for (i, g) in shards.iter().enumerate() {
            out.push(format!("connectit_net_shard_connections{{shard=\"{i}\"}} {}", g.get()));
        }
        out.push("# TYPE connectit_requests_total counter".to_string());
        for (i, name) in VERB_NAMES.iter().enumerate() {
            out.push(format!(
                "connectit_requests_total{{verb=\"{name}\"}} {}",
                self.requests[i].get()
            ));
        }

        counter(&mut out, "repl_records_shipped_total", &self.repl_records_shipped_total);
        counter(&mut out, "repl_bytes_shipped_total", &self.repl_bytes_shipped_total);
        counter(&mut out, "repl_snapshots_shipped_total", &self.repl_snapshots_shipped_total);
        counter(&mut out, "repl_records_applied_total", &self.repl_records_applied_total);
        counter(&mut out, "repl_snapshots_applied_total", &self.repl_snapshots_applied_total);
        counter(&mut out, "repl_connects_total", &self.repl_connects_total);
        gauge(&mut out, "followers_live", &self.followers_live);
        let followers: Vec<Arc<FollowerSlot>> = self.followers.lock().clone();
        let epoch = self.epoch.get();
        out.push("# TYPE connectit_follower_epoch_lag gauge".to_string());
        for s in &followers {
            let lag = epoch.saturating_sub(s.sent_epoch.load(Ordering::Relaxed));
            out.push(format!("connectit_follower_epoch_lag{{follower=\"{}\"}} {lag}", s.id));
        }
        out.push("# TYPE connectit_follower_records_total counter".to_string());
        for s in &followers {
            out.push(format!(
                "connectit_follower_records_total{{follower=\"{}\"}} {}",
                s.id,
                s.records.load(Ordering::Relaxed)
            ));
        }
        out.push("# TYPE connectit_follower_bytes_total counter".to_string());
        for s in &followers {
            out.push(format!(
                "connectit_follower_bytes_total{{follower=\"{}\"}} {}",
                s.id,
                s.bytes.load(Ordering::Relaxed)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_move() {
        let m = Metrics::new();
        m.inserts_total.add(3);
        m.inserts_total.inc();
        assert_eq!(m.inserts_total.get(), 4);
        m.epoch.set(7);
        m.epoch.set_max(5); // monotone: no regression
        assert_eq!(m.epoch.get(), 7);
        m.connections_live.inc();
        m.connections_live.inc();
        m.connections_live.dec();
        assert_eq!(m.connections_live.get(), 1);
    }

    #[test]
    fn render_is_typed_and_parseable() {
        let m = Metrics::new();
        m.record_request("Q");
        m.record_request("Q");
        m.record_request("nope-not-a-verb");
        assert_eq!(m.requests_for("Q"), 2);
        m.latency_ns.record(1000);
        let lines = m.render();
        // Every non-comment line is `name[{label}] integer`.
        for line in &lines {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE connectit_"), "{line}");
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("value separator");
            assert!(name.starts_with("connectit_"), "{line}");
            value.parse::<u64>().unwrap_or_else(|_| panic!("non-integer value in {line:?}"));
        }
        let has = |s: &str| lines.iter().any(|l| l.contains(s));
        assert!(has("connectit_inserts_total 0"));
        assert!(has("connectit_requests_total{verb=\"Q\"} 2"));
        assert!(has("connectit_latency_ns{quantile=\"0.999\"}"));
        assert!(has("connectit_latency_ns_count 1"));
        assert!(has("# TYPE connectit_follower_epoch_lag gauge"));
    }

    #[test]
    fn net_plane_series_render() {
        let m = Metrics::new();
        m.frames_in_total.add(5);
        m.frames_out_total.add(4);
        m.net_coalesce_width.record(3);
        let shards = m.register_net_shards(2);
        shards[1].inc();
        let lines = m.render().join("\n");
        assert!(lines.contains("connectit_frames_total{dir=\"in\"} 5"));
        assert!(lines.contains("connectit_frames_total{dir=\"out\"} 4"));
        assert!(lines.contains("connectit_net_coalesce_width_count 1"));
        assert!(lines.contains("connectit_net_shard_connections{shard=\"0\"} 0"));
        assert!(lines.contains("connectit_net_shard_connections{shard=\"1\"} 1"));
    }

    #[test]
    fn follower_slots_register_and_lag_renders() {
        let m = Metrics::new();
        m.epoch.set(10);
        let a = m.register_follower(4);
        let _b = m.register_follower(10);
        assert_eq!(m.followers_live.get(), 2);
        a.records.fetch_add(3, Ordering::Relaxed);
        a.bytes.fetch_add(99, Ordering::Relaxed);
        let lines = m.render().join("\n");
        assert!(lines.contains(&format!("connectit_follower_epoch_lag{{follower=\"{}\"}} 6", a.id)));
        assert!(
            lines.contains(&format!("connectit_follower_records_total{{follower=\"{}\"}} 3", a.id))
        );
        m.unregister_follower(a.id);
        assert_eq!(m.followers_live.get(), 1);
        assert!(!m.render().join("\n").contains(&format!("follower=\"{}\"", a.id)));
    }
}
