//! Observability plane: the metrics registry ([`Metrics`], exported by
//! the `METRICS` verb) and the flight recorder ([`Recorder`], dumped by
//! `TRACE [n]` and flushed to `<wal-dir>/trace-<pid>.log`).
//!
//! One [`Obs`] is created per [`crate::Service`] and shared by every
//! subsystem (WAL, generation engine, net front end, replication hub)
//! through an `Arc`. Instrumentation writes are relaxed atomics at the
//! point the instrumented fact becomes true — the scrape path reads
//! those mirrors and never takes a service-internal lock. The contract
//! is audited lock-by-lock in `DESIGN.md` §10.

mod metrics;
mod recorder;

pub use metrics::{Counter, FollowerSlot, Gauge, Metrics, VERB_NAMES};
pub use recorder::{
    CloseReason, Event, Recorder, TraceEntry, DEFAULT_RECORDER_CAPACITY, DEFAULT_TRACE_EVENTS,
};

use std::path::Path;
use std::sync::Arc;

/// The per-service observability bundle: one registry, one recorder.
#[derive(Default)]
pub struct Obs {
    /// The metrics registry.
    pub metrics: Metrics,
    /// The flight recorder.
    pub recorder: Recorder,
}

impl Obs {
    /// A fresh bundle behind an `Arc`, ready to hand to subsystems.
    pub fn new() -> Arc<Obs> {
        Arc::new(Obs::default())
    }
}

/// Reads the tail (last `keep` lines) of every `trace-*.log` left in
/// `dir` by a previous run, removes the files, and returns the tails as
/// `(file-name, lines)` pairs. Called on recovery so a SIGKILL'd run's
/// final flushed events are surfaced by the survivor.
pub fn drain_previous_traces(dir: &Path, keep: usize) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("trace-") && n.ends_with(".log"))
        })
        .collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("trace-?.log").to_string();
        if let Ok(text) = std::fs::read_to_string(&path) {
            let lines: Vec<&str> = text.lines().collect();
            let tail =
                lines[lines.len().saturating_sub(keep)..].iter().map(|s| s.to_string()).collect();
            out.push((name, tail));
        }
        std::fs::remove_file(&path).ok();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_previous_traces_tails_and_removes() {
        let dir = crate::scratch_dir("obs-drain-traces");
        std::fs::write(
            dir.join("trace-111.log"),
            "T 1 0 FsyncDone nanos=1\nT 2 0 FsyncDone nanos=2\nT 3 0 FsyncDone nanos=3\n",
        )
        .unwrap();
        std::fs::write(dir.join("not-a-trace.txt"), "ignored").unwrap();
        let drained = drain_previous_traces(&dir, 2);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, "trace-111.log");
        assert_eq!(
            drained[0].1,
            vec!["T 2 0 FsyncDone nanos=2".to_string(), "T 3 0 FsyncDone nanos=3".to_string()]
        );
        assert!(!dir.join("trace-111.log").exists(), "trace file consumed");
        assert!(dir.join("not-a-trace.txt").exists(), "unrelated files untouched");
        assert!(drain_previous_traces(&dir, 2).is_empty(), "second drain finds nothing");
        std::fs::remove_dir_all(&dir).ok();
    }
}
