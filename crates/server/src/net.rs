//! The line-based text protocol over the service, and the TCP front door
//! shared with the binary protocol (std-only — the workspace has no
//! crates.io access, so there is no async runtime).
//!
//! Accepted connections land on the sharded readiness event loop in
//! [`crate::evloop`], which sniffs the first byte: `0xCC` (the
//! [`crate::binproto::STREAM_MAGIC`] opener, which no text verb starts
//! with) selects the pipelined binary protocol served in-loop; anything
//! else hands the connection — sniffed bytes replayed — to a dedicated
//! text thread running `handle_connection` below, preserving the text
//! protocol byte for byte as the debug door on the same port.
//!
//! ## Protocol
//!
//! Requests are single `\n`-terminated ASCII lines; every request gets
//! exactly one reply line (except `QUIT`, which closes the connection).
//!
//! | Request              | Reply                                | Meaning |
//! |----------------------|--------------------------------------|---------|
//! | `I u v`              | `OK`                                 | insert edge `{u, v}` |
//! | `D u v`              | `OK`                                 | delete edge `{u, v}` (absent and cycle edges are free; a spanning-forest edge triggers a background generation rebuild) |
//! | `Q u v`              | `1` / `0`                            | connectivity query (the reply is always exactly one bit — wire-stable across releases) |
//! | `QG u v`             | `1` / `0` (`1 G <gen>` while stale)  | connectivity query with staleness: when the answer came from a sealed generation (a rebuild was in flight), the reply names it; the bit and the generation are read atomically |
//! | `B k` + `k` op lines | `OK <bits>`                          | submit `k` ops (`I u v` / `D u v` / `Q u v` lines) as one unit; `<bits>` answers the queries in order |
//! | `LABEL v`            | `L <label>`                          | current component label of `v` |
//! | `COMPONENTS`         | `C <count>`                          | current component count |
//! | `TOPK [k]`           | `K k=<m> epoch=<e> gen=<g> sealed=<0/1> <root>:<size> …` | the `m ≤ k` largest components as `root:size` pairs, descending (singletons excluded; default `k` is [`DEFAULT_TOPK`], at most [`crate::analytics::TOPK_CAP`]) |
//! | `HIST`               | `H components=<c> epoch=<e> gen=<g> sealed=<0/1> <b>:<count> …` | component-size histogram: bucket `b` counts components of `2^b ≤ size < 2^(b+1)`; zero buckets are omitted |
//! | `SIZE v`             | `Z <size> root=<r>`                  | member count (and current representative) of `v`'s component |
//! | `EPOCH`              | `E <epoch>`                          | completed batches (on a follower: replication epoch) |
//! | `WAIT e [ms]`        | `E <epoch>`                          | block until the epoch reaches `e` (default timeout 10000 ms), then report it |
//! | `GEN`                | `G <gen> dirty=<0/1> <counters>`     | generation info: serving generation, rebuild-in-flight flag, delete-classification counters |
//! | `QUIESCE [ms]`       | `G <gen>`                            | block until no rebuild is in flight (default timeout 10000 ms); afterwards queries are exact until the next forest deletion |
//! | `ROLE`               | `R primary` / `R follower`           | replication role |
//! | `STATS`              | `S <key=value ...>`                  | one-line stats dump |
//! | `FLUSH`              | `OK`                                 | fsync the WAL now, regardless of policy |
//! | `SNAPSHOT`           | `SNAP <epoch>`                       | write a durable snapshot (labels + live edge set) at the next batch boundary |
//! | `WALSTATS`           | `W <key=value ...>`                  | one-line WAL stats dump |
//! | `METRICS`            | typed lines, then `# EOF`            | multi-line Prometheus-style dump of the metrics registry (the only verbs with multi-line replies are `METRICS`, `TRACE`, and `SUBS`; all end with a literal `# EOF` line) |
//! | `TRACE [n]`          | `T …` lines, then `# EOF`            | last `n` flight-recorder events (default [`DEFAULT_TRACE_EVENTS`]), oldest first |
//! | `SUB u v [DURABLE]`  | `S <id> <epoch>`                     | subscribe: push an event when `u` and `v` connect (one-shot; fires immediately if already connected). `DURABLE` logs the subscription to the WAL so it survives restarts |
//! | `SUB COMPONENT v [DURABLE]` | `S <id> <epoch>`              | subscribe to every identity change of `v`'s component (merges and rebuild commits) |
//! | `SUB ATTACH id [after_seq]` | `S <id> <epoch>`              | re-bind this connection to a durable subscription and replay retained events with `seq > after_seq` |
//! | `UNSUB id`           | `OK`                                 | cancel a subscription |
//! | `SUBS`               | `<id> <kind> <u> <v> <epoch> <durable> <fired>` lines, then `# EOF` | list live subscriptions |
//! | `PING`               | `PONG`                               | liveness |
//! | `QUIT`               | — (connection closes)                | end this connection |
//! | `SHUTDOWN`           | `BYE`                                | stop accepting; wake [`TcpServer::wait_shutdown`] |
//!
//! Subscription events arrive as *unsolicited* push lines prefixed
//! `! ` — `! EVT <id> <seq> <epoch> <gen> PAIR <u> <v> root=<r>
//! size=<s>` or `! EVT <id> <seq> <epoch> <gen> COMPONENT <v> root=<r>
//! size=<s>` — interleaved between replies (never inside a multi-line
//! dump). [`TcpClient`] stashes them; see PROTOCOL.md for the full
//! delivery contract. A subscriber that stops reading until the
//! server-side push queue fills is disconnected with a typed
//! `sub-overflow` close — events are never silently dropped.
//!
//! The three durability verbs answer `ERR durability is not enabled …`
//! when the server runs without `--wal-dir`. Malformed requests get
//! `ERR <reason>` and the connection stays open — except a request line
//! longer than [`MAX_LINE_BYTES`] (a peer that will never produce a
//! parseable request) and a rejected `B` header (an undelimitable body
//! follows), both of which answer `ERR …` and close.
//!
//! On a follower (`--replicate-from`), `I`, `D`, and update-carrying `B`
//! bodies answer `ERR read-only follower: route updates to the primary`;
//! `WAIT <epoch>` is the bounded-staleness contract — after it returns,
//! every primary batch up to `<epoch>` is visible here. The `(epoch,
//! generation)` staleness story is spelled out in DESIGN.md §9. The
//! analytics verbs (`TOPK`/`HIST`/`SIZE`) are served from the local
//! analytics view on either role — followers tail the same history, so
//! their views converge at the honestly-reported epoch; route heavy
//! analytical reads there by default (DESIGN.md §12).

use crate::obs::{CloseReason, Event, Obs, DEFAULT_TRACE_EVENTS};
use crate::service::{Client, Service};
use crate::subs::{SubEvent, SubKind, SubSink};
use connectit::Update;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Request {
    Insert(u32, u32),
    Delete(u32, u32),
    Query(u32, u32),
    QueryGen(u32, u32),
    Batch(usize),
    Label(u32),
    Components,
    Topk(usize),
    Hist,
    Size(u32),
    Epoch,
    Wait(u64, u64),
    Gen,
    Quiesce(u64),
    Role,
    Stats,
    Flush,
    Snapshot,
    WalStats,
    Metrics,
    Trace(usize),
    Sub { component: bool, u: u32, v: u32, durable: bool },
    SubAttach { id: u64, after_seq: u64 },
    Unsub(u64),
    Subs,
    Ping,
    Quit,
    Shutdown,
}

/// Every verb the text parser accepts. Exported so the doc-drift test
/// can hold `PROTOCOL.md` to the parser's actual vocabulary.
pub const TEXT_VERBS: &[&str] = &[
    "I",
    "D",
    "Q",
    "QG",
    "B",
    "LABEL",
    "COMPONENTS",
    "TOPK",
    "HIST",
    "SIZE",
    "EPOCH",
    "WAIT",
    "GEN",
    "QUIESCE",
    "ROLE",
    "STATS",
    "FLUSH",
    "SNAPSHOT",
    "WALSTATS",
    "METRICS",
    "TRACE",
    "SUB",
    "UNSUB",
    "SUBS",
    "PING",
    "QUIT",
    "SHUTDOWN",
];

/// Upper bound on `B k` batch sizes, so a hostile header cannot trigger an
/// unbounded allocation. [`TcpClient::submit`] enforces it client-side.
pub const MAX_WIRE_BATCH: usize = 1 << 22;

/// Upper bound on a single request line. A longer line cannot be a valid
/// request (the longest verb plus two decimal `u32`s is far shorter), so
/// the server answers `ERR` and closes instead of buffering a peer's
/// endless line into memory.
pub const MAX_LINE_BYTES: usize = 1 << 16;

/// Default `WAIT` timeout when the request does not carry one.
pub const DEFAULT_WAIT_TIMEOUT_MS: u64 = 10_000;

/// Default `TOPK` arity when the request does not carry one.
pub const DEFAULT_TOPK: usize = 10;

fn parse_u32(tok: Option<&str>) -> Result<u32, String> {
    tok.ok_or_else(|| "missing argument".to_string())?
        .parse()
        .map_err(|_| "argument is not a 32-bit unsigned integer".to_string())
}

fn parse_u64(tok: Option<&str>) -> Result<u64, String> {
    tok.ok_or_else(|| "missing argument".to_string())?
        .parse()
        .map_err(|_| "argument is not a 64-bit unsigned integer".to_string())
}

fn parse_request(line: &str) -> Result<Request, String> {
    let mut it = line.split_whitespace();
    let cmd = it.next().ok_or_else(|| "empty request".to_string())?;
    let req = match cmd {
        "I" => Request::Insert(parse_u32(it.next())?, parse_u32(it.next())?),
        "D" => Request::Delete(parse_u32(it.next())?, parse_u32(it.next())?),
        "Q" => Request::Query(parse_u32(it.next())?, parse_u32(it.next())?),
        "QG" => Request::QueryGen(parse_u32(it.next())?, parse_u32(it.next())?),
        "B" => {
            let k = parse_u32(it.next())? as usize;
            if k > MAX_WIRE_BATCH {
                return Err(format!("batch too large (max {MAX_WIRE_BATCH})"));
            }
            Request::Batch(k)
        }
        "LABEL" => Request::Label(parse_u32(it.next())?),
        "COMPONENTS" => Request::Components,
        "TOPK" => {
            let k = match it.next() {
                Some(tok) => parse_u64(Some(tok))? as usize,
                None => DEFAULT_TOPK,
            };
            Request::Topk(k)
        }
        "HIST" => Request::Hist,
        "SIZE" => Request::Size(parse_u32(it.next())?),
        "EPOCH" => Request::Epoch,
        "WAIT" => {
            let epoch = parse_u64(it.next())?;
            let timeout_ms = match it.next() {
                Some(tok) => parse_u64(Some(tok))?,
                None => DEFAULT_WAIT_TIMEOUT_MS,
            };
            Request::Wait(epoch, timeout_ms)
        }
        "GEN" => Request::Gen,
        "QUIESCE" => {
            let timeout_ms = match it.next() {
                Some(tok) => parse_u64(Some(tok))?,
                None => DEFAULT_WAIT_TIMEOUT_MS,
            };
            Request::Quiesce(timeout_ms)
        }
        "ROLE" => Request::Role,
        "STATS" => Request::Stats,
        "FLUSH" => Request::Flush,
        "SNAPSHOT" => Request::Snapshot,
        "WALSTATS" => Request::WalStats,
        "METRICS" => Request::Metrics,
        "TRACE" => {
            let n = match it.next() {
                Some(tok) => parse_u64(Some(tok))? as usize,
                None => DEFAULT_TRACE_EVENTS,
            };
            Request::Trace(n)
        }
        "SUB" => match it.next() {
            Some("COMPONENT") => {
                let v = parse_u32(it.next())?;
                let durable = parse_sub_flag(&mut it)?;
                Request::Sub { component: true, u: v, v, durable }
            }
            Some("ATTACH") => {
                let id = parse_u64(it.next())?;
                let after_seq = match it.next() {
                    Some(tok) => parse_u64(Some(tok))?,
                    None => 0,
                };
                Request::SubAttach { id, after_seq }
            }
            tok => {
                let u = parse_u32(tok)?;
                let v = parse_u32(it.next())?;
                let durable = parse_sub_flag(&mut it)?;
                Request::Sub { component: false, u, v, durable }
            }
        },
        "UNSUB" => Request::Unsub(parse_u64(it.next())?),
        "SUBS" => Request::Subs,
        "PING" => Request::Ping,
        "QUIT" => Request::Quit,
        "SHUTDOWN" => Request::Shutdown,
        other => return Err(format!("unknown command {other:?}")),
    };
    if it.next().is_some() {
        return Err(format!("trailing arguments after {cmd}"));
    }
    Ok(req)
}

/// Parses the optional trailing `DURABLE` flag of a `SUB` request.
fn parse_sub_flag(it: &mut std::str::SplitWhitespace<'_>) -> Result<bool, String> {
    match it.next() {
        None => Ok(false),
        Some("DURABLE") => Ok(true),
        Some(other) => Err(format!("unknown SUB flag {other:?} (expected DURABLE)")),
    }
}

/// Parses one `I u v` / `D u v` / `Q u v` line of a `B` batch body.
fn parse_batch_op(line: &str) -> Result<Update, String> {
    let mut it = line.split_whitespace();
    let op = match it.next() {
        Some("I") => Update::Insert(parse_u32(it.next())?, parse_u32(it.next())?),
        Some("D") => Update::Delete(parse_u32(it.next())?, parse_u32(it.next())?),
        Some("Q") => Update::Query(parse_u32(it.next())?, parse_u32(it.next())?),
        _ => return Err("batch op must be `I u v`, `D u v`, or `Q u v`".to_string()),
    };
    if it.next().is_some() {
        return Err("trailing arguments in batch op".to_string());
    }
    Ok(op)
}

/// Writes one `ERR <reason>` reply and counts it: every error line the
/// server emits, whatever the cause, moves `request_errors_total`.
fn write_err(
    w: &mut BufWriter<TcpStream>,
    obs: &Obs,
    msg: impl std::fmt::Display,
) -> std::io::Result<()> {
    obs.metrics.request_errors_total.inc();
    writeln!(w, "ERR {msg}")
}

/// Mirrors one connection's lifetime into the registry: counted on
/// accept, decremented on drop — so `connections_live` is correct no
/// matter which of the handler's many exits ran — and stamped into the
/// flight recorder with the close reason the handler recorded.
struct ConnGuard {
    obs: Arc<Obs>,
    reason: CloseReason,
}

impl ConnGuard {
    fn new(obs: Arc<Obs>) -> ConnGuard {
        obs.metrics.connections_total.inc();
        obs.metrics.connections_live.inc();
        // `IoError` is the default so an early `?` return (peer reset,
        // broken pipe) needs no bookkeeping; orderly exits overwrite it.
        ConnGuard { obs, reason: CloseReason::IoError }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.obs.metrics.connections_live.dec();
        self.obs.recorder.record(Event::ConnClosed { reason: self.reason });
    }
}

pub(crate) struct ServerShared {
    pub(crate) shutdown: AtomicBool,
    pub(crate) done_mx: Mutex<bool>,
    pub(crate) done_cv: Condvar,
    pub(crate) local_addr: SocketAddr,
}

impl ServerShared {
    pub(crate) fn new(local_addr: SocketAddr) -> ServerShared {
        ServerShared {
            shutdown: AtomicBool::new(false),
            done_mx: Mutex::new(false),
            done_cv: Condvar::new(),
            local_addr,
        }
    }

    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        *self.done_mx.lock() = true;
        self.done_cv.notify_all();
        // The accept loop polls the flag (non-blocking listener), so no
        // wake-up connection is needed — shutdown works even when the
        // bound address is not self-connectable (e.g. 0.0.0.0).
    }
}

/// A running TCP front-end over a [`Service`]: the accept thread plus N
/// event-loop shards (see [`crate::evloop`]). Binary connections are
/// served in-loop; text connections get a dedicated thread each. The
/// server stops when a `SHUTDOWN` request arrives or [`TcpServer::stop`]
/// is called.
pub struct TcpServer {
    pub(crate) shared: Arc<ServerShared>,
    pub(crate) accept: Option<std::thread::JoinHandle<()>>,
    pub(crate) shards: Vec<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Blocks until a `SHUTDOWN` request arrives (or [`TcpServer::stop`]
    /// is called from another thread), then joins the accept loop.
    pub fn wait_shutdown(&mut self) {
        {
            let mut g = self.shared.done_mx.lock();
            while !*g {
                self.shared.done_cv.wait_for(&mut g, Duration::from_millis(50));
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.shards.drain(..) {
            let _ = h.join();
        }
    }

    /// Initiates shutdown from the hosting process.
    pub fn stop(&mut self) {
        self.shared.request_shutdown();
        self.wait_shutdown();
    }
}

/// Binds `addr` and serves the given service on both protocols (the
/// text debug door and the pipelined binary protocol, sniffed per
/// connection) with default [`crate::evloop::NetConfig`] settings.
/// Returns immediately; the accept loop and event-loop shards run on
/// background threads.
pub fn serve(service: &Service, addr: impl ToSocketAddrs) -> std::io::Result<TcpServer> {
    serve_with(service, addr, crate::evloop::NetConfig::default())
}

/// [`serve`] with explicit front-end tuning (shard count, idle timeout,
/// write-buffer backpressure cap).
pub fn serve_with(
    service: &Service,
    addr: impl ToSocketAddrs,
    cfg: crate::evloop::NetConfig,
) -> std::io::Result<TcpServer> {
    crate::evloop::start(service, addr, cfg)
}

/// Reads one request line with [`MAX_LINE_BYTES`] enforced. `Ok(0)` is
/// EOF; `Err` with `InvalidData` means the peer exceeded the cap (the
/// caller answers `ERR` and closes — resynchronizing inside an unbounded
/// line is hopeless).
fn read_bounded_line(reader: &mut impl BufRead, line: &mut String) -> std::io::Result<usize> {
    line.clear();
    let got = std::io::Read::take(&mut *reader, MAX_LINE_BYTES as u64).read_line(line)?;
    if got == MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    Ok(got)
}

/// The server side of a text subscription: a bounded queue between the
/// service's delivery path and this connection's pusher thread. The
/// service must never block on (or allocate unboundedly for) a slow
/// consumer, so a full queue marks the sink dead, flags the overflow,
/// and shuts the socket down — the connection closes with a typed
/// `sub-overflow` reason rather than dropping events silently.
struct TextSink {
    queue: Mutex<VecDeque<SubEvent>>,
    cv: Condvar,
    cap: usize,
    dead: AtomicBool,
    overflow: AtomicBool,
    stream: TcpStream,
}

impl SubSink for TextSink {
    fn deliver(&self, ev: &SubEvent) -> bool {
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        let mut q = self.queue.lock();
        if q.len() >= self.cap {
            drop(q);
            self.dead.store(true, Ordering::Release);
            self.overflow.store(true, Ordering::Release);
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            self.cv.notify_all();
            return false;
        }
        q.push_back(*ev);
        drop(q);
        self.cv.notify_all();
        true
    }
}

/// Writes one `! EVT …` push line (the grammar in the module table).
fn write_evt_line(w: &mut BufWriter<TcpStream>, ev: &SubEvent) -> std::io::Result<()> {
    match ev.kind {
        SubKind::Pair => writeln!(
            w,
            "! EVT {} {} {} {} PAIR {} {} root={} size={}",
            ev.id, ev.seq, ev.epoch, ev.generation, ev.u, ev.v, ev.root, ev.size
        ),
        SubKind::Component => writeln!(
            w,
            "! EVT {} {} {} {} COMPONENT {} root={} size={}",
            ev.id, ev.seq, ev.epoch, ev.generation, ev.v, ev.root, ev.size
        ),
    }
}

/// The per-connection pusher thread: drains the sink's queue and writes
/// `! EVT` lines under the shared writer lock, so pushes interleave with
/// replies only at line boundaries (never inside a multi-line dump).
fn run_pusher(sink: &TextSink, writer: &Mutex<BufWriter<TcpStream>>) {
    let mut batch: Vec<SubEvent> = Vec::new();
    loop {
        {
            let mut q = sink.queue.lock();
            while q.is_empty() {
                if sink.dead.load(Ordering::Acquire) {
                    return;
                }
                sink.cv.wait_for(&mut q, Duration::from_millis(100));
            }
            batch.extend(q.drain(..));
        }
        let mut w = writer.lock();
        for ev in batch.drain(..) {
            if write_evt_line(&mut w, &ev).is_err() {
                sink.dead.store(true, Ordering::Release);
                return;
            }
        }
        if w.flush().is_err() {
            sink.dead.store(true, Ordering::Release);
            return;
        }
    }
}

/// One text connection's subscription state: the shared sink (created
/// lazily on the first `SUB`/`SUB ATTACH`), its pusher thread, and the
/// ids bound to this connection for teardown.
struct SubConnState {
    stream: TcpStream,
    cap: usize,
    sink: Option<Arc<TextSink>>,
    pusher: Option<std::thread::JoinHandle<()>>,
    subs: Vec<(u64, bool)>,
}

impl SubConnState {
    fn ensure_sink(
        &mut self,
        writer: &Arc<Mutex<BufWriter<TcpStream>>>,
    ) -> std::io::Result<Arc<TextSink>> {
        if let Some(s) = &self.sink {
            return Ok(Arc::clone(s));
        }
        let sink = Arc::new(TextSink {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap: self.cap,
            dead: AtomicBool::new(false),
            overflow: AtomicBool::new(false),
            stream: self.stream.try_clone()?,
        });
        let psink = Arc::clone(&sink);
        let pwriter = Arc::clone(writer);
        self.pusher = Some(
            std::thread::Builder::new()
                .name("cc-sub-push".into())
                .spawn(move || run_pusher(&psink, &pwriter))?,
        );
        self.sink = Some(Arc::clone(&sink));
        Ok(sink)
    }
}

/// Serves one text-protocol connection to completion. `prefix` replays
/// the bytes the event-loop shard consumed while sniffing the protocol,
/// so the handoff is invisible to the peer. A read timing out (the
/// configured per-connection idle timeout, armed via `SO_RCVTIMEO` by
/// the shard before handoff) closes with a typed `idle-timeout` reason.
/// `sub_queue_cap` bounds the per-connection subscription push queue
/// ([`crate::evloop::NetConfig::sub_queue_cap`]).
pub(crate) fn handle_connection(
    stream: TcpStream,
    prefix: Vec<u8>,
    client: &Client,
    shared: &ServerShared,
    sub_queue_cap: usize,
) -> std::io::Result<()> {
    let obs = client.observability();
    let mut guard = ConnGuard::new(Arc::clone(&obs));
    let reader =
        BufReader::new(std::io::Read::chain(std::io::Cursor::new(prefix), stream.try_clone()?));
    let writer = Arc::new(Mutex::new(BufWriter::new(stream.try_clone()?)));
    let mut st =
        SubConnState { stream, cap: sub_queue_cap, sink: None, pusher: None, subs: Vec::new() };
    let res = serve_text(reader, &writer, client, shared, &obs, &mut guard, &mut st);
    // Subscription teardown: ephemeral subscriptions die with the
    // connection; durable ones detach and keep retaining for a later
    // `SUB ATTACH`.
    for (id, durable) in st.subs.drain(..) {
        if durable {
            client.detach_sub(id);
        } else {
            let _ = client.unsubscribe(id);
        }
    }
    if let Some(sink) = st.sink.take() {
        sink.dead.store(true, Ordering::Release);
        sink.cv.notify_all();
        if sink.overflow.load(Ordering::Acquire) {
            guard.reason = CloseReason::SubOverflow;
        }
    }
    if let Some(h) = st.pusher.take() {
        let _ = h.join();
    }
    res
}

/// The request/reply loop of [`handle_connection`]. The writer is
/// behind a mutex shared with the pusher thread; it is locked per
/// request (after the line is read, so an idle connection never starves
/// event pushes) and replies flush before the lock drops, keeping the
/// reply-then-event order observable client-side.
fn serve_text(
    mut reader: BufReader<std::io::Chain<std::io::Cursor<Vec<u8>>, TcpStream>>,
    writer: &Arc<Mutex<BufWriter<TcpStream>>>,
    client: &Client,
    shared: &ServerShared,
    obs: &Arc<Obs>,
    guard: &mut ConnGuard,
    st: &mut SubConnState,
) -> std::io::Result<()> {
    let mut line = String::new();
    loop {
        match read_bounded_line(&mut reader, &mut line) {
            Ok(0) => {
                guard.reason = CloseReason::Eof;
                return Ok(());
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                guard.reason = CloseReason::OversizedLine;
                let mut w = writer.lock();
                write_err(&mut w, obs, e)?;
                return w.flush();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                guard.reason = CloseReason::IdleTimeout;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        let parsed = parse_request(line.trim());
        if parsed.is_ok() {
            // Count by verb only once the line parsed: a request that
            // never was one shows up in `request_errors_total` instead.
            if let Some(verb) = line.split_whitespace().next() {
                obs.metrics.record_request(verb);
            }
        }
        let mut w = writer.lock();
        match parsed {
            Err(msg) => {
                write_err(&mut w, obs, msg)?;
                // A rejected `B` header is a framing error: the peer is
                // about to stream body lines we cannot delimit, so
                // interpreting them as top-level requests would both
                // execute a rejected batch and desynchronize every later
                // reply. Close instead.
                if line.split_whitespace().next() == Some("B") {
                    guard.reason = CloseReason::BadBatchHeader;
                    return w.flush();
                }
            }
            Ok(Request::Insert(u, v)) => match client.insert(u, v) {
                Ok(()) => writeln!(w, "OK")?,
                Err(e) => write_err(&mut w, obs, e)?,
            },
            Ok(Request::Delete(u, v)) => match client.delete(u, v) {
                Ok(()) => writeln!(w, "OK")?,
                Err(e) => write_err(&mut w, obs, e)?,
            },
            Ok(Request::Query(u, v)) => match client.query(u, v) {
                // Exactly one bit, always: pre-QG clients parse this.
                Ok(c) => writeln!(w, "{}", u8::from(c))?,
                Err(e) => write_err(&mut w, obs, e)?,
            },
            Ok(Request::QueryGen(u, v)) => match client.query_gen(u, v) {
                // Staleness honesty: when the answer came from a sealed
                // generation the reply names it; the tag was decided
                // under the same lock as the answer, so a seal or commit
                // racing this request can never mislabel it.
                Ok((c, Some(generation))) => writeln!(w, "{} G {generation}", u8::from(c))?,
                Ok((c, None)) => writeln!(w, "{}", u8::from(c))?,
                Err(e) => write_err(&mut w, obs, e)?,
            },
            Ok(Request::Batch(k)) => {
                let mut ops = Vec::with_capacity(k.min(1 << 16));
                let mut bad: Option<String> = None;
                for _ in 0..k {
                    match read_bounded_line(&mut reader, &mut line) {
                        Ok(0) => {
                            // Truncated batch: peer went away.
                            guard.reason = CloseReason::TruncatedBatch;
                            return Ok(());
                        }
                        Ok(_) => {}
                        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                            // Oversized body line: the batch framing is
                            // unrecoverable, same as a rejected header.
                            guard.reason = CloseReason::OversizedLine;
                            write_err(&mut w, obs, e)?;
                            return w.flush();
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            guard.reason = CloseReason::IdleTimeout;
                            return Ok(());
                        }
                        Err(e) => return Err(e),
                    }
                    match parse_batch_op(line.trim()) {
                        Ok(op) => ops.push(op),
                        Err(msg) => bad = bad.or(Some(msg)),
                    }
                }
                if let Some(msg) = bad {
                    write_err(&mut w, obs, msg)?;
                } else {
                    match client.submit(ops) {
                        Ok(answers) => {
                            let bits: String =
                                answers.iter().map(|&a| if a { '1' } else { '0' }).collect();
                            if bits.is_empty() {
                                writeln!(w, "OK")?;
                            } else {
                                writeln!(w, "OK {bits}")?;
                            }
                        }
                        Err(e) => write_err(&mut w, obs, e)?,
                    }
                }
            }
            Ok(Request::Label(v)) => match client.current_label(v) {
                Ok(l) => writeln!(w, "L {l}")?,
                Err(e) => write_err(&mut w, obs, e)?,
            },
            Ok(Request::Components) => writeln!(w, "C {}", client.num_components())?,
            Ok(Request::Topk(k)) => {
                let (items, epoch, generation, sealed) = client.topk(k);
                let mut reply = format!(
                    "K k={} epoch={epoch} gen={generation} sealed={}",
                    items.len(),
                    u8::from(sealed)
                );
                for (root, size) in items {
                    reply.push_str(&format!(" {root}:{size}"));
                }
                writeln!(w, "{reply}")?;
            }
            Ok(Request::Hist) => {
                let view = client.analytics();
                let mut reply = format!(
                    "H components={} epoch={} gen={} sealed={}",
                    view.components,
                    view.epoch,
                    view.generation,
                    u8::from(view.sealed)
                );
                for (b, &count) in view.hist.iter().enumerate() {
                    if count > 0 {
                        reply.push_str(&format!(" {b}:{count}"));
                    }
                }
                writeln!(w, "{reply}")?;
            }
            Ok(Request::Size(v)) => match client.component_size(v) {
                Ok((root, size)) => writeln!(w, "Z {size} root={root}")?,
                Err(e) => write_err(&mut w, obs, e)?,
            },
            Ok(Request::Epoch) => writeln!(w, "E {}", client.epoch())?,
            Ok(Request::Wait(epoch, timeout_ms)) => {
                match client.wait_for_epoch(epoch, Duration::from_millis(timeout_ms)) {
                    Ok(at) => writeln!(w, "E {at}")?,
                    Err(e) => write_err(&mut w, obs, e)?,
                }
            }
            Ok(Request::Gen) => {
                let info = client.generation_info();
                writeln!(
                    w,
                    "G {} dirty={} rebuilds={} forest={} nonforest={} absent={}",
                    info.generation,
                    u8::from(info.dirty),
                    info.counters.rebuilds,
                    info.counters.deletes_forest,
                    info.counters.deletes_nonforest,
                    info.counters.deletes_absent,
                )?;
            }
            Ok(Request::Quiesce(timeout_ms)) => {
                match client.quiesce(Duration::from_millis(timeout_ms)) {
                    Ok(generation) => writeln!(w, "G {generation}")?,
                    Err(e) => write_err(&mut w, obs, e)?,
                }
            }
            Ok(Request::Role) => writeln!(w, "R {}", client.role())?,
            Ok(Request::Stats) => writeln!(w, "S {}", client.stats())?,
            Ok(Request::Flush) => match client.flush_wal() {
                Ok(()) => writeln!(w, "OK")?,
                Err(e) => write_err(&mut w, obs, e)?,
            },
            Ok(Request::Snapshot) => match client.durable_snapshot() {
                Ok(epoch) => writeln!(w, "SNAP {epoch}")?,
                Err(e) => write_err(&mut w, obs, e)?,
            },
            Ok(Request::WalStats) => match client.wal_stats() {
                Ok(s) => writeln!(w, "W {s}")?,
                Err(e) => write_err(&mut w, obs, e)?,
            },
            Ok(Request::Metrics) => {
                for l in client.render_metrics() {
                    writeln!(w, "{l}")?;
                }
                writeln!(w, "# EOF")?;
            }
            Ok(Request::Trace(n)) => {
                for l in client.trace_events(n) {
                    writeln!(w, "{l}")?;
                }
                writeln!(w, "# EOF")?;
            }
            Ok(Request::Sub { component, u, v, durable }) => match st.ensure_sink(writer) {
                Err(e) => write_err(&mut w, obs, e)?,
                Ok(sink) => {
                    let kind = if component { SubKind::Component } else { SubKind::Pair };
                    match client.subscribe(kind, u, v, durable, Some(sink as Arc<dyn SubSink>)) {
                        Ok((id, epoch)) => {
                            st.subs.push((id, durable));
                            writeln!(w, "S {id} {epoch}")?;
                        }
                        Err(e) => write_err(&mut w, obs, e)?,
                    }
                }
            },
            Ok(Request::SubAttach { id, after_seq }) => match st.ensure_sink(writer) {
                Err(e) => write_err(&mut w, obs, e)?,
                Ok(sink) => match client.attach_sub(id, after_seq, sink as Arc<dyn SubSink>) {
                    Ok(_last_seq) => {
                        st.subs.push((id, true));
                        writeln!(w, "S {id} {}", client.epoch())?;
                    }
                    Err(e) => write_err(&mut w, obs, e)?,
                },
            },
            Ok(Request::Unsub(id)) => match client.unsubscribe(id) {
                Ok(()) => {
                    st.subs.retain(|&(sid, _)| sid != id);
                    writeln!(w, "OK")?;
                }
                Err(e) => write_err(&mut w, obs, e)?,
            },
            Ok(Request::Subs) => {
                for s in client.subs_info() {
                    let kind = match s.kind {
                        SubKind::Pair => "PAIR",
                        SubKind::Component => "COMPONENT",
                    };
                    writeln!(
                        w,
                        "{} {} {} {} {} {} {}",
                        s.id,
                        kind,
                        s.u,
                        s.v,
                        s.registered_epoch,
                        u8::from(s.durable),
                        u8::from(s.fired)
                    )?;
                }
                writeln!(w, "# EOF")?;
            }
            Ok(Request::Ping) => writeln!(w, "PONG")?,
            Ok(Request::Quit) => {
                guard.reason = CloseReason::Quit;
                return w.flush();
            }
            Ok(Request::Shutdown) => {
                writeln!(w, "BYE")?;
                w.flush()?;
                shared.request_shutdown();
                guard.reason = CloseReason::Shutdown;
                return Ok(());
            }
        }
        w.flush()?;
    }
}

/// A blocking client for the line protocol, used by the load generator,
/// the end-to-end tests, and anyone scripting against `connectit-serve`.
///
/// Subscription push lines (`! EVT …`) can arrive between replies; every
/// read path stashes them into an internal queue — drain it with
/// [`TcpClient::take_events`], or block for fresh ones with
/// [`TcpClient::poll_events`].
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    events: VecDeque<SubEvent>,
    /// Bytes of a line cut short by a [`TcpClient::poll_events`] read
    /// timeout, re-prefixed to the next read so no byte is ever lost.
    partial: String,
}

/// Parses one `! EVT …` push line back into a [`SubEvent`].
fn parse_event_line(line: &str) -> Option<SubEvent> {
    let rest = line.strip_prefix("! EVT ")?;
    let mut it = rest.split_whitespace();
    let id = it.next()?.parse().ok()?;
    let seq = it.next()?.parse().ok()?;
    let epoch = it.next()?.parse().ok()?;
    let generation = it.next()?.parse().ok()?;
    let (kind, u, v) = match it.next()? {
        "PAIR" => {
            let u = it.next()?.parse().ok()?;
            let v = it.next()?.parse().ok()?;
            (SubKind::Pair, u, v)
        }
        "COMPONENT" => {
            let v: u32 = it.next()?.parse().ok()?;
            (SubKind::Component, v, v)
        }
        _ => return None,
    };
    let root = it.next()?.strip_prefix("root=")?.parse().ok()?;
    let size = it.next()?.strip_prefix("size=")?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(SubEvent { id, kind, u, v, root, size, epoch, generation, seq })
}

fn proto_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Consumes one `key=value` token from an analytics reply.
fn parse_tagged(it: &mut std::str::SplitWhitespace<'_>, key: &str) -> Result<u64, ()> {
    let tok = it.next().ok_or(())?;
    let (k, v) = tok.split_once('=').ok_or(())?;
    if k != key {
        return Err(());
    }
    v.parse().map_err(|_| ())
}

impl TcpClient {
    /// Connects to a `connectit-serve` instance.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            events: VecDeque::new(),
            partial: String::new(),
        })
    }

    /// Reads one complete line, resuming any partial line a
    /// [`TcpClient::poll_events`] timeout left behind.
    fn next_line(&mut self) -> std::io::Result<String> {
        let mut line = std::mem::take(&mut self.partial);
        if self.reader.read_line(&mut line)? == 0 {
            if line.is_empty() {
                return Err(proto_err("connection closed by server"));
            }
            return Err(proto_err("connection closed mid-line"));
        }
        Ok(line.trim_end().to_string())
    }

    /// Validates and stashes one `! `-prefixed push line.
    fn stash_event_line(&mut self, line: &str) -> std::io::Result<()> {
        let ev = parse_event_line(line)
            .ok_or_else(|| proto_err(format!("unexpected push line {line:?}")))?;
        self.events.push_back(ev);
        Ok(())
    }

    fn read_reply(&mut self) -> std::io::Result<String> {
        loop {
            let line = self.next_line()?;
            if line.starts_with("! ") {
                self.stash_event_line(&line)?;
                continue;
            }
            if let Some(msg) = line.strip_prefix("ERR ") {
                return Err(proto_err(format!("server error: {msg}")));
            }
            return Ok(line);
        }
    }

    fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{request}")?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// `I u v`.
    pub fn insert(&mut self, u: u32, v: u32) -> std::io::Result<()> {
        let r = self.roundtrip(&format!("I {u} {v}"))?;
        if r == "OK" {
            Ok(())
        } else {
            Err(proto_err(format!("unexpected reply {r:?}")))
        }
    }

    /// `D u v`.
    pub fn delete(&mut self, u: u32, v: u32) -> std::io::Result<()> {
        let r = self.roundtrip(&format!("D {u} {v}"))?;
        if r == "OK" {
            Ok(())
        } else {
            Err(proto_err(format!("unexpected reply {r:?}")))
        }
    }

    /// `Q u v`: the bare connectivity bit (wire-stable across releases).
    /// Use [`TcpClient::query_gen`] to observe staleness.
    pub fn query(&mut self, u: u32, v: u32) -> std::io::Result<bool> {
        let r = self.roundtrip(&format!("Q {u} {v}"))?;
        match r.as_str() {
            "1" => Ok(true),
            "0" => Ok(false),
            _ => Err(proto_err(format!("unexpected reply {r:?}"))),
        }
    }

    /// `QG u v`, keeping the staleness report: `Some(generation)` when
    /// the reply carried a `G <gen>` suffix (a rebuild was in flight and
    /// the answer was served from that sealed generation), `None` when
    /// the answer is exact.
    pub fn query_gen(&mut self, u: u32, v: u32) -> std::io::Result<(bool, Option<u64>)> {
        let r = self.roundtrip(&format!("QG {u} {v}"))?;
        let mut it = r.split_whitespace();
        let connected = match it.next() {
            Some("1") => true,
            Some("0") => false,
            _ => return Err(proto_err(format!("unexpected reply {r:?}"))),
        };
        let generation = match (it.next(), it.next(), it.next()) {
            (None, _, _) => None,
            (Some("G"), Some(g), None) => {
                Some(g.parse().map_err(|_| proto_err(format!("unexpected reply {r:?}")))?)
            }
            _ => return Err(proto_err(format!("unexpected reply {r:?}"))),
        };
        Ok((connected, generation))
    }

    /// `B k`: submits a group of operations as one unit; returns the
    /// query answers in order. Groups larger than [`MAX_WIRE_BATCH`] are
    /// rejected locally (the server would refuse the header and close).
    pub fn submit(&mut self, ops: &[Update]) -> std::io::Result<Vec<bool>> {
        if ops.len() > MAX_WIRE_BATCH {
            return Err(proto_err(format!(
                "batch of {} ops exceeds the wire limit of {MAX_WIRE_BATCH}; split it",
                ops.len()
            )));
        }
        writeln!(self.writer, "B {}", ops.len())?;
        for op in ops {
            match *op {
                Update::Insert(u, v) => writeln!(self.writer, "I {u} {v}")?,
                Update::Delete(u, v) => writeln!(self.writer, "D {u} {v}")?,
                Update::Query(u, v) => writeln!(self.writer, "Q {u} {v}")?,
            }
        }
        self.writer.flush()?;
        let reply = self.read_reply()?;
        let rest = reply
            .strip_prefix("OK")
            .ok_or_else(|| proto_err(format!("unexpected reply {reply:?}")))?;
        Ok(rest.trim().chars().map(|c| c == '1').collect())
    }

    /// `LABEL v`.
    pub fn label(&mut self, v: u32) -> std::io::Result<u32> {
        let r = self.roundtrip(&format!("LABEL {v}"))?;
        r.strip_prefix("L ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))
    }

    /// `COMPONENTS`.
    pub fn components(&mut self) -> std::io::Result<usize> {
        let r = self.roundtrip("COMPONENTS")?;
        r.strip_prefix("C ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))
    }

    /// `TOPK [k]`: the largest components as `(root, size)` pairs in
    /// descending size order (singletons excluded), plus the analytics
    /// view's `(epoch, generation, sealed)` stamp. `None` asks for the
    /// server default ([`DEFAULT_TOPK`]).
    #[allow(clippy::type_complexity)]
    pub fn topk(&mut self, k: Option<usize>) -> std::io::Result<(Vec<(u32, u64)>, u64, u64, bool)> {
        let r = match k {
            Some(k) => self.roundtrip(&format!("TOPK {k}"))?,
            None => self.roundtrip("TOPK")?,
        };
        let rest =
            r.strip_prefix("K ").ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))?;
        let mut it = rest.split_whitespace();
        let count = parse_tagged(&mut it, "k").map_err(|_| proto_err(r.clone()))?;
        let epoch = parse_tagged(&mut it, "epoch").map_err(|_| proto_err(r.clone()))?;
        let generation = parse_tagged(&mut it, "gen").map_err(|_| proto_err(r.clone()))?;
        let sealed = parse_tagged(&mut it, "sealed").map_err(|_| proto_err(r.clone()))? != 0;
        let mut items = Vec::with_capacity(count as usize);
        for tok in it {
            let (root, size) =
                tok.split_once(':').ok_or_else(|| proto_err(format!("bad pair in {r:?}")))?;
            items.push((
                root.parse().map_err(|_| proto_err(format!("bad pair in {r:?}")))?,
                size.parse().map_err(|_| proto_err(format!("bad pair in {r:?}")))?,
            ));
        }
        if items.len() as u64 != count {
            return Err(proto_err(format!("k={count} but {} pairs in {r:?}", items.len())));
        }
        Ok((items, epoch, generation, sealed))
    }

    /// `HIST`: `(components, dense histogram, epoch, generation,
    /// sealed)`. The histogram is expanded back to all
    /// [`crate::analytics::HIST_BUCKETS`] power-of-two buckets.
    #[allow(clippy::type_complexity)]
    pub fn hist(&mut self) -> std::io::Result<(u64, Vec<u64>, u64, u64, bool)> {
        let r = self.roundtrip("HIST")?;
        let rest =
            r.strip_prefix("H ").ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))?;
        let mut it = rest.split_whitespace();
        let components = parse_tagged(&mut it, "components").map_err(|_| proto_err(r.clone()))?;
        let epoch = parse_tagged(&mut it, "epoch").map_err(|_| proto_err(r.clone()))?;
        let generation = parse_tagged(&mut it, "gen").map_err(|_| proto_err(r.clone()))?;
        let sealed = parse_tagged(&mut it, "sealed").map_err(|_| proto_err(r.clone()))? != 0;
        let mut hist = vec![0u64; crate::analytics::HIST_BUCKETS];
        for tok in it {
            let (b, count) =
                tok.split_once(':').ok_or_else(|| proto_err(format!("bad bucket in {r:?}")))?;
            let b: usize = b.parse().map_err(|_| proto_err(format!("bad bucket in {r:?}")))?;
            if b >= hist.len() {
                return Err(proto_err(format!("bucket {b} out of range in {r:?}")));
            }
            hist[b] = count.parse().map_err(|_| proto_err(format!("bad bucket in {r:?}")))?;
        }
        Ok((components, hist, epoch, generation, sealed))
    }

    /// `SIZE v`: `(size, root)` of `v`'s component.
    pub fn component_size(&mut self, v: u32) -> std::io::Result<(u64, u32)> {
        let r = self.roundtrip(&format!("SIZE {v}"))?;
        let rest =
            r.strip_prefix("Z ").ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))?;
        let (size, root) = rest
            .split_once(" root=")
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))?;
        match (size.parse(), root.parse()) {
            (Ok(size), Ok(root)) => Ok((size, root)),
            _ => Err(proto_err(format!("unexpected reply {r:?}"))),
        }
    }

    /// `EPOCH`.
    pub fn epoch(&mut self) -> std::io::Result<u64> {
        let r = self.roundtrip("EPOCH")?;
        r.strip_prefix("E ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))
    }

    /// `WAIT e ms`: blocks until the server's epoch reaches `epoch` (the
    /// read-your-writes barrier against a follower); returns the epoch
    /// actually reached. A lapsed timeout is a server-side `ERR`.
    pub fn wait_epoch(&mut self, epoch: u64, timeout_ms: u64) -> std::io::Result<u64> {
        let r = self.roundtrip(&format!("WAIT {epoch} {timeout_ms}"))?;
        r.strip_prefix("E ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))
    }

    /// `GEN` (raw one-line generation info, `<gen> dirty=<0/1> …`).
    pub fn gen_line(&mut self) -> std::io::Result<String> {
        let r = self.roundtrip("GEN")?;
        r.strip_prefix("G ")
            .map(str::to_string)
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))
    }

    /// `QUIESCE ms`: blocks until no generation rebuild is in flight;
    /// returns the clean generation then serving. A lapsed timeout is a
    /// server-side `ERR`.
    pub fn quiesce(&mut self, timeout_ms: u64) -> std::io::Result<u64> {
        let r = self.roundtrip(&format!("QUIESCE {timeout_ms}"))?;
        r.strip_prefix("G ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))
    }

    /// `ROLE`: `"primary"` or `"follower"`.
    pub fn role(&mut self) -> std::io::Result<String> {
        let r = self.roundtrip("ROLE")?;
        r.strip_prefix("R ")
            .map(str::to_string)
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))
    }

    /// `STATS` (raw one-line dump).
    pub fn stats_line(&mut self) -> std::io::Result<String> {
        let r = self.roundtrip("STATS")?;
        r.strip_prefix("S ")
            .map(str::to_string)
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))
    }

    /// `FLUSH`: fsync the server's WAL now, regardless of policy.
    pub fn flush_wal(&mut self) -> std::io::Result<()> {
        match self.roundtrip("FLUSH")?.as_str() {
            "OK" => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// `SNAPSHOT`: write a durable label snapshot; returns its epoch.
    pub fn durable_snapshot(&mut self) -> std::io::Result<u64> {
        let r = self.roundtrip("SNAPSHOT")?;
        r.strip_prefix("SNAP ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))
    }

    /// `WALSTATS` (raw one-line dump).
    pub fn wal_stats_line(&mut self) -> std::io::Result<String> {
        let r = self.roundtrip("WALSTATS")?;
        r.strip_prefix("W ")
            .map(str::to_string)
            .ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))
    }

    /// Reads a multi-line reply (`METRICS` / `TRACE`) up to its `# EOF`
    /// terminator; the terminator is consumed and not returned.
    fn read_multiline(&mut self) -> std::io::Result<Vec<String>> {
        let mut out = Vec::new();
        loop {
            let line = match self.next_line() {
                Ok(line) => line,
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    return Err(proto_err("connection closed mid-dump (no `# EOF`)"));
                }
                Err(e) => return Err(e),
            };
            if line.starts_with("! ") {
                self.stash_event_line(&line)?;
                continue;
            }
            if line == "# EOF" {
                return Ok(out);
            }
            if let Some(msg) = line.strip_prefix("ERR ") {
                return Err(proto_err(format!("server error: {msg}")));
            }
            out.push(line.to_string());
        }
    }

    /// `METRICS`: the full Prometheus-style exposition, one element per
    /// line (`# TYPE …` comments included, `# EOF` terminator stripped).
    pub fn metrics(&mut self) -> std::io::Result<Vec<String>> {
        writeln!(self.writer, "METRICS")?;
        self.writer.flush()?;
        self.read_multiline()
    }

    /// `TRACE [n]`: the last `n` flight-recorder events (server default
    /// when `None`), oldest first, `# EOF` terminator stripped.
    pub fn trace(&mut self, n: Option<usize>) -> std::io::Result<Vec<String>> {
        match n {
            Some(n) => writeln!(self.writer, "TRACE {n}")?,
            None => writeln!(self.writer, "TRACE")?,
        }
        self.writer.flush()?;
        self.read_multiline()
    }

    /// `PING`.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.roundtrip("PING")?.as_str() {
            "PONG" => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// `SHUTDOWN`: asks the server process to stop accepting and exit.
    pub fn shutdown_server(&mut self) -> std::io::Result<()> {
        match self.roundtrip("SHUTDOWN")?.as_str() {
            "BYE" => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    fn parse_sub_reply(r: &str) -> std::io::Result<(u64, u64)> {
        let rest =
            r.strip_prefix("S ").ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))?;
        let (id, epoch) =
            rest.split_once(' ').ok_or_else(|| proto_err(format!("unexpected reply {r:?}")))?;
        match (id.parse(), epoch.parse()) {
            (Ok(id), Ok(epoch)) => Ok((id, epoch)),
            _ => Err(proto_err(format!("unexpected reply {r:?}"))),
        }
    }

    /// `SUB u v [DURABLE]`: returns `(id, registration_epoch)`.
    pub fn subscribe_pair(&mut self, u: u32, v: u32, durable: bool) -> std::io::Result<(u64, u64)> {
        let req = if durable { format!("SUB {u} {v} DURABLE") } else { format!("SUB {u} {v}") };
        let r = self.roundtrip(&req)?;
        Self::parse_sub_reply(&r)
    }

    /// `SUB COMPONENT v [DURABLE]`: returns `(id, registration_epoch)`.
    pub fn subscribe_component(&mut self, v: u32, durable: bool) -> std::io::Result<(u64, u64)> {
        let req = if durable {
            format!("SUB COMPONENT {v} DURABLE")
        } else {
            format!("SUB COMPONENT {v}")
        };
        let r = self.roundtrip(&req)?;
        Self::parse_sub_reply(&r)
    }

    /// `SUB ATTACH id [after_seq]`: re-binds this connection to a
    /// durable subscription; the server replays retained events with
    /// `seq > after_seq` (they land in the event queue). Returns
    /// `(id, epoch)`.
    pub fn attach_sub(&mut self, id: u64, after_seq: u64) -> std::io::Result<(u64, u64)> {
        let r = self.roundtrip(&format!("SUB ATTACH {id} {after_seq}"))?;
        Self::parse_sub_reply(&r)
    }

    /// `UNSUB id`.
    pub fn unsubscribe(&mut self, id: u64) -> std::io::Result<()> {
        match self.roundtrip(&format!("UNSUB {id}"))?.as_str() {
            "OK" => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// `SUBS`: the raw subscription-list lines (`# EOF` stripped).
    pub fn subs(&mut self) -> std::io::Result<Vec<String>> {
        writeln!(self.writer, "SUBS")?;
        self.writer.flush()?;
        self.read_multiline()
    }

    /// Drains the already-stashed push events without touching the wire.
    pub fn take_events(&mut self) -> Vec<SubEvent> {
        self.events.drain(..).collect()
    }

    /// Blocks up to `timeout` for push events: returns stashed ones
    /// immediately, otherwise reads the socket under a read timeout.
    /// Must only be called with no request in flight (the only lines
    /// that can arrive are pushes). An empty result means the timeout
    /// lapsed quietly.
    pub fn poll_events(&mut self, timeout: Duration) -> std::io::Result<Vec<SubEvent>> {
        let deadline = Instant::now() + timeout;
        while self.events.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.reader.get_ref().set_read_timeout(Some(deadline - now))?;
            let mut line = std::mem::take(&mut self.partial);
            let res = self.reader.read_line(&mut line);
            self.reader.get_ref().set_read_timeout(None)?;
            match res {
                Ok(0) => return Err(proto_err("connection closed by server")),
                Ok(_) if line.ends_with('\n') => {
                    let t = line.trim_end();
                    if !t.is_empty() {
                        if let Some(msg) = t.strip_prefix("ERR ") {
                            return Err(proto_err(format!("server error: {msg}")));
                        }
                        self.stash_event_line(t)?;
                    }
                }
                Ok(_) => return Err(proto_err("connection closed mid-line")),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Keep whatever bytes arrived before the timeout; the
                    // next read resumes the line.
                    self.partial = line;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(self.events.drain(..).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_grammar() {
        assert_eq!(parse_request("I 3 4"), Ok(Request::Insert(3, 4)));
        assert_eq!(parse_request("D 3 4"), Ok(Request::Delete(3, 4)));
        assert_eq!(parse_request("Q 0 9"), Ok(Request::Query(0, 9)));
        assert_eq!(parse_request("QG 0 9"), Ok(Request::QueryGen(0, 9)));
        assert!(parse_request("QG 0").is_err());
        assert!(parse_request("QG 0 9 2").is_err());
        assert_eq!(parse_request("B 128"), Ok(Request::Batch(128)));
        assert_eq!(parse_request("LABEL 7"), Ok(Request::Label(7)));
        assert_eq!(parse_request("TOPK"), Ok(Request::Topk(DEFAULT_TOPK)));
        assert_eq!(parse_request("TOPK 5"), Ok(Request::Topk(5)));
        assert!(parse_request("TOPK x").is_err());
        assert!(parse_request("TOPK 5 6").is_err());
        assert_eq!(parse_request("HIST"), Ok(Request::Hist));
        assert!(parse_request("HIST 1").is_err());
        assert_eq!(parse_request("SIZE 9"), Ok(Request::Size(9)));
        assert!(parse_request("SIZE").is_err());
        assert!(parse_request("SIZE x").is_err());
        assert!(parse_request("SIZE 9 1").is_err());
        assert_eq!(
            parse_request("SUB 1 2"),
            Ok(Request::Sub { component: false, u: 1, v: 2, durable: false })
        );
        assert_eq!(
            parse_request("SUB 1 2 DURABLE"),
            Ok(Request::Sub { component: false, u: 1, v: 2, durable: true })
        );
        assert_eq!(
            parse_request("SUB COMPONENT 7"),
            Ok(Request::Sub { component: true, u: 7, v: 7, durable: false })
        );
        assert_eq!(
            parse_request("SUB COMPONENT 7 DURABLE"),
            Ok(Request::Sub { component: true, u: 7, v: 7, durable: true })
        );
        assert_eq!(parse_request("SUB ATTACH 3"), Ok(Request::SubAttach { id: 3, after_seq: 0 }));
        assert_eq!(parse_request("SUB ATTACH 3 9"), Ok(Request::SubAttach { id: 3, after_seq: 9 }));
        assert!(parse_request("SUB").is_err());
        assert!(parse_request("SUB 1").is_err());
        assert!(parse_request("SUB 1 2 FOREVER").is_err());
        assert!(parse_request("SUB 1 2 DURABLE 3").is_err());
        assert!(parse_request("SUB COMPONENT").is_err());
        assert!(parse_request("SUB ATTACH x").is_err());
        assert_eq!(parse_request("UNSUB 5"), Ok(Request::Unsub(5)));
        assert!(parse_request("UNSUB").is_err());
        assert!(parse_request("UNSUB x").is_err());
        assert!(parse_request("UNSUB 5 6").is_err());
        assert_eq!(parse_request("SUBS"), Ok(Request::Subs));
        assert!(parse_request("SUBS 1").is_err());
        assert_eq!(parse_request("  PING "), Ok(Request::Ping));
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));
        assert_eq!(parse_request("FLUSH"), Ok(Request::Flush));
        assert_eq!(parse_request("SNAPSHOT"), Ok(Request::Snapshot));
        assert_eq!(parse_request("WALSTATS"), Ok(Request::WalStats));
        assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
        assert_eq!(parse_request("TRACE"), Ok(Request::Trace(DEFAULT_TRACE_EVENTS)));
        assert_eq!(parse_request("TRACE 7"), Ok(Request::Trace(7)));
        assert!(parse_request("METRICS all").is_err());
        assert!(parse_request("TRACE x").is_err());
        assert!(parse_request("TRACE 7 9").is_err());
        assert_eq!(parse_request("ROLE"), Ok(Request::Role));
        assert_eq!(parse_request("WAIT 9"), Ok(Request::Wait(9, DEFAULT_WAIT_TIMEOUT_MS)));
        assert_eq!(parse_request("WAIT 9 250"), Ok(Request::Wait(9, 250)));
        assert_eq!(parse_request("GEN"), Ok(Request::Gen));
        assert_eq!(parse_request("QUIESCE"), Ok(Request::Quiesce(DEFAULT_WAIT_TIMEOUT_MS)));
        assert_eq!(parse_request("QUIESCE 250"), Ok(Request::Quiesce(250)));
        assert!(parse_request("QUIESCE x").is_err());
        assert!(parse_request("QUIESCE 250 7").is_err());
        assert!(parse_request("GEN 1").is_err());
        assert!(parse_request("WAIT").is_err());
        assert!(parse_request("WAIT x").is_err());
        assert!(parse_request("WAIT 9 250 7").is_err());
        assert!(parse_request("ROLE primary").is_err());
        assert!(parse_request("FLUSH now").is_err());
        assert!(parse_request("SNAPSHOT 3").is_err());
        assert!(parse_request("I 3").is_err());
        assert!(parse_request("D 3").is_err());
        assert!(parse_request("D 3 4 5").is_err());
        assert!(parse_request("I 3 4 5").is_err());
        assert!(parse_request("Q -1 4").is_err());
        assert!(parse_request("NOPE").is_err());
        assert!(parse_request("B 99999999999").is_err());
        assert!(parse_request("").is_err());
    }

    #[test]
    fn event_line_grammar() {
        let ev = parse_event_line("! EVT 3 1 42 2 PAIR 5 9 root=5 size=4").unwrap();
        assert_eq!(
            (ev.id, ev.seq, ev.epoch, ev.generation, ev.kind, ev.u, ev.v, ev.root, ev.size),
            (3, 1, 42, 2, SubKind::Pair, 5, 9, 5, 4)
        );
        let ev = parse_event_line("! EVT 8 2 7 0 COMPONENT 11 root=4 size=12").unwrap();
        assert_eq!(
            (ev.id, ev.seq, ev.epoch, ev.generation, ev.kind, ev.v, ev.root, ev.size),
            (8, 2, 7, 0, SubKind::Component, 11, 4, 12)
        );
        assert!(parse_event_line("! EVT 3 1 42 2 PAIR 5").is_none());
        assert!(parse_event_line("! EVT 3 1 42 2 WEIRD 5 9 root=5 size=4").is_none());
        assert!(parse_event_line("! PING").is_none());
    }

    #[test]
    fn text_verbs_cover_the_parser() {
        // Every exported verb must parse to *something* other than
        // "unknown command" (arguments may still be required).
        for verb in TEXT_VERBS {
            let err = parse_request(verb).err();
            if let Some(msg) = err {
                assert!(
                    !msg.starts_with("unknown command"),
                    "exported verb {verb} not accepted: {msg}"
                );
            }
        }
        assert!(parse_request("NOPE").unwrap_err().starts_with("unknown command"));
    }

    #[test]
    fn batch_op_grammar() {
        assert_eq!(parse_batch_op("I 1 2"), Ok(Update::Insert(1, 2)));
        assert_eq!(parse_batch_op("D 1 2"), Ok(Update::Delete(1, 2)));
        assert_eq!(parse_batch_op("Q 5 6"), Ok(Update::Query(5, 6)));
        assert!(parse_batch_op("X 1 2").is_err());
        assert!(parse_batch_op("I one 2").is_err());
        assert!(parse_batch_op("D one 2").is_err());
        assert!(parse_batch_op("I 1 2 3").is_err());
    }
}
