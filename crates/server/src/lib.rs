//! # cc-server
//!
//! A sharded, concurrent connectivity *service* over the ConnectIt
//! streaming engine: the batch-incremental machinery of Section 3.5 turned
//! into a long-running system serving heavy mixed insert/delete/query
//! traffic.
//!
//! Layers, bottom up:
//!
//! - [`engine::ShardedEngine`] — vertex-range shards, each a
//!   [`connectit::StreamingConnectivity`] over its local id space, plus a
//!   shared union-find *spine* over the full vertex set that receives
//!   cross-shard edges and novel intra-shard merges (so spine work per
//!   shard is amortized by the shard's vertex count, not its edge
//!   traffic). Batches run wait-free (paper Type (i)) or phase-concurrent
//!   (Type (iii)) on the shared `cc_parallel` pool.
//! - [`generation::GenerationEngine`] — fully dynamic connectivity by
//!   epoch-partitioned generations: inserts stay incremental, a *forest*
//!   deletion seals the labels and rebuilds in the background (non-forest
//!   and absent deletions are free), and queries during a rebuild serve
//!   the sealed generation with an honest `(epoch, generation)` staleness
//!   report (DESIGN.md §9).
//! - [`service::Service`] — a time/size-bounded batch former coalescing
//!   many clients' submissions into engine batches, epoch-versioned
//!   `Arc`-swapped label snapshots (reads never block writers),
//!   per-operation latency tracking via `cc_parallel::hist::LatencyHist`,
//!   and a cloneable in-process [`service::Client`].
//! - [`analytics`] — the incremental analytics plane: merge deltas and
//!   rebuild resyncs maintain the live component count, size histogram,
//!   top-k components and per-component sizes in an epoch-versioned,
//!   `Arc`-swapped [`analytics::AnalyticsView`] (served by the
//!   `TOPK`/`HIST`/`SIZE` verbs, routable to followers; DESIGN.md §12).
//! - [`subs`] — the subscription plane: `SUB u v` / `SUB COMPONENT v`
//!   register triggers in a union-find-keyed index that consumes the
//!   same merge stream as analytics; events push at the exact
//!   `(epoch, generation)` the merge committed, durable subscriptions
//!   survive restarts via WAL `'S'` records, and slow consumers are
//!   dropped with a typed close rather than losing events silently
//!   (DESIGN.md §13, PROTOCOL.md).
//! - [`wal`] / [`snapshot`] — the durability subsystem: a segmented,
//!   checksummed, group-committed write-ahead log recording each applied
//!   batch at its epoch boundary, plus epoch-keyed durable label
//!   snapshots so recovery replays only the WAL suffix. Both share the
//!   binary record codec in `cc_graph::io::binary`.
//! - [`replication`] — WAL shipping: a primary streams its durable
//!   history (snapshots + batch records, the same CRC-framed codec the
//!   disk uses) to read-replica followers, which bootstrap, replay, tail
//!   live appends, and serve reads at an honestly-reported replication
//!   epoch (`WAIT` upgrades bounded staleness to read-your-writes).
//! - [`net`] / [`evloop`] / [`binproto`] — the wire front end: a sharded,
//!   readiness-polled event loop (epoll via the offline `mio` shim, with
//!   a portable `poll(2)` fallback) serving two protocols on one port,
//!   told apart by a first-byte sniff. The line-based text protocol
//!   (`I`/`D`/`Q`/`B`/`GEN`/`QUIESCE`/`STATS`/`FLUSH`/`SNAPSHOT`/
//!   `WALSTATS`/`METRICS`/`TRACE`/`WAIT`/`ROLE`/…) remains the debug
//!   door, handled by a dedicated thread per connection with a blocking
//!   [`net::TcpClient`]. The binary protocol ([`binproto`]) frames
//!   correlation-tagged requests in the `cc_graph::io::binary` codec so
//!   clients pipeline many in-flight requests per connection
//!   ([`binproto::BinClient`]); each shard coalesces decoded reads
//!   across all its ready connections into one epoch-snapshot acquire
//!   and groups updates into single batch-former submissions
//!   (DESIGN.md §11).
//! - [`obs`] — the observability plane: a per-service metrics registry
//!   (relaxed-atomic counters/gauges/histograms mirrored at write time,
//!   scraped lock-free by the multi-line `METRICS` verb) and a
//!   fixed-capacity lock-free flight recorder of lifecycle events
//!   (`TRACE [n]`, flushed to `<wal-dir>/trace-<pid>.log` on shutdown
//!   for crash post-mortems). Contract in DESIGN.md §10.
//!
//! Binaries: `connectit-serve` (the daemon; `--wal-dir` turns on
//! durability, `--replication-port` ships the WAL to followers,
//! `--replicate-from` runs a follower) and `connectit-loadgen` (a
//! closed-loop load generator that validates every answered query
//! against the sequential oracle while measuring throughput; its
//! `--kill-after`/`--resume` checkpoint mode re-validates that oracle
//! across a server crash and restart, `--churn` mixes in deletions
//! validated exactly against an incremental dynamic oracle, and
//! `--follower` split-routes updates to the primary and
//! exactly-validated queries to replicas). See the README for a
//! quickstart and the protocol reference, and DESIGN.md §5/§7/§8/§9 for
//! the architecture, durability, replication, and dynamic-connectivity
//! discussions.

#![warn(missing_docs)]

pub mod analytics;
pub mod binproto;
pub mod engine;
pub mod evloop;
pub mod generation;
pub mod net;
pub mod obs;
pub mod replication;
pub mod service;
pub mod snapshot;
pub mod subs;
pub mod wal;

pub use analytics::{AnalyticsCore, AnalyticsView, HIST_BUCKETS, TOPK_CAP};
pub use binproto::{BinClient, Reply};
pub use engine::{
    build_engine, Engine, EngineCounters, EngineError, ExecMode, RunMode, ShardedEngine,
};
pub use evloop::NetConfig;
pub use generation::{GenCounters, GenInfo, GenerationEngine};
pub use net::{serve, serve_with, TcpClient, TcpServer};
pub use obs::{Metrics, Obs, Recorder};
pub use replication::{
    run_follower, serve_replication, serve_replication_observed, ReplicationHub,
};
pub use service::{
    Client, LabelSnapshot, Role, Service, ServiceConfig, ServiceError, ServiceStats,
};
pub use subs::{SubEvent, SubInfo, SubKind, SubSink};
pub use wal::{
    DurabilityConfig, FsyncPolicy, RecoveryReport, TailEvent, Wal, WalCursor, WalError, WalStats,
};

/// Creates a unique scratch directory under the system temp dir (pid +
/// nanosecond stamped). Shared by this crate's durability tests and the
/// WAL bench; not part of the service API.
#[doc(hidden)]
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("cc_{tag}_{}_{nanos}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir creation");
    dir
}

/// Parses the CLI `--alg` vocabulary shared by `connectit-serve` and
/// `connectit-loadgen` into a union-find variant:
/// `fastest`/`rem-cas` (wait-free), `async` (wait-free), or `rem-splice`
/// (phase-concurrent only).
pub fn parse_alg(name: &str) -> Result<cc_unionfind::UfSpec, String> {
    use cc_unionfind::{FindKind, SpliceKind, UfSpec, UniteKind};
    match name {
        "fastest" | "rem-cas" => Ok(UfSpec::fastest()),
        "async" => Ok(UfSpec::new(UniteKind::Async, FindKind::Halve)),
        "rem-splice" => Ok(UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Naive)),
        other => Err(format!("unknown --alg {other:?} (fastest|async|rem-splice)")),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn alg_vocabulary() {
        assert_eq!(super::parse_alg("fastest").unwrap(), super::parse_alg("rem-cas").unwrap());
        assert!(super::parse_alg("async").is_ok());
        assert!(super::parse_alg("rem-splice").is_ok());
        assert!(super::parse_alg("nope").is_err());
    }
}
