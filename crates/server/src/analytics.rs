//! The incremental analytics plane: delta-maintained component
//! aggregates served from epoch-versioned, lock-free views.
//!
//! The batch former already observes every union that actually merges
//! two components ([`connectit::InsertClass::Merge`]) and every
//! generation rebuild that re-partitions them. This module turns that
//! event stream into always-current aggregates without ever rescanning
//! the n labels:
//!
//! * **live component count** — starts at n, decremented per merge;
//! * **component-size histogram** — power-of-two buckets over sizes;
//! * **top-k largest components** — an ordered set of non-singleton
//!   components, materialized into the view at publish time;
//! * **per-component member count** — a size-annotated union-find
//!   (`AnalyticsCore`) readable without any lock.
//!
//! # Writer / reader contract
//!
//! Exactly one thread mutates an [`Analytics`] at a time (the
//! generation writer lock on the leader, the apply lock on a
//! follower). Readers never block it: they either clone the published
//! [`AnalyticsView`] (one `Mutex<Arc<_>>` swap, the same discipline as
//! label snapshots) or walk the shared [`AnalyticsCore`] with acquire
//! loads. The core orders every merge as *size first, then link*: the
//! merged size is Release-stored into the surviving root before the
//! losing root's parent pointer is Release-stored. A reader that
//! observes the link therefore observes the merged size; a reader that
//! does not observes a consistent pre-merge component.
//!
//! # Delta validity
//!
//! Merge deltas are only applied while the generation engine is clean.
//! A forest deletion seals the generation — the view is republished
//! with `sealed = true` and frozen — and the commit that follows
//! resyncs the plane wholesale from the fresh engine's labels, because
//! a deletion rebuild invalidates every delta derived before it.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two size buckets: bucket `b` counts components
/// whose size `s` satisfies `floor(log2(s)) == b`, so bucket 0 is the
/// singletons and bucket 32 holds a component of 2^32 vertices.
pub const HIST_BUCKETS: usize = 33;

/// Cap on the number of components a view materializes for `TOPK`.
pub const TOPK_CAP: usize = 32;

/// The histogram bucket for a component of `size` members (`size >= 1`).
#[inline]
pub fn hist_bucket(size: u64) -> usize {
    debug_assert!(size >= 1);
    (63 - size.leading_zeros()) as usize
}

/// A size-annotated union-find shared between the single writer and
/// any number of lock-free readers. See the module docs for the
/// ordering contract.
pub struct AnalyticsCore {
    parents: Vec<AtomicU32>,
    sizes: Vec<AtomicU64>,
}

impl AnalyticsCore {
    fn fresh(n: usize) -> AnalyticsCore {
        AnalyticsCore {
            parents: (0..n as u32).map(AtomicU32::new).collect(),
            sizes: (0..n).map(|_| AtomicU64::new(1)).collect(),
        }
    }

    fn from_labels(labels: &[u32]) -> AnalyticsCore {
        let core = AnalyticsCore {
            parents: labels.iter().map(|&l| AtomicU32::new(l)).collect(),
            sizes: (0..labels.len()).map(|_| AtomicU64::new(0)).collect(),
        };
        for &l in labels {
            // Relaxed: the core is private until published behind an Arc.
            core.sizes[l as usize].fetch_add(1, Ordering::Relaxed);
        }
        core
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True when the core tracks zero vertices.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The representative of `v`'s component — a lock-free walk up the
    /// parent chain (no path compression; the writer's union-by-size
    /// keeps chains logarithmic).
    pub fn find(&self, v: u32) -> u32 {
        let mut v = v;
        loop {
            let p = self.parents[v as usize].load(Ordering::Acquire);
            if p == v {
                return v;
            }
            v = p;
        }
    }

    /// `(root, size)` of `v`'s component. The pair is consistent as of
    /// some moment between the call's start and end (see module docs).
    pub fn component_of(&self, v: u32) -> (u32, u64) {
        let r = self.find(v);
        (r, self.sizes[r as usize].load(Ordering::Acquire))
    }
}

/// An immutable, epoch-stamped publication of the aggregates. Cheap to
/// clone out of the engine (`Arc`); heavy analytical reads (`TOPK`,
/// `HIST`, `SIZE`) are served from it without touching the write path.
pub struct AnalyticsView {
    /// The last fully published batch epoch this view covers. A lower
    /// bound: a sealed view keeps the epoch it was sealed at while the
    /// rebuild runs.
    pub epoch: u64,
    /// The engine generation the view's partition belongs to.
    pub generation: u64,
    /// True while a deletion rebuild is in flight: the view is frozen
    /// at the seal-time partition and deltas are suspended until the
    /// commit resyncs wholesale.
    pub sealed: bool,
    /// Live number of components (counting singletons).
    pub components: u64,
    /// Power-of-two size histogram; `hist[b]` counts components in
    /// bucket `b` (see [`hist_bucket`]). Sums to `components`.
    pub hist: [u64; HIST_BUCKETS],
    /// Largest components, `(root, size)` in descending size order,
    /// singletons excluded, at most [`TOPK_CAP`] entries.
    pub topk: Vec<(u32, u64)>,
    core: Arc<AnalyticsCore>,
}

impl AnalyticsView {
    /// The first `k` of the materialized largest components.
    pub fn topk(&self, k: usize) -> &[(u32, u64)] {
        &self.topk[..k.min(self.topk.len())]
    }

    /// `(root, size)` of `v`'s component, read lock-free from the
    /// shared core. Between publications the core keeps absorbing
    /// merges, so the answer may be *fresher* than [`Self::epoch`]
    /// (never staler); across a rebuild the core is replaced and a
    /// stale view's answers stay frozen at its own partition.
    pub fn component_of(&self, v: u32) -> (u32, u64) {
        self.core.component_of(v)
    }

    /// Number of vertices the view covers.
    pub fn n(&self) -> usize {
        self.core.len()
    }
}

/// The single-writer aggregate state. Owned by the generation engine's
/// write lock; publishes immutable [`AnalyticsView`]s.
pub struct Analytics {
    components: u64,
    hist: [u64; HIST_BUCKETS],
    /// Non-singleton components as `(size, root)`, ordered so the
    /// largest are at the back. Singletons are excluded (they all tie
    /// at size 1 and are fully described by `hist[0]`).
    topset: BTreeSet<(u64, u32)>,
    core: Arc<AnalyticsCore>,
}

impl Analytics {
    /// The all-singletons state over `n` vertices.
    pub fn fresh(n: usize) -> Analytics {
        let mut hist = [0u64; HIST_BUCKETS];
        hist[0] = n as u64;
        Analytics {
            components: n as u64,
            hist,
            topset: BTreeSet::new(),
            core: Arc::new(AnalyticsCore::fresh(n)),
        }
    }

    /// Rebuilds every aggregate from a label array (one label per
    /// vertex, `labels[v]` the representative of `v`). Used at
    /// generation commit and recovery, where deltas are invalid.
    pub fn resync(&mut self, labels: &[u32]) {
        // The engines hand out *canonical* labels (a representative's
        // label is itself); `find` termination depends on it.
        debug_assert!(labels.iter().all(|&l| labels[l as usize] == l));
        let core = AnalyticsCore::from_labels(labels);
        self.components = 0;
        self.hist = [0; HIST_BUCKETS];
        self.topset.clear();
        for v in 0..labels.len() {
            let size = core.sizes[v].load(Ordering::Relaxed);
            if size == 0 {
                continue; // not a representative
            }
            self.components += 1;
            self.hist[hist_bucket(size)] += 1;
            if size >= 2 {
                self.topset.insert((size, v as u32));
            }
        }
        self.core = Arc::new(core);
    }

    /// Applies one merge delta: unions `u` and `v`'s components and
    /// folds the size change into count, histogram and top set.
    /// Returns false (and changes nothing) when they already share a
    /// component.
    pub fn merge(&mut self, u: u32, v: u32) -> bool {
        let ru = self.core.find(u);
        let rv = self.core.find(v);
        if ru == rv {
            return false;
        }
        let su = self.core.sizes[ru as usize].load(Ordering::Relaxed);
        let sv = self.core.sizes[rv as usize].load(Ordering::Relaxed);
        let (big, small, sb, ss) = if su >= sv { (ru, rv, su, sv) } else { (rv, ru, sv, su) };
        let merged = sb + ss;
        self.components -= 1;
        self.hist[hist_bucket(sb)] -= 1;
        self.hist[hist_bucket(ss)] -= 1;
        self.hist[hist_bucket(merged)] += 1;
        if sb >= 2 {
            self.topset.remove(&(sb, big));
        }
        if ss >= 2 {
            self.topset.remove(&(ss, small));
        }
        self.topset.insert((merged, big));
        // Size first, then link: a reader that sees the link sees the
        // merged size (module docs).
        self.core.sizes[big as usize].store(merged, Ordering::Release);
        self.core.parents[small as usize].store(big, Ordering::Release);
        true
    }

    /// Live component count (counting singletons) — equals
    /// `count_distinct_labels` over the engine's labels whenever the
    /// engine is clean.
    pub fn components(&self) -> u64 {
        self.components
    }

    /// Builds an immutable publication of the current aggregates.
    pub fn view(&self, epoch: u64, generation: u64, sealed: bool) -> AnalyticsView {
        let topk: Vec<(u32, u64)> =
            self.topset.iter().rev().take(TOPK_CAP).map(|&(s, r)| (r, s)).collect();
        AnalyticsView {
            epoch,
            generation,
            sealed,
            components: self.components,
            hist: self.hist,
            topk,
            core: Arc::clone(&self.core),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_counts(labels: &[u32]) -> (u64, [u64; HIST_BUCKETS], Vec<u64>) {
        let mut per_root = std::collections::BTreeMap::<u32, u64>::new();
        for &l in labels {
            *per_root.entry(l).or_insert(0) += 1;
        }
        let mut hist = [0u64; HIST_BUCKETS];
        let mut sizes: Vec<u64> = Vec::new();
        for &s in per_root.values() {
            hist[hist_bucket(s)] += 1;
            if s >= 2 {
                sizes.push(s);
            }
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        (per_root.len() as u64, hist, sizes)
    }

    #[test]
    fn buckets_are_floor_log2() {
        assert_eq!(hist_bucket(1), 0);
        assert_eq!(hist_bucket(2), 1);
        assert_eq!(hist_bucket(3), 1);
        assert_eq!(hist_bucket(4), 2);
        assert_eq!(hist_bucket(7), 2);
        assert_eq!(hist_bucket(8), 3);
        assert_eq!(hist_bucket(u64::from(u32::MAX) + 1), 32);
    }

    #[test]
    fn merges_track_a_mirror_union_find() {
        let n = 64usize;
        let mut a = Analytics::fresh(n);
        let mut labels: Vec<u32> = (0..n as u32).collect();
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..200 {
            let u = (rng() % n as u64) as u32;
            let v = (rng() % n as u64) as u32;
            let (lu, lv) = (labels[u as usize], labels[v as usize]);
            let merged = a.merge(u, v);
            assert_eq!(merged, lu != lv, "merge({u},{v})");
            if lu != lv {
                for l in labels.iter_mut() {
                    if *l == lv {
                        *l = lu;
                    }
                }
            }
            // Normalize: the analytics core picks its own roots, so
            // compare multisets, not representatives.
            let canon: Vec<u32> = {
                let mut map = std::collections::BTreeMap::new();
                labels
                    .iter()
                    .map(|&l| {
                        let next = map.len() as u32;
                        *map.entry(l).or_insert(next)
                    })
                    .collect()
            };
            let (components, hist, topsizes) = oracle_counts(&canon);
            assert_eq!(a.components(), components);
            let view = a.view(7, 1, false);
            assert_eq!(view.hist, hist);
            let got: Vec<u64> = view.topk.iter().map(|&(_, s)| s).collect();
            assert_eq!(got, topsizes[..topsizes.len().min(TOPK_CAP)].to_vec());
            // Per-vertex sizes agree with the mirror.
            for v in 0..n as u32 {
                let (_, size) = view.component_of(v);
                let expect = labels.iter().filter(|&&l| l == labels[v as usize]).count() as u64;
                assert_eq!(size, expect, "size of {v}");
            }
        }
    }

    #[test]
    fn resync_matches_fresh_deltas() {
        // Apply deltas on one instance, resync another from the
        // resulting labels: aggregates must agree exactly.
        let n = 40usize;
        let mut a = Analytics::fresh(n);
        for i in 0..20u32 {
            a.merge(i, i + 1);
        }
        a.merge(30, 31);
        let labels: Vec<u32> = {
            let view = a.view(0, 0, false);
            (0..n as u32).map(|v| view.component_of(v).0).collect()
        };
        let mut b = Analytics::fresh(n);
        b.resync(&labels);
        assert_eq!(a.components(), b.components());
        let (va, vb) = (a.view(1, 2, false), b.view(1, 2, false));
        assert_eq!(va.hist, vb.hist);
        let sa: Vec<u64> = va.topk.iter().map(|&(_, s)| s).collect();
        let sb: Vec<u64> = vb.topk.iter().map(|&(_, s)| s).collect();
        assert_eq!(sa, sb);
        for v in 0..n as u32 {
            assert_eq!(va.component_of(v).1, vb.component_of(v).1);
        }
    }

    #[test]
    fn view_is_frozen_against_later_resync() {
        let mut a = Analytics::fresh(8);
        a.merge(0, 1);
        let old = a.view(3, 0, false);
        assert_eq!(old.components, 7);
        a.resync(&[0, 0, 2, 2, 2, 5, 6, 7]);
        let new = a.view(4, 1, false);
        assert_eq!(new.components, 5);
        // The old view still answers from its own (replaced) core.
        assert_eq!(old.components, 7);
        assert_eq!(old.component_of(2).1, 1);
        assert_eq!(new.component_of(2).1, 3);
    }
}
