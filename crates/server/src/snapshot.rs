//! Durable, epoch-keyed label snapshots: the analytical-side artifact of
//! the durability split. A snapshot freezes the whole component labeling
//! at an epoch boundary so recovery replays only the WAL suffix past it
//! (and sealed segments below it can be pruned).
//!
//! One file per snapshot, `snap-<epoch>.ccsnap`: the magic `CCSNAP01`
//! followed by a [`cc_graph::io::binary`] record whose payload is
//! [`cc_graph::io::binary::encode_labels`] — `(epoch, labels)` — and,
//! since the generation engine made deletions first-class, a second
//! record holding the **live edge set** at the same epoch
//! ([`cc_graph::io::binary::encode_edge_batch`]). Labels alone cannot
//! classify a later retraction (they forget which edges witnessed the
//! partition), so a deletion-capable recovery replays the edge set;
//! legacy single-record files still load (`edges: None`) and remain
//! sound for insert-only histories. Files are
//! written to a `.tmp` sibling, fsynced, then renamed, so a crash
//! mid-write never leaves a plausible-but-partial snapshot under the real
//! name; stray `.tmp` files are ignored (and cleaned) by the loader.
//! Loading walks epochs downward and skips undecodable files, so a
//! corrupt latest snapshot degrades to the previous one plus a longer WAL
//! replay, never to a wrong labeling.

use crate::wal::WalError;
use cc_graph::io::binary;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CCSNAP01";

/// The snapshot file name for an epoch.
pub fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snap-{epoch:020}.ccsnap"))
}

fn parse_snapshot_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?.strip_suffix(".ccsnap")?.parse().ok()
}

/// A snapshot recovered from disk.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The epoch the labeling was frozen at.
    pub epoch: u64,
    /// Component label per vertex at that epoch.
    pub labels: Vec<u32>,
    /// The live edge set at that epoch; `None` for legacy label-only
    /// snapshot files (sound only over insert-only histories).
    pub edges: Option<Vec<(u32, u32)>>,
    /// Newer snapshot files that failed to decode and were skipped (a
    /// non-zero count means recovery fell back and will replay more WAL).
    pub skipped_corrupt: usize,
}

/// Atomically writes the labeling at `epoch` into `dir`; returns the
/// final path. The directory itself is fsynced after the rename: the
/// caller prunes the previous snapshot and covered WAL segments next,
/// and a machine crash must never journal those unlinks without the
/// rename that justified them.
pub fn write_snapshot(
    dir: &Path,
    epoch: u64,
    labels: &[u32],
    edges: &[(u32, u32)],
) -> std::io::Result<PathBuf> {
    let final_path = snapshot_path(dir, epoch);
    let tmp_path = final_path.with_extension("ccsnap.tmp");
    {
        let mut w = BufWriter::new(File::create(&tmp_path)?);
        binary::write_magic(&mut w, SNAPSHOT_MAGIC)?;
        binary::append_record(&mut w, &binary::encode_labels(epoch, labels))?;
        binary::append_record(&mut w, &binary::encode_edge_batch(epoch, edges))?;
        w.flush()?;
        w.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    File::open(dir)?.sync_all()?;
    Ok(final_path)
}

/// Reads and fully validates one snapshot file: the labels record plus,
/// in the deletion-capable format, the live edge set frozen at the same
/// epoch (`None` when reading a legacy label-only file).
#[allow(clippy::type_complexity)]
pub fn read_snapshot(path: &Path) -> Result<(u64, Vec<u32>, Option<Vec<(u32, u32)>>), WalError> {
    let codec = |source: binary::CodecError| WalError::Codec { path: path.to_path_buf(), source };
    let file =
        File::open(path).map_err(|e| WalError::Io { path: path.to_path_buf(), source: e })?;
    let mut reader = BufReader::new(file);
    binary::read_magic(&mut reader, SNAPSHOT_MAGIC).map_err(codec)?;
    let mut records = binary::RecordReader::new(reader, binary::MAGIC_LEN as u64);
    let payload = records.next().map_err(codec)?.ok_or_else(|| WalError::Corrupt {
        path: path.to_path_buf(),
        detail: "snapshot has no record".into(),
    })?;
    let (epoch, labels) =
        binary::decode_labels(&payload, binary::MAGIC_LEN as u64).map_err(codec)?;
    let edges = match records.next().map_err(codec)? {
        None => None,
        Some(payload) => {
            let at = records.offset();
            let (edge_epoch, edges) = binary::decode_edge_batch(&payload, at).map_err(codec)?;
            if edge_epoch != epoch {
                return Err(WalError::Corrupt {
                    path: path.to_path_buf(),
                    detail: format!(
                        "snapshot labels frozen at epoch {epoch} but edge set at {edge_epoch}"
                    ),
                });
            }
            Some(edges)
        }
    };
    Ok((epoch, labels, edges))
}

/// Loads the newest decodable snapshot in `dir` (`Ok(None)` if there is
/// none), skipping corrupt files and sweeping stray `.tmp` leftovers.
///
/// Snapshot files present but **none** decodable is a hard error, not
/// `Ok(None)`: older snapshots and covered WAL segments are pruned, so
/// "no snapshot" and "all snapshots corrupt" recover very different
/// histories — silently picking the empty one would serve a wrong
/// partition.
pub fn load_latest(dir: &Path) -> Result<Option<LoadedSnapshot>, WalError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(WalError::Io { path: dir.to_path_buf(), source: e }),
    };
    let mut epochs: Vec<u64> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            // An interrupted write; the real name was never created.
            let _ = std::fs::remove_file(entry.path());
            continue;
        }
        if let Some(e) = parse_snapshot_epoch(name) {
            epochs.push(e);
        }
    }
    epochs.sort_unstable();
    let mut skipped_corrupt = 0;
    let mut last_err: Option<WalError> = None;
    for &epoch in epochs.iter().rev() {
        let path = snapshot_path(dir, epoch);
        match read_snapshot(&path) {
            Ok((stored_epoch, labels, edges)) if stored_epoch == epoch => {
                return Ok(Some(LoadedSnapshot { epoch, labels, edges, skipped_corrupt }));
            }
            Ok((stored_epoch, ..)) => {
                skipped_corrupt += 1;
                last_err = Some(WalError::Corrupt {
                    path,
                    detail: format!("snapshot named for epoch {epoch} stores {stored_epoch}"),
                });
            }
            Err(e) => {
                skipped_corrupt += 1;
                last_err = Some(e);
            }
        }
    }
    match last_err {
        None => Ok(None),
        Some(e) => Err(WalError::Corrupt {
            path: dir.to_path_buf(),
            detail: format!(
                "{} snapshot file(s) present but none decodable (last failure: {e}); \
                 refusing to recover as if no snapshot was ever taken",
                skipped_corrupt
            ),
        }),
    }
}

/// Removes snapshots with epochs below `epoch` (best-effort; called
/// after a successful snapshot write, keeping only the newest).
pub fn prune_older_than(dir: &Path, epoch: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(e) = parse_snapshot_epoch(name) {
            if e < epoch {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        crate::scratch_dir(&format!("snap_{tag}"))
    }

    #[test]
    fn write_load_roundtrip_prefers_newest() {
        let dir = tmp_dir("roundtrip");
        let old: Vec<u32> = (0..10).collect();
        let new: Vec<u32> = vec![0; 10];
        write_snapshot(&dir, 3, &old, &[]).expect("write");
        write_snapshot(&dir, 8, &new, &[(0, 1), (1, 2)]).expect("write");
        let snap = load_latest(&dir).expect("load").expect("some");
        assert_eq!(snap.epoch, 8);
        assert_eq!(snap.labels, new);
        assert_eq!(snap.edges, Some(vec![(0, 1), (1, 2)]));
        assert_eq!(snap.skipped_corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_label_only_snapshots_still_load() {
        use std::io::Write as _;
        let dir = tmp_dir("legacy");
        // Hand-write the pre-deletion single-record format.
        let path = snapshot_path(&dir, 4);
        let mut w = std::io::BufWriter::new(File::create(&path).expect("create"));
        binary::write_magic(&mut w, SNAPSHOT_MAGIC).expect("magic");
        binary::append_record(&mut w, &binary::encode_labels(4, &[0, 0, 2])).expect("record");
        w.flush().expect("flush");
        drop(w);
        let snap = load_latest(&dir).expect("load").expect("some");
        assert_eq!(snap.epoch, 4);
        assert_eq!(snap.labels, vec![0, 0, 2]);
        assert_eq!(snap.edges, None, "legacy files report no edge set");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_edge_record_epoch_is_corrupt() {
        use std::io::Write as _;
        let dir = tmp_dir("mismatch");
        let path = snapshot_path(&dir, 6);
        let mut w = std::io::BufWriter::new(File::create(&path).expect("create"));
        binary::write_magic(&mut w, SNAPSHOT_MAGIC).expect("magic");
        binary::append_record(&mut w, &binary::encode_labels(6, &[0, 0])).expect("labels");
        binary::append_record(&mut w, &binary::encode_edge_batch(5, &[(0, 1)])).expect("edges");
        w.flush().expect("flush");
        drop(w);
        let err = read_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("edge set at 5"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let good: Vec<u32> = (0..6).collect();
        write_snapshot(&dir, 2, &good, &[]).expect("write");
        write_snapshot(&dir, 5, &[9; 6], &[]).expect("write");
        // Flip a byte in the newest snapshot's payload.
        let newest = snapshot_path(&dir, 5);
        let mut bytes = std::fs::read(&newest).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).expect("write");
        let snap = load_latest(&dir).expect("load").expect("some");
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.labels, good);
        assert_eq!(snap.skipped_corrupt, 1);
        // Direct reads of the corrupt file surface typed context.
        let err = read_snapshot(&newest).unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_snapshots_corrupt_is_a_hard_error_not_fresh_start() {
        let dir = tmp_dir("allcorrupt");
        write_snapshot(&dir, 7, &[0, 0, 2], &[]).expect("write");
        let path = snapshot_path(&dir, 7);
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write");
        // Older snapshots are pruned in normal operation, so treating
        // "only snapshot corrupt" as "no snapshot" would silently lose
        // every pre-snapshot edge.
        let err = match load_latest(&dir) {
            Err(e) => e.to_string(),
            Ok(s) => panic!("must not recover: got {s:?}"),
        };
        assert!(err.contains("none decodable"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_leftovers_are_ignored_and_swept() {
        let dir = tmp_dir("tmp");
        std::fs::write(dir.join("snap-00000000000000000009.ccsnap.tmp"), b"partial")
            .expect("write");
        assert!(load_latest(&dir).expect("load").is_none());
        assert!(!dir.join("snap-00000000000000000009.ccsnap.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_dir_is_none() {
        let dir = tmp_dir("empty");
        assert!(load_latest(&dir).expect("load").is_none());
        assert!(load_latest(&dir.join("nope")).expect("load").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_drops_only_older() {
        let dir = tmp_dir("prune");
        for e in [1u64, 4, 9] {
            write_snapshot(&dir, e, &[0, 1], &[]).expect("write");
        }
        prune_older_than(&dir, 9);
        assert!(!snapshot_path(&dir, 1).exists());
        assert!(!snapshot_path(&dir, 4).exists());
        assert!(snapshot_path(&dir, 9).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
