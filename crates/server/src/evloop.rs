//! The sharded readiness event loop: the wire-speed front door.
//!
//! `start` (via [`crate::net::serve`]) binds one listener and spawns N
//! shard threads (`cc-net-<i>`), each owning its accepted connections
//! through the offline `mio` shim (epoll on Linux, `poll(2)` fallback).
//! The accept thread round-robins fresh sockets — `TCP_NODELAY` already
//! set — to shard inboxes and wakes the shard's poll.
//!
//! ## Protocol sniff
//!
//! A shard reads the first byte of each adopted connection: `0xCC` (the
//! [`crate::binproto::STREAM_MAGIC`] opener, which no text verb starts
//! with) selects the in-loop binary protocol; anything else hands the
//! socket — sniffed bytes replayed — to a dedicated text thread running
//! the unchanged line protocol, so the text wire format stays stable on
//! the same port.
//!
//! ## Cross-connection batch execution
//!
//! The perf move this module exists for: each poll round, a shard drains
//! every ready connection's frames *first*, then executes the round's
//! decoded requests in two grouped strokes:
//!
//! - all `Q`/`QG` reads (and, on a follower, query-only `B` bodies) go
//!   through **one** [`crate::service::Client::query_many_tagged`] call —
//!   one epoch-snapshot/view acquire answers every read the round
//!   collected, across all connections;
//! - all `I`/`D`/`B` updates concatenate into **one**
//!   [`crate::service::Client::submit_tagged_async`] group per round, so
//!   the batch former sees one submission where thread-per-connection
//!   served dozens, and the shard never parks waiting for the batch — the
//!   ticket's completion callback wakes the poll and answers are routed
//!   back per correlation id (responses complete out of order by design).
//!
//! The coalesce width (requests per grouped stroke) is recorded in
//! `net_coalesce_width`; per-connection in-flight depth in
//! `net_pipeline_depth`; frames in `frames_total{dir=…}`; per-shard
//! connection counts in `net_shard_connections{shard=…}`.
//!
//! ## Backpressure and lifecycle
//!
//! Responses drain greedily; leftovers queue per connection and drive
//! `WRITABLE` interest. A write queue above [`NetConfig::max_wbuf`] drops
//! read interest until the peer drains it, bounding memory per slow
//! reader. Frame-level damage answers a correlation-id-0 `ERR` frame and
//! closes with a typed `bad-frame` reason; idle connections (when
//! [`NetConfig::idle_timeout`] is set) close `idle-timeout`; every close
//! lands in the flight recorder. Blocking verbs (`WAIT`, `QUIESCE`) are
//! offloaded to short-lived helper threads so a barrier never stalls a
//! shard's other connections.

use crate::binproto::{
    self, encode_event, encode_reply, frame, BinRequest, FrameAssembler, Reply, RequestError,
    SNIFF_BYTE,
};
use crate::net::{handle_connection, ServerShared, TcpServer};
use crate::obs::{CloseReason, Event, Gauge, Obs};
use crate::service::{Client, Role, Service, ServiceError, SubmitTicket};
use crate::subs::{SubEvent, SubSink};
use connectit::Update;
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Front-end tuning for [`crate::net::serve_with`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Event-loop shards (threads). Each owns its connections end to end.
    pub shards: usize,
    /// Per-connection read/idle timeout, text and binary alike. `None`
    /// (the default) never times a connection out.
    pub idle_timeout: Option<Duration>,
    /// Write-queue cap per connection: above it, read interest is dropped
    /// until the peer drains, so one slow reader cannot balloon memory.
    pub max_wbuf: usize,
    /// Pending subscription events a **text** connection's push queue may
    /// hold before the server declares the consumer too slow and closes
    /// the connection with a typed `sub-overflow`. Binary connections are
    /// bounded by [`NetConfig::max_wbuf`] instead: an event append that
    /// pushes the write queue past it closes the connection the same way.
    pub sub_queue_cap: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(1, 8);
        NetConfig { shards, idle_timeout: None, max_wbuf: 1 << 20, sub_queue_cap: 4096 }
    }
}

/// The waker's token; connections get tokens from 1 up, never reused.
const WAKER: Token = Token(0);

/// How long a shard sleeps in poll with nothing ready: bounds shutdown
/// latency and idle-sweep granularity.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Binds `addr` and runs the sharded front end over `service`.
pub(crate) fn start(
    service: &Service,
    addr: impl ToSocketAddrs,
    cfg: NetConfig,
) -> io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(ServerShared::new(listener.local_addr()?));
    let client = service.client();
    let obs = client.observability();
    let nshards = cfg.shards.max(1);
    let gauges = obs.metrics.register_net_shards(nshards);

    let mut inboxes = Vec::with_capacity(nshards);
    let mut wakers = Vec::with_capacity(nshards);
    let mut handles = Vec::with_capacity(nshards);
    for (i, gauge) in gauges.into_iter().enumerate() {
        let mut shard = Shard::new(i, client.clone(), Arc::clone(&shared), &cfg, gauge)?;
        inboxes.push(Arc::clone(&shard.inbox));
        wakers.push(Arc::clone(&shard.waker));
        handles.push(
            std::thread::Builder::new().name(format!("cc-net-{i}")).spawn(move || shard.run())?,
        );
    }

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new().name("cc-accept".into()).spawn(move || {
        let mut next = 0usize;
        while !accept_shared.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // TCP_NODELAY on every accepted socket: pipelined
                    // frames and one-line replies must not eat Nagle
                    // delays (only the client side set it before).
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    inboxes[next].lock().push(stream);
                    let _ = wakers[next].wake();
                    next = (next + 1) % inboxes.len();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        // Wake every shard so they observe the shutdown flag promptly.
        for w in &wakers {
            let _ = w.wake();
        }
    })?;

    Ok(TcpServer { shared, accept: Some(accept), shards: handles })
}

/// One connection owned by a shard.
struct Conn {
    stream: TcpStream,
    asm: FrameAssembler,
    /// First byte examined: the connection is committed to binary.
    sniffed: bool,
    /// Bytes read before the sniff decision (replayed on text handoff).
    prefix: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    interest: Interest,
    /// `connections_total`/`connections_live` counted (binary confirmed).
    counted: bool,
    /// Requests decoded but not yet answered on this connection.
    inflight: u64,
    last_activity: Instant,
    /// Set when the connection must close once its write queue drains.
    closing: Option<CloseReason>,
    /// Subscriptions registered on this connection, `(id, durable)`.
    /// Ephemeral ones die with the connection; durable ones detach and
    /// keep accumulating events server-side for a later `SUB ATTACH`.
    subs: Vec<(u64, bool)>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            asm: FrameAssembler::new(),
            sniffed: false,
            prefix: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            interest: Interest::READABLE,
            counted: false,
            inflight: 0,
            last_activity: Instant::now(),
            closing: None,
            subs: Vec::new(),
        }
    }
}

/// A shard's subscription push queue: `(token, encoded event frame)`
/// pairs parked by delivering threads, drained each poll round.
type PushQueue = Arc<Mutex<Vec<(usize, Vec<u8>)>>>;

/// Event sink for a binary-door subscription: encodes the event frame on
/// the delivering thread (usually the batcher) and parks it on the shard's
/// push queue; the woken shard appends it to the connection's write queue.
struct BinSink {
    events: PushQueue,
    waker: Arc<Waker>,
    token: usize,
    /// Correlation id of the `SUB` registration; every event frame for
    /// this subscription carries it.
    corr: u64,
}

impl SubSink for BinSink {
    fn deliver(&self, ev: &SubEvent) -> bool {
        self.events.lock().push((self.token, frame(&encode_event(self.corr, ev))));
        let _ = self.waker.wake();
        true
    }
}

/// A read request collected into the round's single view acquire.
struct QueryReq {
    token: usize,
    corr: u64,
    tag: u8,
    start: usize,
    len: usize,
}

/// An update-bearing request's slot in the round's grouped submission.
struct Route {
    token: usize,
    corr: u64,
    /// The request's verb tag: `B` answers `Answers` (possibly empty),
    /// bare `I`/`D` answer `Ok`.
    tag: u8,
    q_start: usize,
    q_len: usize,
}

/// One grouped submission in flight at the batch former.
struct PendingGroup {
    ticket: SubmitTicket,
    routes: Vec<Route>,
}

/// Per-round accumulation across all ready connections.
#[derive(Default)]
struct Round {
    pairs: Vec<(u32, u32)>,
    queries: Vec<QueryReq>,
    group_ops: Vec<Update>,
    group_queries: usize,
    routes: Vec<Route>,
}

struct Shard {
    id: usize,
    client: Client,
    obs: Arc<Obs>,
    shared: Arc<ServerShared>,
    poll: Poll,
    waker: Arc<Waker>,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    /// Results of offloaded blocking verbs (`WAIT`/`QUIESCE`).
    done: Arc<Mutex<Vec<(usize, u64, Reply)>>>,
    /// Subscription event frames pushed by [`BinSink`]s from delivering
    /// threads; drained each poll round.
    events: PushQueue,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    groups: Vec<PendingGroup>,
    gauge: Arc<Gauge>,
    idle_timeout: Option<Duration>,
    max_wbuf: usize,
    sub_queue_cap: usize,
    num_vertices: usize,
    is_follower: bool,
}

impl Shard {
    fn new(
        id: usize,
        client: Client,
        shared: Arc<ServerShared>,
        cfg: &NetConfig,
        gauge: Arc<Gauge>,
    ) -> io::Result<Shard> {
        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(poll.registry(), WAKER)?);
        let obs = client.observability();
        let num_vertices = client.num_vertices();
        let is_follower = client.role() == Role::Follower;
        Ok(Shard {
            id,
            client,
            obs,
            shared,
            poll,
            waker,
            inbox: Arc::new(Mutex::new(Vec::new())),
            done: Arc::new(Mutex::new(Vec::new())),
            events: Arc::new(Mutex::new(Vec::new())),
            conns: HashMap::new(),
            next_token: 1,
            groups: Vec::new(),
            gauge,
            idle_timeout: cfg.idle_timeout,
            max_wbuf: cfg.max_wbuf,
            sub_queue_cap: cfg.sub_queue_cap,
            num_vertices,
            is_follower,
        })
    }

    fn run(&mut self) {
        let mut events = Events::with_capacity(256);
        while !self.shared.shutdown.load(Ordering::Acquire) {
            if self.poll.poll(&mut events, Some(POLL_TICK)).is_err() {
                break;
            }
            self.adopt_new();
            let ready: Vec<(usize, bool, bool)> = events
                .iter()
                .filter(|e| e.token() != WAKER)
                .map(|e| (e.token().0, e.is_readable(), e.is_writable()))
                .collect();
            let mut round = Round::default();
            for &(token, readable, writable) in &ready {
                if readable {
                    self.handle_readable(token, &mut round);
                }
                if writable {
                    self.flush_conn(token);
                }
            }
            self.execute_round(round);
            self.drain_offloads();
            self.drain_groups();
            self.drain_events();
            self.sweep_idle();
        }
        // Orderly teardown: every surviving connection closes `shutdown`.
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for t in tokens {
            self.close(t, CloseReason::Shutdown);
        }
        let _ = self.id;
    }

    fn adopt_new(&mut self) {
        let fresh: Vec<TcpStream> = std::mem::take(&mut *self.inbox.lock());
        for stream in fresh {
            let token = self.next_token;
            self.next_token += 1;
            if self.poll.registry().register(&stream, Token(token), Interest::READABLE).is_err() {
                continue;
            }
            self.conns.insert(token, Conn::new(stream));
            self.gauge.inc();
        }
    }

    /// Drains readable bytes, sniffs the protocol on first contact, and
    /// collects complete frames into the round.
    fn handle_readable(&mut self, token: usize, round: &mut Round) {
        enum After {
            Keep,
            HandoffText,
            Close(CloseReason),
            /// Best-effort `ERR` then typed close (frame damage).
            Poison(String),
        }
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut after = After::Keep;
        {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let mut tmp = [0u8; 1 << 16];
            'read: loop {
                match conn.stream.read(&mut tmp) {
                    Ok(0) => {
                        after = After::Close(CloseReason::Eof);
                        break 'read;
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        if !conn.sniffed {
                            conn.prefix.extend_from_slice(&tmp[..n]);
                            if conn.prefix[0] != SNIFF_BYTE {
                                after = After::HandoffText;
                                break 'read;
                            }
                            // Binary confirmed: this is the moment the
                            // connection enters the global counters (text
                            // connections count via ConnGuard instead).
                            conn.sniffed = true;
                            conn.counted = true;
                            self.obs.metrics.connections_total.inc();
                            self.obs.metrics.connections_live.inc();
                            let prefix = std::mem::take(&mut conn.prefix);
                            conn.asm.push(&prefix);
                        } else {
                            conn.asm.push(&tmp[..n]);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'read,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue 'read,
                    Err(_) => {
                        after = After::Close(CloseReason::IoError);
                        break 'read;
                    }
                }
            }
            if conn.sniffed && conn.closing.is_none() {
                loop {
                    match conn.asm.next_frame() {
                        Ok(Some(payload)) => frames.push(payload),
                        Ok(None) => break,
                        Err(fe) => {
                            after = After::Poison(fe.to_string());
                            break;
                        }
                    }
                }
            }
        }
        for payload in frames {
            self.obs.metrics.frames_in_total.inc();
            self.on_frame(token, &payload, round);
        }
        match after {
            After::Keep => {}
            After::HandoffText => self.handoff_text(token),
            After::Close(reason) => self.close(token, reason),
            After::Poison(msg) => {
                self.queue_reply(token, 0, Reply::Err(msg), false);
                self.close_after_flush(token, CloseReason::BadFrame);
            }
        }
    }

    /// Decodes one request frame and routes it into the round (reads and
    /// updates), answers it inline (`EPOCH`/`GEN`/`PING`), or offloads it
    /// (`WAIT`/`QUIESCE`).
    fn on_frame(&mut self, token: usize, payload: &[u8], round: &mut Round) {
        let (corr, req) = match binproto::decode_request(payload) {
            Ok(ok) => ok,
            Err(e @ RequestError::ShortHeader(_)) => {
                self.queue_reply(token, 0, Reply::Err(e.to_string()), false);
                self.close_after_flush(token, CloseReason::BadFrame);
                return;
            }
            Err(e) => {
                let corr = e.corr().unwrap_or(0);
                self.queue_reply(token, corr, Reply::Err(e.to_string()), false);
                return;
            }
        };
        let verb_name = match req {
            BinRequest::Insert(..) => "I",
            BinRequest::Delete(..) => "D",
            BinRequest::Query(..) => "Q",
            BinRequest::QueryGen(..) => "QG",
            BinRequest::Batch(_) => "B",
            BinRequest::Epoch => "EPOCH",
            BinRequest::Wait { .. } => "WAIT",
            BinRequest::Ping => "PING",
            BinRequest::Quiesce { .. } => "QUIESCE",
            BinRequest::Gen => "GEN",
            BinRequest::Topk { .. } => "TOPK",
            BinRequest::Hist => "HIST",
            BinRequest::Size(_) => "SIZE",
            BinRequest::Subscribe { .. } => "SUB",
            BinRequest::Unsubscribe { .. } => "UNSUB",
        };
        self.obs.metrics.record_request(verb_name);
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.inflight += 1;
            self.obs.metrics.net_pipeline_depth.record(conn.inflight);
        }
        // Per-request validation up front, so one bad request gets its
        // own ERR instead of poisoning the whole grouped submission.
        if let Some(bad) = self.out_of_range(&req) {
            let n = self.num_vertices;
            let msg = ServiceError::VertexOutOfRange { v: bad, n }.to_string();
            self.queue_reply(token, corr, Reply::Err(msg), true);
            return;
        }
        if self.is_follower && carries_updates(&req) {
            self.queue_reply(
                token,
                corr,
                Reply::Err(ServiceError::ReadOnlyFollower.to_string()),
                true,
            );
            return;
        }
        match req {
            BinRequest::Query(u, v) | BinRequest::QueryGen(u, v) => {
                let tag = if matches!(req, BinRequest::Query(..)) {
                    binproto::verb::QUERY
                } else {
                    binproto::verb::QUERY_GEN
                };
                round.queries.push(QueryReq { token, corr, tag, start: round.pairs.len(), len: 1 });
                round.pairs.push((u, v));
            }
            BinRequest::Batch(ops) if self.is_follower => {
                // Query-only (updates were rejected above): answer the
                // whole body from the round's shared view acquire.
                let start = round.pairs.len();
                let len = ops.len();
                for op in &ops {
                    let (Update::Insert(u, v) | Update::Delete(u, v) | Update::Query(u, v)) = *op;
                    round.pairs.push((u, v));
                }
                round.queries.push(QueryReq {
                    token,
                    corr,
                    tag: binproto::verb::BATCH,
                    start,
                    len,
                });
            }
            BinRequest::Insert(u, v) => {
                round.routes.push(Route {
                    token,
                    corr,
                    tag: binproto::verb::INSERT,
                    q_start: round.group_queries,
                    q_len: 0,
                });
                round.group_ops.push(Update::Insert(u, v));
            }
            BinRequest::Delete(u, v) => {
                round.routes.push(Route {
                    token,
                    corr,
                    tag: binproto::verb::DELETE,
                    q_start: round.group_queries,
                    q_len: 0,
                });
                round.group_ops.push(Update::Delete(u, v));
            }
            BinRequest::Batch(ops) => {
                let q_len = ops.iter().filter(|op| matches!(op, Update::Query(..))).count();
                round.routes.push(Route {
                    token,
                    corr,
                    tag: binproto::verb::BATCH,
                    q_start: round.group_queries,
                    q_len,
                });
                round.group_queries += q_len;
                round.group_ops.extend(ops);
            }
            BinRequest::Epoch => {
                let e = self.client.epoch();
                self.queue_reply(token, corr, Reply::Value(e), true);
            }
            BinRequest::Gen => {
                let info = self.client.generation_info();
                self.queue_reply(
                    token,
                    corr,
                    Reply::Gen {
                        generation: info.generation,
                        dirty: info.dirty,
                        rebuilds: info.counters.rebuilds,
                        forest: info.counters.deletes_forest,
                        nonforest: info.counters.deletes_nonforest,
                        absent: info.counters.deletes_absent,
                    },
                    true,
                );
            }
            BinRequest::Ping => self.queue_reply(token, corr, Reply::Ok, true),
            BinRequest::Topk { k } => {
                let (entries, epoch, generation, sealed) = self.client.topk(k as usize);
                self.queue_reply(
                    token,
                    corr,
                    Reply::Topk { epoch, generation, sealed, entries },
                    true,
                );
            }
            BinRequest::Hist => {
                let view = self.client.analytics();
                self.queue_reply(
                    token,
                    corr,
                    Reply::Hist {
                        epoch: view.epoch,
                        generation: view.generation,
                        sealed: view.sealed,
                        components: view.components,
                        buckets: view.hist.to_vec(),
                    },
                    true,
                );
            }
            BinRequest::Size(v) => {
                let reply = match self.client.component_size(v) {
                    Ok((root, size)) => Reply::Size { size, root },
                    Err(e) => Reply::Err(e.to_string()),
                };
                self.queue_reply(token, corr, reply, true);
            }
            BinRequest::Wait { epoch, timeout_ms } => {
                self.offload(token, corr, move |client| {
                    match client.wait_for_epoch(epoch, Duration::from_millis(timeout_ms)) {
                        Ok(at) => Reply::Value(at),
                        Err(e) => Reply::Err(e.to_string()),
                    }
                });
            }
            BinRequest::Quiesce { timeout_ms } => {
                self.offload(token, corr, move |client| {
                    match client.quiesce(Duration::from_millis(timeout_ms)) {
                        Ok(generation) => Reply::Value(generation),
                        Err(e) => Reply::Err(e.to_string()),
                    }
                });
            }
            BinRequest::Subscribe { kind, u, v, durable } => {
                let sink: Arc<dyn SubSink> = Arc::new(BinSink {
                    events: Arc::clone(&self.events),
                    waker: Arc::clone(&self.waker),
                    token,
                    corr,
                });
                // The reply is queued before drain_events runs this round,
                // so the `Subscribed` frame always precedes the first
                // event frame even when the registration fires instantly.
                let reply = match self.client.subscribe(kind, u, v, durable, Some(sink)) {
                    Ok((id, epoch)) => {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.subs.push((id, durable));
                        }
                        Reply::Subscribed { id, epoch }
                    }
                    Err(e) => Reply::Err(e.to_string()),
                };
                self.queue_reply(token, corr, reply, true);
            }
            BinRequest::Unsubscribe { id } => {
                let reply = match self.client.unsubscribe(id) {
                    Ok(()) => {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.subs.retain(|&(sid, _)| sid != id);
                        }
                        Reply::Ok
                    }
                    Err(e) => Reply::Err(e.to_string()),
                };
                self.queue_reply(token, corr, reply, true);
            }
        }
    }

    /// First out-of-range vertex in the request, if any.
    fn out_of_range(&self, req: &BinRequest) -> Option<u32> {
        let n = self.num_vertices;
        let check = |u: u32, v: u32| [u, v].into_iter().find(|&x| x as usize >= n);
        match req {
            BinRequest::Insert(u, v)
            | BinRequest::Delete(u, v)
            | BinRequest::Query(u, v)
            | BinRequest::QueryGen(u, v) => check(*u, *v),
            BinRequest::Batch(ops) => ops.iter().find_map(|op| {
                let (Update::Insert(u, v) | Update::Delete(u, v) | Update::Query(u, v)) = *op;
                check(u, v)
            }),
            BinRequest::Size(v) => check(*v, *v),
            _ => None,
        }
    }

    /// Runs a blocking verb on a helper thread; the result lands in the
    /// shard's done-queue and wakes the poll.
    fn offload(
        &self,
        token: usize,
        corr: u64,
        work: impl FnOnce(&Client) -> Reply + Send + 'static,
    ) {
        let client = self.client.clone();
        let done = Arc::clone(&self.done);
        let waker = Arc::clone(&self.waker);
        let spawned = std::thread::Builder::new().name("cc-net-wait".into()).spawn(move || {
            let reply = work(&client);
            done.lock().push((token, corr, reply));
            let _ = waker.wake();
        });
        if spawned.is_err() {
            self.done.lock().push((
                token,
                corr,
                Reply::Err("server out of threads for blocking verb".to_string()),
            ));
        }
    }

    /// Executes the round's two grouped strokes: one view acquire for all
    /// collected reads, one batch-former submission for all updates.
    fn execute_round(&mut self, round: Round) {
        let Round { pairs, queries, group_ops, routes, .. } = round;
        if !queries.is_empty() {
            self.obs.metrics.net_coalesce_width.record(queries.len() as u64);
            match self.client.query_many_tagged(&pairs) {
                Ok(answers) => {
                    for q in queries {
                        let slice = &answers[q.start..q.start + q.len];
                        let reply = match q.tag {
                            binproto::verb::QUERY => Reply::Bit(slice[0].0),
                            binproto::verb::QUERY_GEN => Reply::BitGen(slice[0].0, slice[0].1),
                            _ => Reply::Answers(slice.to_vec()),
                        };
                        self.queue_reply(q.token, q.corr, reply, true);
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    for q in queries {
                        self.queue_reply(q.token, q.corr, Reply::Err(msg.clone()), true);
                    }
                }
            }
        }
        if !routes.is_empty() {
            self.obs.metrics.net_coalesce_width.record(routes.len() as u64);
            let waker = Arc::clone(&self.waker);
            let notify: Box<dyn Fn() + Send + Sync> = Box::new(move || {
                let _ = waker.wake();
            });
            match self.client.submit_tagged_async(group_ops, Some(notify)) {
                Ok(ticket) => self.groups.push(PendingGroup { ticket, routes }),
                Err(e) => {
                    let msg = e.to_string();
                    for r in routes {
                        self.queue_reply(r.token, r.corr, Reply::Err(msg.clone()), true);
                    }
                }
            }
        }
    }

    fn drain_offloads(&mut self) {
        let finished: Vec<(usize, u64, Reply)> = std::mem::take(&mut *self.done.lock());
        for (token, corr, reply) in finished {
            self.queue_reply(token, corr, reply, true);
        }
    }

    /// Appends pushed subscription event frames to their connections'
    /// write queues. Unlike replies, events arrive regardless of whether
    /// the peer is reading, so a write queue blown past `max_wbuf` here is
    /// a slow consumer — the connection closes with a typed
    /// `sub-overflow`, never a silent drop.
    fn drain_events(&mut self) {
        let pushed: Vec<(usize, Vec<u8>)> = std::mem::take(&mut *self.events.lock());
        for (token, bytes) in pushed {
            let overflow = {
                let Some(conn) = self.conns.get_mut(&token) else { continue };
                if conn.closing.is_some() {
                    continue;
                }
                conn.wbuf.extend_from_slice(&bytes);
                conn.wbuf.len() - conn.wpos > self.max_wbuf
            };
            self.obs.metrics.frames_out_total.inc();
            if overflow {
                self.close(token, CloseReason::SubOverflow);
            } else {
                self.flush_conn(token);
            }
        }
    }

    /// Routes completed grouped submissions back per correlation id.
    fn drain_groups(&mut self) {
        let mut i = 0;
        while i < self.groups.len() {
            let Some(result) = self.groups[i].ticket.try_take() else {
                i += 1;
                continue;
            };
            let group = self.groups.swap_remove(i);
            match result {
                Ok(answers) => {
                    for r in group.routes {
                        let reply = if r.tag == binproto::verb::BATCH {
                            Reply::Answers(answers[r.q_start..r.q_start + r.q_len].to_vec())
                        } else {
                            Reply::Ok
                        };
                        self.queue_reply(r.token, r.corr, reply, true);
                    }
                }
                Err(e) => {
                    // The whole group shared one batch; a rejected batch
                    // (WAL failure, shutdown) is everyone's error — the
                    // same contract text submissions co-batched by the
                    // former already have.
                    let msg = e.to_string();
                    for r in group.routes {
                        self.queue_reply(r.token, r.corr, Reply::Err(msg.clone()), true);
                    }
                }
            }
        }
    }

    /// Encodes a response frame onto the connection's write queue and
    /// drains it as far as the socket allows.
    fn queue_reply(&mut self, token: usize, corr: u64, reply: Reply, dec_inflight: bool) {
        if matches!(reply, Reply::Err(_)) {
            self.obs.metrics.request_errors_total.inc();
        }
        {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            conn.wbuf.extend_from_slice(&frame(&encode_reply(corr, &reply)));
            if dec_inflight {
                conn.inflight = conn.inflight.saturating_sub(1);
            }
        }
        self.obs.metrics.frames_out_total.inc();
        self.flush_conn(token);
    }

    /// Drains the write queue; manages `WRITABLE` interest, backpressure,
    /// and deferred closes.
    fn flush_conn(&mut self, token: usize) {
        let mut close_now = None;
        let mut reregister = None;
        {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            loop {
                if conn.wpos >= conn.wbuf.len() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    break;
                }
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        close_now = Some(CloseReason::IoError);
                        break;
                    }
                    Ok(n) => conn.wpos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close_now = Some(CloseReason::IoError);
                        break;
                    }
                }
            }
            if close_now.is_none() {
                let backlog = conn.wbuf.len() - conn.wpos;
                if backlog == 0 {
                    if let Some(reason) = conn.closing {
                        close_now = Some(reason);
                    }
                }
                let want = if backlog == 0 {
                    if conn.closing.is_some() {
                        conn.interest // about to close; interest moot
                    } else {
                        Interest::READABLE
                    }
                } else if backlog > self.max_wbuf || conn.closing.is_some() {
                    // Backpressure: stop reading until the peer drains.
                    Interest::WRITABLE
                } else {
                    Interest::READABLE | Interest::WRITABLE
                };
                if want != conn.interest {
                    conn.interest = want;
                    reregister = Some(want);
                }
            }
        }
        if let Some(reason) = close_now {
            self.close(token, reason);
        } else if let Some(want) = reregister {
            let conn = &self.conns[&token];
            let _ = self.poll.registry().reregister(&conn.stream, Token(token), want);
        }
    }

    fn close_after_flush(&mut self, token: usize, reason: CloseReason) {
        let pending = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            conn.closing = Some(reason);
            conn.wbuf.len() - conn.wpos
        };
        if pending == 0 {
            self.close(token, reason);
        } else {
            self.flush_conn(token);
        }
    }

    fn close(&mut self, token: usize, reason: CloseReason) {
        let Some(conn) = self.conns.remove(&token) else { return };
        let _ = self.poll.registry().deregister(&conn.stream);
        // Ephemeral subscriptions die with the connection; durable ones
        // only lose their sink and keep accumulating for `SUB ATTACH`.
        for &(id, durable) in &conn.subs {
            if durable {
                self.client.detach_sub(id);
            } else {
                let _ = self.client.unsubscribe(id);
            }
        }
        self.gauge.dec();
        if conn.counted {
            self.obs.metrics.connections_live.dec();
        } else {
            // Closed before the sniff decided a protocol: count the
            // connection's whole life here so `connections_total` and the
            // flight record match the thread-per-connection behavior.
            self.obs.metrics.connections_total.inc();
        }
        self.obs.recorder.record(Event::ConnClosed { reason });
    }

    /// Hands a text connection (first byte was not the binary sniff byte)
    /// to a dedicated blocking thread, replaying the sniffed bytes.
    fn handoff_text(&mut self, token: usize) {
        let Some(conn) = self.conns.remove(&token) else { return };
        let _ = self.poll.registry().deregister(&conn.stream);
        self.gauge.dec();
        let Conn { stream, prefix, .. } = conn;
        if stream.set_nonblocking(false).is_err() {
            self.obs.metrics.connections_total.inc();
            self.obs.recorder.record(Event::ConnClosed { reason: CloseReason::IoError });
            return;
        }
        if let Some(t) = self.idle_timeout {
            let _ = stream.set_read_timeout(Some(t));
        }
        let client = self.client.clone();
        let shared = Arc::clone(&self.shared);
        let sub_queue_cap = self.sub_queue_cap;
        let _ = std::thread::Builder::new().name("cc-conn".into()).spawn(move || {
            let _ = handle_connection(stream, prefix, &client, &shared, sub_queue_cap);
        });
    }

    /// Closes binary/unsniffed connections idle past the timeout.
    fn sweep_idle(&mut self) {
        let Some(limit) = self.idle_timeout else { return };
        let now = Instant::now();
        let idle: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| c.closing.is_none() && now.duration_since(c.last_activity) > limit)
            .map(|(&t, _)| t)
            .collect();
        for t in idle {
            self.close(t, CloseReason::IdleTimeout);
        }
    }
}

/// Whether a request carries inserts or deletes (rejected on followers).
fn carries_updates(req: &BinRequest) -> bool {
    match req {
        BinRequest::Insert(..) | BinRequest::Delete(..) => true,
        BinRequest::Batch(ops) => ops.iter().any(|op| !matches!(op, Update::Query(..))),
        _ => false,
    }
}
