//! The write-ahead log: segmented, checksummed, group-committed batch
//! durability for the connectivity service.
//!
//! ## Format
//!
//! A WAL directory holds numbered segments `wal-<seq>.log`. Each segment
//! starts with a version magic — `CCWALS02` for segments this release
//! writes — and is a sequence of [`cc_graph::io::binary`] records. In a
//! v2 segment a record payload's first byte is its **kind**:
//!
//! - [`REC_INSERTS`] (`'I'`) — an insert-only batch; the body is
//!   [`cc_graph::io::binary::encode_edge_batch`] `(epoch, inserts)`.
//! - [`REC_OPS`] (`'D'`) — a deletion-bearing batch; the body is
//!   [`encode_update_batch`] `(epoch, ops)`, preserving the in-batch
//!   order of inserts and deletes (queries are never durable).
//! - [`REC_SUB`] (`'S'`) — a durable subscription registration or
//!   cancellation ([`encode_sub_record`]): id, kind, pair, and the
//!   committed epoch at registration. Sub records are interleaved with
//!   batch records in append order but carry their *own* epoch stamp
//!   (a registration races batch appends in either direction), so they
//!   are exempt from the batch records' strict epoch monotonicity and
//!   are surfaced separately by recovery
//!   ([`RecoveryReport::sub_ops`]). The replication cursor skips them:
//!   followers learn subscriptions from their own clients, never from
//!   the primary's WAL.
//!
//! Segments written before the kind byte existed carry the magic
//! `CCWALS01` and hold raw edge-batch bodies (insert-only histories by
//! construction). Readers decode each segment by the magic it opens
//! with, so a directory mixing v1 segments and newly appended v2
//! segments recovers — and replicates — seamlessly; writers only ever
//! start v2 segments.
//!
//! An unknown kind byte on a CRC-valid v2 record is *corruption*, never
//! a skippable tail: silently dropping a record whose retractions we do
//! not understand would recover a wrong partition. Epochs are strictly
//! increasing across records; a batch with no durable ops still gets a
//! (13-byte) record so the recovered epoch matches the served epoch
//! exactly.
//!
//! ## Commit protocol
//!
//! The batch former appends one record per *formed* batch — the group
//! commit: every client submission coalesced into that batch shares the
//! one append (and at most one fsync). The append happens **before** the
//! batch is applied to the engine and long before any client reply, so an
//! acknowledged operation is always recoverable. How hard "recoverable"
//! is depends on [`FsyncPolicy`]:
//!
//! - [`FsyncPolicy::Always`] — `fdatasync` after every record: survives
//!   machine crashes.
//! - [`FsyncPolicy::Batch`] — flushed to the OS after every record,
//!   `fdatasync` at most every [`DurabilityConfig::group_sync_interval`]:
//!   survives process kills outright; a machine crash can lose at most
//!   the last interval of acknowledged batches.
//! - [`FsyncPolicy::Off`] — flushed to the OS only: survives process
//!   kills; machine-crash durability is whenever the kernel writes back.
//!
//! ## Recovery
//!
//! [`Wal::open`] scans existing segments in sequence order and returns
//! every decodable `(epoch, edges)` record. A decode failure in the
//! *final* segment is a torn tail — the crash interrupted an append — so
//! the tail is dropped (reported in [`RecoveryReport`]) **and physically
//! truncated away**, so the segment scans clean on every later restart
//! even once it is no longer final. A decode failure in any earlier
//! segment therefore cannot be explained by a crash mid-append and is
//! surfaced as a typed [`WalError`] with segment and offset context.
//! Appends always go to a fresh segment, never after a torn tail.

use crate::obs::{Event, Obs};
use crate::subs::{SubKind, SubWalOp};
use cc_graph::io::binary::{self, CodecError};
use connectit::Update;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Magic prefix of every WAL segment this release writes (v2: every
/// record payload leads with a kind byte).
pub const WAL_MAGIC: &[u8; 8] = b"CCWALS02";

/// Magic prefix of legacy v1 segments (raw insert-only edge-batch
/// records, no kind byte). Read-only: recognized by the recovery scan
/// and the tail cursor, never written.
pub const WAL_MAGIC_V1: &[u8; 8] = b"CCWALS01";

/// Record kind byte: insert-only batch (edge-batch body).
pub const REC_INSERTS: u8 = b'I';
/// Record kind byte: deletion-bearing batch (update-batch body).
pub const REC_OPS: u8 = b'D';
/// Record kind byte: durable subscription register/cancel
/// ([`encode_sub_record`] body).
pub const REC_SUB: u8 = b'S';

/// Sub-record op byte: register.
const SUB_OP_REGISTER: u8 = 0;
/// Sub-record op byte: cancel.
const SUB_OP_CANCEL: u8 = 1;

/// Op tag inside an [`encode_update_batch`] body: insert.
const OP_INSERT: u8 = b'I';
/// Op tag inside an [`encode_update_batch`] body: delete.
const OP_DELETE: u8 = b'D';

/// Encodes a mixed insert/delete batch body: `epoch (u64 LE)`,
/// `m (u32 LE)`, then `m` ops as `tag (u8: 'I'|'D'), u (u32 LE),
/// v (u32 LE)` in batch order. Queries are skipped — they are not
/// durable. This is the body of [`REC_OPS`] WAL records and of the
/// replication stream's delta records.
pub fn encode_update_batch(epoch: u64, ops: &[Update]) -> Vec<u8> {
    let m = ops.iter().filter(|op| !matches!(op, Update::Query(..))).count();
    let mut out = Vec::with_capacity(12 + 9 * m);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(m as u32).to_le_bytes());
    for op in ops {
        let (tag, u, v) = match *op {
            Update::Insert(u, v) => (OP_INSERT, u, v),
            Update::Delete(u, v) => (OP_DELETE, u, v),
            Update::Query(..) => continue,
        };
        out.push(tag);
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes an [`encode_update_batch`] body; `offset` is the enclosing
/// record's byte offset, used only for error context.
pub fn decode_update_batch(payload: &[u8], offset: u64) -> Result<(u64, Vec<Update>), CodecError> {
    let bad = |reason: String| CodecError::BadPayload { offset, reason };
    if payload.len() < 12 {
        return Err(bad(format!("update batch header needs 12 bytes, have {}", payload.len())));
    }
    let epoch = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let m = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
    if payload.len() != 12 + 9 * m {
        return Err(bad(format!(
            "update batch of {m} ops needs {} bytes, have {}",
            12 + 9 * m,
            payload.len()
        )));
    }
    let mut ops = Vec::with_capacity(m);
    for i in 0..m {
        let at = 12 + 9 * i;
        let u = u32::from_le_bytes(payload[at + 1..at + 5].try_into().expect("4 bytes"));
        let v = u32::from_le_bytes(payload[at + 5..at + 9].try_into().expect("4 bytes"));
        ops.push(match payload[at] {
            OP_INSERT => Update::Insert(u, v),
            OP_DELETE => Update::Delete(u, v),
            other => return Err(bad(format!("unknown op tag {other:?} at op {i}"))),
        });
    }
    Ok((epoch, ops))
}

/// Encodes a durable subscription operation as a full [`REC_SUB`] WAL
/// record payload (kind byte included): `'S', op (u8)`, `id (u64 LE)`,
/// and for a registration additionally `kind (u8: 0 pair, 1 component)`,
/// `u (u32 LE)`, `v (u32 LE)`, `epoch (u64 LE)` — the committed epoch at
/// registration time, which is where replay resumes the trigger from.
pub fn encode_sub_record(op: &SubWalOp) -> Vec<u8> {
    match *op {
        SubWalOp::Register { id, kind, u, v, epoch } => {
            let mut out = Vec::with_capacity(27);
            out.push(REC_SUB);
            out.push(SUB_OP_REGISTER);
            out.extend_from_slice(&id.to_le_bytes());
            out.push(kind.code());
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
            out
        }
        SubWalOp::Cancel { id } => {
            let mut out = Vec::with_capacity(10);
            out.push(REC_SUB);
            out.push(SUB_OP_CANCEL);
            out.extend_from_slice(&id.to_le_bytes());
            out
        }
    }
}

/// Decodes an [`encode_sub_record`] payload (kind byte included);
/// `offset` is the enclosing record's byte offset, for error context.
pub fn decode_sub_record(payload: &[u8], offset: u64) -> Result<SubWalOp, CodecError> {
    let bad = |reason: String| CodecError::BadPayload { offset, reason };
    if payload.first() != Some(&REC_SUB) || payload.len() < 10 {
        return Err(bad(format!(
            "sub record needs >= 10 bytes with kind 'S', have {}",
            payload.len()
        )));
    }
    let id = u64::from_le_bytes(payload[2..10].try_into().expect("8 bytes"));
    match payload[1] {
        SUB_OP_CANCEL if payload.len() == 10 => Ok(SubWalOp::Cancel { id }),
        SUB_OP_REGISTER if payload.len() == 27 => {
            let kind = SubKind::from_code(payload[10])
                .ok_or_else(|| bad(format!("unknown subscription kind {:?}", payload[10])))?;
            let u = u32::from_le_bytes(payload[11..15].try_into().expect("4 bytes"));
            let v = u32::from_le_bytes(payload[15..19].try_into().expect("4 bytes"));
            let epoch = u64::from_le_bytes(payload[19..27].try_into().expect("8 bytes"));
            Ok(SubWalOp::Register { id, kind, u, v, epoch })
        }
        op => Err(bad(format!("bad sub record: op {op:?} with {} bytes", payload.len()))),
    }
}

/// Builds one WAL record payload for a durable batch: compact
/// [`REC_INSERTS`] when no deletion is present, [`REC_OPS`] otherwise.
fn encode_wal_payload(epoch: u64, ops: &[Update]) -> Vec<u8> {
    if ops.iter().any(|op| matches!(op, Update::Delete(..))) {
        let mut out = Vec::with_capacity(1 + 12 + 9 * ops.len());
        out.push(REC_OPS);
        out.extend_from_slice(&encode_update_batch(epoch, ops));
        out
    } else {
        let edges: Vec<(u32, u32)> = ops
            .iter()
            .filter_map(|op| match *op {
                Update::Insert(u, v) => Some((u, v)),
                _ => None,
            })
            .collect();
        let mut out = Vec::with_capacity(1 + 12 + 8 * edges.len());
        out.push(REC_INSERTS);
        out.extend_from_slice(&binary::encode_edge_batch(epoch, &edges));
        out
    }
}

/// Decodes one WAL record payload (either kind) into `(epoch, ops)`.
pub fn decode_wal_payload(payload: &[u8], offset: u64) -> Result<(u64, Vec<Update>), CodecError> {
    match payload.first() {
        Some(&REC_INSERTS) => {
            let (epoch, edges) = binary::decode_edge_batch(&payload[1..], offset)?;
            Ok((epoch, edges.into_iter().map(|(u, v)| Update::Insert(u, v)).collect()))
        }
        Some(&REC_OPS) => decode_update_batch(&payload[1..], offset),
        other => Err(CodecError::BadPayload {
            offset,
            reason: format!("unknown wal record kind {other:?}"),
        }),
    }
}

/// Reads a segment's leading magic and returns its format version (1 for
/// legacy [`WAL_MAGIC_V1`], 2 for [`WAL_MAGIC`]). Any other complete
/// magic — and any truncation — surfaces as the underlying
/// [`CodecError`], so callers keep their torn-tail handling.
fn read_segment_version(r: &mut impl std::io::Read) -> Result<u8, CodecError> {
    match binary::read_magic(r, WAL_MAGIC) {
        Ok(()) => Ok(2),
        Err(CodecError::BadMagic { found, .. }) if found.as_slice() == WAL_MAGIC_V1 => Ok(1),
        Err(e) => Err(e),
    }
}

/// Decodes one record payload according to its segment's format version:
/// v1 payloads are raw insert-only edge-batch bodies, v2 payloads lead
/// with a kind byte ([`decode_wal_payload`]).
fn decode_segment_payload(
    version: u8,
    payload: &[u8],
    offset: u64,
) -> Result<(u64, Vec<Update>), CodecError> {
    if version == 1 {
        let (epoch, edges) = binary::decode_edge_batch(payload, offset)?;
        Ok((epoch, edges.into_iter().map(|(u, v)| Update::Insert(u, v)).collect()))
    } else {
        decode_wal_payload(payload, offset)
    }
}

/// When to `fdatasync` the log (see the module docs for the guarantees).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every appended record.
    Always,
    /// Sync on a bounded time cadence (group commit across batches).
    Batch,
    /// Never sync; only flush to the OS.
    Off,
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch => write!(f, "batch"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "batch" => Ok(FsyncPolicy::Batch),
            "off" => Ok(FsyncPolicy::Off),
            other => Err(format!("unknown fsync policy {other:?} (always|batch|off)")),
        }
    }
}

/// Configuration of the durability subsystem (WAL + durable snapshots).
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments and snapshots; created on start.
    pub dir: PathBuf,
    /// Fsync discipline for the log.
    pub fsync: FsyncPolicy,
    /// Write a durable label snapshot every this many epochs (0 = only on
    /// explicit `SNAPSHOT` requests). Snapshots bound recovery replay to
    /// the WAL suffix past the snapshot epoch and let older segments be
    /// pruned.
    pub snapshot_every: u64,
    /// Roll to a new segment once the active one exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Maximum time acknowledged batches ride the OS cache before a sync
    /// under [`FsyncPolicy::Batch`].
    pub group_sync_interval: Duration,
}

impl DurabilityConfig {
    /// A config with production-shaped defaults: `batch` fsync, 64 MiB
    /// segments, a 5 ms group-sync window, periodic snapshots off.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Batch,
            snapshot_every: 0,
            segment_max_bytes: 64 << 20,
            group_sync_interval: Duration::from_millis(5),
        }
    }
}

/// A durability failure, always carrying which file (and where in it)
/// went wrong.
#[derive(Debug)]
pub enum WalError {
    /// I/O failure against a specific path.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A codec failure inside a segment or snapshot, with byte offset
    /// context from [`CodecError`].
    Codec {
        /// The file that failed to decode.
        path: PathBuf,
        /// The typed decode failure (carries the offset).
        source: CodecError,
    },
    /// A structurally impossible WAL state (e.g. corruption in a sealed,
    /// non-final segment).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, source } => {
                write!(f, "wal i/o error on {}: {source}", path.display())
            }
            WalError::Codec { path, source } => {
                write!(f, "wal decode error in {}: {source}", path.display())
            }
            WalError::Corrupt { path, detail } => {
                write!(f, "wal corruption in {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, source: std::io::Error) -> WalError {
    WalError::Io { path: path.to_path_buf(), source }
}

/// A finished (no longer written) segment the log still tracks so a later
/// snapshot can prune it.
#[derive(Clone, Debug)]
pub struct SealedSegment {
    /// Segment sequence number.
    pub seq: u64,
    /// Segment file path.
    pub path: PathBuf,
    /// The highest record epoch in the segment (0 if it has no records).
    pub last_epoch: u64,
}

/// What a [`Wal::open`] recovery scan found.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Decoded `(epoch, ops)` records across all segments, in order
    /// (inserts and deletes; queries are never durable).
    pub batches: Vec<(u64, Vec<Update>)>,
    /// Durable subscription register/cancel records, in log order
    /// (replayed wholesale after the batches — each registration carries
    /// its own epoch, and the engine re-evaluates recovered triggers
    /// against the final recovered labeling, so interleaving with
    /// `batches` cannot matter).
    pub sub_ops: Vec<SubWalOp>,
    /// Segments scanned.
    pub segments_scanned: usize,
    /// Bytes dropped from a torn final-segment tail (0 for a clean log).
    pub torn_bytes: u64,
    /// Human description of the torn tail, when one was dropped.
    pub torn_detail: Option<String>,
    /// Where the torn tail started (segment path, byte offset); the
    /// opener physically truncates it away so the segment, once no
    /// longer final, scans clean on every later restart.
    torn_at: Option<(PathBuf, u64)>,
}

/// Statistics of a live [`Wal`], one-line formatted for the `WALSTATS`
/// protocol verb.
#[derive(Clone, Debug)]
pub struct WalStats {
    /// Fsync policy in force.
    pub policy: FsyncPolicy,
    /// Segment files the log currently tracks (sealed + active).
    pub segments: u64,
    /// Records appended since open.
    pub records: u64,
    /// Bytes appended since open.
    pub appended_bytes: u64,
    /// `fdatasync` calls since open.
    pub syncs: u64,
    /// Highest epoch ever logged (including recovered history).
    pub last_epoch: u64,
    /// Bytes dropped as a torn tail by the opening recovery scan.
    pub torn_bytes: u64,
}

impl std::fmt::Display for WalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "policy={} segments={} records={} bytes={} syncs={} last_epoch={} torn_bytes={}",
            self.policy,
            self.segments,
            self.records,
            self.appended_bytes,
            self.syncs,
            self.last_epoch,
            self.torn_bytes,
        )
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

fn parse_segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

/// Scans one segment file, appending decoded records to `out` and
/// returning the segment's last epoch. `is_last` selects torn-tail
/// tolerance: errors in the final segment truncate (and describe) the
/// tail; anywhere else they are fatal.
fn scan_segment(path: &Path, is_last: bool, report: &mut RecoveryReport) -> Result<u64, WalError> {
    let file = File::open(path).map_err(|e| io_err(path, e))?;
    let file_len = file.metadata().map_err(|e| io_err(path, e))?.len();
    let mut reader = BufReader::new(file);
    let mut last_epoch = 0u64;
    let torn = |report: &mut RecoveryReport, at: u64, e: &CodecError| {
        report.torn_bytes += file_len.saturating_sub(at);
        report.torn_detail =
            Some(format!("{}: dropped torn tail at offset {at}: {e}", path.display()));
        report.torn_at = Some((path.to_path_buf(), at));
    };
    let version = match read_segment_version(&mut reader) {
        Ok(v) => v,
        Err(e) => {
            // A file torn inside (or before) its magic is an interrupted
            // segment creation; a complete-but-wrong magic is corruption.
            if is_last && e.is_truncation() {
                torn(report, 0, &e);
                return Ok(0);
            }
            return Err(WalError::Codec { path: path.to_path_buf(), source: e });
        }
    };
    let mut records = binary::RecordReader::new(reader, binary::MAGIC_LEN as u64);
    loop {
        let at = records.offset();
        match records.next() {
            Ok(None) => break,
            Ok(Some(payload)) => {
                // A CRC-valid record that fails here (unknown kind or op
                // tag, bad body) is corruption even in the final segment:
                // only `records.next()` failures can be a torn tail.
                if version >= 2 && payload.first() == Some(&REC_SUB) {
                    // Sub records carry their own epoch stamp and are
                    // exempt from the batch epoch monotonicity check.
                    let op = decode_sub_record(&payload, at)
                        .map_err(|e| WalError::Codec { path: path.to_path_buf(), source: e })?;
                    report.sub_ops.push(op);
                    continue;
                }
                let (epoch, ops) = decode_segment_payload(version, &payload, at)
                    .map_err(|e| WalError::Codec { path: path.to_path_buf(), source: e })?;
                if epoch <= last_epoch {
                    return Err(WalError::Corrupt {
                        path: path.to_path_buf(),
                        detail: format!(
                            "record epoch {epoch} at offset {at} does not increase past \
                             {last_epoch}"
                        ),
                    });
                }
                last_epoch = epoch;
                report.batches.push((epoch, ops));
            }
            Err(e) => {
                // Any malformed record ends the scan: a torn tail in the
                // final segment is the crash we exist to absorb; the same
                // bytes in a sealed segment mean the disk lied.
                if is_last {
                    torn(report, at, &e);
                    return Ok(last_epoch);
                }
                return Err(WalError::Codec { path: path.to_path_buf(), source: e });
            }
        }
    }
    Ok(last_epoch)
}

/// A live, appendable write-ahead log.
pub struct Wal {
    cfg: DurabilityConfig,
    file: BufWriter<File>,
    seg_path: PathBuf,
    seg_seq: u64,
    seg_bytes: u64,
    sealed: Vec<SealedSegment>,
    last_epoch: u64,
    records: u64,
    appended_bytes: u64,
    syncs: u64,
    torn_bytes: u64,
    last_sync: Instant,
    /// Records flushed to the OS but not yet fsynced (Batch policy).
    dirty: bool,
    /// Set when a failed append could not be rolled back: the active
    /// segment's contents are undefined past `seg_bytes`, so further
    /// appends would be written after garbage and lost at recovery.
    poisoned: bool,
    /// Metrics/trace sink ([`Wal::attach_obs`]); counters and gauges are
    /// mirrored at each mutation so `WALSTATS`/`METRICS` never need this
    /// log's lock to report on it.
    obs: Option<Arc<Obs>>,
}

impl Wal {
    /// Opens (creating the directory if needed) the log at `cfg.dir`:
    /// scans every existing segment for recovery, then starts a fresh
    /// active segment after the highest existing sequence number.
    pub fn open(cfg: &DurabilityConfig) -> Result<(Wal, RecoveryReport), WalError> {
        std::fs::create_dir_all(&cfg.dir).map_err(|e| io_err(&cfg.dir, e))?;
        let mut seqs: Vec<u64> = std::fs::read_dir(&cfg.dir)
            .map_err(|e| io_err(&cfg.dir, e))?
            .filter_map(|entry| {
                let entry = entry.ok()?;
                parse_segment_seq(entry.file_name().to_str()?)
            })
            .collect();
        seqs.sort_unstable();

        let mut report = RecoveryReport::default();
        let mut sealed = Vec::with_capacity(seqs.len());
        let mut last_epoch = 0u64;
        for (i, &seq) in seqs.iter().enumerate() {
            let path = segment_path(&cfg.dir, seq);
            let is_last = i + 1 == seqs.len();
            let seg_last = scan_segment(&path, is_last, &mut report)?;
            last_epoch = last_epoch.max(seg_last);
            report.segments_scanned += 1;
            sealed.push(SealedSegment { seq, path, last_epoch: seg_last });
        }

        // A torn tail was only *skipped* above; make the drop physical.
        // The segment stops being the final one as soon as the fresh
        // active segment below exists, and a sealed segment must scan
        // clean on every later restart.
        if let Some((torn_path, at)) = &report.torn_at {
            if *at == 0 {
                std::fs::remove_file(torn_path).map_err(|e| io_err(torn_path, e))?;
                sealed.retain(|s| &s.path != torn_path);
            } else {
                let f = OpenOptions::new()
                    .write(true)
                    .open(torn_path)
                    .map_err(|e| io_err(torn_path, e))?;
                f.set_len(*at).map_err(|e| io_err(torn_path, e))?;
                f.sync_data().map_err(|e| io_err(torn_path, e))?;
            }
        }

        let seg_seq = seqs.last().map_or(0, |s| s + 1);
        let seg_path = segment_path(&cfg.dir, seg_seq);
        let mut file = BufWriter::new(
            OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(&seg_path)
                .map_err(|e| io_err(&seg_path, e))?,
        );
        binary::write_magic(&mut file, WAL_MAGIC).map_err(|e| io_err(&seg_path, e))?;
        file.flush().map_err(|e| io_err(&seg_path, e))?;

        let wal = Wal {
            cfg: cfg.clone(),
            file,
            seg_path,
            seg_seq,
            seg_bytes: binary::MAGIC_LEN as u64,
            sealed,
            last_epoch,
            records: 0,
            appended_bytes: 0,
            syncs: 0,
            torn_bytes: report.torn_bytes,
            last_sync: Instant::now(),
            dirty: false,
            poisoned: false,
            obs: None,
        };
        Ok((wal, report))
    }

    /// Attaches the observability plane and immediately mirrors this
    /// log's current state (segments, recovered last epoch, torn bytes)
    /// into the registry, so a scrape right after recovery is already
    /// truthful.
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        let stats = self.stats();
        obs.metrics.wal_segments.set(stats.segments);
        obs.metrics.wal_last_epoch.set(stats.last_epoch);
        obs.metrics.wal_torn_bytes.set(stats.torn_bytes);
        self.obs = Some(obs);
    }

    fn sync(&mut self) -> std::io::Result<()> {
        let t0 = Instant::now();
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.syncs += 1;
        self.last_sync = Instant::now();
        self.dirty = false;
        if let Some(o) = &self.obs {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            o.metrics.wal_fsyncs_total.inc();
            o.metrics.fsync_ns.record(nanos);
            o.recorder.record(Event::FsyncDone { nanos });
        }
        Ok(())
    }

    /// Restores the active segment to its last known-good length after a
    /// failed append: the partial (or durably-indeterminate) record is
    /// physically truncated away, so the next append — which reuses the
    /// rejected batch's epoch — never lands after garbage or a duplicate.
    /// If the restore itself fails, the log is poisoned: every later
    /// append errors out instead of silently writing records recovery
    /// would drop.
    fn restore_active_segment(&mut self) {
        let res = (|| -> std::io::Result<()> {
            let file = OpenOptions::new().write(true).open(&self.seg_path)?;
            // Swap the failed writer out and dismantle it WITHOUT
            // flushing: its buffer may still hold the rejected record's
            // bytes, and a Drop-time re-flush after the truncate below
            // would resurrect a batch whose clients were told Err.
            let failed = std::mem::replace(&mut self.file, BufWriter::new(file));
            let _ = failed.into_parts();
            self.file.get_ref().set_len(self.seg_bytes)?;
            std::io::Seek::seek(self.file.get_mut(), std::io::SeekFrom::End(0))?;
            Ok(())
        })();
        if res.is_err() {
            self.poisoned = true;
        }
    }

    /// Appends one batch record (the group commit for every submission in
    /// the batch) and makes it as durable as the policy promises. The
    /// bytes always reach the OS before this returns, so acknowledged
    /// batches survive a process kill under every policy. On failure the
    /// caller's batch is rejected and the segment is physically rolled
    /// back to its pre-append length, so the retried epoch never lands
    /// after garbage or a duplicate; an unrecoverable rollback poisons
    /// the log (all later appends fail fast).
    pub fn append(&mut self, epoch: u64, edges: &[(u32, u32)]) -> Result<(), WalError> {
        let ops: Vec<Update> = edges.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
        self.append_ops(epoch, &ops)
    }

    /// [`Self::append`] for mixed insert/delete batches: the record kind
    /// is chosen per batch (compact [`REC_INSERTS`] when monotone,
    /// [`REC_OPS`] when a deletion must replay in order). Queries in
    /// `ops` are skipped — they are not durable.
    pub fn append_ops(&mut self, epoch: u64, ops: &[Update]) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Corrupt {
                path: self.seg_path.clone(),
                detail: "log is poisoned after an unrecoverable append failure; \
                         restart the service to recover from disk"
                    .into(),
            });
        }
        let payload = encode_wal_payload(epoch, ops);
        let res = (|| -> std::io::Result<u64> {
            let written = binary::append_record(&mut self.file, &payload)?;
            self.file.flush()?;
            match self.cfg.fsync {
                FsyncPolicy::Always => self.sync()?,
                FsyncPolicy::Batch => {
                    self.dirty = true;
                    if self.last_sync.elapsed() >= self.cfg.group_sync_interval {
                        self.sync()?;
                    }
                }
                FsyncPolicy::Off => {}
            }
            Ok(written)
        })();
        let written = match res {
            Ok(w) => w,
            Err(e) => {
                self.restore_active_segment();
                return Err(io_err(&self.seg_path.clone(), e));
            }
        };
        self.seg_bytes += written;
        self.appended_bytes += written;
        self.records += 1;
        self.last_epoch = epoch;
        if let Some(o) = &self.obs {
            o.metrics.wal_records_total.inc();
            o.metrics.wal_bytes_total.add(written);
            o.metrics.wal_last_epoch.set_max(epoch);
            o.recorder.record(Event::WalAppend { epoch, bytes: written });
        }
        if self.seg_bytes >= self.cfg.segment_max_bytes {
            self.roll()?;
        }
        Ok(())
    }

    /// Appends one durable subscription register/cancel record
    /// ([`REC_SUB`]) under the same flush/fsync/rollback discipline as
    /// [`Self::append_ops`]. Sub records never advance the log's batch
    /// epoch high-water mark — they carry their own epoch stamp inside
    /// the body.
    pub fn append_sub(&mut self, op: &SubWalOp) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Corrupt {
                path: self.seg_path.clone(),
                detail: "log is poisoned after an unrecoverable append failure; \
                         restart the service to recover from disk"
                    .into(),
            });
        }
        let payload = encode_sub_record(op);
        let res = (|| -> std::io::Result<u64> {
            let written = binary::append_record(&mut self.file, &payload)?;
            self.file.flush()?;
            match self.cfg.fsync {
                FsyncPolicy::Always => self.sync()?,
                FsyncPolicy::Batch => {
                    self.dirty = true;
                    if self.last_sync.elapsed() >= self.cfg.group_sync_interval {
                        self.sync()?;
                    }
                }
                FsyncPolicy::Off => {}
            }
            Ok(written)
        })();
        let written = match res {
            Ok(w) => w,
            Err(e) => {
                self.restore_active_segment();
                return Err(io_err(&self.seg_path.clone(), e));
            }
        };
        self.seg_bytes += written;
        self.appended_bytes += written;
        self.records += 1;
        if let Some(o) = &self.obs {
            o.metrics.wal_records_total.inc();
            o.metrics.wal_bytes_total.add(written);
            o.recorder.record(Event::WalAppend { epoch: self.last_epoch, bytes: written });
        }
        if self.seg_bytes >= self.cfg.segment_max_bytes {
            self.roll()?;
        }
        Ok(())
    }

    /// Syncs pending bytes if the group-commit window has lapsed with no
    /// new append to piggyback on (the batcher calls this while idle, so
    /// the [`FsyncPolicy::Batch`] loss bound holds even when traffic
    /// pauses).
    pub fn sync_if_due(&mut self) -> Result<(), WalError> {
        if self.dirty
            && self.cfg.fsync == FsyncPolicy::Batch
            && self.last_sync.elapsed() >= self.cfg.group_sync_interval
        {
            self.sync().map_err(|e| io_err(&self.seg_path.clone(), e))?;
        }
        Ok(())
    }

    /// Flushes and syncs the active segment regardless of policy (the
    /// `FLUSH` protocol verb, and shutdown).
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.sync().map_err(|e| io_err(&self.seg_path.clone(), e))
    }

    /// Seals the active segment and starts the next one. Called on size
    /// overflow and at durable snapshots (so pruning can retire whole
    /// segments).
    pub fn roll(&mut self) -> Result<(), WalError> {
        self.sync().map_err(|e| io_err(&self.seg_path.clone(), e))?;
        self.sealed.push(SealedSegment {
            seq: self.seg_seq,
            path: self.seg_path.clone(),
            last_epoch: self.last_epoch,
        });
        self.seg_seq += 1;
        self.seg_path = segment_path(&self.cfg.dir, self.seg_seq);
        let mut file = BufWriter::new(
            OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(&self.seg_path)
                .map_err(|e| io_err(&self.seg_path, e))?,
        );
        binary::write_magic(&mut file, WAL_MAGIC).map_err(|e| io_err(&self.seg_path, e))?;
        file.flush().map_err(|e| io_err(&self.seg_path, e))?;
        self.file = file;
        self.seg_bytes = binary::MAGIC_LEN as u64;
        if let Some(o) = &self.obs {
            o.metrics.wal_rolls_total.inc();
            o.metrics.wal_segments.set(self.sealed.len() as u64 + 1);
        }
        Ok(())
    }

    /// Deletes sealed segments whose every record is covered by a durable
    /// snapshot at `epoch`; returns how many were removed. Best-effort:
    /// an undeletable file stays tracked and is retried at the next
    /// snapshot.
    pub fn prune_covered_by(&mut self, epoch: u64) -> usize {
        let mut removed = 0;
        self.sealed.retain(|seg| {
            if seg.last_epoch <= epoch && std::fs::remove_file(&seg.path).is_ok() {
                removed += 1;
                false
            } else {
                true
            }
        });
        if let Some(o) = &self.obs {
            o.metrics.wal_prunes_total.add(removed as u64);
            o.metrics.wal_segments.set(self.sealed.len() as u64 + 1);
        }
        removed
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> WalStats {
        WalStats {
            policy: self.cfg.fsync,
            segments: self.sealed.len() as u64 + 1,
            records: self.records,
            appended_bytes: self.appended_bytes,
            syncs: self.syncs,
            last_epoch: self.last_epoch,
            torn_bytes: self.torn_bytes,
        }
    }

    /// A read cursor over this log's directory, positioned at byte
    /// `offset` of segment `seq` (use `(0, MAGIC_LEN as u64)` for the
    /// oldest possible position; [`WalCursor::next`] rolls forward to the
    /// oldest existing segment if `seq` was pruned). The cursor reads the
    /// segment *files* directly, so it stays valid while this `Wal`
    /// appends, rolls, and prunes concurrently — the replication sender
    /// tails a live primary through exactly this API.
    pub fn tail_from(&self, seq: u64, offset: u64) -> WalCursor {
        WalCursor::open(&self.cfg.dir, seq, offset)
    }
}

/// What one [`WalCursor::next`] step produced.
#[derive(Debug, PartialEq, Eq)]
pub enum TailEvent {
    /// The next decoded record: `(epoch, ops)` — inserts and deletes in
    /// batch order.
    Record(u64, Vec<Update>),
    /// No complete record is available *yet*: the cursor sits at the live
    /// tail (or inside a record the writer has not finished flushing).
    /// Poll again later; the position is unchanged.
    CaughtUp,
    /// The cursor's segment was pruned beneath it (a durable snapshot
    /// retired it). The caller must re-bootstrap from the newest snapshot
    /// and then resume from [`WalCursor::oldest`].
    Pruned,
}

/// A polling read cursor over a WAL directory, independent of the
/// [`Wal`] writer (it re-opens segment files as it goes, so a live
/// primary can keep appending, rolling, and pruning).
///
/// The roll rule: a cursor positioned exactly at the end of a segment
/// first checks whether a *newer* segment file exists — if so, the
/// segment is sealed and the cursor rolls to the next sequence number
/// (never reporting the boundary as a torn tail); only when no newer
/// segment exists is the position the live tail ([`TailEvent::CaughtUp`]).
/// A truncated record is likewise [`TailEvent::CaughtUp`] — the writer
/// flushes whole records, but a large record can cross the reader's
/// glimpse mid-write — whereas a CRC mismatch or garbage framing on a
/// *complete* record is a hard [`WalError`].
pub struct WalCursor {
    dir: PathBuf,
    seq: u64,
    offset: u64,
    /// The current segment's format version, read lazily from its magic
    /// (None until the first read of each segment).
    seg_version: Option<u8>,
    /// Position of a truncated read already retried once against a
    /// sealed segment: a second truncation there is corruption (sealed
    /// bytes are final), not a flush race.
    retried_at: Option<(u64, u64)>,
}

impl WalCursor {
    /// Opens a cursor over `dir` at byte `offset` of segment `seq`.
    pub fn open(dir: impl Into<PathBuf>, seq: u64, offset: u64) -> WalCursor {
        WalCursor { dir: dir.into(), seq, offset, seg_version: None, retried_at: None }
    }

    /// The position as `(segment sequence, byte offset)`.
    pub fn position(&self) -> (u64, u64) {
        (self.seq, self.offset)
    }

    /// Repositions the cursor at the start of the oldest segment still
    /// on disk (or at segment 0 if the directory is empty) — the resume
    /// point after [`TailEvent::Pruned`] plus a snapshot re-bootstrap.
    pub fn oldest(&mut self) -> std::io::Result<()> {
        self.seq = oldest_segment_seq(&self.dir)?.unwrap_or(0);
        self.offset = binary::MAGIC_LEN as u64;
        self.seg_version = None;
        Ok(())
    }

    /// Whether any segment file newer than the cursor's exists — i.e.
    /// whether the cursor's segment is sealed.
    fn newer_segment_exists(&self) -> std::io::Result<bool> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e),
        };
        for entry in entries.flatten() {
            if let Some(s) = entry.file_name().to_str().and_then(parse_segment_seq) {
                if s > self.seq {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Advances one step. See [`TailEvent`] for the three outcomes; a
    /// returned error means bytes that are actually present failed to
    /// decode (disk corruption, never a mid-append race).
    /// (Deliberately not `Iterator`: `CaughtUp` is a poll outcome, not
    /// an end of stream — mirroring `binary::RecordReader::next`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<TailEvent, WalError> {
        loop {
            let path = segment_path(&self.dir, self.seq);
            let io = |e: std::io::Error| io_err(&path, e);
            let file = match File::open(&path) {
                Ok(f) => f,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    // Either the segment was pruned (a newer one exists)
                    // or we are ahead of the writer (nothing yet).
                    return if self.newer_segment_exists().map_err(io)? {
                        Ok(TailEvent::Pruned)
                    } else {
                        Ok(TailEvent::CaughtUp)
                    };
                }
                Err(e) => return Err(io_err(&path, e)),
            };
            let len = file.metadata().map_err(io)?.len();
            // Exactly at (or past — the writer may have truncated a torn
            // tail we never saw) the end of the segment: roll to the next
            // sequence if one exists, else we are the live tail. This is
            // the boundary case that must NEVER read as a torn tail.
            if self.offset >= len {
                if self.newer_segment_exists().map_err(io)? {
                    self.seq += 1;
                    self.offset = binary::MAGIC_LEN as u64;
                    self.seg_version = None;
                    continue;
                }
                return Ok(TailEvent::CaughtUp);
            }
            if self.seg_version.is_none() || self.offset < binary::MAGIC_LEN as u64 {
                // First touch of this segment (or a cursor opened at byte
                // 0): read the magic to learn the record format — and to
                // skip it. A partially-written magic is just the live
                // tail.
                let mut reader = BufReader::new(&file);
                match read_segment_version(&mut reader) {
                    Ok(v) => self.seg_version = Some(v),
                    Err(e) if e.is_truncation() => return Ok(TailEvent::CaughtUp),
                    Err(e) => return Err(WalError::Codec { path, source: e }),
                }
                if self.offset < binary::MAGIC_LEN as u64 {
                    self.offset = binary::MAGIC_LEN as u64;
                    if self.offset >= len {
                        continue; // magic-only file: re-run the boundary check
                    }
                }
            }
            let version = self.seg_version.expect("read above");
            let mut reader = BufReader::new(file);
            std::io::Seek::seek(&mut reader, std::io::SeekFrom::Start(self.offset)).map_err(io)?;
            let mut records = binary::RecordReader::new(reader, self.offset);
            return match records.next() {
                Ok(Some(payload)) => {
                    if version >= 2 && payload.first() == Some(&REC_SUB) {
                        // Subscriptions are primary-local state: the
                        // replication stream skips them (validated for
                        // shape, then stepped over) so followers never
                        // inherit another node's registry.
                        decode_sub_record(&payload, self.offset)
                            .map_err(|e| WalError::Codec { path: path.clone(), source: e })?;
                        self.offset = records.offset();
                        self.retried_at = None;
                        continue;
                    }
                    let (epoch, ops) = decode_segment_payload(version, &payload, self.offset)
                        .map_err(|e| WalError::Codec { path, source: e })?;
                    self.offset = records.offset();
                    self.retried_at = None;
                    Ok(TailEvent::Record(epoch, ops))
                }
                // read_up_to saw clean EOF at the record boundary even
                // though the length probe said there were bytes: the
                // writer truncated a torn tail between our two looks.
                Ok(None) => Ok(TailEvent::CaughtUp),
                Err(e) if e.is_truncation() => {
                    // In the live (final) segment this is the writer
                    // mid-flush — poll again later. If a newer segment
                    // exists the bytes here are final, but our read may
                    // still have raced the seal's flush: retry exactly
                    // once before calling it corruption.
                    if !self.newer_segment_exists().map_err(io)? {
                        self.retried_at = None;
                        return Ok(TailEvent::CaughtUp);
                    }
                    if self.retried_at == Some((self.seq, self.offset)) {
                        return Err(WalError::Codec { path, source: e });
                    }
                    self.retried_at = Some((self.seq, self.offset));
                    continue;
                }
                Err(e) => Err(WalError::Codec { path, source: e }),
            };
        }
    }
}

/// The lowest segment sequence number present in `dir`, if any.
fn oldest_segment_seq(dir: &Path) -> std::io::Result<Option<u64>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(entries
        .flatten()
        .filter_map(|entry| entry.file_name().to_str().and_then(parse_segment_seq))
        .min())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        crate::scratch_dir(&format!("wal_{tag}"))
    }

    fn small_cfg(dir: &Path) -> DurabilityConfig {
        DurabilityConfig { fsync: FsyncPolicy::Off, ..DurabilityConfig::new(dir) }
    }

    fn ins(edges: &[(u32, u32)]) -> Vec<Update> {
        edges.iter().map(|&(u, v)| Update::Insert(u, v)).collect()
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let cfg = small_cfg(&dir);
        {
            let (mut wal, rep) = Wal::open(&cfg).expect("open");
            assert!(rep.batches.is_empty());
            wal.append(1, &[(0, 1), (2, 3)]).expect("append");
            wal.append(2, &[]).expect("append empty");
            wal.append(3, &[(1, 2)]).expect("append");
            wal.flush().expect("flush");
            assert_eq!(wal.stats().records, 3);
            assert_eq!(wal.stats().last_epoch, 3);
        }
        let (wal, rep) = Wal::open(&cfg).expect("reopen");
        assert_eq!(
            rep.batches,
            vec![(1, ins(&[(0, 1), (2, 3)])), (2, vec![]), (3, ins(&[(1, 2)]))]
        );
        assert_eq!(rep.torn_bytes, 0);
        assert_eq!(wal.stats().last_epoch, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deletion_bearing_batches_recover_in_order() {
        let dir = tmp_dir("ops_roundtrip");
        let cfg = small_cfg(&dir);
        let mixed = vec![
            Update::Insert(0, 1),
            Update::Delete(4, 5),
            Update::Query(0, 1), // never durable
            Update::Insert(1, 2),
            Update::Delete(0, 1),
        ];
        {
            let (mut wal, _) = Wal::open(&cfg).expect("open");
            wal.append_ops(1, &ins(&[(4, 5)])).expect("append");
            wal.append_ops(2, &mixed).expect("append mixed");
            wal.append_ops(3, &[Update::Query(1, 2)]).expect("append query-only");
            wal.flush().expect("flush");
        }
        let (_, rep) = Wal::open(&cfg).expect("reopen");
        let want_mixed = vec![
            Update::Insert(0, 1),
            Update::Delete(4, 5),
            Update::Insert(1, 2),
            Update::Delete(0, 1),
        ];
        assert_eq!(rep.batches, vec![(1, ins(&[(4, 5)])), (2, want_mixed), (3, vec![])]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_batch_codec_roundtrips_and_rejects_bad_tags() {
        let ops = vec![Update::Insert(7, 9), Update::Delete(9, 7), Update::Insert(0, 1)];
        let body = encode_update_batch(42, &ops);
        assert_eq!(decode_update_batch(&body, 0).expect("decode"), (42, ops));
        let mut bad = body.clone();
        bad[12] = b'Q'; // first op tag
        let err = decode_update_batch(&bad, 0).unwrap_err();
        assert!(err.to_string().contains("unknown op tag"), "{err}");
        // Truncated bodies are length-checked, not silently short-read.
        let err = decode_update_batch(&body[..body.len() - 1], 0).unwrap_err();
        assert!(err.to_string().contains("needs"), "{err}");
    }

    #[test]
    fn sub_records_interleave_recover_and_skip_replication() {
        let dir = tmp_dir("sub_records");
        let cfg = small_cfg(&dir);
        let reg = SubWalOp::Register { id: 7, kind: SubKind::Pair, u: 3, v: 9, epoch: 2 };
        let reg2 = SubWalOp::Register { id: 8, kind: SubKind::Component, u: 5, v: 5, epoch: 2 };
        {
            let (mut wal, _) = Wal::open(&cfg).expect("open");
            wal.append(1, &[(0, 1)]).expect("append");
            wal.append(2, &[(2, 3)]).expect("append");
            // Registrations stamped at epoch 2 land *between* batch
            // records 2 and 3: legal, despite the batch monotonicity rule.
            wal.append_sub(&reg).expect("append sub");
            wal.append_sub(&reg2).expect("append sub");
            wal.append(3, &[(4, 5)]).expect("append");
            wal.append_sub(&SubWalOp::Cancel { id: 8 }).expect("append cancel");
            wal.flush().expect("flush");
            assert_eq!(wal.stats().records, 6);
            assert_eq!(wal.stats().last_epoch, 3, "sub records never advance the epoch");
        }
        let (wal, rep) = Wal::open(&cfg).expect("reopen");
        assert_eq!(rep.batches.len(), 3);
        assert_eq!(rep.sub_ops, vec![reg, reg2, SubWalOp::Cancel { id: 8 }]);
        // The replication cursor steps over every sub record: followers
        // see exactly the batch stream.
        let mut cur = wal.tail_from(0, binary::MAGIC_LEN as u64);
        let mut epochs = Vec::new();
        while let TailEvent::Record(e, _) = cur.next().expect("tail") {
            epochs.push(e);
        }
        assert_eq!(epochs, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sub_record_codec_rejects_bad_shapes() {
        let reg = SubWalOp::Register { id: 1, kind: SubKind::Component, u: 4, v: 4, epoch: 9 };
        let enc = encode_sub_record(&reg);
        assert_eq!(decode_sub_record(&enc, 0).expect("decode"), reg);
        let cancel = SubWalOp::Cancel { id: u64::MAX };
        let enc_c = encode_sub_record(&cancel);
        assert_eq!(decode_sub_record(&enc_c, 0).expect("decode"), cancel);
        let mut bad_kind = enc.clone();
        bad_kind[10] = 9;
        assert!(decode_sub_record(&bad_kind, 0)
            .unwrap_err()
            .to_string()
            .contains("unknown subscription kind"));
        // A truncated register body is length-checked, not short-read.
        assert!(decode_sub_record(&enc[..enc.len() - 1], 0).is_err());
        // And a CRC-valid but malformed sub record is corruption at
        // recovery, even in the final segment.
        let dir = tmp_dir("sub_bad");
        let cfg = small_cfg(&dir);
        {
            let (mut wal, _) = Wal::open(&cfg).expect("open");
            wal.append(1, &[(0, 1)]).expect("append");
            wal.flush().expect("flush");
        }
        let seg = segment_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).expect("open seg");
        binary::append_record(&mut f, &bad_kind).expect("append record");
        f.sync_data().expect("sync");
        let msg = Wal::open(&cfg).map(|_| ()).unwrap_err().to_string();
        assert!(msg.contains("unknown subscription kind"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_record_kind_is_corruption_not_a_skippable_tail() {
        let dir = tmp_dir("unknown_kind");
        let cfg = small_cfg(&dir);
        {
            let (mut wal, _) = Wal::open(&cfg).expect("open");
            wal.append(1, &[(0, 1)]).expect("append");
            wal.flush().expect("flush");
        }
        // Hand-append a CRC-valid record whose kind byte is unknown: a
        // future format, or bit rot that kept the checksum honest. Either
        // way recovery must refuse, not drop it as a torn tail.
        let seg = segment_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).expect("open seg");
        let mut payload = vec![b'X'];
        payload.extend_from_slice(&binary::encode_edge_batch(2, &[(2, 3)]));
        binary::append_record(&mut f, &payload).expect("append record");
        f.sync_data().expect("sync");
        let msg = match Wal::open(&cfg) {
            Err(e) => e.to_string(),
            Ok((_, rep)) => panic!("must not open: {:?}", rep.batches),
        };
        assert!(msg.contains("unknown wal record kind"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_in_final_segment_is_dropped() {
        let dir = tmp_dir("torn");
        let cfg = small_cfg(&dir);
        {
            let (mut wal, _) = Wal::open(&cfg).expect("open");
            wal.append(1, &[(0, 1)]).expect("append");
            wal.append(2, &[(2, 3)]).expect("append");
            wal.flush().expect("flush");
        }
        // Chop 5 bytes off the only segment: record 2 becomes a torn tail.
        let seg = segment_path(&dir, 0);
        let bytes = std::fs::read(&seg).expect("read");
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).expect("truncate");
        let (wal, rep) = Wal::open(&cfg).expect("reopen");
        assert_eq!(rep.batches, vec![(1, ins(&[(0, 1)]))]);
        // Record 2 is 8 (frame) + 21 (kind + epoch + count + 1 edge)
        // bytes; 5 were chopped, so 24 torn bytes remain and are dropped.
        assert_eq!(rep.torn_bytes, 24);
        assert!(rep.torn_detail.as_deref().expect("detail").contains("offset"));
        assert!(wal.stats().torn_bytes > 0);
        // The drop was physical: the torn segment is no longer final
        // after this open created a fresh one, yet every later restart
        // must keep scanning it clean.
        drop(wal);
        for round in 0..2 {
            let (_, rep) = Wal::open(&cfg).expect("torn tail must not brick later restarts");
            assert_eq!(rep.batches, vec![(1, ins(&[(0, 1)]))], "round {round}");
            assert_eq!(rep.torn_bytes, 0, "round {round}: tail was truncated away");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_magic_segment_is_removed_not_resurfaced() {
        let dir = tmp_dir("torn_magic");
        let cfg = small_cfg(&dir);
        {
            let (mut wal, _) = Wal::open(&cfg).expect("open");
            wal.append(1, &[(0, 1)]).expect("append");
        }
        // A second segment torn inside its magic (creation crashed).
        std::fs::write(segment_path(&dir, 1), b"CCW").expect("write");
        let (_, rep) = Wal::open(&cfg).expect("open tolerates torn magic");
        assert_eq!(rep.batches, vec![(1, ins(&[(0, 1)]))]);
        assert!(rep.torn_bytes > 0);
        assert!(!segment_path(&dir, 1).exists(), "torn-magic file removed");
        let (_, rep) = Wal::open(&cfg).expect("and later restarts stay clean");
        assert_eq!(rep.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_sealed_segment_is_fatal_with_context() {
        let dir = tmp_dir("sealed");
        let mut cfg = small_cfg(&dir);
        cfg.segment_max_bytes = 1; // roll after every record
        {
            let (mut wal, _) = Wal::open(&cfg).expect("open");
            wal.append(1, &[(0, 1)]).expect("append");
            wal.append(2, &[(2, 3)]).expect("append");
        }
        // Flip a payload byte in the FIRST (sealed, non-final) segment.
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&seg, &bytes).expect("write");
        let msg = match Wal::open(&cfg) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("sealed-segment corruption must be fatal"),
        };
        assert!(msg.contains("wal-00000000.log"), "{msg}");
        assert!(msg.contains("offset"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_and_prune() {
        let dir = tmp_dir("roll");
        let mut cfg = small_cfg(&dir);
        cfg.segment_max_bytes = 64; // a couple of records per segment
        let (mut wal, _) = Wal::open(&cfg).expect("open");
        for e in 1..=10u64 {
            wal.append(e, &[(e as u32, e as u32 + 1)]).expect("append");
        }
        let stats = wal.stats();
        assert!(stats.segments > 2, "expected several segments, got {}", stats.segments);
        // A snapshot at epoch 10 covers everything sealed.
        let sealed_before = stats.segments - 1;
        let removed = wal.prune_covered_by(10);
        assert_eq!(removed as u64, sealed_before);
        // Reopen: only the suffix past the prune point remains on disk.
        drop(wal);
        let (_, rep) = Wal::open(&cfg).expect("reopen");
        assert!(rep.batches.iter().all(|(e, _)| *e > 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_spans_multiple_segments_in_order() {
        let dir = tmp_dir("multi");
        let mut cfg = small_cfg(&dir);
        cfg.segment_max_bytes = 48;
        {
            let (mut wal, _) = Wal::open(&cfg).expect("open");
            for e in 1..=7u64 {
                wal.append(e, &[(0, e as u32)]).expect("append");
            }
        }
        let (_, rep) = Wal::open(&cfg).expect("reopen");
        let epochs: Vec<u64> = rep.batches.iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs, vec![1, 2, 3, 4, 5, 6, 7]);
        assert!(rep.segments_scanned > 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policies_parse_and_sync_counts_move() {
        assert_eq!("always".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Always);
        assert_eq!("batch".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Batch);
        assert_eq!("off".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Off);
        assert!("sometimes".parse::<FsyncPolicy>().is_err());

        let dir = tmp_dir("fsync");
        let cfg = DurabilityConfig { fsync: FsyncPolicy::Always, ..DurabilityConfig::new(&dir) };
        let (mut wal, _) = Wal::open(&cfg).expect("open");
        wal.append(1, &[(0, 1)]).expect("append");
        wal.append(2, &[(1, 2)]).expect("append");
        assert_eq!(wal.stats().syncs, 2);

        let dir2 = tmp_dir("fsync_off");
        let (mut wal, _) = Wal::open(&small_cfg(&dir2)).expect("open");
        wal.append(1, &[(0, 1)]).expect("append");
        assert_eq!(wal.stats().syncs, 0);
        wal.flush().expect("explicit flush still syncs");
        assert_eq!(wal.stats().syncs, 1);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn idle_sync_bounds_the_batch_window() {
        let dir = tmp_dir("idle");
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::Batch,
            group_sync_interval: Duration::from_millis(1),
            ..DurabilityConfig::new(&dir)
        };
        let (mut wal, _) = Wal::open(&cfg).expect("open");
        // First append starts with a fresh window: no sync yet, bytes
        // dirty in the OS cache.
        wal.append(1, &[(0, 1)]).expect("append");
        let syncs_after_append = wal.stats().syncs;
        std::thread::sleep(Duration::from_millis(3));
        // The idle tick syncs once the window lapses with no new append
        // to piggyback on...
        wal.sync_if_due().expect("idle sync");
        assert_eq!(wal.stats().syncs, syncs_after_append + 1);
        // ...and is a no-op while clean.
        wal.sync_if_due().expect("idle sync");
        assert_eq!(wal.stats().syncs, syncs_after_append + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cursor_tails_live_appends_across_rolls() {
        let dir = tmp_dir("cursor_tail");
        let mut cfg = small_cfg(&dir);
        cfg.segment_max_bytes = 64; // a couple of records per segment
        let (mut wal, _) = Wal::open(&cfg).expect("open");
        let mut cursor = wal.tail_from(0, binary::MAGIC_LEN as u64);
        assert_eq!(cursor.next().expect("tail"), TailEvent::CaughtUp, "empty log");
        let mut seen = Vec::new();
        for e in 1..=9u64 {
            wal.append(e, &[(e as u32, e as u32 + 1)]).expect("append");
            // The cursor sees every record as soon as it is appended,
            // rolling through segment boundaries without torn tails.
            loop {
                match cursor.next().expect("tail") {
                    TailEvent::Record(epoch, edges) => {
                        seen.push((epoch, edges));
                    }
                    TailEvent::CaughtUp => break,
                    TailEvent::Pruned => panic!("nothing pruned yet"),
                }
            }
        }
        let epochs: Vec<u64> = seen.iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs, (1..=9).collect::<Vec<_>>());
        assert!(wal.stats().segments > 2, "test needs several segments");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cursor_at_sealed_segment_end_rolls_instead_of_torn_tail() {
        let dir = tmp_dir("cursor_boundary");
        let mut cfg = small_cfg(&dir);
        cfg.segment_max_bytes = 1; // roll after every record
        let (mut wal, _) = Wal::open(&cfg).expect("open");
        wal.append(1, &[(0, 1)]).expect("append");
        wal.append(2, &[(2, 3)]).expect("append");
        // Position the cursor EXACTLY at sealed segment 0's end: the
        // off-by-one trap. It must roll to segment 1 and yield epoch 2,
        // never report a torn tail or stall.
        let seg0_len = std::fs::metadata(segment_path(&dir, 0)).expect("meta").len();
        let mut cursor = wal.tail_from(0, seg0_len);
        assert_eq!(cursor.next().expect("roll"), TailEvent::Record(2, ins(&[(2, 3)])));
        assert_eq!(cursor.next().expect("tail"), TailEvent::CaughtUp);
        // A cursor positioned at the LIVE segment's exact end is just
        // caught up, and picks up the next append from there.
        let (live_seq, _) = cursor.position();
        wal.append(3, &[(4, 5)]).expect("append");
        let mut events = Vec::new();
        loop {
            match cursor.next().expect("tail") {
                TailEvent::Record(e, _) => events.push(e),
                TailEvent::CaughtUp => break,
                TailEvent::Pruned => panic!("nothing pruned"),
            }
        }
        assert_eq!(events, vec![3]);
        assert!(cursor.position().0 >= live_seq);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cursor_reports_pruned_and_resumes_from_oldest() {
        let dir = tmp_dir("cursor_prune");
        let mut cfg = small_cfg(&dir);
        cfg.segment_max_bytes = 1;
        let (mut wal, _) = Wal::open(&cfg).expect("open");
        for e in 1..=4u64 {
            wal.append(e, &[(0, e as u32)]).expect("append");
        }
        let mut cursor = wal.tail_from(0, binary::MAGIC_LEN as u64);
        assert!(matches!(cursor.next().expect("tail"), TailEvent::Record(1, _)));
        // A snapshot retires every sealed segment under the cursor.
        wal.prune_covered_by(4);
        assert_eq!(cursor.next().expect("tail"), TailEvent::Pruned);
        // The documented recovery: re-bootstrap (a snapshot covers the
        // gap) and resume from the oldest surviving segment.
        cursor.oldest().expect("oldest");
        match cursor.next().expect("tail") {
            TailEvent::Record(e, _) => assert!(e >= 4, "epoch {e} should be past the prune"),
            TailEvent::CaughtUp => {} // everything pruned except the active tail
            TailEvent::Pruned => panic!("oldest() must land on a live segment"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cursor_truncated_live_tail_is_caught_up_not_error() {
        let dir = tmp_dir("cursor_torn");
        let cfg = small_cfg(&dir);
        let (mut wal, _) = Wal::open(&cfg).expect("open");
        wal.append(1, &[(0, 1)]).expect("append");
        drop(wal); // stop the writer; we fake a torn in-flight record
        let seg = segment_path(&dir, 0); // the (only) live segment
        let mut bytes = std::fs::read(&seg).expect("read");
        bytes.extend_from_slice(&[7, 0, 0, 0]); // half a record header
        std::fs::write(&seg, &bytes).expect("write");
        let mut cursor = WalCursor::open(&dir, 0, binary::MAGIC_LEN as u64);
        assert!(matches!(cursor.next().expect("record 1"), TailEvent::Record(1, _)));
        assert_eq!(
            cursor.next().expect("a torn live tail is just not-yet-flushed"),
            TailEvent::CaughtUp
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Hand-writes a legacy v1 segment: `CCWALS01` magic, then raw
    /// insert-only edge-batch record bodies (no kind byte) — exactly what
    /// the release before the kind-byte format left on disk.
    fn write_v1_segment(dir: &Path, seq: u64, batches: &[(u64, Vec<(u32, u32)>)]) {
        std::fs::create_dir_all(dir).expect("mkdir");
        let mut f = BufWriter::new(File::create(segment_path(dir, seq)).expect("create"));
        binary::write_magic(&mut f, WAL_MAGIC_V1).expect("magic");
        for (epoch, edges) in batches {
            binary::append_record(&mut f, &binary::encode_edge_batch(*epoch, edges))
                .expect("record");
        }
        f.flush().expect("flush");
    }

    #[test]
    fn legacy_v1_segments_recover_and_upgrade_in_place() {
        let dir = tmp_dir("v1_upgrade");
        write_v1_segment(&dir, 0, &[(1, vec![(0, 1)]), (2, vec![(2, 3)])]);
        let cfg = small_cfg(&dir);
        {
            // Opening an old-format directory recovers its history...
            let (mut wal, rep) = Wal::open(&cfg).expect("v1 wal must still open");
            assert_eq!(rep.batches, vec![(1, ins(&[(0, 1)])), (2, ins(&[(2, 3)]))]);
            assert_eq!(rep.torn_bytes, 0);
            // ...and new appends (deletions included) go to a fresh v2
            // segment alongside the untouched v1 one.
            wal.append_ops(3, &[Update::Delete(0, 1)]).expect("append past the upgrade");
            wal.flush().expect("flush");
        }
        let v2_seg = std::fs::read(segment_path(&dir, 1)).expect("new segment");
        assert_eq!(&v2_seg[..binary::MAGIC_LEN], WAL_MAGIC, "appends use the current format");
        // A mixed-version directory recovers both formats in order.
        let (_, rep) = Wal::open(&cfg).expect("mixed-version reopen");
        assert_eq!(
            rep.batches,
            vec![(1, ins(&[(0, 1)])), (2, ins(&[(2, 3)])), (3, vec![Update::Delete(0, 1)]),]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cursor_tails_across_a_v1_to_v2_boundary() {
        let dir = tmp_dir("v1_cursor");
        write_v1_segment(&dir, 0, &[(1, vec![(0, 1)])]);
        let cfg = small_cfg(&dir);
        let (mut wal, _) = Wal::open(&cfg).expect("open");
        wal.append_ops(2, &[Update::Insert(1, 2), Update::Delete(0, 1)]).expect("append");
        let mut cursor = wal.tail_from(0, binary::MAGIC_LEN as u64);
        assert_eq!(cursor.next().expect("v1 record"), TailEvent::Record(1, ins(&[(0, 1)])));
        assert_eq!(
            cursor.next().expect("v2 record across the boundary"),
            TailEvent::Record(2, vec![Update::Insert(1, 2), Update::Delete(0, 1)])
        );
        assert_eq!(cursor.next().expect("tail"), TailEvent::CaughtUp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_line_is_parseable() {
        let dir = tmp_dir("stats");
        let (wal, _) = Wal::open(&small_cfg(&dir)).expect("open");
        let line = wal.stats().to_string();
        for key in ["policy=", "segments=", "records=", "syncs=", "last_epoch=", "torn_bytes="] {
            assert!(line.contains(key), "{line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
