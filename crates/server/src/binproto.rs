//! Binary wire protocol: pipelined, correlation-tagged frames over the
//! `cc_graph::io::binary` `len|crc|payload` codec.
//!
//! A binary session opens with the 8-byte [`STREAM_MAGIC`]; its first byte
//! (`0xCC`) is the sniff byte no text verb starts with, which is how the
//! server tells a binary client from a text one on the shared port. After
//! the magic, both directions carry bare records in the replication codec's
//! framing (no per-record magic, no stream magic on the response side).
//!
//! ## Request frames
//!
//! ```text
//! payload := corr_id:u64le  verb:u8  args
//! ```
//!
//! The correlation id is an opaque client-chosen token echoed on the
//! response; clients pipeline many requests per connection and the server
//! may complete them **out of order** (reads overtake updates that are
//! still riding the batch former). Verb tags and argument layouts:
//!
//! | tag  | verb    | args                                        |
//! |------|---------|---------------------------------------------|
//! | 0x01 | I       | `u:u32le v:u32le`                           |
//! | 0x02 | D       | `u:u32le v:u32le`                           |
//! | 0x03 | Q       | `u:u32le v:u32le`                           |
//! | 0x04 | QG      | `u:u32le v:u32le`                           |
//! | 0x05 | B       | `k:u32le` then k × `(op:u8 u:u32le v:u32le)`, op 0=I 1=D 2=Q |
//! | 0x06 | EPOCH   | none                                        |
//! | 0x07 | WAIT    | `epoch:u64le timeout_ms:u64le`              |
//! | 0x08 | PING    | none                                        |
//! | 0x09 | QUIESCE | `timeout_ms:u64le`                          |
//! | 0x0A | GEN     | none                                        |
//! | 0x0B | TOPK    | `k:u8`                                      |
//! | 0x0C | HIST    | none                                        |
//! | 0x0D | SIZE    | `v:u32le`                                   |
//! | 0x0E | SUB     | `kind:u8 u:u32le v:u32le flags:u8` (kind 0=pair 1=component, flags bit0=durable) |
//! | 0x0F | UNSUB   | `id:u64le`                                  |
//!
//! ## Response frames
//!
//! ```text
//! payload := corr_id:u64le  status:u8  body
//! ```
//!
//! Status 0 is OK with a verb-specific body (see [`Reply`]); status 1 is
//! ERR with a UTF-8 message — the same spellings as the text protocol's
//! `ERR` lines, minus the `ERR ` prefix. Recoverable errors (unknown verb,
//! short argument payloads, oversized batches, vertex range) answer with an
//! ERR frame and leave the connection open; frame-level damage (bad magic,
//! CRC mismatch, oversized or truncated frames) earns a best-effort ERR
//! frame with correlation id 0 and a typed `bad-frame` close.
//!
//! ## Event frames
//!
//! A `SUB` registration turns the connection into an event stream as well:
//! when the subscription fires, the server pushes an unsolicited frame
//! carrying status [`STATUS_EVT`] (`2`) and the **registration's**
//! correlation id, interleaved with ordinary replies:
//!
//! ```text
//! payload := corr_id:u64le  0x02  id:u64le kind:u8 u:u32le v:u32le
//!            root:u32le size:u64le epoch:u64le generation:u64le seq:u64le
//! ```
//!
//! Clients must therefore tolerate frames whose correlation id belongs to
//! no in-flight request — [`BinClient::reap`] stashes them for
//! [`BinClient::take_events`]. Delivery and slow-consumer semantics are
//! those of the text door's `! EVT` lines (see `PROTOCOL.md`): a
//! connection that lets pushed events back up past the server's write
//! budget is closed with a typed `sub-overflow` close.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use cc_graph::io::binary::{append_record, crc32, RecordReader, MAGIC_LEN};
use connectit::Update;

use crate::net::MAX_WIRE_BATCH;
use crate::subs::{SubEvent, SubKind};

/// First byte of [`STREAM_MAGIC`]; no text verb starts with it, so the
/// server's first-byte sniff is unambiguous.
pub const SNIFF_BYTE: u8 = 0xCC;

/// Stream opener a binary client sends before its first frame.
pub const STREAM_MAGIC: [u8; MAGIC_LEN] = [SNIFF_BYTE, b'C', b'B', b'I', b'N', b'0', b'1', b'\n'];

/// Hard cap on a single frame payload (64 MiB — comfortably above the
/// largest legal `B` request of [`MAX_WIRE_BATCH`] nine-byte ops).
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 26;

/// Response status byte: request succeeded, verb-specific body follows.
pub const STATUS_OK: u8 = 0;
/// Response status byte: request failed, UTF-8 message follows.
pub const STATUS_ERR: u8 = 1;
/// Response status byte: unsolicited subscription event; the correlation
/// id is the one from the `SUB` registration and the body is the fixed
/// 53-byte event layout (see the module docs).
pub const STATUS_EVT: u8 = 2;

/// Verb tags (request header byte 8).
pub mod verb {
    /// Insert an edge.
    pub const INSERT: u8 = 0x01;
    /// Delete an edge.
    pub const DELETE: u8 = 0x02;
    /// Connectivity query.
    pub const QUERY: u8 = 0x03;
    /// Connectivity query with generation tag.
    pub const QUERY_GEN: u8 = 0x04;
    /// Mixed batch of inserts/deletes/queries.
    pub const BATCH: u8 = 0x05;
    /// Read the committed epoch.
    pub const EPOCH: u8 = 0x06;
    /// Block until an epoch is committed.
    pub const WAIT: u8 = 0x07;
    /// Liveness probe.
    pub const PING: u8 = 0x08;
    /// Force a clean generation and report it.
    pub const QUIESCE: u8 = 0x09;
    /// Generation/rebuild counters.
    pub const GEN: u8 = 0x0A;
    /// Top-k largest components from the analytics view.
    pub const TOPK: u8 = 0x0B;
    /// Component-size histogram from the analytics view.
    pub const HIST: u8 = 0x0C;
    /// Size and root of one vertex's component.
    pub const SIZE: u8 = 0x0D;
    /// Register a pair or component subscription.
    pub const SUBSCRIBE: u8 = 0x0E;
    /// Cancel a subscription by id.
    pub const UNSUBSCRIBE: u8 = 0x0F;
}

/// Every binary verb, `(text-door name, tag)`, in tag order. The doc-drift
/// test checks `PROTOCOL.md` documents each tag.
pub const BIN_VERBS: &[(&str, u8)] = &[
    ("I", verb::INSERT),
    ("D", verb::DELETE),
    ("Q", verb::QUERY),
    ("QG", verb::QUERY_GEN),
    ("B", verb::BATCH),
    ("EPOCH", verb::EPOCH),
    ("WAIT", verb::WAIT),
    ("PING", verb::PING),
    ("QUIESCE", verb::QUIESCE),
    ("GEN", verb::GEN),
    ("TOPK", verb::TOPK),
    ("HIST", verb::HIST),
    ("SIZE", verb::SIZE),
    ("SUB", verb::SUBSCRIBE),
    ("UNSUB", verb::UNSUBSCRIBE),
];

/// A decoded binary request (header already stripped).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinRequest {
    /// `I u v`
    Insert(u32, u32),
    /// `D u v`
    Delete(u32, u32),
    /// `Q u v`
    Query(u32, u32),
    /// `QG u v`
    QueryGen(u32, u32),
    /// `B` with decoded ops.
    Batch(Vec<Update>),
    /// `EPOCH`
    Epoch,
    /// `WAIT epoch timeout_ms`
    Wait {
        /// Epoch to wait for.
        epoch: u64,
        /// Give up after this many milliseconds.
        timeout_ms: u64,
    },
    /// `PING`
    Ping,
    /// `QUIESCE timeout_ms`
    Quiesce {
        /// Give up after this many milliseconds.
        timeout_ms: u64,
    },
    /// `GEN`
    Gen,
    /// `TOPK k` — top-k largest (multi-vertex) components.
    Topk {
        /// How many components to return (clamped server-side to the
        /// materialized cap).
        k: u8,
    },
    /// `HIST` — component-size histogram.
    Hist,
    /// `SIZE v` — size and root of `v`'s component.
    Size(u32),
    /// `SUB` — register a subscription.
    Subscribe {
        /// Pair or component subscription.
        kind: SubKind,
        /// First endpoint (equals `v` for component subscriptions).
        u: u32,
        /// Second endpoint / watched vertex.
        v: u32,
        /// Whether the registration is WAL-logged and survives restart.
        durable: bool,
    },
    /// `UNSUB id` — cancel a subscription.
    Unsubscribe {
        /// Id returned by the `SUB` registration.
        id: u64,
    },
}

/// Frame-level damage: the stream can no longer be trusted, so the server
/// answers with a correlation-id-0 ERR frame and closes `bad-frame`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The 8 bytes after the sniff byte were not [`STREAM_MAGIC`].
    BadMagic,
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
    /// Stored CRC32 does not match the payload.
    CrcMismatch {
        /// CRC carried in the frame header.
        stored: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame: unknown binary stream magic"),
            FrameError::Oversized(len) => {
                write!(f, "bad frame: oversized payload {len} (max {MAX_FRAME_PAYLOAD})")
            }
            FrameError::CrcMismatch { stored, computed } => write!(
                f,
                "bad frame: crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
        }
    }
}

/// Request-level errors. [`RequestError::ShortHeader`] poisons the stream
/// (there is no correlation id to answer on); everything else is
/// recoverable — the server sends an ERR frame and keeps the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Payload shorter than the 9-byte `corr|verb` header.
    ShortHeader(usize),
    /// Unrecognized verb tag.
    UnknownVerb {
        /// Correlation id to answer on.
        corr: u64,
        /// The offending tag byte.
        tag: u8,
    },
    /// Argument bytes missing or left over for a fixed-layout verb.
    BadArgs {
        /// Correlation id to answer on.
        corr: u64,
        /// Verb name for the error message.
        verb: &'static str,
        /// Bytes the verb's argument layout requires.
        want: usize,
        /// Bytes actually present after the header.
        have: usize,
    },
    /// `B` op count exceeds [`MAX_WIRE_BATCH`].
    BatchTooLarge {
        /// Correlation id to answer on.
        corr: u64,
    },
    /// `B` op tag outside 0/1/2.
    BadBatchTag {
        /// Correlation id to answer on.
        corr: u64,
        /// The offending op tag.
        tag: u8,
    },
    /// `SUB` kind byte outside 0/1.
    BadSubKind {
        /// Correlation id to answer on.
        corr: u64,
        /// The offending kind byte.
        kind: u8,
    },
}

impl RequestError {
    /// The correlation id to answer on, when the header was intact.
    pub fn corr(&self) -> Option<u64> {
        match *self {
            RequestError::ShortHeader(_) => None,
            RequestError::UnknownVerb { corr, .. }
            | RequestError::BadArgs { corr, .. }
            | RequestError::BatchTooLarge { corr }
            | RequestError::BadBatchTag { corr, .. }
            | RequestError::BadSubKind { corr, .. } => Some(corr),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::ShortHeader(have) => {
                write!(f, "bad frame: request header needs 9 bytes, have {have}")
            }
            RequestError::UnknownVerb { tag, .. } => {
                write!(f, "unknown binary verb {tag:#04x}")
            }
            RequestError::BadArgs { verb, want, have, .. } => {
                write!(f, "bad {verb} payload: need {want} bytes, have {have}")
            }
            RequestError::BatchTooLarge { .. } => {
                write!(f, "batch too large (max {MAX_WIRE_BATCH})")
            }
            RequestError::BadBatchTag { tag, .. } => {
                write!(f, "bad B payload: unknown batch op tag {tag:#04x}")
            }
            RequestError::BadSubKind { kind, .. } => {
                write!(f, "bad SUB payload: unknown subscription kind {kind:#04x}")
            }
        }
    }
}

fn rd_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn rd_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decodes a request frame payload into `(corr_id, request)`.
pub fn decode_request(payload: &[u8]) -> Result<(u64, BinRequest), RequestError> {
    if payload.len() < 9 {
        return Err(RequestError::ShortHeader(payload.len()));
    }
    let corr = rd_u64(payload);
    let tag = payload[8];
    let args = &payload[9..];
    let fixed = |verb: &'static str, want: usize| -> Result<(), RequestError> {
        if args.len() == want {
            Ok(())
        } else {
            Err(RequestError::BadArgs { corr, verb, want, have: args.len() })
        }
    };
    let req = match tag {
        verb::INSERT => {
            fixed("I", 8)?;
            BinRequest::Insert(rd_u32(args), rd_u32(&args[4..]))
        }
        verb::DELETE => {
            fixed("D", 8)?;
            BinRequest::Delete(rd_u32(args), rd_u32(&args[4..]))
        }
        verb::QUERY => {
            fixed("Q", 8)?;
            BinRequest::Query(rd_u32(args), rd_u32(&args[4..]))
        }
        verb::QUERY_GEN => {
            fixed("QG", 8)?;
            BinRequest::QueryGen(rd_u32(args), rd_u32(&args[4..]))
        }
        verb::BATCH => {
            if args.len() < 4 {
                return Err(RequestError::BadArgs { corr, verb: "B", want: 4, have: args.len() });
            }
            let k = rd_u32(args) as usize;
            if k > MAX_WIRE_BATCH {
                return Err(RequestError::BatchTooLarge { corr });
            }
            let want = 4 + k * 9;
            if args.len() != want {
                return Err(RequestError::BadArgs { corr, verb: "B", want, have: args.len() });
            }
            let mut ops = Vec::with_capacity(k);
            for chunk in args[4..].chunks_exact(9) {
                let (u, v) = (rd_u32(&chunk[1..]), rd_u32(&chunk[5..]));
                ops.push(match chunk[0] {
                    0 => Update::Insert(u, v),
                    1 => Update::Delete(u, v),
                    2 => Update::Query(u, v),
                    t => return Err(RequestError::BadBatchTag { corr, tag: t }),
                });
            }
            BinRequest::Batch(ops)
        }
        verb::EPOCH => {
            fixed("EPOCH", 0)?;
            BinRequest::Epoch
        }
        verb::WAIT => {
            fixed("WAIT", 16)?;
            BinRequest::Wait { epoch: rd_u64(args), timeout_ms: rd_u64(&args[8..]) }
        }
        verb::PING => {
            fixed("PING", 0)?;
            BinRequest::Ping
        }
        verb::QUIESCE => {
            fixed("QUIESCE", 8)?;
            BinRequest::Quiesce { timeout_ms: rd_u64(args) }
        }
        verb::GEN => {
            fixed("GEN", 0)?;
            BinRequest::Gen
        }
        verb::TOPK => {
            fixed("TOPK", 1)?;
            BinRequest::Topk { k: args[0] }
        }
        verb::HIST => {
            fixed("HIST", 0)?;
            BinRequest::Hist
        }
        verb::SIZE => {
            fixed("SIZE", 4)?;
            BinRequest::Size(rd_u32(args))
        }
        verb::SUBSCRIBE => {
            fixed("SUB", 10)?;
            let kind = SubKind::from_code(args[0])
                .ok_or(RequestError::BadSubKind { corr, kind: args[0] })?;
            BinRequest::Subscribe {
                kind,
                u: rd_u32(&args[1..]),
                v: rd_u32(&args[5..]),
                durable: args[9] & 1 != 0,
            }
        }
        verb::UNSUBSCRIBE => {
            fixed("UNSUB", 8)?;
            BinRequest::Unsubscribe { id: rd_u64(args) }
        }
        t => return Err(RequestError::UnknownVerb { corr, tag: t }),
    };
    Ok((corr, req))
}

/// Encodes a request frame (header + args, ready for [`frame`]).
pub fn encode_request(corr: u64, req: &BinRequest) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    p.extend_from_slice(&corr.to_le_bytes());
    match req {
        BinRequest::Insert(u, v) => {
            p.push(verb::INSERT);
            p.extend_from_slice(&u.to_le_bytes());
            p.extend_from_slice(&v.to_le_bytes());
        }
        BinRequest::Delete(u, v) => {
            p.push(verb::DELETE);
            p.extend_from_slice(&u.to_le_bytes());
            p.extend_from_slice(&v.to_le_bytes());
        }
        BinRequest::Query(u, v) => {
            p.push(verb::QUERY);
            p.extend_from_slice(&u.to_le_bytes());
            p.extend_from_slice(&v.to_le_bytes());
        }
        BinRequest::QueryGen(u, v) => {
            p.push(verb::QUERY_GEN);
            p.extend_from_slice(&u.to_le_bytes());
            p.extend_from_slice(&v.to_le_bytes());
        }
        BinRequest::Batch(ops) => {
            p.push(verb::BATCH);
            p.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for op in ops {
                let (tag, u, v) = match *op {
                    Update::Insert(u, v) => (0u8, u, v),
                    Update::Delete(u, v) => (1u8, u, v),
                    Update::Query(u, v) => (2u8, u, v),
                };
                p.push(tag);
                p.extend_from_slice(&u.to_le_bytes());
                p.extend_from_slice(&v.to_le_bytes());
            }
        }
        BinRequest::Epoch => p.push(verb::EPOCH),
        BinRequest::Wait { epoch, timeout_ms } => {
            p.push(verb::WAIT);
            p.extend_from_slice(&epoch.to_le_bytes());
            p.extend_from_slice(&timeout_ms.to_le_bytes());
        }
        BinRequest::Ping => p.push(verb::PING),
        BinRequest::Quiesce { timeout_ms } => {
            p.push(verb::QUIESCE);
            p.extend_from_slice(&timeout_ms.to_le_bytes());
        }
        BinRequest::Gen => p.push(verb::GEN),
        BinRequest::Topk { k } => {
            p.push(verb::TOPK);
            p.push(*k);
        }
        BinRequest::Hist => p.push(verb::HIST),
        BinRequest::Size(v) => {
            p.push(verb::SIZE);
            p.extend_from_slice(&v.to_le_bytes());
        }
        BinRequest::Subscribe { kind, u, v, durable } => {
            p.push(verb::SUBSCRIBE);
            p.push(kind.code());
            p.extend_from_slice(&u.to_le_bytes());
            p.extend_from_slice(&v.to_le_bytes());
            p.push(*durable as u8);
        }
        BinRequest::Unsubscribe { id } => {
            p.push(verb::UNSUBSCRIBE);
            p.extend_from_slice(&id.to_le_bytes());
        }
    }
    p
}

/// Wraps a payload in the `len|crc|payload` frame envelope.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    append_record(&mut out, payload).expect("writing to a Vec cannot fail");
    out
}

/// A decoded response (the server-to-client half of [`Reply`]'s bodies).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// OK with no body (`I`, `D`, `PING`).
    Ok,
    /// `Q` answer.
    Bit(bool),
    /// `QG` answer with optional generation tag.
    BitGen(bool, Option<u64>),
    /// `B` answers, one per query op in submission order.
    Answers(Vec<(bool, Option<u64>)>),
    /// `EPOCH` / `WAIT` epoch, or `QUIESCE` generation.
    Value(u64),
    /// `GEN` counters.
    Gen {
        /// Current generation number.
        generation: u64,
        /// Whether deletions have dirtied the live generation.
        dirty: bool,
        /// Completed rebuilds.
        rebuilds: u64,
        /// Forest (spanning) edges tracked.
        forest: u64,
        /// Non-forest edges tracked.
        nonforest: u64,
        /// Deletes of absent edges observed.
        absent: u64,
    },
    /// `TOPK` answer: view stamp plus `(root, size)` pairs, largest first.
    Topk {
        /// Last delta epoch folded into the published view.
        epoch: u64,
        /// Generation the view belongs to.
        generation: u64,
        /// Whether the view is frozen at a sealed generation.
        sealed: bool,
        /// `(root, size)` pairs, size-descending; singletons excluded.
        entries: Vec<(u32, u64)>,
    },
    /// `HIST` answer: view stamp, live component count, and the full
    /// log2-bucketed size histogram (bucket `b` counts components of size
    /// in `[2^b, 2^(b+1))`).
    Hist {
        /// Last delta epoch folded into the published view.
        epoch: u64,
        /// Generation the view belongs to.
        generation: u64,
        /// Whether the view is frozen at a sealed generation.
        sealed: bool,
        /// Live component count (histogram buckets sum to this).
        components: u64,
        /// All histogram buckets, including zeros.
        buckets: Vec<u64>,
    },
    /// `SIZE` answer: the component's size and canonical root.
    Size {
        /// Number of vertices in the component.
        size: u64,
        /// Root (representative vertex) of the component.
        root: u32,
    },
    /// `SUB` answer: the subscription id plus the committed epoch at
    /// registration (events only report merges after this epoch).
    Subscribed {
        /// Server-assigned subscription id.
        id: u64,
        /// Committed epoch when the registration took effect.
        epoch: u64,
    },
    /// ERR with the text-protocol message spelling.
    Err(String),
}

/// Encodes a response frame payload: `corr|status|body`.
pub fn encode_reply(corr: u64, reply: &Reply) -> Vec<u8> {
    let mut p = Vec::with_capacity(16);
    p.extend_from_slice(&corr.to_le_bytes());
    match reply {
        Reply::Err(msg) => {
            p.push(STATUS_ERR);
            p.extend_from_slice(msg.as_bytes());
            return p;
        }
        Reply::Ok => p.push(STATUS_OK),
        Reply::Bit(b) => {
            p.push(STATUS_OK);
            p.push(*b as u8);
        }
        Reply::BitGen(b, gen) => {
            p.push(STATUS_OK);
            push_tagged(&mut p, *b, *gen);
        }
        Reply::Answers(answers) => {
            p.push(STATUS_OK);
            p.extend_from_slice(&(answers.len() as u32).to_le_bytes());
            for &(b, gen) in answers {
                push_tagged(&mut p, b, gen);
            }
        }
        Reply::Value(v) => {
            p.push(STATUS_OK);
            p.extend_from_slice(&v.to_le_bytes());
        }
        Reply::Gen { generation, dirty, rebuilds, forest, nonforest, absent } => {
            p.push(STATUS_OK);
            p.extend_from_slice(&generation.to_le_bytes());
            p.push(*dirty as u8);
            for v in [rebuilds, forest, nonforest, absent] {
                p.extend_from_slice(&v.to_le_bytes());
            }
        }
        Reply::Topk { epoch, generation, sealed, entries } => {
            p.push(STATUS_OK);
            p.extend_from_slice(&epoch.to_le_bytes());
            p.extend_from_slice(&generation.to_le_bytes());
            p.push(*sealed as u8);
            p.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for &(root, size) in entries {
                p.extend_from_slice(&root.to_le_bytes());
                p.extend_from_slice(&size.to_le_bytes());
            }
        }
        Reply::Hist { epoch, generation, sealed, components, buckets } => {
            p.push(STATUS_OK);
            p.extend_from_slice(&epoch.to_le_bytes());
            p.extend_from_slice(&generation.to_le_bytes());
            p.push(*sealed as u8);
            p.extend_from_slice(&components.to_le_bytes());
            p.extend_from_slice(&(buckets.len() as u32).to_le_bytes());
            for b in buckets {
                p.extend_from_slice(&b.to_le_bytes());
            }
        }
        Reply::Size { size, root } => {
            p.push(STATUS_OK);
            p.extend_from_slice(&size.to_le_bytes());
            p.extend_from_slice(&root.to_le_bytes());
        }
        Reply::Subscribed { id, epoch } => {
            p.push(STATUS_OK);
            p.extend_from_slice(&id.to_le_bytes());
            p.extend_from_slice(&epoch.to_le_bytes());
        }
    }
    p
}

/// Encodes an unsolicited event frame payload: `corr|STATUS_EVT|event`,
/// where `corr` is the `SUB` registration's correlation id.
pub fn encode_event(corr: u64, ev: &SubEvent) -> Vec<u8> {
    let mut p = Vec::with_capacity(9 + 53);
    p.extend_from_slice(&corr.to_le_bytes());
    p.push(STATUS_EVT);
    p.extend_from_slice(&ev.id.to_le_bytes());
    p.push(ev.kind.code());
    p.extend_from_slice(&ev.u.to_le_bytes());
    p.extend_from_slice(&ev.v.to_le_bytes());
    p.extend_from_slice(&ev.root.to_le_bytes());
    p.extend_from_slice(&ev.size.to_le_bytes());
    p.extend_from_slice(&ev.epoch.to_le_bytes());
    p.extend_from_slice(&ev.generation.to_le_bytes());
    p.extend_from_slice(&ev.seq.to_le_bytes());
    p
}

/// Decodes an event frame payload (status byte already known to be
/// [`STATUS_EVT`]). Returns `(registration_corr, event)`.
pub fn decode_event(payload: &[u8]) -> io::Result<(u64, SubEvent)> {
    if payload.len() != 9 + 53 || payload[8] != STATUS_EVT {
        return Err(bad_reply("EVT"));
    }
    let corr = rd_u64(payload);
    let b = &payload[9..];
    let kind = SubKind::from_code(b[8]).ok_or_else(|| bad_reply("EVT"))?;
    Ok((
        corr,
        SubEvent {
            id: rd_u64(b),
            kind,
            u: rd_u32(&b[9..]),
            v: rd_u32(&b[13..]),
            root: rd_u32(&b[17..]),
            size: rd_u64(&b[21..]),
            epoch: rd_u64(&b[29..]),
            generation: rd_u64(&b[37..]),
            seq: rd_u64(&b[45..]),
        },
    ))
}

fn push_tagged(p: &mut Vec<u8>, bit: bool, gen: Option<u64>) {
    p.push(bit as u8);
    p.push(gen.is_some() as u8);
    p.extend_from_slice(&gen.unwrap_or(0).to_le_bytes());
}

fn read_tagged(b: &[u8]) -> Option<(bool, Option<u64>)> {
    if b.len() < 10 {
        return None;
    }
    let gen = if b[1] != 0 { Some(rd_u64(&b[2..])) } else { None };
    Some((b[0] != 0, gen))
}

fn bad_reply(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed {what} reply body"))
}

/// Decodes a response frame payload given the verb tag of the request it
/// answers. Returns `(corr, reply)`.
pub fn decode_reply(payload: &[u8], req_verb: u8) -> io::Result<(u64, Reply)> {
    if payload.len() < 9 {
        return Err(bad_reply("short"));
    }
    let corr = rd_u64(payload);
    let status = payload[8];
    let body = &payload[9..];
    if status == STATUS_ERR {
        return Ok((corr, Reply::Err(String::from_utf8_lossy(body).into_owned())));
    }
    if status != STATUS_OK {
        return Err(bad_reply("unknown-status"));
    }
    let reply = match req_verb {
        verb::INSERT | verb::DELETE | verb::PING | verb::UNSUBSCRIBE => Reply::Ok,
        verb::SUBSCRIBE => {
            if body.len() != 16 {
                return Err(bad_reply("SUB"));
            }
            Reply::Subscribed { id: rd_u64(body), epoch: rd_u64(&body[8..]) }
        }
        verb::QUERY => {
            if body.len() != 1 {
                return Err(bad_reply("Q"));
            }
            Reply::Bit(body[0] != 0)
        }
        verb::QUERY_GEN => {
            let (b, gen) = read_tagged(body).ok_or_else(|| bad_reply("QG"))?;
            Reply::BitGen(b, gen)
        }
        verb::BATCH => {
            if body.len() < 4 {
                return Err(bad_reply("B"));
            }
            let k = rd_u32(body) as usize;
            if body.len() != 4 + k * 10 {
                return Err(bad_reply("B"));
            }
            let mut answers = Vec::with_capacity(k);
            for chunk in body[4..].chunks_exact(10) {
                answers.push(read_tagged(chunk).ok_or_else(|| bad_reply("B"))?);
            }
            Reply::Answers(answers)
        }
        verb::EPOCH | verb::WAIT | verb::QUIESCE => {
            if body.len() != 8 {
                return Err(bad_reply("epoch"));
            }
            Reply::Value(rd_u64(body))
        }
        verb::GEN => {
            if body.len() != 41 {
                return Err(bad_reply("GEN"));
            }
            Reply::Gen {
                generation: rd_u64(body),
                dirty: body[8] != 0,
                rebuilds: rd_u64(&body[9..]),
                forest: rd_u64(&body[17..]),
                nonforest: rd_u64(&body[25..]),
                absent: rd_u64(&body[33..]),
            }
        }
        verb::TOPK => {
            if body.len() < 21 {
                return Err(bad_reply("TOPK"));
            }
            let k = rd_u32(&body[17..]) as usize;
            if body.len() != 21 + k * 12 {
                return Err(bad_reply("TOPK"));
            }
            let mut entries = Vec::with_capacity(k);
            for chunk in body[21..].chunks_exact(12) {
                entries.push((rd_u32(chunk), rd_u64(&chunk[4..])));
            }
            Reply::Topk {
                epoch: rd_u64(body),
                generation: rd_u64(&body[8..]),
                sealed: body[16] != 0,
                entries,
            }
        }
        verb::HIST => {
            if body.len() < 29 {
                return Err(bad_reply("HIST"));
            }
            let k = rd_u32(&body[25..]) as usize;
            if body.len() != 29 + k * 8 {
                return Err(bad_reply("HIST"));
            }
            let mut buckets = Vec::with_capacity(k);
            for chunk in body[29..].chunks_exact(8) {
                buckets.push(rd_u64(chunk));
            }
            Reply::Hist {
                epoch: rd_u64(body),
                generation: rd_u64(&body[8..]),
                sealed: body[16] != 0,
                components: rd_u64(&body[17..]),
                buckets,
            }
        }
        verb::SIZE => {
            if body.len() != 12 {
                return Err(bad_reply("SIZE"));
            }
            Reply::Size { size: rd_u64(body), root: rd_u32(&body[8..]) }
        }
        _ => return Err(bad_reply("unknown-verb")),
    };
    Ok((corr, reply))
}

/// Incremental frame reassembly for nonblocking reads: bytes go in as they
/// arrive, whole payloads come out. Also owns the stream-magic check so the
/// event loop and the fuzz tests share one state machine.
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted lazily).
    start: usize,
    magic_seen: bool,
    /// First frame-level error seen; sticky — a corrupt stream is never
    /// resynchronized, every further call re-reports it.
    poisoned: Option<FrameError>,
}

impl Default for FrameAssembler {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameAssembler {
    /// An assembler expecting [`STREAM_MAGIC`] first.
    pub fn new() -> FrameAssembler {
        FrameAssembler { buf: Vec::new(), start: 0, magic_seen: false, poisoned: None }
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 && (self.start >= self.buf.len() || self.start > (1 << 16)) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame payload, `Ok(None)` if more bytes
    /// are needed. After any `Err` the assembler is poisoned: every further
    /// call returns that same failure, mirroring the server's
    /// close-on-bad-frame contract.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if !self.magic_seen {
            if self.pending() < MAGIC_LEN {
                return Ok(None);
            }
            let got = &self.buf[self.start..self.start + MAGIC_LEN];
            if got != STREAM_MAGIC {
                return Err(self.poison(FrameError::BadMagic));
            }
            self.start += MAGIC_LEN;
            self.magic_seen = true;
        }
        if self.pending() < 8 {
            return Ok(None);
        }
        let head = &self.buf[self.start..];
        let len = rd_u32(head);
        let stored = rd_u32(&head[4..]);
        if len > MAX_FRAME_PAYLOAD {
            return Err(self.poison(FrameError::Oversized(len)));
        }
        let total = 8 + len as usize;
        if self.pending() < total {
            return Ok(None);
        }
        let payload = &self.buf[self.start + 8..self.start + total];
        let computed = crc32(payload);
        if computed != stored {
            return Err(self.poison(FrameError::CrcMismatch { stored, computed }));
        }
        let out = payload.to_vec();
        self.start += total;
        Ok(Some(out))
    }

    fn poison(&mut self, e: FrameError) -> FrameError {
        self.poisoned = Some(e.clone());
        e
    }
}

/// Blocking, pipelined binary client: `send_*` methods enqueue requests
/// and return their correlation ids; [`BinClient::reap`] flushes and blocks
/// for the next response, in whatever order the server completed them.
pub struct BinClient {
    writer: io::BufWriter<TcpStream>,
    reader: RecordReader<TcpStream>,
    /// corr -> request verb tag, so responses can be decoded.
    pending: HashMap<u64, u8>,
    next_corr: u64,
    /// Pushed subscription events reaped while waiting for replies, as
    /// `(registration_corr, event)`; drained by [`BinClient::take_events`].
    events: VecDeque<(u64, SubEvent)>,
}

impl BinClient {
    /// Connects, enables `TCP_NODELAY`, and sends the stream magic.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<BinClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = RecordReader::new(stream.try_clone()?, 0);
        let mut writer = io::BufWriter::new(stream);
        writer.write_all(&STREAM_MAGIC)?;
        Ok(BinClient {
            writer,
            reader,
            pending: HashMap::new(),
            next_corr: 1,
            events: VecDeque::new(),
        })
    }

    /// Requests sent but not yet reaped.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn send(&mut self, req: &BinRequest) -> io::Result<u64> {
        let corr = self.next_corr;
        self.next_corr += 1;
        let tag = match req {
            BinRequest::Insert(..) => verb::INSERT,
            BinRequest::Delete(..) => verb::DELETE,
            BinRequest::Query(..) => verb::QUERY,
            BinRequest::QueryGen(..) => verb::QUERY_GEN,
            BinRequest::Batch(_) => verb::BATCH,
            BinRequest::Epoch => verb::EPOCH,
            BinRequest::Wait { .. } => verb::WAIT,
            BinRequest::Ping => verb::PING,
            BinRequest::Quiesce { .. } => verb::QUIESCE,
            BinRequest::Gen => verb::GEN,
            BinRequest::Topk { .. } => verb::TOPK,
            BinRequest::Hist => verb::HIST,
            BinRequest::Size(_) => verb::SIZE,
            BinRequest::Subscribe { .. } => verb::SUBSCRIBE,
            BinRequest::Unsubscribe { .. } => verb::UNSUBSCRIBE,
        };
        append_record(&mut self.writer, &encode_request(corr, req))?;
        self.pending.insert(corr, tag);
        Ok(corr)
    }

    /// Pipelines an insert; returns its correlation id.
    pub fn send_insert(&mut self, u: u32, v: u32) -> io::Result<u64> {
        self.send(&BinRequest::Insert(u, v))
    }

    /// Pipelines a delete; returns its correlation id.
    pub fn send_delete(&mut self, u: u32, v: u32) -> io::Result<u64> {
        self.send(&BinRequest::Delete(u, v))
    }

    /// Pipelines a query; returns its correlation id.
    pub fn send_query(&mut self, u: u32, v: u32) -> io::Result<u64> {
        self.send(&BinRequest::Query(u, v))
    }

    /// Pipelines a generation-tagged query; returns its correlation id.
    pub fn send_query_gen(&mut self, u: u32, v: u32) -> io::Result<u64> {
        self.send(&BinRequest::QueryGen(u, v))
    }

    /// Pipelines a mixed batch; returns its correlation id.
    pub fn send_batch(&mut self, ops: &[Update]) -> io::Result<u64> {
        self.send(&BinRequest::Batch(ops.to_vec()))
    }

    /// Pipelines an `EPOCH` read; returns its correlation id.
    pub fn send_epoch(&mut self) -> io::Result<u64> {
        self.send(&BinRequest::Epoch)
    }

    /// Pipelines a `WAIT`; returns its correlation id.
    pub fn send_wait(&mut self, epoch: u64, timeout_ms: u64) -> io::Result<u64> {
        self.send(&BinRequest::Wait { epoch, timeout_ms })
    }

    /// Pipelines a `PING`; returns its correlation id.
    pub fn send_ping(&mut self) -> io::Result<u64> {
        self.send(&BinRequest::Ping)
    }

    /// Pipelines a `QUIESCE`; returns its correlation id.
    pub fn send_quiesce(&mut self, timeout_ms: u64) -> io::Result<u64> {
        self.send(&BinRequest::Quiesce { timeout_ms })
    }

    /// Pipelines a `GEN` read; returns its correlation id.
    pub fn send_gen(&mut self) -> io::Result<u64> {
        self.send(&BinRequest::Gen)
    }

    /// Pipelines a `TOPK` read; returns its correlation id.
    pub fn send_topk(&mut self, k: u8) -> io::Result<u64> {
        self.send(&BinRequest::Topk { k })
    }

    /// Pipelines a `HIST` read; returns its correlation id.
    pub fn send_hist(&mut self) -> io::Result<u64> {
        self.send(&BinRequest::Hist)
    }

    /// Pipelines a `SIZE` read; returns its correlation id.
    pub fn send_size(&mut self, v: u32) -> io::Result<u64> {
        self.send(&BinRequest::Size(v))
    }

    /// Pipelines a `SUB` registration; returns its correlation id (also
    /// the id future event frames for this subscription will carry).
    pub fn send_subscribe(
        &mut self,
        kind: SubKind,
        u: u32,
        v: u32,
        durable: bool,
    ) -> io::Result<u64> {
        self.send(&BinRequest::Subscribe { kind, u, v, durable })
    }

    /// Pipelines an `UNSUB`; returns its correlation id.
    pub fn send_unsubscribe(&mut self, id: u64) -> io::Result<u64> {
        self.send(&BinRequest::Unsubscribe { id })
    }

    /// Pushes buffered request bytes onto the wire.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Flushes, then blocks for the next response frame — not necessarily
    /// for the oldest request; the server completes out of order. Pushed
    /// event frames encountered on the way are stashed for
    /// [`BinClient::take_events`], never returned here.
    pub fn reap(&mut self) -> io::Result<(u64, Reply)> {
        self.flush()?;
        loop {
            let payload = self
                .reader
                .next()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
                })?;
            if payload.len() < 9 {
                return Err(bad_reply("short"));
            }
            if payload[8] == STATUS_EVT {
                self.events.push_back(decode_event(&payload)?);
                continue;
            }
            let corr = rd_u64(&payload);
            let tag = self.pending.remove(&corr).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response for unknown correlation id {corr}"),
                )
            })?;
            return decode_reply(&payload, tag);
        }
    }

    /// Blocks for the next pushed subscription event, draining any stashed
    /// ones first. Frames answering in-flight requests are an error here —
    /// reap those before waiting on the event stream.
    pub fn recv_event(&mut self) -> io::Result<(u64, SubEvent)> {
        if let Some(ev) = self.events.pop_front() {
            return Ok(ev);
        }
        self.flush()?;
        let payload = self
            .reader
            .next()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
            })?;
        decode_event(&payload)
    }

    /// Drains every event stashed by [`BinClient::reap`] so far.
    pub fn take_events(&mut self) -> Vec<(u64, SubEvent)> {
        self.events.drain(..).collect()
    }

    /// Reaps until `corr` answers, buffering nothing: out-of-order replies
    /// for other requests are an error in this convenience path, so only
    /// use it when `corr` is the sole in-flight request.
    fn reap_exact(&mut self, corr: u64) -> io::Result<Reply> {
        let (got, reply) = self.reap()?;
        if got != corr {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected reply for {corr}, got {got}"),
            ));
        }
        Ok(reply)
    }

    fn expect_ok(reply: Reply) -> io::Result<Reply> {
        match reply {
            Reply::Err(msg) => Err(io::Error::other(format!("server error: {msg}"))),
            other => Ok(other),
        }
    }

    /// Synchronous insert.
    pub fn insert(&mut self, u: u32, v: u32) -> io::Result<()> {
        let corr = self.send_insert(u, v)?;
        Self::expect_ok(self.reap_exact(corr)?).map(|_| ())
    }

    /// Synchronous delete.
    pub fn delete(&mut self, u: u32, v: u32) -> io::Result<()> {
        let corr = self.send_delete(u, v)?;
        Self::expect_ok(self.reap_exact(corr)?).map(|_| ())
    }

    /// Synchronous connectivity query.
    pub fn query(&mut self, u: u32, v: u32) -> io::Result<bool> {
        let corr = self.send_query(u, v)?;
        match Self::expect_ok(self.reap_exact(corr)?)? {
            Reply::Bit(b) => Ok(b),
            other => Err(io::Error::other(format!("unexpected Q reply {other:?}"))),
        }
    }

    /// Synchronous generation-tagged query.
    pub fn query_gen(&mut self, u: u32, v: u32) -> io::Result<(bool, Option<u64>)> {
        let corr = self.send_query_gen(u, v)?;
        match Self::expect_ok(self.reap_exact(corr)?)? {
            Reply::BitGen(b, g) => Ok((b, g)),
            other => Err(io::Error::other(format!("unexpected QG reply {other:?}"))),
        }
    }

    /// Synchronous mixed batch; answers in query submission order.
    pub fn submit(&mut self, ops: &[Update]) -> io::Result<Vec<(bool, Option<u64>)>> {
        let corr = self.send_batch(ops)?;
        match Self::expect_ok(self.reap_exact(corr)?)? {
            Reply::Answers(a) => Ok(a),
            other => Err(io::Error::other(format!("unexpected B reply {other:?}"))),
        }
    }

    /// Synchronous `EPOCH` read.
    pub fn epoch(&mut self) -> io::Result<u64> {
        let corr = self.send_epoch()?;
        match Self::expect_ok(self.reap_exact(corr)?)? {
            Reply::Value(v) => Ok(v),
            other => Err(io::Error::other(format!("unexpected EPOCH reply {other:?}"))),
        }
    }

    /// Synchronous `WAIT` for an epoch.
    pub fn wait_epoch(&mut self, epoch: u64, timeout_ms: u64) -> io::Result<u64> {
        let corr = self.send_wait(epoch, timeout_ms)?;
        match Self::expect_ok(self.reap_exact(corr)?)? {
            Reply::Value(v) => Ok(v),
            other => Err(io::Error::other(format!("unexpected WAIT reply {other:?}"))),
        }
    }

    /// Synchronous `QUIESCE`; returns the clean generation.
    pub fn quiesce(&mut self, timeout_ms: u64) -> io::Result<u64> {
        let corr = self.send_quiesce(timeout_ms)?;
        match Self::expect_ok(self.reap_exact(corr)?)? {
            Reply::Value(v) => Ok(v),
            other => Err(io::Error::other(format!("unexpected QUIESCE reply {other:?}"))),
        }
    }

    /// Synchronous liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        let corr = self.send_ping()?;
        Self::expect_ok(self.reap_exact(corr)?).map(|_| ())
    }

    /// Synchronous `TOPK` read: `(entries, epoch, generation, sealed)`,
    /// entries size-descending with singletons excluded.
    #[allow(clippy::type_complexity)]
    pub fn topk(&mut self, k: u8) -> io::Result<(Vec<(u32, u64)>, u64, u64, bool)> {
        let corr = self.send_topk(k)?;
        match Self::expect_ok(self.reap_exact(corr)?)? {
            Reply::Topk { epoch, generation, sealed, entries } => {
                Ok((entries, epoch, generation, sealed))
            }
            other => Err(io::Error::other(format!("unexpected TOPK reply {other:?}"))),
        }
    }

    /// Synchronous `HIST` read: `(components, buckets, epoch, generation,
    /// sealed)` with the dense log2 bucket array.
    #[allow(clippy::type_complexity)]
    pub fn hist(&mut self) -> io::Result<(u64, Vec<u64>, u64, u64, bool)> {
        let corr = self.send_hist()?;
        match Self::expect_ok(self.reap_exact(corr)?)? {
            Reply::Hist { epoch, generation, sealed, components, buckets } => {
                Ok((components, buckets, epoch, generation, sealed))
            }
            other => Err(io::Error::other(format!("unexpected HIST reply {other:?}"))),
        }
    }

    /// Synchronous `SUB` registration: `(subscription_id, epoch, corr)`.
    /// Events for this subscription arrive tagged with `corr`.
    pub fn subscribe(
        &mut self,
        kind: SubKind,
        u: u32,
        v: u32,
        durable: bool,
    ) -> io::Result<(u64, u64, u64)> {
        let corr = self.send_subscribe(kind, u, v, durable)?;
        match Self::expect_ok(self.reap_exact(corr)?)? {
            Reply::Subscribed { id, epoch } => Ok((id, epoch, corr)),
            other => Err(io::Error::other(format!("unexpected SUB reply {other:?}"))),
        }
    }

    /// Synchronous `UNSUB`.
    pub fn unsubscribe(&mut self, id: u64) -> io::Result<()> {
        let corr = self.send_unsubscribe(id)?;
        Self::expect_ok(self.reap_exact(corr)?).map(|_| ())
    }

    /// Synchronous `SIZE` read: `(size, root)` of `v`'s component.
    pub fn component_size(&mut self, v: u32) -> io::Result<(u64, u32)> {
        let corr = self.send_size(v)?;
        match Self::expect_ok(self.reap_exact(corr)?)? {
            Reply::Size { size, root } => Ok((size, root)),
            other => Err(io::Error::other(format!("unexpected SIZE reply {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(req: BinRequest) {
        let corr = 0xDEAD_BEEF_u64;
        let payload = encode_request(corr, &req);
        let (got_corr, got) = decode_request(&payload).expect("decode");
        assert_eq!(got_corr, corr);
        assert_eq!(got, req);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip(BinRequest::Insert(1, 2));
        roundtrip(BinRequest::Delete(3, 4));
        roundtrip(BinRequest::Query(5, 6));
        roundtrip(BinRequest::QueryGen(7, 8));
        roundtrip(BinRequest::Batch(vec![
            Update::Insert(1, 2),
            Update::Delete(3, 4),
            Update::Query(5, 6),
        ]));
        roundtrip(BinRequest::Epoch);
        roundtrip(BinRequest::Wait { epoch: 42, timeout_ms: 1000 });
        roundtrip(BinRequest::Ping);
        roundtrip(BinRequest::Quiesce { timeout_ms: 9 });
        roundtrip(BinRequest::Gen);
        roundtrip(BinRequest::Topk { k: 10 });
        roundtrip(BinRequest::Hist);
        roundtrip(BinRequest::Size(7));
        roundtrip(BinRequest::Subscribe { kind: SubKind::Pair, u: 3, v: 9, durable: true });
        roundtrip(BinRequest::Subscribe { kind: SubKind::Component, u: 5, v: 5, durable: false });
        roundtrip(BinRequest::Unsubscribe { id: 0x0102_0304_0506_0708 });
    }

    #[test]
    fn reply_roundtrips() {
        let cases: Vec<(Reply, u8)> = vec![
            (Reply::Ok, verb::INSERT),
            (Reply::Bit(true), verb::QUERY),
            (Reply::BitGen(false, Some(7)), verb::QUERY_GEN),
            (Reply::BitGen(true, None), verb::QUERY_GEN),
            (Reply::Answers(vec![(true, Some(3)), (false, None)]), verb::BATCH),
            (Reply::Value(99), verb::EPOCH),
            (
                Reply::Gen {
                    generation: 1,
                    dirty: true,
                    rebuilds: 2,
                    forest: 3,
                    nonforest: 4,
                    absent: 5,
                },
                verb::GEN,
            ),
            (
                Reply::Topk {
                    epoch: 12,
                    generation: 2,
                    sealed: true,
                    entries: vec![(0, 40), (9, 7)],
                },
                verb::TOPK,
            ),
            (Reply::Topk { epoch: 0, generation: 0, sealed: false, entries: vec![] }, verb::TOPK),
            (
                Reply::Hist {
                    epoch: 5,
                    generation: 1,
                    sealed: false,
                    components: 6,
                    buckets: vec![4, 0, 1, 1],
                },
                verb::HIST,
            ),
            (Reply::Size { size: 17, root: 3 }, verb::SIZE),
            (Reply::Subscribed { id: 12, epoch: 400 }, verb::SUBSCRIBE),
            (Reply::Ok, verb::UNSUBSCRIBE),
            (Reply::Err("vertex 9 out of range (n = 4)".into()), verb::QUERY),
        ];
        for (reply, tag) in cases {
            let payload = encode_reply(17, &reply);
            let (corr, got) = decode_reply(&payload, tag).expect("decode");
            assert_eq!(corr, 17);
            assert_eq!(got, reply);
        }
    }

    #[test]
    fn assembler_reassembles_split_frames() {
        let mut bytes = STREAM_MAGIC.to_vec();
        let p1 = encode_request(1, &BinRequest::Query(0, 1));
        let p2 = encode_request(2, &BinRequest::Epoch);
        bytes.extend_from_slice(&frame(&p1));
        bytes.extend_from_slice(&frame(&p2));
        // Feed one byte at a time: frames must come out whole and in order.
        let mut asm = FrameAssembler::new();
        let mut out = Vec::new();
        for b in bytes {
            asm.push(&[b]);
            while let Some(p) = asm.next_frame().expect("clean stream") {
                out.push(p);
            }
        }
        assert_eq!(out, vec![p1, p2]);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn assembler_rejects_bad_magic_and_stays_poisoned() {
        let mut asm = FrameAssembler::new();
        asm.push(b"\xccNOTMAGI");
        assert_eq!(asm.next_frame(), Err(FrameError::BadMagic));
        assert!(asm.next_frame().is_err(), "poisoned after frame error");
    }

    #[test]
    fn assembler_rejects_oversized_and_corrupt_frames() {
        let mut asm = FrameAssembler::new();
        asm.push(&STREAM_MAGIC);
        asm.push(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        asm.push(&[0u8; 4]);
        assert_eq!(asm.next_frame(), Err(FrameError::Oversized(MAX_FRAME_PAYLOAD + 1)));

        let mut asm = FrameAssembler::new();
        asm.push(&STREAM_MAGIC);
        let mut f = frame(&encode_request(1, &BinRequest::Ping));
        let last = f.len() - 1;
        f[last] ^= 0xFF; // flip a payload byte -> CRC mismatch
        asm.push(&f);
        assert!(matches!(asm.next_frame(), Err(FrameError::CrcMismatch { .. })));
    }

    #[test]
    fn error_spellings_are_wire_stable() {
        assert_eq!(FrameError::BadMagic.to_string(), "bad frame: unknown binary stream magic");
        assert_eq!(
            FrameError::Oversized(MAX_FRAME_PAYLOAD + 1).to_string(),
            format!(
                "bad frame: oversized payload {} (max {MAX_FRAME_PAYLOAD})",
                MAX_FRAME_PAYLOAD + 1
            )
        );
        assert_eq!(
            RequestError::ShortHeader(3).to_string(),
            "bad frame: request header needs 9 bytes, have 3"
        );
        assert_eq!(
            RequestError::UnknownVerb { corr: 0, tag: 0x2A }.to_string(),
            "unknown binary verb 0x2a"
        );
        assert_eq!(
            RequestError::BadArgs { corr: 0, verb: "Q", want: 8, have: 3 }.to_string(),
            "bad Q payload: need 8 bytes, have 3"
        );
        assert_eq!(
            RequestError::BatchTooLarge { corr: 0 }.to_string(),
            format!("batch too large (max {MAX_WIRE_BATCH})")
        );
        assert_eq!(
            RequestError::BadSubKind { corr: 0, kind: 7 }.to_string(),
            "bad SUB payload: unknown subscription kind 0x07"
        );
    }

    #[test]
    fn event_frames_roundtrip() {
        let ev = SubEvent {
            id: 42,
            kind: SubKind::Component,
            u: 6,
            v: 6,
            root: 2,
            size: 17,
            epoch: 900,
            generation: 3,
            seq: 5,
        };
        let payload = encode_event(77, &ev);
        assert_eq!(payload.len(), 9 + 53);
        assert_eq!(payload[8], STATUS_EVT);
        let (corr, got) = decode_event(&payload).expect("decode");
        assert_eq!(corr, 77);
        assert_eq!(got, ev);
        // A truncated event frame is rejected, not misread.
        assert!(decode_event(&payload[..payload.len() - 1]).is_err());
    }

    #[test]
    fn bad_sub_kind_is_recoverable() {
        let mut payload = encode_request(
            9,
            &BinRequest::Subscribe { kind: SubKind::Pair, u: 1, v: 2, durable: false },
        );
        payload[9] = 0x07; // corrupt the kind byte
        let err = decode_request(&payload).expect_err("bad kind must not decode");
        assert_eq!(err.corr(), Some(9), "recoverable: answers on the request corr");
    }
}
