//! End-to-end observability contract: a churn workload (inserts,
//! deletes, queries, rebuilds, fsyncs) must populate the metrics
//! registry and the flight recorder, counters must be monotone across
//! scrapes, and the recorder's trace file must survive a shutdown and
//! be consumed (logged and removed) by the next run's recovery.

use cc_server::wal::{DurabilityConfig, FsyncPolicy};
use cc_server::{Service, ServiceConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cc_obs_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn durable_cfg(n: usize, dir: &std::path::Path) -> ServiceConfig {
    ServiceConfig {
        n,
        shards: 2,
        batch_max_wait: Duration::from_micros(20),
        // `Always` so every appended batch records an fsync sample.
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::Always,
            ..DurabilityConfig::new(dir)
        }),
        ..ServiceConfig::default()
    }
}

/// Flattens an exposition dump into series-name → value, dropping
/// `# TYPE` comments. Labeled series keep their labels in the key.
fn scrape(lines: &[String]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for l in lines {
        if l.starts_with('#') {
            continue;
        }
        let (name, val) = l.rsplit_once(' ').unwrap_or_else(|| panic!("no value in {l}"));
        assert!(name.starts_with("connectit_"), "series outside the namespace: {l}");
        out.insert(name.to_string(), val.parse::<u64>().unwrap_or_else(|_| panic!("{l}")));
    }
    out
}

/// Drives inserts, deletes and queries through `rounds` cycles of
/// build-then-tear-down churn over a small ring of vertices.
fn churn(c: &cc_server::Client, rounds: u32) {
    for r in 0..rounds {
        for v in 0..31u32 {
            c.insert(v, v + 1).expect("insert");
        }
        assert!(c.query(0, 31).expect("query"), "chain connects end to end");
        // Tear out a mid-chain edge: a forest delete, which dirties the
        // generation engine and schedules a rebuild. Quiesce before
        // asserting — queries in the dirty window are answered (stale)
        // from the sealed generation by design.
        c.delete(15, 16).expect("delete");
        c.quiesce(Duration::from_secs(10)).expect("quiesce");
        assert!(!c.query(0, 31).expect("query"), "round {r}: cut chain disconnects");
    }
}

#[test]
fn churn_populates_registry_and_counters_stay_monotone() {
    let dir = tmp_dir("churn");
    let mut svc = Service::start(durable_cfg(64, &dir)).expect("service");
    let c = svc.client();
    churn(&c, 4);

    let first = scrape(&c.render_metrics());
    // Every instrumented layer reported: batcher, WAL, fsync path,
    // generation rebuilds.
    assert!(first["connectit_inserts_total"] >= 4 * 31, "{first:?}");
    assert!(first["connectit_deletes_total"] >= 4, "{first:?}");
    assert!(first["connectit_queries_total"] >= 8, "{first:?}");
    assert!(first["connectit_batches_total"] >= 1, "{first:?}");
    assert!(first["connectit_wal_records_total"] >= 1, "{first:?}");
    assert!(first["connectit_wal_bytes_total"] > 0, "{first:?}");
    assert!(first["connectit_wal_fsyncs_total"] >= 1, "{first:?}");
    assert!(first["connectit_rebuilds_committed_total"] >= 1, "{first:?}");
    // The histograms behind the summaries are non-empty.
    assert!(first["connectit_fsync_ns_count"] >= 1, "{first:?}");
    assert!(first["connectit_rebuild_duration_ns_count"] >= 1, "{first:?}");
    assert!(first["connectit_latency_ns_count"] > 0, "{first:?}");

    // More churn, then a second scrape: every `_total` counter is
    // monotone non-decreasing, and the write-path ones strictly grew.
    churn(&c, 2);
    let second = scrape(&c.render_metrics());
    for (name, &v1) in &first {
        if name.contains("_total") {
            let v2 = *second.get(name).unwrap_or_else(|| panic!("{name} vanished"));
            assert!(v2 >= v1, "{name} went backwards: {v1} -> {v2}");
        }
    }
    assert!(second["connectit_inserts_total"] > first["connectit_inserts_total"]);
    assert!(second["connectit_wal_fsyncs_total"] > first["connectit_wal_fsyncs_total"]);
    assert!(
        second["connectit_rebuilds_committed_total"] > first["connectit_rebuilds_committed_total"]
    );

    // The flight recorder saw the whole lifecycle.
    let trace = c.trace_events(4096).join("\n");
    for kind in [
        "BatchFormed",
        "WalAppend",
        "FsyncDone",
        "EngineApplied",
        "RebuildSealed",
        "RebuildCommitted",
    ] {
        assert!(trace.contains(kind), "no {kind} event in trace:\n{trace}");
    }
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_file_flushes_on_shutdown_and_recovery_consumes_it() {
    let dir = tmp_dir("trace_cycle");
    let trace_path = dir.join(format!("trace-{}.log", std::process::id()));
    {
        let mut svc = Service::start(durable_cfg(64, &dir)).expect("service");
        let c = svc.client();
        churn(&c, 2);
        svc.shutdown();
    }
    // Shutdown flushed the ring to `<wal-dir>/trace-<pid>.log` in the
    // wire format `T <seq> <t_us> <Kind> k=v ...`.
    let flushed = std::fs::read_to_string(&trace_path).expect("trace file flushed on shutdown");
    assert!(!flushed.trim().is_empty(), "trace file is empty");
    for l in flushed.lines() {
        let mut it = l.split(' ');
        assert_eq!(it.next(), Some("T"), "bad trace line {l:?}");
        it.next().expect("seq").parse::<u64>().expect("seq");
        it.next().expect("at_us").parse::<u64>().expect("timestamp");
        assert!(it.next().is_some(), "missing kind in {l:?}");
    }
    assert!(flushed.contains("FsyncDone"), "{flushed}");

    // Plant a leftover trace from a "killed" run alongside: recovery
    // must consume (remove) every trace-*.log it finds, including ours
    // from the previous block — this is the SIGKILL post-mortem path.
    let planted = dir.join("trace-99999.log");
    std::fs::write(&planted, "T 1 0 FsyncDone nanos=42\n").expect("plant trace");
    {
        let mut svc = Service::start(durable_cfg(64, &dir)).expect("recovers");
        assert!(!planted.exists(), "planted trace consumed by recovery");
        let c = svc.client();
        assert!(c.query_now(0, 1).expect("query"), "recovered state intact");
        // One write so the second run's ring holds events for the
        // shutdown flush to write out.
        c.insert(15, 16).expect("insert");
        svc.shutdown();
    }
    // The restart drained the old file, then its own shutdown flushed a
    // fresh one (same pid, same path) holding only the new run's events.
    let refreshed = std::fs::read_to_string(&trace_path).expect("second run flushed its trace");
    assert!(refreshed.starts_with("T 1 "), "fresh trace restarts sequence:\n{refreshed}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `connectit_components` gauge must move at merge/commit time, not
/// only at snapshot publish. This service runs with `snapshot_every: 0`
/// — label snapshots are never published — so before the analytics
/// plane took over the gauge it would have sat frozen at `n` forever;
/// now every connecting insert and every rebuild commit refreshes it.
#[test]
fn components_gauge_is_live_between_snapshots() {
    let mut svc = Service::start(ServiceConfig {
        n: 64,
        shards: 2,
        batch_max_wait: Duration::from_micros(20),
        // Deliberately no snapshot cadence: the old code path (gauge set
        // only inside publish_snapshot) would never run here.
        snapshot_every: 0,
        ..ServiceConfig::default()
    })
    .expect("service");
    let c = svc.client();

    let at_start = scrape(&c.render_metrics());
    assert_eq!(at_start["connectit_components"], 64, "fresh service: all singletons");

    // Ten connecting inserts -> ten merges folded into the gauge as the
    // batches apply, no snapshot in sight.
    for v in 0..10u32 {
        c.insert(v, v + 1).expect("insert");
    }
    c.quiesce(Duration::from_secs(10)).expect("quiesce");
    let after_chain = scrape(&c.render_metrics());
    assert_eq!(after_chain["connectit_components"], 54, "{after_chain:?}");

    // Duplicate and cycle inserts merge nothing; the gauge holds.
    c.insert(0, 1).expect("dup insert");
    c.insert(0, 10).expect("cycle insert");
    c.quiesce(Duration::from_secs(10)).expect("quiesce");
    let after_cycles = scrape(&c.render_metrics());
    assert_eq!(after_cycles["connectit_components"], 54, "{after_cycles:?}");

    // A forest delete splits the chain; once the rebuild commits the
    // gauge reflects the split (the 0-10 cycle edge keeps 0..=10 with
    // one redundant edge, so deleting 5-6 does NOT split that loop —
    // delete a true bridge instead: grow a spur and cut it).
    c.insert(20, 21).expect("spur");
    c.quiesce(Duration::from_secs(10)).expect("quiesce");
    let with_spur = scrape(&c.render_metrics());
    assert_eq!(with_spur["connectit_components"], 53, "{with_spur:?}");
    c.delete(20, 21).expect("cut spur");
    c.quiesce(Duration::from_secs(10)).expect("quiesce");
    let after_cut = scrape(&c.render_metrics());
    assert_eq!(after_cut["connectit_components"], 54, "{after_cut:?}");

    svc.shutdown();
}

/// The net plane: binary load must populate the per-shard connection
/// gauges, the frame counters (split by direction), and the coalesce /
/// pipeline-depth histograms, all monotone across scrapes.
#[test]
fn binary_load_populates_net_plane_series_and_stays_monotone() {
    let mut svc = Service::start(ServiceConfig {
        n: 256,
        shards: 2,
        batch_max_wait: Duration::from_micros(20),
        ..ServiceConfig::default()
    })
    .expect("service");
    let c = svc.client();
    let mut server = cc_server::serve(&svc, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let drive = |bin: &mut cc_server::BinClient| {
        // A pipelined burst (reads and updates) so the shard's rounds
        // have something to coalesce and the depth histogram something
        // to record.
        for i in 0..32u32 {
            bin.send_insert(i, i + 1).expect("send");
            bin.send_query(0, i + 1).expect("send");
        }
        while bin.in_flight() > 0 {
            bin.reap().expect("reap");
        }
    };
    let mut bin = cc_server::BinClient::connect(addr).expect("connect");
    drive(&mut bin);

    let first = scrape(&c.render_metrics());
    // Exactly one connection live, owned by exactly one shard.
    let shard_series: Vec<(&String, u64)> = first
        .iter()
        .filter(|(k, _)| k.starts_with("connectit_net_shard_connections{shard="))
        .map(|(k, &v)| (k, v))
        .collect();
    assert!(!shard_series.is_empty(), "per-shard gauges missing: {first:?}");
    assert_eq!(shard_series.iter().map(|&(_, v)| v).sum::<u64>(), 1, "{shard_series:?}");
    assert!(first["connectit_frames_total{dir=\"in\"}"] >= 64, "{first:?}");
    assert!(first["connectit_frames_total{dir=\"out\"}"] >= 64, "{first:?}");
    assert!(first["connectit_net_coalesce_width_count"] >= 1, "{first:?}");
    assert!(first["connectit_net_pipeline_depth_count"] >= 64, "{first:?}");
    assert!(first["connectit_connections_live"] >= 1, "{first:?}");

    // More load: every net counter is monotone, frames strictly grew.
    drive(&mut bin);
    let second = scrape(&c.render_metrics());
    for (name, &v1) in &first {
        if name.contains("_total") {
            let v2 = *second.get(name).unwrap_or_else(|| panic!("{name} vanished"));
            assert!(v2 >= v1, "{name} went backwards: {v1} -> {v2}");
        }
    }
    assert!(
        second["connectit_frames_total{dir=\"in\"}"] > first["connectit_frames_total{dir=\"in\"}"]
    );
    assert!(
        second["connectit_frames_total{dir=\"out\"}"]
            > first["connectit_frames_total{dir=\"out\"}"]
    );
    assert!(
        second["connectit_net_pipeline_depth_count"] > first["connectit_net_pipeline_depth_count"]
    );
    server.stop();
    svc.shutdown();
}
