//! Protocol error-path coverage for `cc_server::net`, talking raw bytes
//! over a socket (not through `TcpClient`, which would refuse to emit
//! most of these). Every `ERR` spelling is asserted verbatim, mirroring
//! the `UfSpec` error-path discipline: an error message is API.

use cc_server::net::{DEFAULT_WAIT_TIMEOUT_MS, MAX_LINE_BYTES, MAX_WIRE_BATCH};
use cc_server::{serve, Role, Service, ServiceConfig, TcpServer};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

fn start(role: Role) -> (Service, TcpServer, SocketAddr) {
    start_holding(role, Duration::ZERO)
}

/// Like [`start`], but with a generation-rebuild hold — the test knob
/// that keeps the engine dirty long enough to observe the staleness
/// reporting deterministically.
fn start_holding(role: Role, rebuild_hold: Duration) -> (Service, TcpServer, SocketAddr) {
    let svc = Service::start(ServiceConfig {
        n: 64,
        shards: 2,
        role,
        batch_max_wait: Duration::from_micros(20),
        rebuild_hold,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let server = serve(&svc, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    (svc, server, addr)
}

/// Opens a raw connection, sends `request` lines, reads one reply line
/// per element of the returned vector.
fn raw(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    (BufReader::new(stream.try_clone().expect("clone")), stream)
}

fn send_line(w: &mut TcpStream, line: &str) {
    writeln!(w, "{line}").expect("write");
    w.flush().expect("flush");
}

fn read_line(r: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    r.read_line(&mut line).expect("read");
    line.trim_end().to_string()
}

#[test]
fn malformed_verbs_answer_exact_err_spellings_and_stay_open() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    for (request, want) in [
        ("NOPE", "ERR unknown command \"NOPE\""),
        ("I 3", "ERR missing argument"),
        ("I three 4", "ERR argument is not a 32-bit unsigned integer"),
        ("Q -1 4", "ERR argument is not a 32-bit unsigned integer"),
        ("I 3 4 5", "ERR trailing arguments after I"),
        ("D 3", "ERR missing argument"),
        ("D three 4", "ERR argument is not a 32-bit unsigned integer"),
        ("D 3 4 5", "ERR trailing arguments after D"),
        ("GEN now", "ERR trailing arguments after GEN"),
        ("QUIESCE x", "ERR argument is not a 64-bit unsigned integer"),
        ("QUIESCE 5 6", "ERR trailing arguments after QUIESCE"),
        ("PING now", "ERR trailing arguments after PING"),
        ("LABEL", "ERR missing argument"),
        ("WAIT", "ERR missing argument"),
        ("WAIT x", "ERR argument is not a 64-bit unsigned integer"),
        ("WAIT 1 2 3", "ERR trailing arguments after WAIT"),
        ("ROLE primary", "ERR trailing arguments after ROLE"),
        ("SNAPSHOT 3", "ERR trailing arguments after SNAPSHOT"),
    ] {
        send_line(&mut w, request);
        assert_eq!(read_line(&mut r), want, "request {request:?}");
    }
    // The connection survived all of it.
    send_line(&mut w, "PING");
    assert_eq!(read_line(&mut r), "PONG");
    server.stop();
    svc.shutdown();
}

#[test]
fn oversized_batch_header_errs_and_closes() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    send_line(&mut w, &format!("B {}", MAX_WIRE_BATCH + 1));
    assert_eq!(read_line(&mut r), format!("ERR batch too large (max {MAX_WIRE_BATCH})"));
    // A rejected B header closes the connection (the body that follows
    // cannot be delimited).
    let mut rest = String::new();
    r.read_to_string(&mut rest).expect("eof");
    assert!(rest.is_empty(), "connection must close after a rejected B header");
    server.stop();
    svc.shutdown();
}

#[test]
fn oversized_line_errs_and_closes() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    // A line longer than the cap, never carrying a newline: the server
    // must refuse to buffer it forever.
    let huge = vec![b'Q'; MAX_LINE_BYTES + 17];
    w.write_all(&huge).expect("write");
    w.flush().expect("flush");
    assert_eq!(read_line(&mut r), format!("ERR request line exceeds {MAX_LINE_BYTES} bytes"));
    // The server closes with our excess bytes still unread on its side,
    // so the teardown may surface as EOF or as a reset — either proves
    // the close; more protocol replies would not.
    let mut rest = String::new();
    match r.read_to_string(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "connection must close after an oversized line"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }
    server.stop();
    svc.shutdown();
}

#[test]
fn half_closed_socket_mid_batch_ends_cleanly() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    // Promise 5 ops, deliver 2, then close our write half: the server
    // must treat the truncated batch as a dead peer (no reply, no
    // partial execution desynchronizing anything) and close.
    send_line(&mut w, "B 5");
    send_line(&mut w, "I 1 2");
    send_line(&mut w, "I 2 3");
    w.shutdown(Shutdown::Write).expect("half-close");
    let mut rest = String::new();
    r.read_to_string(&mut rest).expect("eof");
    assert!(rest.is_empty(), "truncated batch must get no reply, got {rest:?}");
    // And the service is still healthy for the next connection.
    let (mut r2, mut w2) = raw(addr);
    send_line(&mut w2, "PING");
    assert_eq!(read_line(&mut r2), "PONG");
    server.stop();
    svc.shutdown();
}

#[test]
fn wait_timeout_spelling_and_success_paths() {
    let (mut svc, mut server, addr) = start(Role::Follower);
    let (mut r, mut w) = raw(addr);
    // Nothing ever reaches epoch 5 on this idle follower: the timeout
    // reports both sides of the gap.
    send_line(&mut w, "WAIT 5 50");
    assert_eq!(read_line(&mut r), "ERR wait for epoch 5 timed out at epoch 0");
    // An already-reached target returns immediately with the epoch.
    send_line(&mut w, "WAIT 0 50");
    assert_eq!(read_line(&mut r), "E 0");
    // The default-timeout form parses (answered instantly here).
    send_line(&mut w, "WAIT 0");
    assert_eq!(read_line(&mut r), "E 0");
    const { assert!(DEFAULT_WAIT_TIMEOUT_MS >= 1000, "default WAIT timeout is generous") };
    send_line(&mut w, "ROLE");
    assert_eq!(read_line(&mut r), "R follower");
    server.stop();
    svc.shutdown();
}

#[test]
fn follower_rejects_updates_with_routing_hint() {
    let (mut svc, mut server, addr) = start(Role::Follower);
    let (mut r, mut w) = raw(addr);
    send_line(&mut w, "I 1 2");
    assert_eq!(read_line(&mut r), "ERR read-only follower: route updates to the primary");
    // Deletions are updates too.
    send_line(&mut w, "D 1 2");
    assert_eq!(read_line(&mut r), "ERR read-only follower: route updates to the primary");
    // A batch containing even one update is rejected wholesale...
    send_line(&mut w, "B 2");
    send_line(&mut w, "I 1 2");
    send_line(&mut w, "Q 1 2");
    assert_eq!(read_line(&mut r), "ERR read-only follower: route updates to the primary");
    send_line(&mut w, "B 2");
    send_line(&mut w, "D 1 2");
    send_line(&mut w, "Q 1 2");
    assert_eq!(read_line(&mut r), "ERR read-only follower: route updates to the primary");
    // ...while a query-only batch works (answers against empty state).
    send_line(&mut w, "B 2");
    send_line(&mut w, "Q 1 2");
    send_line(&mut w, "Q 3 3");
    assert_eq!(read_line(&mut r), "OK 01");
    server.stop();
    svc.shutdown();
}

/// Reads a multi-line (`METRICS` / `TRACE`) reply up to its `# EOF`
/// terminator, exclusive.
fn read_dump(r: &mut BufReader<TcpStream>) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let l = read_line(r);
        if l == "# EOF" {
            return lines;
        }
        assert!(!l.is_empty(), "dump must terminate with `# EOF`, saw an empty line first");
        lines.push(l);
    }
}

#[test]
fn metrics_exposition_grammar_is_typed_terminated_and_parseable() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    // Argument errors spell exactly like every other verb's.
    send_line(&mut w, "METRICS all");
    assert_eq!(read_line(&mut r), "ERR trailing arguments after METRICS");
    send_line(&mut w, "TRACE x");
    assert_eq!(read_line(&mut r), "ERR argument is not a 64-bit unsigned integer");
    send_line(&mut w, "TRACE 5 9");
    assert_eq!(read_line(&mut r), "ERR trailing arguments after TRACE");
    // Move some traffic so counters and the recorder are non-trivial.
    send_line(&mut w, "I 1 2");
    assert_eq!(read_line(&mut r), "OK");
    send_line(&mut w, "Q 1 2");
    assert_eq!(read_line(&mut r), "1");

    send_line(&mut w, "METRICS");
    let lines = read_dump(&mut r);
    assert!(lines[0].starts_with("# TYPE connectit_"), "first line must be typed: {}", lines[0]);
    for l in &lines {
        if let Some(rest) = l.strip_prefix('#') {
            // Comments are exactly `# TYPE connectit_<name> <kind>`.
            let mut it = rest.trim_start().split(' ');
            assert_eq!(it.next(), Some("TYPE"), "{l}");
            assert!(it.next().is_some_and(|n| n.starts_with("connectit_")), "{l}");
            let kind = it.next().expect("kind");
            assert!(matches!(kind, "counter" | "gauge" | "summary"), "{l}");
            assert_eq!(it.next(), None, "{l}");
        } else {
            // Samples are `connectit_<name>[{label="v"}] <u64>`.
            let (name, value) = l.rsplit_once(' ').unwrap_or_else(|| panic!("no value in {l}"));
            assert!(name.starts_with("connectit_"), "{l}");
            value.parse::<u64>().unwrap_or_else(|_| panic!("unparseable value in {l}"));
        }
    }
    let text = lines.join("\n");
    assert!(text.contains("connectit_inserts_total 1"), "{text}");
    assert!(text.contains("connectit_queries_total 1"), "{text}");
    assert!(text.contains("connectit_requests_total{verb=\"Q\"} 1"), "{text}");
    assert!(text.contains("connectit_connections_live 1"), "{text}");
    // The three argument errors above were counted.
    assert!(text.contains("connectit_request_errors_total 3"), "{text}");

    // TRACE: wire-stable `T <seq> <t_us> <Kind> k=v ...` lines.
    send_line(&mut w, "TRACE");
    let tlines = read_dump(&mut r);
    assert!(!tlines.is_empty(), "batches committed; the recorder must hold events");
    for l in &tlines {
        let mut it = l.split(' ');
        assert_eq!(it.next(), Some("T"), "{l}");
        it.next().expect("seq").parse::<u64>().expect("seq is numeric");
        it.next().expect("at_us").parse::<u64>().expect("timestamp is numeric");
        assert!(it.next().is_some(), "missing event kind in {l}");
    }
    assert!(tlines.iter().any(|l| l.contains("BatchFormed")), "{tlines:?}");
    assert!(tlines.iter().any(|l| l.contains("EngineApplied")), "{tlines:?}");
    // A second scrape on the same connection: counters are monotone and
    // the requests counter saw the first METRICS + TRACE round.
    send_line(&mut w, "METRICS");
    let text2 = read_dump(&mut r).join("\n");
    assert!(text2.contains("connectit_requests_total{verb=\"METRICS\"} 2"), "{text2}");
    assert!(text2.contains("connectit_requests_total{verb=\"TRACE\"} 1"), "{text2}");
    server.stop();
    svc.shutdown();
}

#[test]
fn stats_and_walstats_shims_stay_wire_stable_over_the_registry() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    send_line(&mut w, "I 1 2");
    assert_eq!(read_line(&mut r), "OK");
    // STATS keeps its one-line `S key=value ...` spelling, now read from
    // the same registry METRICS exposes.
    send_line(&mut w, "STATS");
    let s = read_line(&mut r);
    assert!(s.starts_with("S epoch="), "{s}");
    assert!(s.contains(" inserts=1 "), "{s}");
    assert!(s.contains(" latency[n=1 "), "{s}");
    // WALSTATS without durability keeps its typed refusal.
    send_line(&mut w, "WALSTATS");
    assert_eq!(
        read_line(&mut r),
        "ERR durability is not enabled (start the service with a wal dir)"
    );
    server.stop();
    svc.shutdown();
}

#[test]
fn stale_queries_report_their_generation_and_quiesce_timeouts_spell_it() {
    // A 60s rebuild hold pins the engine dirty across the whole test.
    let (mut svc, mut server, addr) = start_holding(Role::Primary, Duration::from_secs(60));
    let (mut r, mut w) = raw(addr);
    send_line(&mut w, "I 1 2");
    assert_eq!(read_line(&mut r), "OK");
    // Clean engine: both query verbs answer bare.
    send_line(&mut w, "Q 1 2");
    assert_eq!(read_line(&mut r), "1");
    send_line(&mut w, "QG 1 2");
    assert_eq!(read_line(&mut r), "1");
    // Deleting the forest edge seals generation 0 and starts a (held)
    // rebuild: the engine is now dirty.
    send_line(&mut w, "D 1 2");
    assert_eq!(read_line(&mut r), "OK");
    send_line(&mut w, "GEN");
    let gen = read_line(&mut r);
    assert!(gen.starts_with("G 0 dirty=1 "), "engine must be dirty under the hold: {gen}");
    // Bare `Q` stays exactly one bit even mid-rebuild — old clients
    // parse it — while `QG` serves the sealed generation — the
    // pre-deletion labels — and says so: `<answer> G <generation>`.
    send_line(&mut w, "Q 1 2");
    assert_eq!(read_line(&mut r), "1");
    send_line(&mut w, "QG 1 2");
    assert_eq!(read_line(&mut r), "1 G 0");
    // QUIESCE cannot drain a held rebuild; the timeout names the
    // generation it was stuck at.
    send_line(&mut w, "QUIESCE 50");
    assert_eq!(read_line(&mut r), "ERR quiesce timed out at generation 0");
    server.stop();
    svc.shutdown();
}
