//! Protocol error-path coverage for `cc_server::net`, talking raw bytes
//! over a socket (not through `TcpClient`, which would refuse to emit
//! most of these). Every `ERR` spelling is asserted verbatim, mirroring
//! the `UfSpec` error-path discipline: an error message is API.

use cc_server::net::{DEFAULT_WAIT_TIMEOUT_MS, MAX_LINE_BYTES, MAX_WIRE_BATCH};
use cc_server::{serve, Role, Service, ServiceConfig, TcpServer};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

fn start(role: Role) -> (Service, TcpServer, SocketAddr) {
    start_holding(role, Duration::ZERO)
}

/// Like [`start`], but with a generation-rebuild hold — the test knob
/// that keeps the engine dirty long enough to observe the staleness
/// reporting deterministically.
fn start_holding(role: Role, rebuild_hold: Duration) -> (Service, TcpServer, SocketAddr) {
    let svc = Service::start(ServiceConfig {
        n: 64,
        shards: 2,
        role,
        batch_max_wait: Duration::from_micros(20),
        rebuild_hold,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let server = serve(&svc, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    (svc, server, addr)
}

/// Opens a raw connection, sends `request` lines, reads one reply line
/// per element of the returned vector.
fn raw(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    (BufReader::new(stream.try_clone().expect("clone")), stream)
}

fn send_line(w: &mut TcpStream, line: &str) {
    writeln!(w, "{line}").expect("write");
    w.flush().expect("flush");
}

fn read_line(r: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    r.read_line(&mut line).expect("read");
    line.trim_end().to_string()
}

#[test]
fn malformed_verbs_answer_exact_err_spellings_and_stay_open() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    for (request, want) in [
        ("NOPE", "ERR unknown command \"NOPE\""),
        ("I 3", "ERR missing argument"),
        ("I three 4", "ERR argument is not a 32-bit unsigned integer"),
        ("Q -1 4", "ERR argument is not a 32-bit unsigned integer"),
        ("I 3 4 5", "ERR trailing arguments after I"),
        ("D 3", "ERR missing argument"),
        ("D three 4", "ERR argument is not a 32-bit unsigned integer"),
        ("D 3 4 5", "ERR trailing arguments after D"),
        ("GEN now", "ERR trailing arguments after GEN"),
        ("QUIESCE x", "ERR argument is not a 64-bit unsigned integer"),
        ("QUIESCE 5 6", "ERR trailing arguments after QUIESCE"),
        ("PING now", "ERR trailing arguments after PING"),
        ("LABEL", "ERR missing argument"),
        ("WAIT", "ERR missing argument"),
        ("WAIT x", "ERR argument is not a 64-bit unsigned integer"),
        ("WAIT 1 2 3", "ERR trailing arguments after WAIT"),
        ("ROLE primary", "ERR trailing arguments after ROLE"),
        ("SNAPSHOT 3", "ERR trailing arguments after SNAPSHOT"),
        ("TOPK x", "ERR argument is not a 64-bit unsigned integer"),
        ("TOPK 5 6", "ERR trailing arguments after TOPK"),
        ("HIST now", "ERR trailing arguments after HIST"),
        ("SIZE", "ERR missing argument"),
        ("SIZE big", "ERR argument is not a 32-bit unsigned integer"),
        ("SIZE 1 2", "ERR trailing arguments after SIZE"),
        ("SIZE 64", "ERR vertex 64 out of range (n = 64)"),
        ("SUB", "ERR missing argument"),
        ("SUB 1", "ERR missing argument"),
        ("SUB one 2", "ERR argument is not a 32-bit unsigned integer"),
        ("SUB 1 2 FOREVER", "ERR unknown SUB flag \"FOREVER\" (expected DURABLE)"),
        ("SUB 1 2 DURABLE 3", "ERR trailing arguments after SUB"),
        ("SUB COMPONENT", "ERR missing argument"),
        ("SUB ATTACH x", "ERR argument is not a 64-bit unsigned integer"),
        ("SUB 64 0", "ERR vertex 64 out of range (n = 64)"),
        ("SUB 1 2 DURABLE", "ERR durability is not enabled (start the service with a wal dir)"),
        ("SUB ATTACH 42", "ERR unknown subscription id 42"),
        ("UNSUB", "ERR missing argument"),
        ("UNSUB x", "ERR argument is not a 64-bit unsigned integer"),
        ("UNSUB 5 6", "ERR trailing arguments after UNSUB"),
        ("UNSUB 999", "ERR unknown subscription id 999"),
        ("SUBS 1", "ERR trailing arguments after SUBS"),
    ] {
        send_line(&mut w, request);
        assert_eq!(read_line(&mut r), want, "request {request:?}");
    }
    // The connection survived all of it.
    send_line(&mut w, "PING");
    assert_eq!(read_line(&mut r), "PONG");
    server.stop();
    svc.shutdown();
}

#[test]
fn oversized_batch_header_errs_and_closes() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    send_line(&mut w, &format!("B {}", MAX_WIRE_BATCH + 1));
    assert_eq!(read_line(&mut r), format!("ERR batch too large (max {MAX_WIRE_BATCH})"));
    // A rejected B header closes the connection (the body that follows
    // cannot be delimited).
    let mut rest = String::new();
    r.read_to_string(&mut rest).expect("eof");
    assert!(rest.is_empty(), "connection must close after a rejected B header");
    server.stop();
    svc.shutdown();
}

#[test]
fn oversized_line_errs_and_closes() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    // A line longer than the cap, never carrying a newline: the server
    // must refuse to buffer it forever.
    let huge = vec![b'Q'; MAX_LINE_BYTES + 17];
    w.write_all(&huge).expect("write");
    w.flush().expect("flush");
    assert_eq!(read_line(&mut r), format!("ERR request line exceeds {MAX_LINE_BYTES} bytes"));
    // The server closes with our excess bytes still unread on its side,
    // so the teardown may surface as EOF or as a reset — either proves
    // the close; more protocol replies would not.
    let mut rest = String::new();
    match r.read_to_string(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "connection must close after an oversized line"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }
    server.stop();
    svc.shutdown();
}

#[test]
fn half_closed_socket_mid_batch_ends_cleanly() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    // Promise 5 ops, deliver 2, then close our write half: the server
    // must treat the truncated batch as a dead peer (no reply, no
    // partial execution desynchronizing anything) and close.
    send_line(&mut w, "B 5");
    send_line(&mut w, "I 1 2");
    send_line(&mut w, "I 2 3");
    w.shutdown(Shutdown::Write).expect("half-close");
    let mut rest = String::new();
    r.read_to_string(&mut rest).expect("eof");
    assert!(rest.is_empty(), "truncated batch must get no reply, got {rest:?}");
    // And the service is still healthy for the next connection.
    let (mut r2, mut w2) = raw(addr);
    send_line(&mut w2, "PING");
    assert_eq!(read_line(&mut r2), "PONG");
    server.stop();
    svc.shutdown();
}

#[test]
fn wait_timeout_spelling_and_success_paths() {
    let (mut svc, mut server, addr) = start(Role::Follower);
    let (mut r, mut w) = raw(addr);
    // Nothing ever reaches epoch 5 on this idle follower: the timeout
    // reports both sides of the gap.
    send_line(&mut w, "WAIT 5 50");
    assert_eq!(read_line(&mut r), "ERR wait for epoch 5 timed out at epoch 0");
    // An already-reached target returns immediately with the epoch.
    send_line(&mut w, "WAIT 0 50");
    assert_eq!(read_line(&mut r), "E 0");
    // The default-timeout form parses (answered instantly here).
    send_line(&mut w, "WAIT 0");
    assert_eq!(read_line(&mut r), "E 0");
    const { assert!(DEFAULT_WAIT_TIMEOUT_MS >= 1000, "default WAIT timeout is generous") };
    send_line(&mut w, "ROLE");
    assert_eq!(read_line(&mut r), "R follower");
    server.stop();
    svc.shutdown();
}

#[test]
fn follower_rejects_updates_with_routing_hint() {
    let (mut svc, mut server, addr) = start(Role::Follower);
    let (mut r, mut w) = raw(addr);
    send_line(&mut w, "I 1 2");
    assert_eq!(read_line(&mut r), "ERR read-only follower: route updates to the primary");
    // Deletions are updates too.
    send_line(&mut w, "D 1 2");
    assert_eq!(read_line(&mut r), "ERR read-only follower: route updates to the primary");
    // A batch containing even one update is rejected wholesale...
    send_line(&mut w, "B 2");
    send_line(&mut w, "I 1 2");
    send_line(&mut w, "Q 1 2");
    assert_eq!(read_line(&mut r), "ERR read-only follower: route updates to the primary");
    send_line(&mut w, "B 2");
    send_line(&mut w, "D 1 2");
    send_line(&mut w, "Q 1 2");
    assert_eq!(read_line(&mut r), "ERR read-only follower: route updates to the primary");
    // ...while a query-only batch works (answers against empty state).
    send_line(&mut w, "B 2");
    send_line(&mut w, "Q 1 2");
    send_line(&mut w, "Q 3 3");
    assert_eq!(read_line(&mut r), "OK 01");
    server.stop();
    svc.shutdown();
}

/// Reads a multi-line (`METRICS` / `TRACE`) reply up to its `# EOF`
/// terminator, exclusive.
fn read_dump(r: &mut BufReader<TcpStream>) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let l = read_line(r);
        if l == "# EOF" {
            return lines;
        }
        assert!(!l.is_empty(), "dump must terminate with `# EOF`, saw an empty line first");
        lines.push(l);
    }
}

#[test]
fn metrics_exposition_grammar_is_typed_terminated_and_parseable() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    // Argument errors spell exactly like every other verb's.
    send_line(&mut w, "METRICS all");
    assert_eq!(read_line(&mut r), "ERR trailing arguments after METRICS");
    send_line(&mut w, "TRACE x");
    assert_eq!(read_line(&mut r), "ERR argument is not a 64-bit unsigned integer");
    send_line(&mut w, "TRACE 5 9");
    assert_eq!(read_line(&mut r), "ERR trailing arguments after TRACE");
    // Move some traffic so counters and the recorder are non-trivial.
    send_line(&mut w, "I 1 2");
    assert_eq!(read_line(&mut r), "OK");
    send_line(&mut w, "Q 1 2");
    assert_eq!(read_line(&mut r), "1");

    send_line(&mut w, "METRICS");
    let lines = read_dump(&mut r);
    assert!(lines[0].starts_with("# TYPE connectit_"), "first line must be typed: {}", lines[0]);
    for l in &lines {
        if let Some(rest) = l.strip_prefix('#') {
            // Comments are exactly `# TYPE connectit_<name> <kind>`.
            let mut it = rest.trim_start().split(' ');
            assert_eq!(it.next(), Some("TYPE"), "{l}");
            assert!(it.next().is_some_and(|n| n.starts_with("connectit_")), "{l}");
            let kind = it.next().expect("kind");
            assert!(matches!(kind, "counter" | "gauge" | "summary"), "{l}");
            assert_eq!(it.next(), None, "{l}");
        } else {
            // Samples are `connectit_<name>[{label="v"}] <u64>`.
            let (name, value) = l.rsplit_once(' ').unwrap_or_else(|| panic!("no value in {l}"));
            assert!(name.starts_with("connectit_"), "{l}");
            value.parse::<u64>().unwrap_or_else(|_| panic!("unparseable value in {l}"));
        }
    }
    let text = lines.join("\n");
    assert!(text.contains("connectit_inserts_total 1"), "{text}");
    assert!(text.contains("connectit_queries_total 1"), "{text}");
    assert!(text.contains("connectit_requests_total{verb=\"Q\"} 1"), "{text}");
    assert!(text.contains("connectit_connections_live 1"), "{text}");
    // The three argument errors above were counted.
    assert!(text.contains("connectit_request_errors_total 3"), "{text}");

    // TRACE: wire-stable `T <seq> <t_us> <Kind> k=v ...` lines.
    send_line(&mut w, "TRACE");
    let tlines = read_dump(&mut r);
    assert!(!tlines.is_empty(), "batches committed; the recorder must hold events");
    for l in &tlines {
        let mut it = l.split(' ');
        assert_eq!(it.next(), Some("T"), "{l}");
        it.next().expect("seq").parse::<u64>().expect("seq is numeric");
        it.next().expect("at_us").parse::<u64>().expect("timestamp is numeric");
        assert!(it.next().is_some(), "missing event kind in {l}");
    }
    assert!(tlines.iter().any(|l| l.contains("BatchFormed")), "{tlines:?}");
    assert!(tlines.iter().any(|l| l.contains("EngineApplied")), "{tlines:?}");
    // A second scrape on the same connection: counters are monotone and
    // the requests counter saw the first METRICS + TRACE round.
    send_line(&mut w, "METRICS");
    let text2 = read_dump(&mut r).join("\n");
    assert!(text2.contains("connectit_requests_total{verb=\"METRICS\"} 2"), "{text2}");
    assert!(text2.contains("connectit_requests_total{verb=\"TRACE\"} 1"), "{text2}");
    server.stop();
    svc.shutdown();
}

#[test]
fn stats_and_walstats_shims_stay_wire_stable_over_the_registry() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw(addr);
    send_line(&mut w, "I 1 2");
    assert_eq!(read_line(&mut r), "OK");
    // STATS keeps its one-line `S key=value ...` spelling, now read from
    // the same registry METRICS exposes.
    send_line(&mut w, "STATS");
    let s = read_line(&mut r);
    assert!(s.starts_with("S epoch="), "{s}");
    assert!(s.contains(" inserts=1 "), "{s}");
    assert!(s.contains(" latency[n=1 "), "{s}");
    // WALSTATS without durability keeps its typed refusal.
    send_line(&mut w, "WALSTATS");
    assert_eq!(
        read_line(&mut r),
        "ERR durability is not enabled (start the service with a wal dir)"
    );
    server.stop();
    svc.shutdown();
}

#[test]
fn stale_queries_report_their_generation_and_quiesce_timeouts_spell_it() {
    // A 60s rebuild hold pins the engine dirty across the whole test.
    let (mut svc, mut server, addr) = start_holding(Role::Primary, Duration::from_secs(60));
    let (mut r, mut w) = raw(addr);
    send_line(&mut w, "I 1 2");
    assert_eq!(read_line(&mut r), "OK");
    // Clean engine: both query verbs answer bare.
    send_line(&mut w, "Q 1 2");
    assert_eq!(read_line(&mut r), "1");
    send_line(&mut w, "QG 1 2");
    assert_eq!(read_line(&mut r), "1");
    // Deleting the forest edge seals generation 0 and starts a (held)
    // rebuild: the engine is now dirty.
    send_line(&mut w, "D 1 2");
    assert_eq!(read_line(&mut r), "OK");
    send_line(&mut w, "GEN");
    let gen = read_line(&mut r);
    assert!(gen.starts_with("G 0 dirty=1 "), "engine must be dirty under the hold: {gen}");
    // Bare `Q` stays exactly one bit even mid-rebuild — old clients
    // parse it — while `QG` serves the sealed generation — the
    // pre-deletion labels — and says so: `<answer> G <generation>`.
    send_line(&mut w, "Q 1 2");
    assert_eq!(read_line(&mut r), "1");
    send_line(&mut w, "QG 1 2");
    assert_eq!(read_line(&mut r), "1 G 0");
    // QUIESCE cannot drain a held rebuild; the timeout names the
    // generation it was stuck at.
    send_line(&mut w, "QUIESCE 50");
    assert_eq!(read_line(&mut r), "ERR quiesce timed out at generation 0");
    server.stop();
    svc.shutdown();
}

#[test]
fn slow_subscription_consumer_gets_a_typed_overflow_close() {
    // A push queue of exactly one pending event: the burst below must
    // overflow it, and the contract is a typed `sub-overflow` close —
    // never a silent drop.
    let svc = Service::start(ServiceConfig {
        n: 64,
        shards: 2,
        batch_max_wait: Duration::from_micros(20),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let cfg = cc_server::NetConfig { sub_queue_cap: 1, ..cc_server::NetConfig::default() };
    let mut server = cc_server::net::serve_with(&svc, "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    // The slow consumer: subscribes to component 1, then never reads.
    let (mut r, mut w) = raw(addr);
    send_line(&mut w, "SUB COMPONENT 1");
    let reply = read_line(&mut r);
    assert!(reply.starts_with("S "), "subscription must be accepted: {reply}");

    // A second connection merges component 1 forty-eight times in one
    // batch: the fires land on the push queue far faster than the pusher
    // thread can drain them past a cap of one.
    let (mut r2, mut w2) = raw(addr);
    send_line(&mut w2, "B 48");
    for i in 0..48 {
        send_line(&mut w2, &format!("I {i} {}", i + 1));
    }
    assert_eq!(read_line(&mut r2), "OK");

    // The slow consumer's connection must close (EOF or reset), with
    // nothing but `! EVT` push lines before the close.
    loop {
        let mut line = String::new();
        match r.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => assert!(
                line.starts_with("! EVT "),
                "only push lines may precede the overflow close, got {line:?}"
            ),
            Err(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}");
                break;
            }
        }
    }

    // The close is typed in the flight recorder, and the server is fine.
    send_line(&mut w2, "TRACE");
    let tlines = read_dump(&mut r2);
    assert!(
        tlines.iter().any(|l| l.contains("ConnClosed reason=sub-overflow")),
        "overflow close must be recorded: {tlines:?}"
    );
    send_line(&mut w2, "PING");
    assert_eq!(read_line(&mut r2), "PONG");
    server.stop();
    let mut svc = svc;
    svc.shutdown();
}

// ---------------------------------------------------------------------------
// Binary protocol pins. Same port, same server: frames open with the
// 0xCC sniff byte, everything else above stays on the text door. The
// binary ERR spellings below are wire API exactly like the text ones.
// ---------------------------------------------------------------------------

use cc_graph::io::binary::{crc32, RecordReader};
use cc_server::binproto::{self, BinClient, Reply, MAX_FRAME_PAYLOAD, STREAM_MAGIC};
use connectit::Update;

/// Opens a raw binary connection: magic written, reader positioned after
/// it. Frames are then hand-rolled so damage can be injected.
fn raw_bin(addr: SocketAddr) -> (RecordReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut w = stream.try_clone().expect("clone");
    w.write_all(&STREAM_MAGIC).expect("magic");
    (RecordReader::new(stream, 0), w)
}

/// `len|crc|payload` with an optionally corrupted CRC.
fn send_frame(w: &mut TcpStream, payload: &[u8], crc_xor: u32) {
    let mut f = Vec::with_capacity(8 + payload.len());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(&(crc32(payload) ^ crc_xor).to_le_bytes());
    f.extend_from_slice(payload);
    w.write_all(&f).expect("frame");
}

/// One response frame, split into `(corr, status, body)`.
fn read_reply(r: &mut RecordReader<TcpStream>) -> (u64, u8, Vec<u8>) {
    let p = r.next().expect("read frame").expect("frame, not EOF");
    assert!(p.len() >= 9, "response shorter than its header: {p:?}");
    (u64::from_le_bytes(p[0..8].try_into().unwrap()), p[8], p[9..].to_vec())
}

fn expect_err(r: &mut RecordReader<TcpStream>, want_corr: u64, want: &str) {
    let (corr, status, body) = read_reply(r);
    assert_eq!(corr, want_corr);
    assert_eq!(status, binproto::STATUS_ERR, "expected ERR, got status {status}");
    assert_eq!(String::from_utf8(body).expect("utf-8"), want);
}

fn expect_eof(r: &mut RecordReader<TcpStream>) {
    match r.next() {
        Ok(None) => {}
        Ok(Some(p)) => panic!("expected close, got frame {p:?}"),
        // A reset instead of a clean FIN also proves the close.
        Err(_) => {}
    }
}

#[test]
fn binary_and_text_share_the_port_and_requests_pipeline() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let mut bin = BinClient::connect(addr).expect("binary connect");
    // A text connection next door is untouched by the binary traffic.
    let (mut tr, mut tw) = raw(addr);

    bin.ping().expect("ping");
    bin.insert(1, 2).expect("insert");
    bin.insert(2, 3).expect("insert");
    assert!(bin.query(1, 3).expect("query"));
    assert!(!bin.query(1, 4).expect("query"));
    assert_eq!(bin.query_gen(1, 3).expect("qg"), (true, None));
    let answers = bin
        .submit(&[Update::Insert(10, 11), Update::Query(10, 11), Update::Query(10, 12)])
        .expect("batch");
    assert_eq!(answers.len(), 2);
    assert!(answers[0].0 && !answers[1].0);
    let e = bin.epoch().expect("epoch");
    assert_eq!(bin.wait_epoch(e, 1000).expect("wait"), e);
    let g = bin.quiesce(10_000).expect("quiesce");
    assert_eq!(g, 0, "no deletions: still generation 0");

    // Pipelining: many in-flight requests on one connection, answers
    // collected by correlation id in whatever order they complete.
    let mut want = std::collections::HashMap::new();
    for i in 0..64u32 {
        let corr = bin.send_query(1, 2 + (i % 3)).expect("send");
        want.insert(corr, (i % 3) < 2);
    }
    assert_eq!(bin.in_flight(), 64);
    while bin.in_flight() > 0 {
        let (corr, reply) = bin.reap().expect("reap");
        let expected = want.remove(&corr).expect("known corr id");
        assert_eq!(reply, Reply::Bit(expected), "corr {corr}");
    }
    assert!(want.is_empty());

    // The text door still answers, and sees the binary traffic's state.
    send_line(&mut tw, "Q 1 3");
    assert_eq!(read_line(&mut tr), "1");
    send_line(&mut tw, "PING");
    assert_eq!(read_line(&mut tr), "PONG");
    server.stop();
    svc.shutdown();
}

#[test]
fn binary_request_errors_answer_exact_spellings_and_stay_open() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    let (mut r, mut w) = raw_bin(addr);
    // Unknown verb tag.
    let mut p = 7u64.to_le_bytes().to_vec();
    p.push(0xFF);
    send_frame(&mut w, &p, 0);
    expect_err(&mut r, 7, "unknown binary verb 0xff");
    // Fixed-layout verb with short arguments.
    let mut p = 8u64.to_le_bytes().to_vec();
    p.push(binproto::verb::QUERY);
    p.extend_from_slice(&[1, 2, 3]);
    send_frame(&mut w, &p, 0);
    expect_err(&mut r, 8, "bad Q payload: need 8 bytes, have 3");
    // Batch with an unknown op tag.
    let mut p = 9u64.to_le_bytes().to_vec();
    p.push(binproto::verb::BATCH);
    p.extend_from_slice(&1u32.to_le_bytes());
    p.push(9);
    p.extend_from_slice(&1u32.to_le_bytes());
    p.extend_from_slice(&2u32.to_le_bytes());
    send_frame(&mut w, &p, 0);
    expect_err(&mut r, 9, "bad B payload: unknown batch op tag 0x09");
    // Batch header promising more ops than the wire cap.
    let mut p = 10u64.to_le_bytes().to_vec();
    p.push(binproto::verb::BATCH);
    p.extend_from_slice(&((MAX_WIRE_BATCH + 1) as u32).to_le_bytes());
    send_frame(&mut w, &p, 0);
    expect_err(&mut r, 10, &format!("batch too large (max {MAX_WIRE_BATCH})"));
    // Out-of-range vertices reuse the service spelling, per request.
    send_frame(&mut w, &binproto::encode_request(11, &binproto::BinRequest::Query(99, 0)), 0);
    expect_err(&mut r, 11, "vertex 99 out of range (n = 64)");
    // All recoverable: the connection still answers.
    send_frame(&mut w, &binproto::encode_request(12, &binproto::BinRequest::Ping), 0);
    assert_eq!(read_reply(&mut r), (12, binproto::STATUS_OK, vec![]));
    server.stop();
    svc.shutdown();
}

#[test]
fn binary_frame_damage_gets_a_typed_err_and_close() {
    let (mut svc, mut server, addr) = start(Role::Primary);
    // CRC damage: corr-0 ERR, then close (`bad-frame`).
    {
        let (mut r, mut w) = raw_bin(addr);
        let p = binproto::encode_request(1, &binproto::BinRequest::Ping);
        let stored = crc32(&p) ^ 1;
        let computed = crc32(&p);
        send_frame(&mut w, &p, 1);
        expect_err(
            &mut r,
            0,
            &format!("bad frame: crc mismatch (stored {stored:#010x}, computed {computed:#010x})"),
        );
        expect_eof(&mut r);
    }
    // Oversized declared length: refused before buffering the payload.
    {
        let (mut r, mut w) = raw_bin(addr);
        let huge = MAX_FRAME_PAYLOAD + 1;
        w.write_all(&huge.to_le_bytes()).expect("len");
        w.write_all(&0u32.to_le_bytes()).expect("crc");
        expect_err(
            &mut r,
            0,
            &format!("bad frame: oversized payload {huge} (max {MAX_FRAME_PAYLOAD})"),
        );
        expect_eof(&mut r);
    }
    // Sniff byte followed by a wrong magic suffix.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        let mut w = stream.try_clone().expect("clone");
        w.write_all(&[binproto::SNIFF_BYTE, b'X', b'X', b'X', b'X', b'X', b'X', b'\n'])
            .expect("bad magic");
        let mut r = RecordReader::new(stream, 0);
        expect_err(&mut r, 0, "bad frame: unknown binary stream magic");
        expect_eof(&mut r);
    }
    // A request frame shorter than its 9-byte header poisons the stream.
    {
        let (mut r, mut w) = raw_bin(addr);
        send_frame(&mut w, &[1, 2, 3], 0);
        expect_err(&mut r, 0, "bad frame: request header needs 9 bytes, have 3");
        expect_eof(&mut r);
    }
    // The server survived all four autopsies.
    let mut bin = BinClient::connect(addr).expect("connect");
    bin.ping().expect("ping");
    server.stop();
    svc.shutdown();
}

#[test]
fn binary_follower_rejects_updates_and_serves_query_batches() {
    let (mut svc, mut server, addr) = start(Role::Follower);
    let mut bin = BinClient::connect(addr).expect("connect");
    let deny = "read-only follower: route updates to the primary";
    let corr = bin.send_insert(1, 2).expect("send");
    assert_eq!(bin.reap().expect("reap"), (corr, Reply::Err(deny.into())));
    let corr = bin.send_delete(1, 2).expect("send");
    assert_eq!(bin.reap().expect("reap"), (corr, Reply::Err(deny.into())));
    // One update poisons the whole batch, exactly like the text door...
    let corr = bin.send_batch(&[Update::Insert(1, 2), Update::Query(1, 2)]).expect("send");
    assert_eq!(bin.reap().expect("reap"), (corr, Reply::Err(deny.into())));
    // ...while query-only batches answer against the replicated state.
    let answers = bin.submit(&[Update::Query(1, 2), Update::Query(3, 3)]).expect("submit");
    assert_eq!(answers, vec![(false, None), (true, None)]);
    assert!(!bin.query(1, 2).expect("query"));
    // WAIT keeps the text spelling for a timed-out barrier.
    let corr = bin.send_wait(5, 50).expect("send");
    assert_eq!(
        bin.reap().expect("reap"),
        (corr, Reply::Err("wait for epoch 5 timed out at epoch 0".into()))
    );
    server.stop();
    svc.shutdown();
}
