//! End-to-end tests: a live service under concurrent multi-client load,
//! in-process and over TCP, validated against the sequential oracle —
//! including full crash drills that SIGKILL a real `connectit-serve`
//! process and verify recovery from its `--wal-dir`.

use cc_parallel::SplitMix64;
use cc_server::{
    serve, DurabilityConfig, ExecMode, FsyncPolicy, Service, ServiceConfig, TcpClient,
};
use cc_unionfind::{FindKind, SeqUnionFind, SpliceKind, UfSpec, UniteKind};
use connectit::Update;
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    cc_server::scratch_dir(&format!("e2e_{tag}"))
}

/// A spawned `connectit-serve` with its parsed startup line. Keep
/// `reader` alive (the server's final prints need a live pipe) and drain
/// it before waiting on the child.
struct Served {
    child: Child,
    addr: SocketAddr,
    recovered_epoch: u64,
    /// The `replication_addr=` of a primary started with
    /// `--replication-port`.
    replication_addr: Option<SocketAddr>,
    reader: BufReader<ChildStdout>,
}

/// Spawns a real `connectit-serve` process and parses its startup line.
fn spawn_serve_full(args: &[&str]) -> Served {
    let mut child = Command::new(env!("CARGO_BIN_EXE_connectit-serve"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn connectit-serve");
    let mut reader = BufReader::new(child.stdout.take().expect("serve stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("serve startup line");
    assert!(line.contains("listening on"), "unexpected startup line: {line:?}");
    let mut it = line.split_whitespace();
    let addr: SocketAddr = it
        .by_ref()
        .skip_while(|t| *t != "on")
        .nth(1)
        .expect("addr token")
        .parse()
        .expect("addr parses");
    let recovered_epoch = line
        .split_whitespace()
        .find_map(|t| t.strip_prefix("recovered_epoch=")?.parse().ok())
        .unwrap_or(0);
    let replication_addr =
        line.split_whitespace().find_map(|t| t.strip_prefix("replication_addr=")?.parse().ok());
    Served { child, addr, recovered_epoch, replication_addr, reader }
}

fn spawn_serve(args: &[&str]) -> (Child, SocketAddr, u64, BufReader<ChildStdout>) {
    let s = spawn_serve_full(args);
    (s.child, s.addr, s.recovered_epoch, s.reader)
}

/// Runs `connectit-loadgen` with the given args; returns (success,
/// stdout).
fn run_loadgen(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_connectit-loadgen"))
        .args(args)
        .stderr(Stdio::inherit())
        .output()
        .expect("run connectit-loadgen");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// SIGKILLs a serve child — the crash under test — and reaps it.
fn hard_kill(mut child: Child) {
    child.kill().expect("SIGKILL serve");
    child.wait().expect("reap serve");
}

fn drain_and_wait(mut child: Child, mut reader: BufReader<ChildStdout>) {
    let mut rest = String::new();
    let _ = reader.read_to_string(&mut rest);
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited non-zero; tail: {rest}");
}

/// Drives `clients` concurrent closed loops against `svc`, each with a
/// private vertex slice and its own oracle; returns (queries, mismatches).
fn drive_clients(svc: &Service, n: usize, clients: usize, batches: usize) -> (u64, u64) {
    let results: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|idx| {
                let client = svc.client();
                s.spawn(move || {
                    let sz = n / clients;
                    let base = (idx * sz) as u32;
                    let mut oracle = SeqUnionFind::new(sz);
                    let mut rng = SplitMix64::new(idx as u64 + 99);
                    let (mut queries, mut mismatches) = (0u64, 0u64);
                    for _ in 0..batches {
                        let mut script = Vec::new();
                        let mut wire = Vec::new();
                        let mut before = Vec::new();
                        for _ in 0..256 {
                            let lu = (rng.next_u64() % sz as u64) as u32;
                            let lv = (rng.next_u64() % sz as u64) as u32;
                            let is_query = rng.next_u64().is_multiple_of(2);
                            script.push((is_query, lu, lv));
                            if is_query {
                                before.push(oracle.connected(lu, lv));
                                wire.push(Update::Query(base + lu, base + lv));
                            } else {
                                wire.push(Update::Insert(base + lu, base + lv));
                            }
                        }
                        let answers = client.submit(wire).expect("submit");
                        for &(is_query, lu, lv) in &script {
                            if !is_query {
                                oracle.union(lu, lv);
                            }
                        }
                        let mut qi = 0;
                        for &(is_query, lu, lv) in &script {
                            if !is_query {
                                continue;
                            }
                            let got = answers[qi];
                            let was = before[qi];
                            qi += 1;
                            queries += 1;
                            // Bracketing: stable answers are forced; a
                            // within-batch false->true transition is free.
                            if was == oracle.connected(lu, lv) && got != was {
                                mismatches += 1;
                            }
                        }
                    }
                    (queries, mismatches)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    results.into_iter().fold((0, 0), |(q, m), (dq, dm)| (q + dq, m + dm))
}

#[test]
fn concurrent_clients_linearizable_waitfree() {
    let n = 4096;
    let mut svc = Service::start(ServiceConfig {
        n,
        shards: 4,
        batch_max_wait: Duration::from_micros(100),
        ..ServiceConfig::default()
    })
    .expect("service");
    let (queries, mismatches) = drive_clients(&svc, n, 4, 20);
    assert!(queries > 1000, "drove {queries} queries");
    assert_eq!(mismatches, 0);
    // The published view agrees with a per-slice oracle rebuild: every
    // client's slice is internally consistent.
    let stats = svc.client().stats();
    assert_eq!(stats.ops, 4 * 20 * 256);
    assert!(stats.epoch > 0);
    svc.shutdown();
}

#[test]
fn concurrent_clients_linearizable_phased() {
    let n = 2048;
    let mut svc = Service::start(ServiceConfig {
        n,
        shards: 4,
        spec: UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Naive),
        mode: ExecMode::Phased,
        batch_max_wait: Duration::from_micros(100),
        ..ServiceConfig::default()
    })
    .expect("service");
    let (queries, mismatches) = drive_clients(&svc, n, 4, 12);
    assert!(queries > 500);
    assert_eq!(mismatches, 0);
    svc.shutdown();
}

#[test]
fn finish_spec_vocabulary_serves_any_variant() {
    // The --finish CLI path: arbitrary parsed variants (beyond the --alg
    // shorthand) must serve verified traffic end to end.
    for spec_str in ["rem-lock+halve-one+compress", "hooks+split", "jtb+two-try"] {
        let spec: UfSpec = spec_str.parse().expect("valid spec");
        let n = 1024;
        let mut svc = Service::start(ServiceConfig {
            n,
            shards: 4,
            spec,
            batch_max_wait: Duration::from_micros(50),
            ..ServiceConfig::default()
        })
        .expect("service");
        let (queries, mismatches) = drive_clients(&svc, n, 2, 6);
        assert!(queries > 100, "{spec_str}");
        assert_eq!(mismatches, 0, "{spec_str}");
        svc.shutdown();
    }
    // Invalid combos surface the validation rule.
    let err = "rem-cas+splice+compress".parse::<UfSpec>().unwrap_err();
    assert!(err.contains("FindCompress"), "{err}");
}

#[test]
fn snapshot_matches_oracle_after_quiescence() {
    let n = 512;
    let mut svc = Service::start(ServiceConfig {
        n,
        shards: 3,
        snapshot_every: 1,
        batch_max_wait: Duration::from_micros(10),
        ..ServiceConfig::default()
    })
    .expect("service");
    let client = svc.client();
    let mut rng = SplitMix64::new(7);
    let mut oracle = SeqUnionFind::new(n);
    let mut batch = Vec::new();
    for _ in 0..600 {
        let u = (rng.next_u64() % n as u64) as u32;
        let v = (rng.next_u64() % n as u64) as u32;
        oracle.union(u, v);
        batch.push(Update::Insert(u, v));
    }
    client.submit(batch).expect("submit");
    let snap = client.snapshot_now();
    assert!(cc_graph::stats::same_partition(&oracle.labels(), &snap.labels));
    assert_eq!(snap.num_components, oracle.num_components());
    assert_eq!(client.num_components(), oracle.num_components());
    svc.shutdown();
}

#[test]
fn tcp_protocol_end_to_end() {
    let mut svc = Service::start(ServiceConfig {
        n: 1024,
        shards: 4,
        batch_max_wait: Duration::from_micros(50),
        ..ServiceConfig::default()
    })
    .expect("service");
    let mut server = serve(&svc, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // A couple of concurrent connections hammering the same server.
    std::thread::scope(|s| {
        for t in 0..3u32 {
            s.spawn(move || {
                let mut c = TcpClient::connect(addr).expect("connect");
                c.ping().expect("ping");
                let base = t * 300;
                c.insert(base, base + 1).expect("insert");
                c.insert(base + 1, base + 2).expect("insert");
                assert!(c.query(base, base + 2).expect("query"));
                assert!(!c.query(base, base + 250).expect("query"));
                let answers = c
                    .submit(&[
                        Update::Insert(base + 2, base + 3),
                        Update::Query(base, base + 3),
                        Update::Query(base + 100, base + 101),
                    ])
                    .expect("batch");
                assert_eq!(answers.len(), 2);
                assert!(!answers[1]);
                assert_eq!(c.label(base).expect("label"), c.label(base + 3).expect("label"));
                assert!(c.epoch().expect("epoch") > 0);
                let comps = c.components().expect("components");
                assert!(comps < 1024);
                let stats = c.stats_line().expect("stats");
                assert!(stats.contains("epoch="), "{stats}");
            });
        }
    });

    // Malformed input gets an ERR, connection survives.
    let mut c = TcpClient::connect(addr).expect("connect");
    assert!(c.query(5000, 0).is_err(), "out-of-range vertex is a server-side error");
    c.ping().expect("connection still alive after ERR");

    // An oversized batch is rejected locally, before any bytes go out.
    let huge = vec![Update::Insert(0, 1); cc_server::net::MAX_WIRE_BATCH + 1];
    assert!(c.submit(&huge).is_err());
    c.ping().expect("connection still in sync after local rejection");

    // Clean shutdown via the protocol.
    c.shutdown_server().expect("shutdown");
    server.wait_shutdown();
    svc.shutdown();
}

#[test]
fn tcp_durability_verbs_end_to_end() {
    let dir = tmp_dir("verbs");
    let mut svc = Service::start(ServiceConfig {
        n: 256,
        shards: 2,
        batch_max_wait: Duration::from_micros(50),
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::Off,
            ..DurabilityConfig::new(&dir)
        }),
        ..ServiceConfig::default()
    })
    .expect("service");
    let mut server = serve(&svc, "127.0.0.1:0").expect("bind");
    let mut c = TcpClient::connect(server.local_addr()).expect("connect");
    c.insert(1, 2).expect("insert");
    c.flush_wal().expect("FLUSH");
    let snap_epoch = c.durable_snapshot().expect("SNAPSHOT");
    assert!(snap_epoch >= 1);
    let stats = c.wal_stats_line().expect("WALSTATS");
    for key in ["policy=off", "records=", "snap_epoch=", "last_error=-"] {
        assert!(stats.contains(key), "{stats}");
    }
    server.stop();
    svc.shutdown();

    // The same verbs against a WAL-less server are typed errors, and the
    // connection survives them.
    let mut svc =
        Service::start(ServiceConfig { n: 16, ..ServiceConfig::default() }).expect("service");
    let mut server = serve(&svc, "127.0.0.1:0").expect("bind");
    let mut c = TcpClient::connect(server.local_addr()).expect("connect");
    for r in [c.flush_wal().unwrap_err(), c.durable_snapshot().unwrap_err()] {
        assert!(r.to_string().contains("durability is not enabled"), "{r}");
    }
    assert!(c.wal_stats_line().is_err());
    c.ping().expect("connection survives durability ERRs");
    server.stop();
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The deterministic crash drill: loadgen checkpoints its oracle with
/// `--kill-after`, the server is SIGKILLed and restarted from the same
/// `--wal-dir`, and the `--resume` run re-validates the checkpoint across
/// the restart. Zero mismatches and a monotone epoch are required.
#[test]
fn binaries_kill_restart_checkpoint_resume() {
    let dir = tmp_dir("drill");
    let wal = dir.join("wal");
    let wal = wal.to_str().expect("utf8 path");
    let state = dir.join("lg.state");
    let state = state.to_str().expect("utf8 path");
    let serve_args = |port: &str| {
        vec![
            "--n".to_string(),
            "20000".into(),
            "--shards".into(),
            "4".into(),
            "--port".into(),
            port.to_string(),
            "--wal-dir".into(),
            wal.to_string(),
            "--fsync".into(),
            "batch".into(),
            "--snapshot-every".into(),
            "8".into(),
        ]
    };
    let args0 = serve_args("0");
    let (child, addr, recovered, reader) =
        spawn_serve(&args0.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(recovered, 0, "fresh wal dir");
    drop(reader);

    let addr_s = addr.to_string();
    let (ok, out) = run_loadgen(&[
        "--mode",
        "tcp",
        "--addr",
        &addr_s,
        "--n",
        "20000",
        "--clients",
        "2",
        "--batches",
        "24",
        "--batch-ops",
        "400",
        "--kill-after",
        "12",
        "--state",
        state,
    ]);
    assert!(ok, "checkpoint phase failed:\n{out}");
    assert!(out.contains(" mismatches=0"), "{out}");

    // Observe the epoch the durable history reached, then crash.
    let epoch_before = {
        let mut c = TcpClient::connect(addr).expect("connect");
        c.epoch().expect("epoch")
    };
    assert!(epoch_before > 0);
    hard_kill(child);

    // Restart from the same wal dir on the same port.
    let port_s = addr.port().to_string();
    let args1 = serve_args(&port_s);
    let (child, addr2, recovered, reader) =
        spawn_serve(&args1.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(addr2, addr);
    assert!(
        recovered >= epoch_before,
        "recovered epoch {recovered} regressed below the observed {epoch_before}"
    );

    // Resume: restore the oracle checkpoint, sweep-validate it against
    // the recovered server, then finish the remaining batches. (No
    // --shutdown: the epoch check below needs the server answering.)
    let (ok, out) = run_loadgen(&[
        "--mode",
        "tcp",
        "--addr",
        &addr_s,
        "--n",
        "20000",
        "--clients",
        "2",
        "--batches",
        "24",
        "--batch-ops",
        "400",
        "--resume",
        "--state",
        state,
    ]);
    assert!(ok, "resume phase failed:\n{out}");
    assert!(out.contains(" mismatches=0"), "{out}");
    let sweeps: u64 = out
        .split_whitespace()
        .find_map(|t| t.strip_prefix("sweep_checks=")?.parse().ok())
        .expect("sweep_checks in output");
    assert!(sweeps > 0, "resume must re-validate the restored oracle:\n{out}");
    let mut c = TcpClient::connect(addr).expect("server still serving");
    let epoch_after = c.epoch().expect("epoch");
    assert!(epoch_after >= epoch_before, "epoch regressed across the restart");
    c.shutdown_server().expect("shutdown");
    drain_and_wait(child, reader);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The mid-load crash drill: the server is SIGKILLed while loadgen is
/// actively driving it; `--resume` reconnects, resubmits the in-flight
/// insertions, and the run finishes with zero mismatches.
#[test]
fn binaries_kill_mid_load_and_reconnect() {
    let dir = tmp_dir("midload");
    let wal = dir.join("wal");
    let wal = wal.to_str().expect("utf8 path").to_string();
    let base = vec![
        "--n".to_string(),
        "8000".into(),
        "--shards".into(),
        "4".into(),
        "--wal-dir".into(),
        wal,
        "--fsync".into(),
        "batch".into(),
    ];
    let mut args0: Vec<String> = base.clone();
    args0.extend(["--port".into(), "0".into()]);
    let (child, addr, _, reader) =
        spawn_serve(&args0.iter().map(String::as_str).collect::<Vec<_>>());
    drop(reader);

    // Loadgen runs in the background with reconnect-resilience on.
    let addr_s = addr.to_string();
    let loadgen = Command::new(env!("CARGO_BIN_EXE_connectit-loadgen"))
        .args([
            "--mode",
            "tcp",
            "--addr",
            &addr_s,
            "--n",
            "8000",
            "--clients",
            "2",
            "--batches",
            "300",
            "--batch-ops",
            "150",
            "--resume",
            "--retry-secs",
            "60",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn loadgen");

    // Wait until the load is demonstrably mid-flight, then crash.
    let deadline = Instant::now() + Duration::from_secs(30);
    let epoch_before = loop {
        assert!(Instant::now() < deadline, "load never reached epoch 5");
        if let Ok(mut c) = TcpClient::connect(addr) {
            if let Ok(e) = c.epoch() {
                if e >= 5 {
                    break e;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    hard_kill(child);

    let mut args1: Vec<String> = base.clone();
    args1.extend(["--port".into(), addr.port().to_string()]);
    let (child, _, recovered, reader) =
        spawn_serve(&args1.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(
        recovered >= epoch_before,
        "recovered epoch {recovered} regressed below the observed {epoch_before}"
    );

    let out = loadgen.wait_with_output().expect("loadgen exits");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "mid-load drill failed:\n{stdout}");
    assert!(stdout.contains(" mismatches=0"), "{stdout}");

    let mut c = TcpClient::connect(addr).expect("connect");
    assert!(c.epoch().expect("epoch") >= epoch_before);
    c.shutdown_server().expect("shutdown");
    drain_and_wait(child, reader);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The replication drill over the real binaries: a durable primary
/// streams its WAL to two follower processes; the loadgen split-routes
/// (inserts -> primary, WAIT-barriered queries -> followers) with exact
/// oracle validation; one follower is SIGKILLed mid-run and restarted
/// empty, reconverges through the stream, and the run finishes with zero
/// mismatches.
#[test]
fn binaries_replication_topology_kill_one_follower() {
    let dir = tmp_dir("repl");
    let wal = dir.join("wal");
    let wal = wal.to_str().expect("utf8 path").to_string();

    let primary = spawn_serve_full(&[
        "--n",
        "30000",
        "--shards",
        "4",
        "--port",
        "0",
        "--wal-dir",
        &wal,
        "--fsync",
        "batch",
        "--snapshot-every",
        "8",
        "--replication-port",
        "0",
    ]);
    let paddr = primary.addr.to_string();
    let raddr = primary.replication_addr.expect("primary prints replication_addr=").to_string();

    let follower_args = |port: &str| {
        vec![
            "--n".to_string(),
            "30000".into(),
            "--shards".into(),
            "4".into(),
            "--port".into(),
            port.to_string(),
            "--replicate-from".into(),
            raddr.clone(),
        ]
    };
    let f1 = spawn_serve_full(&follower_args("0").iter().map(String::as_str).collect::<Vec<_>>());
    let f2 = spawn_serve_full(&follower_args("0").iter().map(String::as_str).collect::<Vec<_>>());
    let (f1addr, f2addr) = (f1.addr.to_string(), f2.addr.to_string());
    {
        let mut c = TcpClient::connect(f1.addr).expect("connect follower");
        assert_eq!(c.role().expect("ROLE"), "follower");
        // Inserts are rejected with the routing hint, connection intact.
        let err = c.insert(1, 2).expect_err("follower is read-only");
        assert!(err.to_string().contains("read-only follower"), "{err}");
        c.ping().expect("alive after ERR");
    }

    // Background load, split-routed with reconnect resilience.
    let loadgen = Command::new(env!("CARGO_BIN_EXE_connectit-loadgen"))
        .args([
            "--mode",
            "tcp",
            "--addr",
            &paddr,
            "--n",
            "30000",
            "--clients",
            "2",
            "--batches",
            "120",
            "--batch-ops",
            "300",
            "--retry-secs",
            "60",
            "--follower",
            &f1addr,
            "--follower",
            &f2addr,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn loadgen");

    // Wait until replication is demonstrably live on follower 1, then
    // SIGKILL it mid-replay.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "follower 1 never reached epoch 10");
        if let Ok(mut c) = TcpClient::connect(f1.addr) {
            if c.epoch().map(|e| e >= 10).unwrap_or(false) {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    hard_kill(f1.child);

    // Restart it on the same port: a follower is in-memory, so this one
    // comes back EMPTY and must reconverge from the stream alone (its
    // handshake epoch 0 predates the primary's pruned history, forcing
    // the snapshot-bootstrap path).
    let port1 = f1.addr.port().to_string();
    let f1 =
        spawn_serve_full(&follower_args(&port1).iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(f1.addr.port(), port1.parse::<u16>().expect("port"));

    let out = loadgen.wait_with_output().expect("loadgen exits");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "split-routed drill failed:\n{stdout}");
    assert!(stdout.contains(" mismatches=0"), "{stdout}");
    let fv: u64 = stdout
        .split_whitespace()
        .find_map(|t| t.strip_prefix("follower_verified=")?.parse().ok())
        .expect("follower_verified in output");
    assert!(fv > 1000, "expected substantial follower-verified traffic:\n{stdout}");

    // Convergence: the restarted follower catches the primary's epoch.
    let primary_epoch = {
        let mut c = TcpClient::connect(primary.addr).expect("primary alive");
        c.epoch().expect("epoch")
    };
    let mut c = TcpClient::connect(f1.addr).expect("restarted follower alive");
    let reached = c.wait_epoch(primary_epoch, 30_000).expect("follower converges");
    assert!(reached >= primary_epoch);

    // Tear the topology down through the protocol.
    for s in [f1, f2] {
        let mut c = TcpClient::connect(s.addr).expect("connect");
        c.shutdown_server().expect("shutdown follower");
        drain_and_wait(s.child, s.reader);
    }
    let mut c = TcpClient::connect(primary.addr).expect("connect");
    c.shutdown_server().expect("shutdown primary");
    drain_and_wait(primary.child, primary.reader);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_server_stop_from_host() {
    let mut svc = Service::start(ServiceConfig { n: 16, shards: 2, ..ServiceConfig::default() })
        .expect("service");
    let mut server = serve(&svc, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut c = TcpClient::connect(addr).expect("connect");
    c.insert(0, 1).expect("insert");
    server.stop();
    svc.shutdown();
    // New connections are refused or die promptly after stop.
    let alive = TcpClient::connect(addr).and_then(|mut c2| c2.ping());
    assert!(alive.is_err(), "server accepted after stop");
}
