//! End-to-end tests: a live service under concurrent multi-client load,
//! in-process and over TCP, validated against the sequential oracle.

use cc_parallel::SplitMix64;
use cc_server::{serve, ExecMode, Service, ServiceConfig, TcpClient};
use cc_unionfind::{FindKind, SeqUnionFind, SpliceKind, UfSpec, UniteKind};
use connectit::Update;
use std::time::Duration;

/// Drives `clients` concurrent closed loops against `svc`, each with a
/// private vertex slice and its own oracle; returns (queries, mismatches).
fn drive_clients(svc: &Service, n: usize, clients: usize, batches: usize) -> (u64, u64) {
    let results: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|idx| {
                let client = svc.client();
                s.spawn(move || {
                    let sz = n / clients;
                    let base = (idx * sz) as u32;
                    let mut oracle = SeqUnionFind::new(sz);
                    let mut rng = SplitMix64::new(idx as u64 + 99);
                    let (mut queries, mut mismatches) = (0u64, 0u64);
                    for _ in 0..batches {
                        let mut script = Vec::new();
                        let mut wire = Vec::new();
                        let mut before = Vec::new();
                        for _ in 0..256 {
                            let lu = (rng.next_u64() % sz as u64) as u32;
                            let lv = (rng.next_u64() % sz as u64) as u32;
                            let is_query = rng.next_u64().is_multiple_of(2);
                            script.push((is_query, lu, lv));
                            if is_query {
                                before.push(oracle.connected(lu, lv));
                                wire.push(Update::Query(base + lu, base + lv));
                            } else {
                                wire.push(Update::Insert(base + lu, base + lv));
                            }
                        }
                        let answers = client.submit(wire).expect("submit");
                        for &(is_query, lu, lv) in &script {
                            if !is_query {
                                oracle.union(lu, lv);
                            }
                        }
                        let mut qi = 0;
                        for &(is_query, lu, lv) in &script {
                            if !is_query {
                                continue;
                            }
                            let got = answers[qi];
                            let was = before[qi];
                            qi += 1;
                            queries += 1;
                            // Bracketing: stable answers are forced; a
                            // within-batch false->true transition is free.
                            if was == oracle.connected(lu, lv) && got != was {
                                mismatches += 1;
                            }
                        }
                    }
                    (queries, mismatches)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    results.into_iter().fold((0, 0), |(q, m), (dq, dm)| (q + dq, m + dm))
}

#[test]
fn concurrent_clients_linearizable_waitfree() {
    let n = 4096;
    let mut svc = Service::start(ServiceConfig {
        n,
        shards: 4,
        batch_max_wait: Duration::from_micros(100),
        ..ServiceConfig::default()
    })
    .expect("service");
    let (queries, mismatches) = drive_clients(&svc, n, 4, 20);
    assert!(queries > 1000, "drove {queries} queries");
    assert_eq!(mismatches, 0);
    // The published view agrees with a per-slice oracle rebuild: every
    // client's slice is internally consistent.
    let stats = svc.client().stats();
    assert_eq!(stats.ops, 4 * 20 * 256);
    assert!(stats.epoch > 0);
    svc.shutdown();
}

#[test]
fn concurrent_clients_linearizable_phased() {
    let n = 2048;
    let mut svc = Service::start(ServiceConfig {
        n,
        shards: 4,
        spec: UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Naive),
        mode: ExecMode::Phased,
        batch_max_wait: Duration::from_micros(100),
        ..ServiceConfig::default()
    })
    .expect("service");
    let (queries, mismatches) = drive_clients(&svc, n, 4, 12);
    assert!(queries > 500);
    assert_eq!(mismatches, 0);
    svc.shutdown();
}

#[test]
fn finish_spec_vocabulary_serves_any_variant() {
    // The --finish CLI path: arbitrary parsed variants (beyond the --alg
    // shorthand) must serve verified traffic end to end.
    for spec_str in ["rem-lock+halve-one+compress", "hooks+split", "jtb+two-try"] {
        let spec: UfSpec = spec_str.parse().expect("valid spec");
        let n = 1024;
        let mut svc = Service::start(ServiceConfig {
            n,
            shards: 4,
            spec,
            batch_max_wait: Duration::from_micros(50),
            ..ServiceConfig::default()
        })
        .expect("service");
        let (queries, mismatches) = drive_clients(&svc, n, 2, 6);
        assert!(queries > 100, "{spec_str}");
        assert_eq!(mismatches, 0, "{spec_str}");
        svc.shutdown();
    }
    // Invalid combos surface the validation rule.
    let err = "rem-cas+splice+compress".parse::<UfSpec>().unwrap_err();
    assert!(err.contains("FindCompress"), "{err}");
}

#[test]
fn snapshot_matches_oracle_after_quiescence() {
    let n = 512;
    let mut svc = Service::start(ServiceConfig {
        n,
        shards: 3,
        snapshot_every: 1,
        batch_max_wait: Duration::from_micros(10),
        ..ServiceConfig::default()
    })
    .expect("service");
    let client = svc.client();
    let mut rng = SplitMix64::new(7);
    let mut oracle = SeqUnionFind::new(n);
    let mut batch = Vec::new();
    for _ in 0..600 {
        let u = (rng.next_u64() % n as u64) as u32;
        let v = (rng.next_u64() % n as u64) as u32;
        oracle.union(u, v);
        batch.push(Update::Insert(u, v));
    }
    client.submit(batch).expect("submit");
    let snap = client.snapshot_now();
    assert!(cc_graph::stats::same_partition(&oracle.labels(), &snap.labels));
    assert_eq!(snap.num_components, oracle.num_components());
    assert_eq!(client.num_components(), oracle.num_components());
    svc.shutdown();
}

#[test]
fn tcp_protocol_end_to_end() {
    let mut svc = Service::start(ServiceConfig {
        n: 1024,
        shards: 4,
        batch_max_wait: Duration::from_micros(50),
        ..ServiceConfig::default()
    })
    .expect("service");
    let mut server = serve(&svc, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // A couple of concurrent connections hammering the same server.
    std::thread::scope(|s| {
        for t in 0..3u32 {
            s.spawn(move || {
                let mut c = TcpClient::connect(addr).expect("connect");
                c.ping().expect("ping");
                let base = t * 300;
                c.insert(base, base + 1).expect("insert");
                c.insert(base + 1, base + 2).expect("insert");
                assert!(c.query(base, base + 2).expect("query"));
                assert!(!c.query(base, base + 250).expect("query"));
                let answers = c
                    .submit(&[
                        Update::Insert(base + 2, base + 3),
                        Update::Query(base, base + 3),
                        Update::Query(base + 100, base + 101),
                    ])
                    .expect("batch");
                assert_eq!(answers.len(), 2);
                assert!(!answers[1]);
                assert_eq!(c.label(base).expect("label"), c.label(base + 3).expect("label"));
                assert!(c.epoch().expect("epoch") > 0);
                let comps = c.components().expect("components");
                assert!(comps < 1024);
                let stats = c.stats_line().expect("stats");
                assert!(stats.contains("epoch="), "{stats}");
            });
        }
    });

    // Malformed input gets an ERR, connection survives.
    let mut c = TcpClient::connect(addr).expect("connect");
    assert!(c.query(5000, 0).is_err(), "out-of-range vertex is a server-side error");
    c.ping().expect("connection still alive after ERR");

    // An oversized batch is rejected locally, before any bytes go out.
    let huge = vec![Update::Insert(0, 1); cc_server::net::MAX_WIRE_BATCH + 1];
    assert!(c.submit(&huge).is_err());
    c.ping().expect("connection still in sync after local rejection");

    // Clean shutdown via the protocol.
    c.shutdown_server().expect("shutdown");
    server.wait_shutdown();
    svc.shutdown();
}

#[test]
fn tcp_server_stop_from_host() {
    let mut svc = Service::start(ServiceConfig { n: 16, shards: 2, ..ServiceConfig::default() })
        .expect("service");
    let mut server = serve(&svc, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut c = TcpClient::connect(addr).expect("connect");
    c.insert(0, 1).expect("insert");
    server.stop();
    svc.shutdown();
    // New connections are refused or die promptly after stop.
    let alive = TcpClient::connect(addr).and_then(|mut c2| c2.ping());
    assert!(alive.is_err(), "server accepted after stop");
}
