//! Oracle-driven property tests for the fully dynamic service: random
//! interleaved insert/delete/query schedules are served through an
//! in-process [`Service`] and validated against the naive
//! [`DynamicOracle`] (incremental adjacency + BFS). Schedules include
//! deletions of absent edges and duplicate deletions of the same edge
//! by construction.
//!
//! Validation is exact, leaning on the `(epoch, generation)` staleness
//! contract: after each submitted batch the test quiesces (drains any
//! in-flight generation rebuild) and re-asks the batch's vertex pairs
//! as a query-only batch. With a single client and a clean engine the
//! answers have exactly one legal value — the oracle's. A final sweep
//! compares the whole recovered partition (`same_partition`) and the
//! component count against the oracle.
//!
//! The non-proptest test pins the rebuild-trigger classification via
//! telemetry: non-forest and absent deletions must trigger **zero**
//! rebuilds; a forest deletion must trigger exactly one.

use cc_baselines::DynamicOracle;
use cc_graph::stats::same_partition;
use cc_server::{Service, ServiceConfig};
use connectit::Update;
use proptest::prelude::*;
use std::time::Duration;

const QUIESCE: Duration = Duration::from_secs(20);

fn cfg(n: usize, shards: usize) -> ServiceConfig {
    ServiceConfig {
        n,
        shards,
        batch_max_wait: Duration::from_micros(10),
        ..ServiceConfig::default()
    }
}

/// Materializes one scripted op. Kinds: 0–4 insert, 5–6 delete the
/// given pair (mostly absent early, live later), 7 delete the edge
/// most recently touched — re-deleting a just-deleted edge is the
/// duplicate-deletion case — and 8–9 query. `last_edge` tracks the most
/// recently inserted or deleted pair.
fn materialize(kind: u8, u: u32, v: u32, last_edge: &mut Option<(u32, u32)>) -> Update {
    match kind {
        0..=4 => {
            *last_edge = Some((u, v));
            Update::Insert(u, v)
        }
        5 | 6 => {
            *last_edge = Some((u, v));
            Update::Delete(u, v)
        }
        7 => {
            let (du, dv) = last_edge.unwrap_or((u, v));
            Update::Delete(du, dv)
        }
        _ => Update::Query(u, v),
    }
}

/// Strategy: vertex count, shard count, a flat op script, and a batch
/// size to cut it into. Small vertex ranges make deletions land on live
/// edges (and duplicates) often.
#[allow(clippy::type_complexity)]
fn arb_schedule() -> impl Strategy<Value = (usize, usize, Vec<(u8, u32, u32)>, usize)> {
    (6usize..40, 1usize..4).prop_flat_map(|(n, shards)| {
        let op = (0u8..10, 0..n as u32, 0..n as u32);
        (Just(n), Just(shards), proptest::collection::vec(op, 10..120), 1usize..20)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_churn_schedules_match_the_dynamic_oracle(
        (n, shards, script, batch_size) in arb_schedule(),
    ) {
        let mut svc = Service::start(cfg(n, shards)).expect("service");
        let client = svc.client();
        let mut oracle = DynamicOracle::new(n);
        let mut last_edge = None;
        for chunk in script.chunks(batch_size) {
            let batch: Vec<Update> =
                chunk.iter().map(|&(k, u, v)| materialize(k, u, v, &mut last_edge)).collect();
            // The interleaved batch itself: inline query answers during a
            // dirty window legally serve the sealed generation, so they
            // are advisory here; the oracle replays the same ops.
            client.submit(batch.clone()).expect("submit");
            oracle.apply_batch(&batch);
            // Exact validation: quiesce, then re-ask every pair the batch
            // touched. Single client + clean engine = one legal answer.
            client.quiesce(QUIESCE).expect("quiesce");
            let pairs: Vec<Update> = batch
                .iter()
                .map(|&(Update::Insert(u, v) | Update::Delete(u, v) | Update::Query(u, v))| {
                    Update::Query(u, v)
                })
                .collect();
            let answers = client.submit(pairs.clone()).expect("query batch");
            for (i, &got) in answers.iter().enumerate() {
                let (Update::Insert(u, v) | Update::Delete(u, v) | Update::Query(u, v)) =
                    pairs[i];
                prop_assert_eq!(
                    got,
                    oracle.connected(u, v),
                    "query({}, {}) diverged from the dynamic oracle after a clean quiesce",
                    u,
                    v
                );
            }
        }
        // Whole-partition sweep: labeling and component count.
        client.quiesce(QUIESCE).expect("final quiesce");
        let snap = client.snapshot_now();
        prop_assert!(
            same_partition(&oracle.labels(), &snap.labels),
            "final partition diverged from the dynamic oracle"
        );
        let oracle_components = {
            let labels = oracle.labels();
            let mut reps: Vec<u32> = labels.to_vec();
            reps.sort_unstable();
            reps.dedup();
            reps.len()
        };
        prop_assert_eq!(client.num_components(), oracle_components);
        svc.shutdown();
    }
}

/// The rebuild-trigger classification, asserted via telemetry: deleting
/// a non-forest (cycle) edge or an absent/duplicate edge must trigger
/// **zero** rebuilds; deleting a forest edge must trigger exactly one.
#[test]
fn deletion_classification_drives_rebuilds() {
    let mut svc = Service::start(cfg(16, 2)).expect("service");
    let client = svc.client();
    // 0-1, 1-2 first; then 0-2 in a later batch, by which time 0 ~ 2:
    // the engine must classify 0-2 as a non-forest (cycle) edge.
    client.submit(vec![Update::Insert(0, 1), Update::Insert(1, 2)]).expect("submit");
    client.quiesce(QUIESCE).expect("quiesce");
    client.submit(vec![Update::Insert(0, 2)]).expect("submit");
    client.quiesce(QUIESCE).expect("quiesce");
    let before = client.generation_info();

    // Non-forest deletion: free — no seal, no rebuild, still connected.
    client.delete(0, 2).expect("delete");
    let after = client.generation_info();
    assert!(!after.dirty, "a non-forest deletion must not dirty the engine");
    assert_eq!(after.counters.rebuilds, before.counters.rebuilds);
    assert_eq!(after.counters.deletes_nonforest, before.counters.deletes_nonforest + 1);
    assert_eq!(client.submit(vec![Update::Query(0, 2)]).expect("query"), vec![true]);

    // Absent + duplicate deletions: also free.
    client.delete(7, 9).expect("absent delete");
    client.delete(0, 2).expect("duplicate delete");
    let after = client.generation_info();
    assert!(!after.dirty);
    assert_eq!(after.counters.rebuilds, before.counters.rebuilds);
    assert_eq!(after.counters.deletes_absent, before.counters.deletes_absent + 2);

    // Forest deletion: seals and rebuilds exactly once.
    client.delete(1, 2).expect("forest delete");
    client.quiesce(QUIESCE).expect("quiesce");
    let after = client.generation_info();
    assert_eq!(after.counters.deletes_forest, before.counters.deletes_forest + 1);
    assert_eq!(after.counters.rebuilds, before.counters.rebuilds + 1);
    assert_eq!(
        client.submit(vec![Update::Query(0, 1), Update::Query(1, 2)]).expect("query"),
        vec![true, false]
    );
    svc.shutdown();
}
