//! Fuzz/property coverage for the binary frame path: arbitrary byte
//! streams — bit flips, truncations, oversized lengths, sniff-ambiguous
//! prefixes — fed both to the in-process [`FrameAssembler`] and to a
//! live served socket. The invariants: the assembler never panics and
//! never tears a frame (any chunking of a valid stream yields exactly
//! the frames that were framed); damage always surfaces as a typed
//! [`FrameError`] after which the assembler stays poisoned; the live
//! server answers damage with an `ERR` frame and a typed close, and is
//! healthy for the next connection.

use cc_graph::io::binary::crc32;
use cc_server::binproto::{
    self, frame, BinClient, FrameAssembler, FrameError, MAX_FRAME_PAYLOAD, STREAM_MAGIC,
};
use cc_server::{serve, Role, Service, ServiceConfig, TcpServer};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A valid stream: magic plus `frames` framed payloads, concatenated.
fn valid_stream(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut s = STREAM_MAGIC.to_vec();
    for p in frames {
        s.extend_from_slice(&frame(p));
    }
    s
}

/// Drains every completed frame, stopping at (and returning) the first
/// error.
fn drain(asm: &mut FrameAssembler) -> (Vec<Vec<u8>>, Option<FrameError>) {
    let mut out = Vec::new();
    loop {
        match asm.next_frame() {
            Ok(Some(p)) => out.push(p),
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any chunking of a valid stream reassembles exactly the original
    /// frames: no tearing, no reordering, no damage.
    #[test]
    fn any_chunking_reassembles_exactly(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..300), 0..12),
        cuts in proptest::collection::vec(1usize..40, 1..64),
    ) {
        let stream = valid_stream(&payloads);
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cut = cuts.iter().cycle();
        while pos < stream.len() {
            let step = (*cut.next().unwrap()).min(stream.len() - pos);
            asm.push(&stream[pos..pos + step]);
            pos += step;
            let (frames, err) = drain(&mut asm);
            prop_assert!(err.is_none(), "valid stream errored: {:?}", err);
            got.extend(frames);
        }
        prop_assert_eq!(got, payloads);
    }

    /// A truncated valid stream yields a prefix of the frames and no
    /// error — a frame is either delivered whole or not at all.
    #[test]
    fn truncation_never_tears_a_frame(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..200), 1..8),
        keep_num in 0u32..=1000,
    ) {
        let stream = valid_stream(&payloads);
        let keep = STREAM_MAGIC.len()
            + (stream.len() - STREAM_MAGIC.len()) * keep_num as usize / 1000;
        let mut asm = FrameAssembler::new();
        asm.push(&stream[..keep]);
        let (got, err) = drain(&mut asm);
        prop_assert!(err.is_none(), "truncation must starve, not error: {:?}", err);
        prop_assert!(got.len() <= payloads.len());
        prop_assert_eq!(&got[..], &payloads[..got.len()], "delivered frames are exact");
    }

    /// A single flipped bit anywhere past the magic either leaves the
    /// decoded prefix intact or surfaces a typed error — and after any
    /// error the assembler stays poisoned forever (no resync on a
    /// corrupt stream).
    #[test]
    fn bit_flips_surface_typed_errors_and_poison(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..64), 1..6),
        flip_num in 0u32..=999,
        bit in 0u8..8,
    ) {
        let mut stream = valid_stream(&payloads);
        let body = stream.len() - STREAM_MAGIC.len();
        let at = STREAM_MAGIC.len() + body * flip_num as usize / 1000;
        let at = at.min(stream.len() - 1);
        stream[at] ^= 1 << bit;
        let mut asm = FrameAssembler::new();
        asm.push(&stream);
        let (got, err) = drain(&mut asm);
        // Whatever was delivered must be an exact prefix (possibly with
        // one frame whose payload absorbed the flip but whose CRC then
        // cannot match — so really: every delivered frame matches or the
        // flip landed beyond it).
        for (i, p) in got.iter().enumerate() {
            if stream_frame_untouched(&payloads, i, at) {
                prop_assert_eq!(p, &payloads[i], "untouched frame {} was altered", i);
            }
        }
        if let Some(e) = err {
            // Poisoned: more bytes never revive it, same error class.
            asm.push(&frame(b"afterlife"));
            let (more, err2) = drain(&mut asm);
            prop_assert!(more.is_empty(), "poisoned assembler delivered frames");
            prop_assert_eq!(err2, Some(e), "poisoned error must be sticky");
        }
    }

    /// Arbitrary garbage after a valid magic never panics: it either
    /// starves (incomplete) or errors typed.
    #[test]
    fn arbitrary_garbage_never_panics(
        garbage in proptest::collection::vec(0u8..=255, 0..2000),
        cuts in proptest::collection::vec(1usize..64, 1..32),
    ) {
        let mut asm = FrameAssembler::new();
        asm.push(&STREAM_MAGIC);
        let mut pos = 0;
        let mut cut = cuts.iter().cycle();
        let mut poisoned = false;
        while pos < garbage.len() {
            let step = (*cut.next().unwrap()).min(garbage.len() - pos);
            asm.push(&garbage[pos..pos + step]);
            pos += step;
            let (_, err) = drain(&mut asm);
            if err.is_some() {
                poisoned = true;
            }
            prop_assert!(!poisoned || err.is_some(), "error class must be sticky");
        }
    }
}

/// Whether frame `i`'s bytes (header included) end before offset `at`
/// in the full stream — i.e. the flip cannot have touched it.
fn stream_frame_untouched(payloads: &[Vec<u8>], i: usize, at: usize) -> bool {
    let mut end = STREAM_MAGIC.len();
    for p in payloads.iter().take(i + 1) {
        end += 8 + p.len();
    }
    end <= at
}

#[test]
fn oversized_length_prefix_is_refused_before_buffering() {
    let mut asm = FrameAssembler::new();
    asm.push(&STREAM_MAGIC);
    asm.push(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    asm.push(&0u32.to_le_bytes());
    assert_eq!(asm.next_frame(), Err(FrameError::Oversized(MAX_FRAME_PAYLOAD + 1)));
    // Sticky: the declared length is never waited for.
    asm.push(&[0u8; 64]);
    assert_eq!(asm.next_frame(), Err(FrameError::Oversized(MAX_FRAME_PAYLOAD + 1)));
}

#[test]
fn sniff_ambiguity_is_resolved_by_exact_magic_only() {
    // Every 8-byte prefix starting with 0xCC that is not the exact magic
    // is a BadMagic error, not a text fallback and not a hang.
    for wrong in [1usize, 2, 3, 4, 5, 6, 7] {
        let mut m = STREAM_MAGIC;
        m[wrong] ^= 0x20;
        let mut asm = FrameAssembler::new();
        asm.push(&m);
        assert_eq!(asm.next_frame(), Err(FrameError::BadMagic), "byte {wrong}");
    }
    // A correct magic arriving one byte at a time is fine.
    let mut asm = FrameAssembler::new();
    for b in STREAM_MAGIC {
        asm.push(&[b]);
        assert!(asm.next_frame().expect("no error").is_none());
    }
    asm.push(&frame(&binproto::encode_request(1, &binproto::BinRequest::Ping)));
    assert!(asm.next_frame().expect("frame").is_some());
}

// ---------------------------------------------------------------------------
// Live-server fuzz: the same damage over a real socket.
// ---------------------------------------------------------------------------

fn start() -> (Service, TcpServer, SocketAddr) {
    let svc = Service::start(ServiceConfig {
        n: 64,
        shards: 2,
        role: Role::Primary,
        batch_max_wait: Duration::from_micros(20),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let server = serve(&svc, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    (svc, server, addr)
}

/// Feeds `bytes` to a fresh connection and drains until the server
/// closes (or 2s of silence). The server must never hang or crash.
fn throw_garbage(addr: SocketAddr, bytes: &[u8]) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
    // The peer may close mid-write once it sees damage; both halves of
    // that race are fine.
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink);
}

#[test]
fn live_server_survives_garbage_streams() {
    let (mut svc, mut server, addr) = start();
    let mut rng: u64 = 0x00D1_CE00;
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (rng >> 33) as u8
    };
    for case in 0..40 {
        let mut bytes = Vec::new();
        match case % 5 {
            // Binary-looking garbage: sniff byte then noise.
            0 => {
                bytes.push(binproto::SNIFF_BYTE);
                for _ in 0..200 {
                    bytes.push(next());
                }
            }
            // Valid magic, then noise.
            1 => {
                bytes.extend_from_slice(&STREAM_MAGIC);
                for _ in 0..200 {
                    bytes.push(next());
                }
            }
            // Valid magic + one valid frame + corrupted tail.
            2 => {
                bytes.extend_from_slice(&STREAM_MAGIC);
                bytes.extend_from_slice(&frame(&binproto::encode_request(
                    1,
                    &binproto::BinRequest::Ping,
                )));
                let mut f = frame(&binproto::encode_request(2, &binproto::BinRequest::Ping));
                let at = 8 + (next() as usize % (f.len() - 8));
                f[at] ^= 1 << (next() % 8);
                bytes.extend_from_slice(&f);
            }
            // Oversized declared length.
            3 => {
                bytes.extend_from_slice(&STREAM_MAGIC);
                bytes.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1 + next() as u32).to_le_bytes());
                bytes.extend_from_slice(&crc32(b"x").to_le_bytes());
            }
            // Text-looking garbage (first byte not the sniff byte).
            _ => {
                bytes.push(b'A' + (next() % 26));
                for _ in 0..100 {
                    bytes.push(next());
                }
                bytes.push(b'\n');
            }
        }
        throw_garbage(addr, &bytes);
    }
    // After forty hostile connections, a well-behaved one still works
    // on both doors.
    let mut bin = BinClient::connect(addr).expect("binary connect");
    bin.insert(1, 2).expect("insert");
    assert!(bin.query(1, 2).expect("query"));
    let mut text = cc_server::TcpClient::connect(addr).expect("text connect");
    assert!(text.query(1, 2).expect("text query"));
    server.stop();
    svc.shutdown();
}
