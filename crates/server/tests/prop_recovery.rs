//! Crash-point property tests for the durability subsystem: random op
//! sequences — inserts, **deletions**, and queries — are served through
//! a durable service, then the WAL is truncated at **every** record
//! boundary (and at points mid-record, including mid-magic) and
//! recovered. For each crash point the recovered partition must equal
//! the dynamic oracle over exactly the durable prefix — torn tails are
//! detected and dropped, never replayed, and deletion-bearing (`'D'`)
//! records replay in order rather than being dropped as unknown record
//! types — and the resumed epoch must match the number of surviving
//! batches.
//!
//! Truncation points (and the epoch each surviving record carries) are
//! computed here with an independent walk of the segment frames (using
//! the kind-aware payload decoder, so both `'I'` and `'D'` records are
//! covered), so a recovery scan that kept one record too many or too
//! few fails against the oracle, not against itself.

use cc_baselines::DynamicOracle;
use cc_graph::io::binary;
use cc_graph::stats::same_partition;
use cc_server::{wal, DurabilityConfig, FsyncPolicy, Service, ServiceConfig};
use connectit::Update;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    cc_server::scratch_dir(&format!("prop_rec_{tag}"))
}

fn durable_cfg(n: usize, dir: &Path, snapshot_every: u64) -> ServiceConfig {
    ServiceConfig {
        n,
        shards: 2,
        batch_max_wait: Duration::from_micros(10),
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::Off,
            snapshot_every,
            ..DurabilityConfig::new(dir)
        }),
        ..ServiceConfig::default()
    }
}

/// One record of a WAL segment, as seen by an independent frame walk.
struct Extent {
    start: u64,
    end: u64,
    epoch: u64,
}

/// Walks a segment's frames without the recovery code path.
fn walk_segment(path: &Path) -> (Vec<Extent>, u64) {
    let bytes = std::fs::read(path).expect("segment readable");
    let mut cur = std::io::Cursor::new(&bytes[binary::MAGIC_LEN..]);
    let mut r = binary::RecordReader::new(&mut cur, binary::MAGIC_LEN as u64);
    let mut extents = Vec::new();
    loop {
        let start = r.offset();
        match r.next().expect("untruncated segment decodes") {
            None => break,
            Some(payload) => {
                let (epoch, _) = wal::decode_wal_payload(&payload, start).expect("wal record");
                extents.push(Extent { start, end: r.offset(), epoch });
            }
        }
    }
    (extents, bytes.len() as u64)
}

/// Sorted WAL segment paths in `dir`.
fn segment_paths(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("wal dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    out.sort();
    out
}

/// Newest durable snapshot epoch in `dir` (by filename), 0 if none.
fn latest_snapshot_epoch(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("wal dir")
        .flatten()
        .filter_map(|e| {
            e.file_name().to_str()?.strip_prefix("snap-")?.strip_suffix(".ccsnap")?.parse().ok()
        })
        .max()
        .unwrap_or(0)
}

/// Dynamic-oracle labeling after the updates of batches `0..prefix`
/// applied **in order** (deletions make the order load-bearing).
fn oracle_prefix(n: usize, batches: &[Vec<Update>], prefix: usize) -> Vec<u32> {
    let mut oracle = DynamicOracle::new(n);
    for batch in &batches[..prefix] {
        oracle.apply_batch(batch);
    }
    oracle.labels()
}

/// Strategy: vertex count, a flat op script (kind 0–4 insert, 5–6
/// delete, 7 query — enough deletions that most cases carry `'D'`
/// records), a batch size to cut it into, and a durable-snapshot
/// cadence (0 = none).
#[allow(clippy::type_complexity)]
fn arb_case() -> impl Strategy<Value = (usize, Vec<(u8, u32, u32)>, usize, u64)> {
    (8usize..48).prop_flat_map(|n| {
        let op = (0u8..8, 0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(op, 20..160), 1usize..25, 0u64..4)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn any_crash_point_recovers_exactly_the_durable_prefix(
        (n, script, batch_size, snapshot_every) in arb_case(),
    ) {
        let base = tmp_dir("run");
        let wal_dir = base.join("wal");
        let batches: Vec<Vec<Update>> = script
            .chunks(batch_size)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&(kind, u, v)| match kind {
                        0..=4 => Update::Insert(u, v),
                        5 | 6 => Update::Delete(u, v),
                        _ => Update::Query(u, v),
                    })
                    .collect()
            })
            .collect();

        // Serve the whole script, one submission (= one batch = one WAL
        // record) at a time.
        {
            let mut svc = Service::start(durable_cfg(n, &wal_dir, snapshot_every))
                .expect("durable service");
            let client = svc.client();
            for batch in &batches {
                client.submit(batch.clone()).expect("submit");
            }
            prop_assert_eq!(client.epoch(), batches.len() as u64,
                "sequential submissions must map 1:1 to batches");
            svc.shutdown();
        }

        // Independent frame walk of the final segment; earlier segments
        // (sealed at durable snapshots) stay intact across every crash
        // point, so their last epoch is part of every durable prefix.
        let segments = segment_paths(&wal_dir);
        let last_seg = segments.last().expect("at least one segment").clone();
        let (extents, file_len) = walk_segment(&last_seg);
        let earlier_last_epoch: u64 = segments[..segments.len() - 1]
            .iter()
            .map(|p| walk_segment(p).0.last().map_or(0, |e| e.epoch))
            .max()
            .unwrap_or(0);
        let snap_epoch = latest_snapshot_epoch(&wal_dir);
        let last_bytes = std::fs::read(&last_seg).expect("read last segment");

        // Crash points: inside the magic, at the empty-segment boundary,
        // at every record boundary, and twice inside every record.
        let mut cuts: Vec<u64> = vec![3.min(file_len), binary::MAGIC_LEN as u64];
        for e in &extents {
            cuts.push(e.end);
            cuts.push(e.start + 1);
            cuts.push(e.start + (e.end - e.start) / 2);
        }
        cuts.retain(|&c| c <= file_len);
        cuts.sort_unstable();
        cuts.dedup();

        // A final segment holding records yields boundary + two
        // mid-record cuts per record; one rolled empty at the last
        // snapshot still yields the mid-magic and clean-empty cuts.
        prop_assert!(
            cuts.len() >= if extents.is_empty() { 2 } else { 4 },
            "every case must exercise several crash points"
        );
        let boundary_cuts: std::collections::HashSet<u64> =
            std::iter::once(binary::MAGIC_LEN as u64).chain(extents.iter().map(|e| e.end)).collect();

        for (ci, &cut) in cuts.iter().enumerate() {
            // Rebuild the directory with the final segment truncated at
            // the crash point.
            let crash_dir = base.join(format!("crash-{ci}"));
            std::fs::create_dir_all(&crash_dir).expect("mkdir");
            for entry in std::fs::read_dir(&wal_dir).expect("dir").flatten() {
                let from = entry.path();
                let to = crash_dir.join(entry.file_name());
                if from == last_seg {
                    std::fs::write(&to, &last_bytes[..cut as usize]).expect("truncate");
                } else {
                    std::fs::copy(&from, &to).expect("copy");
                }
            }

            // The durable prefix: everything in earlier segments and the
            // snapshot, plus final-segment records wholly before the cut.
            let survived = extents.iter().filter(|e| e.end <= cut).map(|e| e.epoch).max();
            let durable_epoch =
                survived.unwrap_or(0).max(earlier_last_epoch).max(snap_epoch);
            let expect = oracle_prefix(n, &batches, durable_epoch as usize);

            let mut svc = Service::start(durable_cfg(n, &crash_dir, 0))
                .expect("recovery from a crash point never fails");
            let client = svc.client();
            prop_assert_eq!(client.epoch(), durable_epoch, "cut at byte {}", cut);
            let recovered = client.snapshot_now();
            prop_assert!(
                same_partition(&expect, &recovered.labels),
                "cut at byte {} (of {}): recovered partition diverges from the oracle \
                 over the {}-batch durable prefix",
                cut,
                file_len,
                durable_epoch
            );
            // A mid-record cut is a torn tail and must be reported as
            // one; a boundary cut is clean.
            let stats = client.wal_stats().expect("wal stats");
            let torn = !boundary_cuts.contains(&cut);
            prop_assert_eq!(
                stats.contains("torn_bytes=0 "),
                !torn,
                "cut at byte {}: {}",
                cut,
                stats
            );
            svc.shutdown();

            // Second restart from the same directory: the torn tail was
            // physically truncated by the first recovery, so the (now
            // sealed) segment must keep scanning clean and the state
            // must be identical — a crash survivor that can only boot
            // once is not recovered.
            let mut svc = Service::start(durable_cfg(n, &crash_dir, 0))
                .expect("second restart after a crash must also succeed");
            let client = svc.client();
            prop_assert_eq!(client.epoch(), durable_epoch, "second restart, cut {}", cut);
            prop_assert!(
                same_partition(&expect, &client.snapshot_now().labels),
                "cut at byte {}: second restart diverged",
                cut
            );
            let stats = client.wal_stats().expect("wal stats");
            prop_assert!(
                stats.contains("torn_bytes=0 "),
                "cut at byte {}: tail must have been truncated by the first recovery: {}",
                cut,
                stats
            );
            svc.shutdown();
            std::fs::remove_dir_all(&crash_dir).expect("cleanup");
        }
        std::fs::remove_dir_all(&base).expect("cleanup");
    }
}
