//! Oracle-driven property tests for the incremental analytics plane:
//! random interleaved insert/delete/query schedules are served through
//! an in-process [`Service`] and at every quiesce point the analytics
//! verbs' answers — `TOPK`, `HIST`, `SIZE`, and the live component
//! count — are recomputed **exactly** from the naive [`DynamicOracle`]
//! partition. Nothing is sampled and nothing is approximate: the
//! delta-maintained aggregates must equal what a full scan of the
//! oracle's labels produces, after any mix of merges, free deletions,
//! and background rebuilds.
//!
//! Sealed-generation windows are covered twice: opportunistically in
//! the property test (views read mid-schedule must be internally
//! consistent even when `sealed`), and deterministically in
//! `sealed_window_serves_the_frozen_partition`, which holds a rebuild
//! open and pins the sealed view to the pre-deletion partition.

use cc_baselines::DynamicOracle;
use cc_server::{Client, Service, ServiceConfig, HIST_BUCKETS, TOPK_CAP};
use connectit::Update;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

const QUIESCE: Duration = Duration::from_secs(20);

fn cfg(n: usize, shards: usize) -> ServiceConfig {
    ServiceConfig {
        n,
        shards,
        batch_max_wait: Duration::from_micros(10),
        ..ServiceConfig::default()
    }
}

/// Recomputes every analytics answer from scratch out of a labeling:
/// `(components, hist, topk_sizes, size_by_label)`.
#[allow(clippy::type_complexity)]
fn recompute(labels: &[u32]) -> (u64, Vec<u64>, Vec<u64>, HashMap<u32, u64>) {
    let mut size_by_label: HashMap<u32, u64> = HashMap::new();
    for &l in labels {
        *size_by_label.entry(l).or_insert(0) += 1;
    }
    let mut hist = vec![0u64; HIST_BUCKETS];
    for &s in size_by_label.values() {
        hist[(63 - s.leading_zeros()) as usize] += 1;
    }
    // TOPK excludes singletons by contract and materializes at most
    // TOPK_CAP entries, largest first.
    let mut topk: Vec<u64> = size_by_label.values().copied().filter(|&s| s >= 2).collect();
    topk.sort_unstable_by(|a, b| b.cmp(a));
    topk.truncate(TOPK_CAP);
    (size_by_label.len() as u64, hist, topk, size_by_label)
}

/// Asserts every analytics read against the oracle partition. Call only
/// at a clean quiesce point, where exactly one answer is legal.
fn check_against_oracle(client: &Client, oracle: &DynamicOracle, n: usize) -> Result<(), String> {
    let labels = oracle.labels();
    let (components, hist, topk_sizes, size_by_label) = recompute(&labels);

    // The live count (which also backs `COMPONENTS` and the gauge) is
    // delta-maintained; it must pin to the full recomputation.
    if client.num_components() as u64 != components {
        return Err(format!(
            "live component count {} != oracle {components}",
            client.num_components()
        ));
    }
    let view = client.analytics();
    if view.sealed {
        return Err("view still sealed after a clean quiesce".into());
    }
    if view.components != components {
        return Err(format!("view components {} != oracle {components}", view.components));
    }
    if view.hist.to_vec() != hist {
        return Err(format!("HIST diverged: {:?} != {:?}", view.hist, hist));
    }
    let (entries, _epoch, _gen, sealed) = client.topk(TOPK_CAP);
    if sealed {
        return Err("TOPK still sealed after a clean quiesce".into());
    }
    let got_sizes: Vec<u64> = entries.iter().map(|&(_, s)| s).collect();
    if got_sizes != topk_sizes {
        return Err(format!("TOPK sizes diverged: {got_sizes:?} != {topk_sizes:?}"));
    }
    // SIZE for every vertex: the reported size must match the oracle
    // component's cardinality, and reported roots must be in bijection
    // with oracle labels (same component <=> same root).
    let mut root_of_label: HashMap<u32, u32> = HashMap::new();
    let mut label_of_root: HashMap<u32, u32> = HashMap::new();
    for v in 0..n as u32 {
        let (root, size) = client.component_size(v).map_err(|e| e.to_string())?;
        let label = labels[v as usize];
        if size != size_by_label[&label] {
            return Err(format!(
                "SIZE {v} reported {size}, oracle component has {}",
                size_by_label[&label]
            ));
        }
        if *root_of_label.entry(label).or_insert(root) != root {
            return Err(format!("vertex {v}: component split across roots"));
        }
        if *label_of_root.entry(root).or_insert(label) != label {
            return Err(format!("vertex {v}: root {root} shared across components"));
        }
    }
    Ok(())
}

/// Materializes one scripted op (same vocabulary as `prop_dynamic`):
/// 0–4 insert, 5–6 delete the given pair, 7 re-delete the last touched
/// edge (the duplicate-deletion case), 8–9 query.
fn materialize(kind: u8, u: u32, v: u32, last_edge: &mut Option<(u32, u32)>) -> Update {
    match kind {
        0..=4 => {
            *last_edge = Some((u, v));
            Update::Insert(u, v)
        }
        5 | 6 => {
            *last_edge = Some((u, v));
            Update::Delete(u, v)
        }
        7 => {
            let (du, dv) = last_edge.unwrap_or((u, v));
            Update::Delete(du, dv)
        }
        _ => Update::Query(u, v),
    }
}

#[allow(clippy::type_complexity)]
fn arb_schedule() -> impl Strategy<Value = (usize, usize, Vec<(u8, u32, u32)>, usize)> {
    (6usize..40, 1usize..4).prop_flat_map(|(n, shards)| {
        let op = (0u8..10, 0..n as u32, 0..n as u32);
        (Just(n), Just(shards), proptest::collection::vec(op, 10..120), 1usize..20)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_schedules_keep_analytics_exact(
        (n, shards, script, batch_size) in arb_schedule(),
    ) {
        let mut svc = Service::start(cfg(n, shards)).expect("service");
        let client = svc.client();
        let mut oracle = DynamicOracle::new(n);
        let mut last_edge = None;
        for chunk in script.chunks(batch_size) {
            let batch: Vec<Update> =
                chunk.iter().map(|&(k, u, v)| materialize(k, u, v, &mut last_edge)).collect();
            client.submit(batch.clone()).expect("submit");
            oracle.apply_batch(&batch);
            // Mid-schedule read, possibly inside a sealed-generation
            // window: the view must be internally consistent whatever
            // the timing — histogram sums to the component count, top-k
            // sizes are non-increasing multi-vertex components.
            let view = client.analytics();
            prop_assert_eq!(
                view.hist.iter().sum::<u64>(),
                view.components,
                "histogram does not sum to the component count (sealed={})",
                view.sealed
            );
            prop_assert!(view.topk.windows(2).all(|w| w[0].1 >= w[1].1));
            prop_assert!(view.topk.iter().all(|&(_, s)| s >= 2));
            // Exact validation at the quiesce point.
            client.quiesce(QUIESCE).expect("quiesce");
            if let Err(msg) = check_against_oracle(&client, &oracle, n) {
                prop_assert!(false, "{}", msg);
            }
        }
        svc.shutdown();
    }
}

/// Holds a rebuild open and pins the sealed view: during the dirty
/// window `TOPK`/`HIST`/`SIZE` keep serving the pre-deletion partition
/// (frozen, honestly flagged `sealed`), and the commit resyncs them to
/// the post-deletion truth.
#[test]
fn sealed_window_serves_the_frozen_partition() {
    let mut svc = Service::start(ServiceConfig {
        n: 12,
        shards: 2,
        batch_max_wait: Duration::from_micros(10),
        rebuild_hold: Duration::from_millis(400),
        ..ServiceConfig::default()
    })
    .expect("service");
    let client = svc.client();
    // One path 0-1-2-3 and one far pair 8-9.
    client
        .submit(vec![
            Update::Insert(0, 1),
            Update::Insert(1, 2),
            Update::Insert(2, 3),
            Update::Insert(8, 9),
        ])
        .expect("submit");
    client.quiesce(QUIESCE).expect("quiesce");
    let clean = client.analytics();
    assert!(!clean.sealed);
    assert_eq!(clean.components, 12 - 4);
    assert_eq!(clean.topk(2), &[(clean.topk[0].0, 4), (clean.topk[1].0, 2)]);

    // Forest deletion: the engine seals and the held rebuild keeps the
    // window open long enough to read through it.
    client.delete(1, 2).expect("forest delete");
    let sealed = client.analytics();
    assert!(sealed.sealed, "dirty window must serve a sealed view");
    assert_eq!(sealed.components, 12 - 4, "sealed view is frozen pre-deletion");
    assert_eq!(sealed.topk(1)[0].1, 4, "sealed TOPK still shows the unsplit path");
    assert_eq!(sealed.component_of(0).1, 4, "sealed SIZE still spans the path");
    assert_eq!(sealed.hist.iter().sum::<u64>(), sealed.components);

    // Commit resyncs wholesale: the path is split 0-1 / 2-3.
    client.quiesce(QUIESCE).expect("quiesce");
    let fresh = client.analytics();
    assert!(!fresh.sealed);
    assert_eq!(fresh.components, 12 - 3);
    let sizes: Vec<u64> = fresh.topk(TOPK_CAP).iter().map(|&(_, s)| s).collect();
    assert_eq!(sizes, vec![2, 2, 2]);
    let (_, s0) = client.component_size(0).expect("SIZE");
    let (_, s2) = client.component_size(2).expect("SIZE");
    assert_eq!((s0, s2), (2, 2));
    // The frozen view the dirty window handed out stays frozen even
    // after the commit replaced the core.
    assert_eq!(sealed.component_of(0).1, 4);
    svc.shutdown();
}
