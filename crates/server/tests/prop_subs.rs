//! Oracle-driven property tests for connectivity subscriptions: random
//! interleaved insert/delete/SUB/UNSUB schedules served through an
//! in-process [`Service`] with a collecting [`SubSink`], validated
//! exactly against the naive [`DynamicOracle`].
//!
//! Ops are submitted one per batch with a quiesce + settle after each,
//! which removes every source of slack from the delivery contract:
//!
//! - a **pair** subscription must fire exactly once, immediately after
//!   the op that connects its endpoints (or at registration if already
//!   connected), stamped with an epoch inside that op's `(EPOCH-before,
//!   EPOCH-after]` window — and must never fire otherwise;
//! - a **component** subscription must fire at least once per oracle
//!   merge uniting `v`'s component (rebuild commits may add more), with
//!   strictly increasing `seq` and a sane `size`;
//! - a cancelled subscription must stay silent forever.
//!
//! The non-proptest test pins the rebuild-commit path deterministically
//! with a held rebuild: a pair that connects while the engine is dirty
//! fires when the rebuild lands, at the committed generation.

use cc_baselines::DynamicOracle;
use cc_server::{Service, ServiceConfig, SubEvent, SubKind, SubSink};
use connectit::Update;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const QUIESCE: Duration = Duration::from_secs(20);
const SETTLE: Duration = Duration::from_secs(10);

fn cfg(n: usize, shards: usize) -> ServiceConfig {
    ServiceConfig {
        n,
        shards,
        batch_max_wait: Duration::from_micros(10),
        ..ServiceConfig::default()
    }
}

/// A sink that appends every delivered event to a shared vector.
#[derive(Default)]
struct CollectSink(Mutex<Vec<SubEvent>>);

impl SubSink for CollectSink {
    fn deliver(&self, ev: &SubEvent) -> bool {
        self.0.lock().expect("sink lock").push(*ev);
        true
    }
}

impl CollectSink {
    fn snapshot(&self) -> Vec<SubEvent> {
        self.0.lock().expect("sink lock").clone()
    }
}

/// What the test knows about one live subscription.
struct Track {
    kind: SubKind,
    u: u32,
    v: u32,
    fired: bool,
    /// Pair only: a fire is owed (and legal), with this epoch lower
    /// bound (exclusive; 0 for registration-time fires).
    owed_after: Option<u64>,
    /// Component only: events the oracle can prove are owed so far.
    min_events: u64,
    last_seq: u64,
    events: u64,
}

/// Waits until every owed fire has reached the sink (counts for
/// component subs, presence for owed pairs), or times out.
fn settle(sink: &CollectSink, subs: &HashMap<u64, Track>) -> Result<(), String> {
    let deadline = Instant::now() + SETTLE;
    loop {
        let evs = sink.snapshot();
        let count = |id: u64| evs.iter().filter(|e| e.id == id).count() as u64;
        let all = subs.iter().all(|(&id, t)| match t.kind {
            SubKind::Pair => t.owed_after.is_none() || count(id) >= 1,
            SubKind::Component => count(id) >= t.min_events,
        });
        if all {
            return Ok(());
        }
        if Instant::now() >= deadline {
            let missing: Vec<u64> = subs
                .iter()
                .filter(|(&id, t)| match t.kind {
                    SubKind::Pair => t.owed_after.is_some() && count(id) == 0,
                    SubKind::Component => count(id) < t.min_events,
                })
                .map(|(&id, _)| id)
                .collect();
            return Err(format!("owed subscription events never arrived for ids {missing:?}"));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Consumes sink events past `cursor`, checking every invariant the
/// single-op discipline makes exact. `epoch_hi` is the service epoch
/// read after settling — an inclusive upper bound for every stamp.
#[allow(clippy::too_many_arguments)]
fn process_events(
    sink: &CollectSink,
    cursor: &mut usize,
    subs: &mut HashMap<u64, Track>,
    cancelled: &HashSet<u64>,
    n: usize,
    epoch_hi: u64,
) -> Result<(), String> {
    let evs = sink.snapshot();
    for ev in &evs[*cursor..] {
        if cancelled.contains(&ev.id) {
            return Err(format!("ghost event for cancelled sub {}", ev.id));
        }
        let t = subs.get_mut(&ev.id).ok_or_else(|| format!("event for unknown sub {}", ev.id))?;
        if ev.kind != t.kind {
            return Err(format!("sub {}: event kind mismatch", ev.id));
        }
        if ev.epoch > epoch_hi {
            return Err(format!(
                "sub {}: stamped epoch {} is in the future (service is at {epoch_hi})",
                ev.id, ev.epoch
            ));
        }
        match t.kind {
            SubKind::Pair => {
                if (ev.u, ev.v) != (t.u, t.v) {
                    return Err(format!("sub {}: pair endpoints mismatch", ev.id));
                }
                if t.fired {
                    return Err(format!("sub {}: duplicate pair fire (seq {})", ev.id, ev.seq));
                }
                if ev.seq != 1 {
                    return Err(format!("sub {}: pair fire carries seq {}", ev.id, ev.seq));
                }
                let Some(lo) = t.owed_after else {
                    return Err(format!(
                        "sub {}: fired at epoch {} while the oracle says ({}, {}) are \
                         disconnected (spurious fire)",
                        ev.id, ev.epoch, t.u, t.v
                    ));
                };
                // `lo == 0` marks a registration-time fire (e.g. a
                // self-pair at epoch 0): no epoch lower bound applies.
                if lo > 0 && ev.epoch <= lo {
                    return Err(format!(
                        "sub {}: fire epoch {} not after the connecting op's pre-epoch {lo}",
                        ev.id, ev.epoch
                    ));
                }
                t.fired = true;
                t.owed_after = None;
            }
            SubKind::Component => {
                if ev.v != t.v {
                    return Err(format!("sub {}: component vertex mismatch", ev.id));
                }
                if ev.seq <= t.last_seq {
                    return Err(format!(
                        "sub {}: component seq went {} after {}",
                        ev.id, ev.seq, t.last_seq
                    ));
                }
                if ev.size == 0 || ev.size > n as u64 {
                    return Err(format!("sub {}: component size {} out of range", ev.id, ev.size));
                }
                t.last_seq = ev.seq;
                t.events += 1;
            }
        }
    }
    *cursor = evs.len();
    Ok(())
}

/// Strategy: vertex count, shard count, and a flat action script.
/// Actions 0–4 insert, 5–6 delete (duplicates and absents arise
/// naturally in the small vertex range), 7 queries, 8 registers a pair
/// subscription, 9 a component subscription, 10 cancels an idle one.
#[allow(clippy::type_complexity)]
fn arb_schedule() -> impl Strategy<Value = (usize, usize, Vec<(u8, u32, u32)>)> {
    (6usize..32, 1usize..4).prop_flat_map(|(n, shards)| {
        let action = (0u8..11, 0..n as u32, 0..n as u32);
        (Just(n), Just(shards), proptest::collection::vec(action, 20..100))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_schedules_honor_the_subscription_contract(
        (n, shards, script) in arb_schedule(),
    ) {
        let mut svc = Service::start(cfg(n, shards)).expect("service");
        let client = svc.client();
        let sink = Arc::new(CollectSink::default());
        let mut oracle = DynamicOracle::new(n);
        let mut subs: HashMap<u64, Track> = HashMap::new();
        let mut cancelled: HashSet<u64> = HashSet::new();
        let mut cursor = 0usize;
        for &(action, a, b) in &script {
            match action {
                8 => {
                    // SUB a b: already-connected pairs owe an immediate
                    // fire; others arm as pending.
                    let connected = oracle.connected(a, b);
                    let (id, _epoch) = client
                        .subscribe(SubKind::Pair, a, b, false, Some(sink.clone() as _))
                        .expect("subscribe");
                    subs.insert(id, Track {
                        kind: SubKind::Pair, u: a, v: b, fired: false,
                        owed_after: connected.then_some(0),
                        min_events: 0, last_seq: 0, events: 0,
                    });
                }
                9 => {
                    let (id, _epoch) = client
                        .subscribe(SubKind::Component, a, a, false, Some(sink.clone() as _))
                        .expect("subscribe");
                    subs.insert(id, Track {
                        kind: SubKind::Component, u: a, v: a, fired: false,
                        owed_after: None, min_events: 0, last_seq: 0, events: 0,
                    });
                }
                10 => {
                    // UNSUB an idle pair sub (never fired, currently
                    // disconnected, nothing owed — so no fire can be in
                    // flight) and hold it to silence.
                    let victim = subs.iter().find(|(_, t)| {
                        t.kind == SubKind::Pair
                            && !t.fired
                            && t.owed_after.is_none()
                            && !oracle.connected(t.u, t.v)
                    }).map(|(&id, _)| id);
                    if let Some(id) = victim {
                        client.unsubscribe(id).expect("unsubscribe");
                        subs.remove(&id);
                        cancelled.insert(id);
                    }
                }
                kind => {
                    // One engine op per batch: pre/post oracle states
                    // bracket it exactly.
                    let op = match kind {
                        0..=4 => Update::Insert(a, b),
                        5 | 6 => Update::Delete(a, b),
                        _ => Update::Query(a, b),
                    };
                    let e_pre = client.epoch();
                    let pre_connected = oracle.connected(a, b);
                    client.submit(vec![op]).expect("submit");
                    oracle.apply_batch(&[op]);
                    if matches!(op, Update::Insert(..)) && !pre_connected {
                        // A merge: pending pairs that just connected owe
                        // a fire after e_pre; component subs whose vertex
                        // landed in the united component owe an event.
                        for t in subs.values_mut() {
                            match t.kind {
                                SubKind::Pair => {
                                    if !t.fired
                                        && t.owed_after.is_none()
                                        && oracle.connected(t.u, t.v)
                                    {
                                        t.owed_after = Some(e_pre);
                                    }
                                }
                                SubKind::Component => {
                                    if oracle.connected(t.v, a) {
                                        t.min_events += 1;
                                    }
                                }
                            }
                        }
                    }
                    client.quiesce(QUIESCE).expect("quiesce");
                }
            }
            settle(&sink, &subs).map_err(TestCaseError::fail)?;
            let epoch_hi = client.epoch();
            process_events(&sink, &mut cursor, &mut subs, &cancelled, n, epoch_hi)
                .map_err(TestCaseError::fail)?;
        }
        // Every owed fire was consumed; nothing is left dangling.
        for (id, t) in &subs {
            prop_assert!(
                t.owed_after.is_none(),
                "sub {} still owes a fire at the end of the schedule", id
            );
            if t.kind == SubKind::Component {
                prop_assert!(
                    t.events >= t.min_events,
                    "sub {} delivered {} events, oracle proves {} merges", id, t.events,
                    t.min_events
                );
            }
        }
        svc.shutdown();
    }
}

/// The rebuild-commit path, pinned deterministically with a held
/// rebuild: a pair that connects while the engine is dirty must fire
/// when the rebuild lands — re-evaluated against the fresh labeling, at
/// the committed generation — and a component subscription must observe
/// the commit too.
#[test]
fn pending_pairs_fire_at_the_rebuild_commit() {
    let mut svc = Service::start(ServiceConfig {
        n: 16,
        shards: 2,
        batch_max_wait: Duration::from_micros(10),
        rebuild_hold: Duration::from_millis(300),
        ..ServiceConfig::default()
    })
    .expect("service");
    let client = svc.client();
    let sink = Arc::new(CollectSink::default());

    client.submit(vec![Update::Insert(0, 1), Update::Insert(1, 2)]).expect("seed");
    client.quiesce(QUIESCE).expect("quiesce");

    // A pending pair and a component watch, both quiet so far.
    let (pair_id, _) =
        client.subscribe(SubKind::Pair, 4, 5, false, Some(sink.clone() as _)).expect("sub");
    let (comp_id, _) =
        client.subscribe(SubKind::Component, 0, 0, false, Some(sink.clone() as _)).expect("sub");

    // Forest deletion: seals the generation and starts a rebuild the
    // hold keeps in flight. The insert connecting the pending pair lands
    // in that dirty window, so its evaluation must defer to the commit.
    let gen_before = client.generation_info().generation;
    client.submit(vec![Update::Delete(1, 2)]).expect("delete");
    client.submit(vec![Update::Insert(4, 5)]).expect("insert while dirty");
    client.quiesce(QUIESCE).expect("rebuild commits");
    let gen_after = client.generation_info().generation;
    assert!(gen_after > gen_before, "the forest deletion must have sealed a generation");

    // Both subscriptions observed the commit.
    let deadline = Instant::now() + Duration::from_secs(10);
    let evs = loop {
        let evs = sink.snapshot();
        if evs.iter().any(|e| e.id == pair_id) && evs.iter().any(|e| e.id == comp_id) {
            break evs;
        }
        assert!(Instant::now() < deadline, "rebuild-commit fires never arrived: {evs:?}");
        std::thread::sleep(Duration::from_millis(2));
    };
    let pair_fires: Vec<&SubEvent> = evs.iter().filter(|e| e.id == pair_id).collect();
    assert_eq!(pair_fires.len(), 1, "pair subs are one-shot: {pair_fires:?}");
    let fire = pair_fires[0];
    assert_eq!((fire.u, fire.v, fire.seq), (4, 5, 1));
    assert!(
        fire.generation >= gen_after,
        "a deferred pair fire is stamped at (or after) the committed generation: \
         generation {} < {gen_after}",
        fire.generation
    );
    let comp_fire = evs.iter().rfind(|e| e.id == comp_id).expect("component event");
    assert_eq!(comp_fire.size, 2, "component 0 is {{0, 1}} after the rebuild");
    svc.shutdown();
}
