//! Doc-drift gate: `PROTOCOL.md` is the single authoritative protocol
//! reference, so it must stay in lock-step with the parser tables the
//! code actually ships — [`cc_server::net::TEXT_VERBS`] and
//! [`cc_server::binproto::BIN_VERBS`]. Coverage is checked in both
//! directions: every verb the parsers accept must be documented, and
//! every verb the document's tables claim must exist in the parsers.

use cc_server::binproto::BIN_VERBS;
use cc_server::net::TEXT_VERBS;

const PROTOCOL: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../PROTOCOL.md"));

/// A verb counts as documented when it appears backticked — either
/// standalone (`` `EPOCH` ``) or opening a grammar form (`` `SUB u v
/// [DURABLE]` ``).
fn documented(verb: &str) -> bool {
    PROTOCOL.contains(&format!("`{verb}`")) || PROTOCOL.contains(&format!("`{verb} "))
}

/// Extract the section of `PROTOCOL.md` between two headings.
fn section(start: &str, end: &str) -> &'static str {
    let s = PROTOCOL.find(start).unwrap_or_else(|| panic!("PROTOCOL.md lost heading {start:?}"));
    let rest = &PROTOCOL[s..];
    let e = rest.find(end).unwrap_or_else(|| panic!("PROTOCOL.md lost heading {end:?}"));
    &rest[..e]
}

/// First backticked token of a markdown table row (`| `VERB …` | …`).
fn row_verb(line: &str) -> Option<&str> {
    let open = line.find('`')? + 1;
    let rest = &line[open..];
    let close = rest.find('`')?;
    Some(rest[..close].split_whitespace().next().unwrap_or(""))
}

#[test]
fn every_text_verb_the_parser_accepts_is_documented() {
    let missing: Vec<&str> = TEXT_VERBS.iter().copied().filter(|v| !documented(v)).collect();
    assert!(missing.is_empty(), "verbs in TEXT_VERBS but absent from PROTOCOL.md: {missing:?}");
}

#[test]
fn every_binary_verb_the_parser_accepts_is_documented() {
    // Each binary verb must appear both by its text name and by its tag.
    for (name, tag) in BIN_VERBS {
        assert!(documented(name), "binary verb {name:?} absent from PROTOCOL.md");
        let tag = format!("0x{tag:02X}");
        assert!(
            PROTOCOL.contains(&tag),
            "binary tag {tag} (verb {name:?}) absent from PROTOCOL.md"
        );
    }
}

#[test]
fn every_documented_text_verb_exists_in_the_parser() {
    // Walk the §1.2 verb-reference table: the first backticked token of
    // each row must be a verb (or a grammar alternative of one) that
    // TEXT_VERBS actually contains.
    let table = section("### 1.2 Verb reference", "### 1.3");
    let mut rows = 0;
    for line in table.lines().filter(|l| l.starts_with("| `")) {
        let verb = row_verb(line).unwrap_or_else(|| panic!("unparseable table row: {line}"));
        assert!(
            TEXT_VERBS.contains(&verb),
            "PROTOCOL.md documents text verb {verb:?}, but the parser does not accept it"
        );
        rows += 1;
    }
    // Every verb has at least one row; SUB has three grammar forms.
    assert!(
        rows >= TEXT_VERBS.len(),
        "verb table shrank: {rows} rows for {} verbs",
        TEXT_VERBS.len()
    );
}

#[test]
fn every_documented_binary_verb_exists_in_the_parser_with_the_right_tag() {
    let table = section("### 2.2 Verb tags", "### 2.3");
    let mut rows = 0;
    for line in table.lines().filter(|l| l.starts_with("| 0x")) {
        let mut cols = line.split('|').skip(1).map(str::trim);
        let tag = cols.next().unwrap_or("");
        let name = cols.next().unwrap_or("").trim_matches('`');
        let tag = u8::from_str_radix(tag.trim_start_matches("0x"), 16)
            .unwrap_or_else(|_| panic!("unparseable tag in row: {line}"));
        // The table's verb column uses the long constant name; the text
        // equivalent column holds the BIN_VERBS key.
        let text = cols.next().unwrap_or("").trim_matches('`');
        let entry = BIN_VERBS.iter().find(|(n, _)| *n == text).unwrap_or_else(|| {
            panic!("PROTOCOL.md documents binary verb {name} ({text}), unknown to the parser")
        });
        assert_eq!(entry.1, tag, "PROTOCOL.md tag for {name} disagrees with the parser");
        rows += 1;
    }
    assert_eq!(rows, BIN_VERBS.len(), "binary verb table rows != BIN_VERBS entries");
}

#[test]
fn wire_stable_error_spellings_are_documented() {
    // These exact spellings are pinned on the wire by net_errors.rs;
    // PROTOCOL.md must quote them verbatim.
    for err in [
        "ERR unknown command \"NOPE\"",
        "ERR missing argument",
        "ERR argument is not a 32-bit unsigned integer",
        "ERR argument is not a 64-bit unsigned integer",
        "ERR unknown SUB flag \"FOREVER\" (expected DURABLE)",
        "ERR unknown subscription id 42",
        "ERR durability is not enabled (start the service with a wal dir)",
        "ERR read-only follower: route updates to the primary",
        "bad SUB payload: unknown subscription kind 0x07",
    ] {
        assert!(PROTOCOL.contains(err), "PROTOCOL.md lost the pinned error spelling {err:?}");
    }
}

#[test]
fn push_line_and_event_frame_grammar_are_documented() {
    for needle in [
        "! EVT <id> <seq> <epoch> <gen> PAIR <u> <v> root=<r> size=<s>",
        "! EVT <id> <seq> <epoch> <gen> COMPONENT <v> root=<r> size=<s>",
        "root:u32le size:u64le epoch:u64le generation:u64le seq:u64le",
        "sub-overflow",
        "# EOF",
    ] {
        assert!(PROTOCOL.contains(needle), "PROTOCOL.md lost {needle:?}");
    }
}

#[test]
fn protocol_doc_is_cross_linked() {
    let readme = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"));
    let design = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"));
    assert!(readme.contains("PROTOCOL.md"), "README.md no longer links PROTOCOL.md");
    assert!(design.contains("PROTOCOL.md"), "DESIGN.md no longer links PROTOCOL.md");
}
