//! User-facing configuration: the sampling and finish method selectors of
//! Figure 1. A connectivity algorithm in ConnectIt is one
//! `(SamplingMethod, FinishMethod)` pair.

use crate::liu_tarjan::LtScheme;
use cc_unionfind::UfSpec;

/// How k-out sampling chooses its k edges per vertex (Appendix C.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KOutVariant {
    /// First `k` edges in adjacency order (Sutton et al.'s Afforest).
    Afforest,
    /// `k` uniformly random incident edges (Holm et al.).
    Pure,
    /// First edge + `k - 1` random edges (this paper's default).
    Hybrid,
    /// Highest-degree neighbor + `k - 1` random edges.
    MaxDegree,
}

impl KOutVariant {
    /// All variants, in the order Figures 22–24 plot them.
    pub const ALL: [KOutVariant; 4] =
        [KOutVariant::Afforest, KOutVariant::Pure, KOutVariant::Hybrid, KOutVariant::MaxDegree];

    /// Display name matching the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            KOutVariant::Afforest => "kout-afforest",
            KOutVariant::Pure => "kout-pure",
            KOutVariant::Hybrid => "kout-hybrid",
            KOutVariant::MaxDegree => "kout-maxdeg",
        }
    }
}

/// The sampling phase selector (Section 3.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SamplingMethod {
    /// Two-phase execution disabled; the finish method sees all edges.
    None,
    /// k-out sampling: contract a sampled subgraph with union-find.
    KOut {
        /// Edges sampled per vertex (paper default: 2).
        k: usize,
        /// Edge selection rule.
        variant: KOutVariant,
    },
    /// Direction-optimizing BFS from up to `tries` random sources,
    /// stopping early once a component covering > 10% of vertices is found.
    Bfs {
        /// Maximum number of sources to try (paper default: 3).
        tries: usize,
    },
    /// One round of low-diameter decomposition.
    Ldd {
        /// The MPX parameter: clusters have diameter `O(log n / beta)` and
        /// `O(beta * m)` edges are cut in expectation (paper default: 0.2).
        beta: f64,
        /// Whether to permute the start-time assignment order.
        permute: bool,
    },
}

impl SamplingMethod {
    /// The paper's default k-out configuration (`k = 2`, hybrid).
    pub fn kout_default() -> Self {
        SamplingMethod::KOut { k: 2, variant: KOutVariant::Hybrid }
    }

    /// The paper's default BFS configuration (`c = 3`).
    pub fn bfs_default() -> Self {
        SamplingMethod::Bfs { tries: 3 }
    }

    /// The default LDD configuration (`beta = 0.2`). We default `permute`
    /// to true: without it the activation order follows vertex ids, and on
    /// inputs with strong id locality (e.g. row-major grids) the
    /// decomposition degenerates into singletons (see the Figure 19–21
    /// harness, which sweeps both settings).
    pub fn ldd_default() -> Self {
        SamplingMethod::Ldd { beta: 0.2, permute: true }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            SamplingMethod::None => "NoSampling".into(),
            SamplingMethod::KOut { k, variant } => format!("{}(k={k})", variant.name()),
            SamplingMethod::Bfs { tries } => format!("BFS(c={tries})"),
            SamplingMethod::Ldd { beta, permute } => {
                format!("LDD(beta={beta}{})", if *permute { ",permute" } else { "" })
            }
        }
    }
}

/// The finish phase selector (Section 3.3).
#[derive(Clone, Debug, PartialEq)]
pub enum FinishMethod {
    /// A concurrent union-find variant.
    UnionFind(UfSpec),
    /// Shiloach–Vishkin with writeMin root hooking.
    ShiloachVishkin,
    /// A Liu–Tarjan framework instantiation.
    LiuTarjan(LtScheme),
    /// Stergiou et al.'s two-array min propagation.
    Stergiou,
    /// Folklore frontier-based label propagation.
    LabelPropagation,
}

impl FinishMethod {
    /// The paper's overall fastest finish method.
    pub fn fastest() -> Self {
        FinishMethod::UnionFind(UfSpec::fastest())
    }

    /// Whether this method only links at tree roots (required for spanning
    /// forest and for skip-based sampling composition without relabeling).
    pub fn is_root_based(&self) -> bool {
        match self {
            FinishMethod::UnionFind(_) | FinishMethod::ShiloachVishkin => true,
            FinishMethod::LiuTarjan(s) => s.root_up,
            FinishMethod::Stergiou | FinishMethod::LabelPropagation => false,
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            FinishMethod::UnionFind(s) => s.name(),
            FinishMethod::ShiloachVishkin => "Shiloach-Vishkin".into(),
            FinishMethod::LiuTarjan(s) => format!("Liu-Tarjan({})", s.name()),
            FinishMethod::Stergiou => "Stergiou".into(),
            FinishMethod::LabelPropagation => "Label-Propagation".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_informative() {
        assert_eq!(SamplingMethod::kout_default().name(), "kout-hybrid(k=2)");
        assert_eq!(SamplingMethod::None.name(), "NoSampling");
        assert!(FinishMethod::fastest().name().contains("Union-Rem-CAS"));
    }

    #[test]
    fn root_based_classification() {
        assert!(FinishMethod::ShiloachVishkin.is_root_based());
        assert!(!FinishMethod::LabelPropagation.is_root_based());
        assert!(!FinishMethod::Stergiou.is_root_based());
    }
}
