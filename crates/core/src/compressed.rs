//! Connectivity directly over byte-compressed graphs.
//!
//! The paper's headline runs (Hyperlink2012 in 8.2 s) operate on
//! Ligra+-compressed inputs — decode and process per block without ever
//! materializing the uncompressed graph. This module provides the same
//! capability: two-phase (k-out sampled) union-find connectivity over a
//! [`CompressedCsr`], decoding adjacency on the fly with a kernel
//! monomorphized through [`UfSpec::dispatch`].

use cc_graph::compressed::CompressedCsr;
use cc_graph::VertexId;
use cc_parallel::parallel_for_chunks;
use cc_unionfind::parents::{make_parents, snapshot_labels};
use cc_unionfind::{KernelVisitor, NoCount, UfSpec, UniteKernel};

/// Computes connected components of a compressed graph using k-out(hybrid)
/// sampling followed by the given union-find variant, never materializing
/// the uncompressed neighbor arrays (one small decode buffer per worker
/// chunk).
pub fn connectivity_compressed(
    g: &CompressedCsr,
    spec: UfSpec,
    k: usize,
    seed: u64,
) -> Vec<VertexId> {
    spec.dispatch(g.num_vertices(), seed, CompressedVisitor { g, k, seed })
}

struct CompressedVisitor<'a> {
    g: &'a CompressedCsr,
    k: usize,
    seed: u64,
}

impl KernelVisitor for CompressedVisitor<'_> {
    type Out = Vec<VertexId>;
    fn visit<K: UniteKernel>(self, kernel: K) -> Vec<VertexId> {
        let CompressedVisitor { g, k, seed } = self;
        let n = g.num_vertices();
        let parents = make_parents(n);
        let kernel = &kernel;

        // Sampling phase: k-out hybrid, decoding each vertex once.
        if k > 0 {
            parallel_for_chunks(n, |r| {
                let mut buf: Vec<VertexId> = Vec::new();
                for vi in r {
                    let v = vi as VertexId;
                    g.decode_neighbors(v, &mut buf);
                    if buf.is_empty() {
                        continue;
                    }
                    let mut rng = cc_parallel::SplitMix64::new(
                        seed ^ (vi as u64).wrapping_mul(0xA24BAED4963EE407),
                    );
                    kernel.unite(&parents, v, buf[0], &mut NoCount);
                    for _ in 1..k {
                        let w = buf[rng.gen_range(buf.len())];
                        kernel.unite(&parents, v, w, &mut NoCount);
                    }
                }
            });
        }
        // Identify the frequent component from the (compressed) sample.
        let sampled = snapshot_labels(&parents);
        let frequent = if k > 0 {
            crate::sampling::identify_frequent(&sampled).0
        } else {
            cc_graph::NO_VERTEX
        };

        // Finish phase: stream all edges, skipping the frequent component.
        parallel_for_chunks(n, |r| {
            let mut buf: Vec<VertexId> = Vec::new();
            for vi in r {
                if sampled[vi] == frequent {
                    continue;
                }
                let v = vi as VertexId;
                g.decode_neighbors(v, &mut buf);
                for &w in &buf {
                    kernel.unite(&parents, v, w, &mut NoCount);
                }
            }
        });
        snapshot_labels(&parents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::build_undirected;
    use cc_graph::generators::{grid2d, rmat_default};
    use cc_graph::stats::{component_stats, same_partition};

    #[test]
    fn compressed_matches_uncompressed_rmat() {
        let el = rmat_default(12, 40_000, 7);
        let g = build_undirected(el.num_vertices, &el.edges);
        let cg = CompressedCsr::from_csr(&g);
        let expect = component_stats(&g).labels;
        for k in [0usize, 2] {
            let got = connectivity_compressed(&cg, UfSpec::fastest(), k, 3);
            assert!(same_partition(&expect, &got), "k = {k}");
        }
    }

    #[test]
    fn compressed_matches_on_grid() {
        let g = grid2d(60, 60);
        let cg = CompressedCsr::from_csr(&g);
        let got = connectivity_compressed(&cg, UfSpec::fastest(), 2, 1);
        assert!(got.iter().all(|&l| l == got[0]));
    }

    #[test]
    fn compressed_multi_component() {
        let g = build_undirected(6, &[(0, 1), (2, 3)]);
        let cg = CompressedCsr::from_csr(&g);
        let got = connectivity_compressed(&cg, UfSpec::fastest(), 2, 0);
        assert_eq!(got[0], got[1]);
        assert_eq!(got[2], got[3]);
        assert_ne!(got[0], got[2]);
        assert_ne!(got[4], got[5]);
    }
}
