//! # connectit
//!
//! A Rust implementation of **ConnectIt** (Dhulipala, Hong, Shun — VLDB
//! 2020): a framework for static and incremental parallel graph
//! connectivity composed from interchangeable *sampling* methods (k-out,
//! BFS, LDD) and *finish* methods (six union-find families, Shiloach–
//! Vishkin, all sixteen Liu–Tarjan variants, Stergiou, label propagation),
//! with spanning forest and batch-incremental streaming support.
//!
//! ```
//! use cc_graph::generators::rmat_default;
//! use cc_graph::build_undirected;
//! use connectit::{connectivity, FinishMethod, SamplingMethod};
//!
//! let el = rmat_default(10, 4_000, 1);
//! let g = build_undirected(el.num_vertices, &el.edges);
//! let labels = connectivity(&g, &SamplingMethod::kout_default(), &FinishMethod::fastest());
//! assert_eq!(labels.len(), g.num_vertices());
//! ```

#![warn(missing_docs)]

pub mod compressed;
pub mod connectivity;
pub mod dynamic;
pub mod forest;
pub mod label_prop;
pub mod liu_tarjan;
pub mod liveness;
pub mod minkey;
pub mod options;
pub mod sampling;
pub mod shiloach_vishkin;
pub mod spanning_forest;
pub mod streaming;

pub use compressed::connectivity_compressed;
pub use connectivity::{
    connectivity, connectivity_seeded, connectivity_timed, finish_components, num_components,
    RunStats,
};
pub use dynamic::{DynUpdate, DynamicConnectivity};
pub use liu_tarjan::{LtConnect, LtScheme};
pub use liveness::{canon_edge, uncanon_edge, DeleteClass, InsertClass, LivenessTracker};
pub use options::{FinishMethod, KOutVariant, SamplingMethod};
pub use sampling::{identify_frequent, inter_component_edges, run_sampling, SampleOutcome};
pub use spanning_forest::{is_valid_spanning_forest, spanning_forest, supports_spanning_forest};
pub use streaming::{StreamAlgorithm, StreamType, StreamingConnectivity, UfStreaming, Update};
