//! `connectit` — command-line connectivity on edge-list files.
//!
//! ```text
//! connectit cc <edges.txt> [--sampling none|kout|bfs|ldd] [--finish rem-cas|sv|lt|lp]
//! connectit forest <edges.txt> [-o out.txt]
//! connectit stats <edges.txt>
//! connectit gen <rmat|grid|ba> <scale> [-o out.txt]
//! ```
//!
//! Edge lists are whitespace-separated `u v` pairs, `#`/`%` comments
//! allowed. Output labelings are `vertex label` lines on stdout (or `-o`).

use cc_graph::{build_undirected, io, CsrGraph};
use connectit::{FinishMethod, LtScheme, SamplingMethod};
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  connectit cc <edges.txt> [--sampling none|kout|bfs|ldd] \
         [--finish rem-cas|sv|lt|lp] [-o out.txt]\n  connectit forest <edges.txt> [-o out.txt]\n  \
         connectit stats <edges.txt>\n  connectit gen <rmat|grid|ba> <scale> [-o out.txt]"
    );
    ExitCode::from(2)
}

struct Opts {
    positional: Vec<String>,
    sampling: SamplingMethod,
    finish: FinishMethod,
    out: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        positional: Vec::new(),
        sampling: SamplingMethod::kout_default(),
        finish: FinishMethod::fastest(),
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sampling" => {
                let v = it.next().ok_or("--sampling needs a value")?;
                opts.sampling = match v.as_str() {
                    "none" => SamplingMethod::None,
                    "kout" => SamplingMethod::kout_default(),
                    "bfs" => SamplingMethod::bfs_default(),
                    "ldd" => SamplingMethod::ldd_default(),
                    other => return Err(format!("unknown sampling {other:?}")),
                };
            }
            "--finish" => {
                let v = it.next().ok_or("--finish needs a value")?;
                opts.finish = match v.as_str() {
                    "rem-cas" => FinishMethod::fastest(),
                    "sv" => FinishMethod::ShiloachVishkin,
                    "lt" => FinishMethod::LiuTarjan(LtScheme::crfa()),
                    "lp" => FinishMethod::LabelPropagation,
                    other => return Err(format!("unknown finish {other:?}")),
                };
            }
            "-o" | "--output" => {
                opts.out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            other => opts.positional.push(other.to_string()),
        }
    }
    Ok(opts)
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let el = io::read_edge_list_file(path).map_err(|e| e.to_string())?;
    Ok(build_undirected(el.num_vertices, &el.edges))
}

fn emit(out: &Option<String>, content: String) -> Result<(), String> {
    match out {
        None => {
            print!("{content}");
            Ok(())
        }
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            f.write_all(content.as_bytes()).map_err(|e| e.to_string())
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return Err("missing command".into());
    };
    let opts = parse_args(&args[1..])?;
    match cmd.as_str() {
        "cc" => {
            let path = opts.positional.first().ok_or("missing edge-list path")?;
            let g = load_graph(path)?;
            let t0 = std::time::Instant::now();
            let labels = connectit::connectivity(&g, &opts.sampling, &opts.finish);
            eprintln!(
                "n = {}, m = {}, components = {}, time = {:.4}s ({} + {})",
                g.num_vertices(),
                g.num_edges(),
                cc_graph::stats::count_distinct_labels(&labels),
                t0.elapsed().as_secs_f64(),
                opts.sampling.name(),
                opts.finish.name(),
            );
            let mut s = String::new();
            for (v, l) in labels.iter().enumerate() {
                s.push_str(&format!("{v} {l}\n"));
            }
            emit(&opts.out, s)
        }
        "forest" => {
            let path = opts.positional.first().ok_or("missing edge-list path")?;
            let g = load_graph(path)?;
            let forest =
                connectit::spanning_forest(&g, &opts.sampling, &FinishMethod::fastest(), 42);
            eprintln!("spanning forest: {} edges", forest.len());
            let mut s = String::new();
            for (u, v) in &forest {
                s.push_str(&format!("{u} {v}\n"));
            }
            emit(&opts.out, s)
        }
        "stats" => {
            let path = opts.positional.first().ok_or("missing edge-list path")?;
            let g = load_graph(path)?;
            let st = cc_graph::stats::component_stats(&g);
            let diam = cc_graph::bfs::approx_diameter(&g, 3, 7);
            println!(
                "n {}\nm {}\ncomponents {}\nlargest {}\ndiameter>= {}",
                g.num_vertices(),
                g.num_edges(),
                st.num_components,
                st.largest_size,
                diam
            );
            Ok(())
        }
        "gen" => {
            let kind = opts.positional.first().ok_or("missing generator kind")?;
            let scale: u32 = opts
                .positional
                .get(1)
                .ok_or("missing scale")?
                .parse()
                .map_err(|_| "scale must be an integer")?;
            let el = match kind.as_str() {
                "rmat" => cc_graph::generators::rmat_default(scale, (1 << scale) * 10, 42),
                "ba" => cc_graph::generators::barabasi_albert(1 << scale, 5, 42),
                "grid" => {
                    let side = 1usize << (scale / 2);
                    cc_graph::generators::grid2d(side, side).to_edge_list()
                }
                other => return Err(format!("unknown generator {other:?}")),
            };
            let mut buf = Vec::new();
            io::write_edge_list(&mut buf, &el).map_err(|e| e.to_string())?;
            emit(&opts.out, String::from_utf8(buf).expect("ascii"))
        }
        _ => Err(format!("unknown command {cmd:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
