//! The Liu–Tarjan framework (Section 3.3.2, Appendix D): round-based
//! min-labeling algorithms assembled from connect / root-filter / shortcut
//! / alter options, covering all 16 expressible variants plus Stergiou et
//! al.'s two-array algorithm.

use crate::minkey::MinKey;
use cc_graph::{CsrGraph, Edge, VertexId};
use cc_parallel::{pack_map, parallel_for, parallel_for_chunks, parallel_tabulate};
use cc_unionfind::parents::{parents_from_labels, snapshot_labels, Parents};
use std::sync::atomic::{AtomicBool, Ordering};

/// The connect rule: which candidates an edge contributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LtConnect {
    /// Endpoints are candidates for each other (`C`); requires Alter.
    Connect,
    /// Parents of the endpoints are candidates (`P`).
    ParentConnect,
    /// Parents are candidates for the endpoints *and* their parents (`E`).
    ExtendedConnect,
}

/// A fully-specified Liu–Tarjan variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LtScheme {
    /// Connect rule.
    pub connect: LtConnect,
    /// Restrict parent updates to vertices that were roots at the start of
    /// the round (`R`); the resulting algorithms are monotone (root-based).
    pub root_up: bool,
    /// Repeat the shortcut step to a fixpoint each round (`F` vs `S`).
    pub full_shortcut: bool,
    /// Rewrite edge endpoints to their labels after each round (`A`).
    pub alter: bool,
}

impl LtScheme {
    /// Constructs and validates a scheme.
    pub fn new(connect: LtConnect, root_up: bool, full_shortcut: bool, alter: bool) -> Self {
        let s = LtScheme { connect, root_up, full_shortcut, alter };
        assert!(s.is_valid(), "invalid Liu-Tarjan scheme {s:?}");
        s
    }

    /// Whether this combination is among the 16 the paper evaluates:
    /// `Connect` requires `Alter` for correctness, and `ExtendedConnect`
    /// is not combined with `RootUp`.
    pub fn is_valid(&self) -> bool {
        match self.connect {
            LtConnect::Connect => self.alter,
            LtConnect::ParentConnect => true,
            LtConnect::ExtendedConnect => !self.root_up,
        }
    }

    /// All 16 variants (Appendix D's list).
    pub fn all_schemes() -> Vec<LtScheme> {
        let mut out = Vec::new();
        for connect in [LtConnect::Connect, LtConnect::ParentConnect, LtConnect::ExtendedConnect] {
            for root_up in [false, true] {
                for full_shortcut in [false, true] {
                    for alter in [false, true] {
                        let s = LtScheme { connect, root_up, full_shortcut, alter };
                        if s.is_valid() {
                            out.push(s);
                        }
                    }
                }
            }
        }
        out
    }

    /// The paper's short code, e.g. `CRFA`, `PUS`, `EUF`.
    pub fn name(&self) -> String {
        let c = match self.connect {
            LtConnect::Connect => 'C',
            LtConnect::ParentConnect => 'P',
            LtConnect::ExtendedConnect => 'E',
        };
        let r = if self.root_up { 'R' } else { 'U' };
        let s = if self.full_shortcut { 'F' } else { 'S' };
        let mut out = format!("{c}{r}{s}");
        if self.alter {
            out.push('A');
        }
        out
    }

    /// The variant the paper finds fastest in the streaming setting
    /// (Connect, RootUp, FullShortcut, Alter).
    pub fn crfa() -> Self {
        LtScheme::new(LtConnect::Connect, true, true, true)
    }

    /// The basic `P` algorithm (ParentConnect, Update, Shortcut).
    pub fn pus() -> Self {
        LtScheme::new(LtConnect::ParentConnect, false, false, false)
    }
}

/// One shortcut step over all vertices: `p[v] <- p[p[v]]`. Returns whether
/// anything changed.
fn shortcut(p: &Parents, key: &MinKey) -> bool {
    let changed = AtomicBool::new(false);
    parallel_for(p.len(), |v| {
        let pv = p[v].load(Ordering::Acquire);
        let ppv = p[pv as usize].load(Ordering::Acquire);
        if key.less(ppv, pv) {
            p[v].store(ppv, Ordering::Release);
            changed.store(true, Ordering::Relaxed);
        }
    });
    changed.load(Ordering::Relaxed)
}

/// Runs the scheme's rounds over an explicit (directed or undirected) edge
/// list against an existing parent array. Shared by the static finish phase
/// and the streaming Type (ii) path. Candidates are applied symmetrically
/// per edge, so a one-directional list suffices.
pub fn run_on_edges(p: &Parents, edges: Vec<Edge>, scheme: LtScheme, key: MinKey) {
    let n = p.len();
    let mut edges = edges;
    loop {
        // Snapshot roots when RootUp filters update targets.
        let prev_root: Option<Vec<u8>> = scheme
            .root_up
            .then(|| parallel_tabulate(n, |v| u8::from(p[v].load(Ordering::Relaxed) == v as u32)));
        let changed = AtomicBool::new(false);
        // Offer `candidate` on behalf of vertex `x`. Without RootUp, `x`'s
        // own parent slot takes the min. With RootUp, the update instead
        // targets `x`'s current parent — which, after shortcutting, is (at
        // or near) the tree root — provided that target was a root at the
        // start of the round. This is what keeps RootUp schemes monotone
        // (only roots are relinked) *and* live: an edge between two
        // non-roots still advances the merge through their roots.
        let apply = |x: VertexId, candidate: VertexId| {
            let target = match &prev_root {
                None => x,
                Some(roots) => {
                    let t = p[x as usize].load(Ordering::Acquire);
                    if roots[t as usize] == 0 {
                        return;
                    }
                    t
                }
            };
            if key.write_min(&p[target as usize], candidate) {
                changed.store(true, Ordering::Relaxed);
            }
        };
        parallel_for_chunks(edges.len(), |r| {
            for i in r.clone() {
                let (u, v) = edges[i];
                if u == v {
                    continue;
                }
                match scheme.connect {
                    LtConnect::Connect => {
                        apply(u, v);
                        apply(v, u);
                    }
                    LtConnect::ParentConnect => {
                        let pu = p[u as usize].load(Ordering::Acquire);
                        let pv = p[v as usize].load(Ordering::Acquire);
                        apply(u, pv);
                        apply(v, pu);
                    }
                    LtConnect::ExtendedConnect => {
                        let pu = p[u as usize].load(Ordering::Acquire);
                        let pv = p[v as usize].load(Ordering::Acquire);
                        apply(u, pv);
                        apply(pu, pv);
                        apply(v, pu);
                        apply(pv, pu);
                    }
                }
            }
        });
        // Shortcut phase. Shortcut progress must keep the loop alive: a
        // RootUp round can be fully blocked on depth-2 trees that this
        // phase flattens, enabling the next round's hooks.
        let mut shortcut_changed = false;
        if scheme.full_shortcut {
            while shortcut(p, &key) {
                shortcut_changed = true;
            }
        } else {
            shortcut_changed = shortcut(p, &key);
        }
        // Alter phase: rewrite endpoints to current labels, dropping
        // settled edges.
        if scheme.alter {
            edges = pack_map(edges.len(), |i| {
                let (u, v) = edges[i];
                let lu = p[u as usize].load(Ordering::Relaxed);
                let lv = p[v as usize].load(Ordering::Relaxed);
                (lu != lv).then_some((lu, lv))
            });
        }
        if !changed.load(Ordering::Relaxed) && !shortcut_changed {
            break;
        }
    }
}

/// The Liu–Tarjan finish method: runs `scheme` over the *contracted* edge
/// set (endpoints mapped to their sampled labels, intra-cluster edges
/// dropped — the paper's Theorem 4 view of sampling composition), starting
/// from the sampled labels, and returns the final labeling.
pub fn liu_tarjan_finish(
    g: &CsrGraph,
    scheme: LtScheme,
    initial: &[VertexId],
    frequent: VertexId,
) -> Vec<VertexId> {
    let key = MinKey::new(frequent);
    let p = parents_from_labels(initial);
    let edges = collect_active_edges(g, initial);
    run_on_edges(&p, edges, scheme, key);
    snapshot_labels(&p)
}

/// Stergiou et al.'s algorithm: ParentConnect against the *previous*
/// round's parents (two arrays), then shortcut, until stable.
pub fn stergiou_finish(g: &CsrGraph, initial: &[VertexId], frequent: VertexId) -> Vec<VertexId> {
    let key = MinKey::new(frequent);
    let cur = parents_from_labels(initial);
    let edges = collect_active_edges(g, initial);
    loop {
        let prev: Vec<VertexId> = cc_parallel::snapshot_u32(&cur);
        let changed = AtomicBool::new(false);
        parallel_for_chunks(edges.len(), |r| {
            for i in r.clone() {
                let (u, v) = edges[i];
                let pu = prev[u as usize];
                let pv = prev[v as usize];
                if key.write_min(&cur[u as usize], pv) {
                    changed.store(true, Ordering::Relaxed);
                }
                if key.write_min(&cur[v as usize], pu) {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
        shortcut(&cur, &key);
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    snapshot_labels(&cur)
}

/// Collects the contracted inter-cluster edge set: each undirected edge
/// once, with endpoints replaced by their sampled labels, dropping edges
/// that fall inside one cluster. In particular every edge internal to the
/// frequent component disappears, realizing the paper's "skip the frequent
/// component" optimization; edges out of it keep the frequent label as an
/// endpoint, which the keyed order prevents from ever moving.
pub(crate) fn collect_active_edges(g: &CsrGraph, initial: &[VertexId]) -> Vec<Edge> {
    use std::sync::atomic::AtomicU64;
    let n = g.num_vertices();
    let mapped = |u: VertexId, v: VertexId| -> Option<(VertexId, VertexId)> {
        if u >= v {
            return None;
        }
        let (lu, lv) = (initial[u as usize], initial[v as usize]);
        (lu != lv).then_some((lu, lv))
    };
    let (offsets, total) = cc_parallel::flatten_offsets(n, |u| {
        let u = u as VertexId;
        g.neighbors(u).iter().filter(|&&v| mapped(u, v).is_some()).count()
    });
    let slots: Vec<AtomicU64> = parallel_tabulate(total, |_| AtomicU64::new(0));
    parallel_for(n, |ui| {
        let u = ui as VertexId;
        let mut at = offsets[ui];
        for &v in g.neighbors(u) {
            if let Some((lu, lv)) = mapped(u, v) {
                slots[at].store((u64::from(lu) << 32) | u64::from(lv), Ordering::Relaxed);
                at += 1;
            }
        }
    });
    parallel_tabulate(total, |i| {
        let x = slots[i].load(Ordering::Relaxed);
        ((x >> 32) as u32, x as u32)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators::{grid2d, rmat_default};
    use cc_graph::stats::{component_stats, same_partition};
    use cc_graph::{build_undirected, NO_VERTEX};

    #[test]
    fn sixteen_schemes() {
        let all = LtScheme::all_schemes();
        assert_eq!(all.len(), 16);
        let names: Vec<String> = all.iter().map(|s| s.name()).collect();
        for expected in ["CUSA", "CRFA", "PUS", "PRF", "EUF", "EUSA", "PRSA", "PUFA"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn invalid_schemes_rejected() {
        assert!(!LtScheme {
            connect: LtConnect::Connect,
            root_up: false,
            full_shortcut: false,
            alter: false
        }
        .is_valid());
        assert!(!LtScheme {
            connect: LtConnect::ExtendedConnect,
            root_up: true,
            full_shortcut: false,
            alter: false
        }
        .is_valid());
    }

    #[test]
    fn all_schemes_solve_small_graphs() {
        let g = build_undirected(8, &[(0, 1), (1, 2), (2, 3), (5, 6), (6, 7)]);
        let expect = component_stats(&g).labels;
        let identity: Vec<u32> = (0..8).collect();
        for scheme in LtScheme::all_schemes() {
            let got = liu_tarjan_finish(&g, scheme, &identity, NO_VERTEX);
            assert!(same_partition(&expect, &got), "scheme {}", scheme.name());
        }
    }

    #[test]
    fn all_schemes_solve_rmat() {
        let el = rmat_default(10, 8_000, 21);
        let g = build_undirected(el.num_vertices, &el.edges);
        let expect = component_stats(&g).labels;
        let identity: Vec<u32> = (0..g.num_vertices() as u32).collect();
        for scheme in LtScheme::all_schemes() {
            let got = liu_tarjan_finish(&g, scheme, &identity, NO_VERTEX);
            assert!(same_partition(&expect, &got), "scheme {}", scheme.name());
        }
    }

    #[test]
    fn stergiou_solves_grid() {
        let g = grid2d(25, 25);
        let expect = component_stats(&g).labels;
        let identity: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let got = stergiou_finish(&g, &identity, NO_VERTEX);
        assert!(same_partition(&expect, &got));
    }

    #[test]
    fn keyed_order_keeps_frequent_fixed() {
        // Path 0-1-2-3-4; pretend sampling found {2,3,4} with root 4
        // (not the numeric minimum) as the frequent component.
        let g = build_undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let initial = vec![0, 1, 4, 4, 4];
        for scheme in LtScheme::all_schemes() {
            let got = liu_tarjan_finish(&g, scheme, &initial, 4);
            // Everything is one component; frequent-labeled vertices must
            // still carry label 4 and the rest must have joined them.
            assert!(got.iter().all(|&l| l == 4), "scheme {} -> {:?}", scheme.name(), got);
        }
        let got = stergiou_finish(&g, &initial, 4);
        assert!(got.iter().all(|&l| l == 4), "stergiou -> {got:?}");
    }
}
