//! Streaming / batch-incremental connectivity (Section 3.5, Algorithm 3):
//! batches mixing edge insertions and connectivity queries.
//!
//! Three algorithm types, as in the paper:
//! - **Type (i)** — union-find variants other than Rem+Splice: the whole
//!   batch (updates *and* queries) runs concurrently; operations are
//!   wait-free and linearizable.
//! - **Type (ii)** — Shiloach–Vishkin and root-based (RootUp) Liu–Tarjan:
//!   updates are applied synchronously (rounds over the batch), queries are
//!   then answered wait-free.
//! - **Type (iii)** — Rem's algorithms with SpliceAtomic: phase-concurrent;
//!   the batch is split into an update phase and a query phase separated by
//!   a barrier (Theorem 3).
//!
//! Union-find execution is monomorphized: [`UfStreaming`] is generic over
//! the [`UniteKernel`], so the per-edge batch loops contain no virtual
//! calls and insert-side hop accounting is compiled out (`NoCount`).
//! Query-side finds run with counting telemetry and aggregate into a
//! [`PathStats`] ([`UfStreaming::query_path_lengths`]), the statistic the
//! Figure 18 latency harness reports. The runtime-configured
//! [`StreamingConnectivity`] facade dispatches once at construction and
//! erases the kernel at *batch* granularity only.

use crate::liu_tarjan::{run_on_edges, LtScheme};
use crate::minkey::MinKey;
use crate::shiloach_vishkin::sv_rounds_on_edges;
use cc_graph::{Edge, VertexId};
use cc_parallel::{pack_map, parallel_for_chunks};
use cc_unionfind::parents::{
    count_roots, find_root_readonly, make_parents, parent, snapshot_labels,
    snapshot_labels_readonly, Parents,
};
use cc_unionfind::{
    CountHops, KernelVisitor, NoCount, PathLengths, PathStats, UfSpec, UniteKernel,
};
use std::sync::atomic::{AtomicU8, Ordering};

/// One streamed operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Update {
    /// Insert undirected edge `{u, v}`.
    Insert(VertexId, VertexId),
    /// Delete undirected edge `{u, v}` (no-op if absent). Only
    /// deletion-capable structures ([`crate::DynamicConnectivity`], the
    /// server's generation engine) accept it; the monotone streaming
    /// backends below panic, because silently dropping a retraction would
    /// serve wrong answers.
    Delete(VertexId, VertexId),
    /// Ask whether `u` and `v` are currently connected.
    Query(VertexId, VertexId),
}

/// The panic message every monotone (insert-only) backend raises on a
/// [`Update::Delete`]: one spelling, asserted by tests.
pub const DELETE_UNSUPPORTED: &str =
    "deletions require a deletion-capable engine (monotone streaming backends only coarsen)";

/// Which streaming algorithm backs a [`StreamingConnectivity`] instance.
#[derive(Clone, Debug)]
pub enum StreamAlgorithm {
    /// Any union-find variant (Type (i), or Type (iii) for Rem+Splice).
    UnionFind(UfSpec),
    /// Shiloach–Vishkin (Type (ii)).
    ShiloachVishkin,
    /// A root-based (RootUp) Liu–Tarjan scheme (Type (ii)).
    LiuTarjan(LtScheme),
}

impl StreamAlgorithm {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            StreamAlgorithm::UnionFind(s) => s.name(),
            StreamAlgorithm::ShiloachVishkin => "Shiloach-Vishkin".into(),
            StreamAlgorithm::LiuTarjan(s) => format!("Liu-Tarjan({})", s.name()),
        }
    }
}

/// The paper's streaming type taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamType {
    /// Wait-free mixed updates and queries.
    WaitFree,
    /// Synchronous updates, wait-free queries.
    SynchronousUpdates,
    /// Phase-concurrent updates then queries.
    PhaseConcurrent,
}

/// Linearizable same-set check, safe concurrently with unions (Type (i)):
/// if the two finds disagree, the answer is only trustworthy when the
/// first root is still a root at that moment — a union may have migrated
/// `u`'s component under `v`'s root between the two finds. Retrying until
/// `ru` is observed as a live root pins a linearization point (the instant
/// `rv` was read, `u` and `v` provably had different roots). Terminates:
/// every retry means a root lost root status, which happens at most `n`
/// times.
fn same_set_with<F: FnMut(VertexId) -> VertexId>(
    p: &Parents,
    mut find: F,
    u: VertexId,
    v: VertexId,
) -> bool {
    loop {
        let ru = find(u);
        let rv = find(v);
        if ru == rv {
            return true;
        }
        if parent(p, ru) == ru {
            return false;
        }
    }
}

/// Assigns each query in `batch` its output slot; returns the slot map and
/// the query count.
fn query_slots(batch: &[Update]) -> (Vec<usize>, usize) {
    let mut query_slot = vec![usize::MAX; batch.len()];
    let mut num_queries = 0usize;
    for (i, op) in batch.iter().enumerate() {
        if matches!(op, Update::Query(..)) {
            query_slot[i] = num_queries;
            num_queries += 1;
        }
    }
    (query_slot, num_queries)
}

/// A batch-incremental connectivity structure over a *statically chosen*
/// union-find kernel: every per-edge loop below is monomorphized for `K`.
/// This is the building block `cc-server`'s sharded engine instantiates;
/// for runtime variant selection use [`StreamingConnectivity`], which
/// dispatches onto this type once at construction.
pub struct UfStreaming<K: UniteKernel> {
    parents: Box<Parents>,
    kernel: K,
    query_paths: PathStats,
}

impl<K: UniteKernel> UfStreaming<K> {
    /// Creates the structure for an initially empty graph on `n` vertices,
    /// building the kernel from `(n, seed)`.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_kernel(n, K::build(n, seed))
    }

    /// Creates the structure around an existing kernel instance (the
    /// dispatch path).
    pub fn with_kernel(n: usize, kernel: K) -> Self {
        UfStreaming { parents: make_parents(n), kernel, query_paths: PathStats::new() }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.parents.len()
    }

    /// This instance's streaming type: Type (i) wait-free, or Type (iii)
    /// phase-concurrent for kernels whose finds may not run concurrently
    /// with unions.
    pub fn stream_type(&self) -> StreamType {
        if self.kernel.concurrent_finds() {
            StreamType::WaitFree
        } else {
            StreamType::PhaseConcurrent
        }
    }

    /// Seeds the structure with the components of an existing labeling,
    /// mirroring Algorithm 3's `INITIALIZE`. Labels are normalized so each
    /// component's representative is its minimum member, restoring the
    /// acyclicity invariant the union algorithms maintain.
    pub fn seed_from_labels(&self, labels: &[VertexId]) {
        assert_eq!(labels.len(), self.parents.len());
        let mut normalized = labels.to_vec();
        crate::sampling::normalize_labels_to_min(&mut normalized);
        cc_parallel::parallel_for(normalized.len(), |v| {
            self.parents[v].store(normalized[v], Ordering::Relaxed);
        });
    }

    /// Applies a batch of operations in parallel; returns the answers to
    /// the queries, in their order of appearance within the batch.
    /// Insert-side kernels run telemetry-free; query-side finds aggregate
    /// per-chunk hop counts into [`Self::query_path_lengths`].
    pub fn process_batch(&self, batch: &[Update]) -> Vec<bool> {
        let (query_slot, num_queries) = query_slots(batch);
        let results: Vec<AtomicU8> =
            cc_parallel::parallel_tabulate(num_queries, |_| AtomicU8::new(0));
        let p = &self.parents;
        let kernel = &self.kernel;

        if kernel.concurrent_finds() {
            // Type (i): one concurrent pass over the mixed batch.
            parallel_for_chunks(batch.len(), |r| {
                let (mut qt, mut qm, mut qn) = (0u64, 0u64, 0u64);
                for i in r {
                    match batch[i] {
                        Update::Insert(u, v) => {
                            kernel.unite(p, u, v, &mut NoCount);
                        }
                        Update::Delete(..) => panic!("{}", DELETE_UNSUPPORTED),
                        Update::Query(u, v) => {
                            let mut t = CountHops::default();
                            let c = same_set_with(p, |x| kernel.find(p, x, &mut t), u, v);
                            results[query_slot[i]].store(u8::from(c), Ordering::Relaxed);
                            qt += t.0;
                            qm = qm.max(t.0);
                            qn += 1;
                        }
                    }
                }
                self.query_paths.record_bulk(qt, qm, qn);
            });
        } else {
            // Type (iii): update phase, barrier, query phase.
            parallel_for_chunks(batch.len(), |r| {
                for i in r {
                    match batch[i] {
                        Update::Insert(u, v) => {
                            kernel.unite(p, u, v, &mut NoCount);
                        }
                        Update::Delete(..) => panic!("{}", DELETE_UNSUPPORTED),
                        Update::Query(..) => {}
                    }
                }
            });
            parallel_for_chunks(batch.len(), |r| {
                let (mut qt, mut qm, mut qn) = (0u64, 0u64, 0u64);
                for i in r {
                    if let Update::Query(u, v) = batch[i] {
                        let mut t = CountHops::default();
                        let c = kernel.find(p, u, &mut t) == kernel.find(p, v, &mut t);
                        results[query_slot[i]].store(u8::from(c), Ordering::Relaxed);
                        qt += t.0;
                        qm = qm.max(t.0);
                        qn += 1;
                    }
                }
                self.query_paths.record_bulk(qt, qm, qn);
            });
        }
        results.iter().map(|r| r.load(Ordering::Relaxed) == 1).collect()
    }

    /// Single asynchronous edge insertion, callable concurrently from many
    /// threads (Type (i) only).
    ///
    /// # Panics
    /// For phase-concurrent (Rem+Splice) kernels, which require
    /// [`Self::insert_phase_concurrent`] under the caller's barrier.
    pub fn insert(&self, u: VertexId, v: VertexId) {
        assert!(
            self.kernel.concurrent_finds(),
            "single asynchronous inserts require a wait-free union-find backend; \
             use process_batch"
        );
        self.kernel.unite(&self.parents, u, v, &mut NoCount);
    }

    /// Edge insertion for phase-concurrent (Type (iii)) use: may be called
    /// concurrently with other inserts from many threads, but the caller
    /// must guarantee no query ([`Self::connected`], [`Self::current_label`],
    /// snapshots) runs until the update phase is over (Theorem 3's
    /// barrier). Available for *every* kernel; the protocol obligation is
    /// the caller's.
    pub fn insert_phase_concurrent(&self, u: VertexId, v: VertexId) {
        self.kernel.unite(&self.parents, u, v, &mut NoCount);
    }

    /// Single linearizable connectivity query against the current state.
    /// Wait-free alongside concurrent [`Self::insert`] calls on Type (i)
    /// kernels (uses the root-recheck retry loop, so a concurrent merge
    /// can never produce a stale `false` for already-connected vertices).
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        let p = &self.parents;
        same_set_with(p, |x| find_root_readonly(p, x), u, v)
    }

    /// The current representative label of `v`, without snapshotting the
    /// whole labeling. Read-only; exact when quiescent.
    pub fn current_label(&self, v: VertexId) -> VertexId {
        find_root_readonly(&self.parents, v)
    }

    /// Number of connected components in the current state (read-only
    /// root count; exact when quiescent).
    pub fn num_components(&self) -> usize {
        count_roots(&self.parents)
    }

    /// Snapshot of the current component labeling (fully compressed).
    pub fn labels(&self) -> Vec<VertexId> {
        snapshot_labels(&self.parents)
    }

    /// Read-only labeling snapshot: like [`Self::labels`] but writes
    /// nothing. Concurrent insertions may tear it; exact when quiescent.
    pub fn labels_readonly(&self) -> Vec<VertexId> {
        snapshot_labels_readonly(&self.parents)
    }

    /// Accumulated query-path statistics: hop counts of every batched
    /// query's finds (Total/Max Path Length over the query side). Insert
    /// paths are telemetry-free and contribute nothing.
    pub fn query_path_lengths(&self) -> PathLengths {
        self.query_paths.snapshot()
    }

    /// The kernel's display name, e.g.
    /// `Union-Rem-CAS{SplitAtomicOne; FindNaive}`.
    pub fn algorithm_name(&self) -> String {
        self.kernel.name()
    }
}

/// The object-safe face of [`UfStreaming`] the runtime facade holds:
/// erasure happens at batch / single-operation granularity, so every
/// per-edge loop underneath stays monomorphized.
trait UfStreamDyn: Send + Sync {
    fn num_vertices(&self) -> usize;
    fn stream_type(&self) -> StreamType;
    fn seed_from_labels(&self, labels: &[VertexId]);
    fn process_batch(&self, batch: &[Update]) -> Vec<bool>;
    fn insert(&self, u: VertexId, v: VertexId);
    fn insert_phase_concurrent(&self, u: VertexId, v: VertexId);
    fn connected(&self, u: VertexId, v: VertexId) -> bool;
    fn current_label(&self, v: VertexId) -> VertexId;
    fn num_components(&self) -> usize;
    fn labels(&self) -> Vec<VertexId>;
    fn labels_readonly(&self) -> Vec<VertexId>;
    fn query_path_lengths(&self) -> PathLengths;
}

impl<K: UniteKernel> UfStreamDyn for UfStreaming<K> {
    fn num_vertices(&self) -> usize {
        UfStreaming::num_vertices(self)
    }
    fn stream_type(&self) -> StreamType {
        UfStreaming::stream_type(self)
    }
    fn seed_from_labels(&self, labels: &[VertexId]) {
        UfStreaming::seed_from_labels(self, labels)
    }
    fn process_batch(&self, batch: &[Update]) -> Vec<bool> {
        UfStreaming::process_batch(self, batch)
    }
    fn insert(&self, u: VertexId, v: VertexId) {
        UfStreaming::insert(self, u, v)
    }
    fn insert_phase_concurrent(&self, u: VertexId, v: VertexId) {
        UfStreaming::insert_phase_concurrent(self, u, v)
    }
    fn connected(&self, u: VertexId, v: VertexId) -> bool {
        UfStreaming::connected(self, u, v)
    }
    fn current_label(&self, v: VertexId) -> VertexId {
        UfStreaming::current_label(self, v)
    }
    fn num_components(&self) -> usize {
        UfStreaming::num_components(self)
    }
    fn labels(&self) -> Vec<VertexId> {
        UfStreaming::labels(self)
    }
    fn labels_readonly(&self) -> Vec<VertexId> {
        UfStreaming::labels_readonly(self)
    }
    fn query_path_lengths(&self) -> PathLengths {
        UfStreaming::query_path_lengths(self)
    }
}

/// The synchronous (Type (ii)) backends, which share one parent array.
enum ClassicAlg {
    Sv,
    Lt(LtScheme),
}

struct Classic {
    parents: Box<Parents>,
    alg: ClassicAlg,
}

enum Inner {
    /// A monomorphized union-find stream behind a batch-granular vtable.
    Uf(Box<dyn UfStreamDyn>),
    /// Shiloach–Vishkin / Liu–Tarjan synchronous execution.
    Classic(Classic),
}

/// A batch-incremental connectivity structure over `n` vertices with the
/// algorithm chosen at runtime. Union-find configurations dispatch to a
/// monomorphized [`UfStreaming`] kernel once, here at construction; no
/// per-edge virtual calls remain.
pub struct StreamingConnectivity {
    inner: Inner,
}

impl StreamingConnectivity {
    /// Creates the structure for an initially empty graph on `n` vertices.
    ///
    /// # Panics
    /// For `StreamAlgorithm::LiuTarjan` schemes without `RootUp`: only the
    /// root-based (monotone) schemes are sound when previous batches'
    /// edges are not re-applied.
    pub fn new(n: usize, algorithm: &StreamAlgorithm, seed: u64) -> Self {
        struct Boxer {
            n: usize,
        }
        impl KernelVisitor for Boxer {
            type Out = Box<dyn UfStreamDyn>;
            fn visit<K: UniteKernel>(self, kernel: K) -> Box<dyn UfStreamDyn> {
                Box::new(UfStreaming::with_kernel(self.n, kernel))
            }
        }
        let inner = match algorithm {
            StreamAlgorithm::UnionFind(spec) => Inner::Uf(spec.dispatch(n, seed, Boxer { n })),
            StreamAlgorithm::ShiloachVishkin => {
                Inner::Classic(Classic { parents: make_parents(n), alg: ClassicAlg::Sv })
            }
            StreamAlgorithm::LiuTarjan(scheme) => {
                assert!(
                    scheme.root_up,
                    "only root-based (RootUp) Liu-Tarjan schemes support streaming"
                );
                Inner::Classic(Classic { parents: make_parents(n), alg: ClassicAlg::Lt(*scheme) })
            }
        };
        StreamingConnectivity { inner }
    }

    /// Seeds the structure with the components of an existing labeling
    /// (e.g. from a static [`crate::connectivity()`] run over an initial
    /// graph), mirroring Algorithm 3's `INITIALIZE`. Labels are normalized
    /// so each component's representative is its minimum member, restoring
    /// the acyclicity invariant the union algorithms maintain.
    pub fn from_labels(labels: &[VertexId], algorithm: &StreamAlgorithm, seed: u64) -> Self {
        let s = Self::new(labels.len(), algorithm, seed);
        match &s.inner {
            Inner::Uf(uf) => uf.seed_from_labels(labels),
            Inner::Classic(c) => {
                let mut normalized = labels.to_vec();
                crate::sampling::normalize_labels_to_min(&mut normalized);
                cc_parallel::parallel_for(normalized.len(), |v| {
                    c.parents[v].store(normalized[v], Ordering::Relaxed);
                });
            }
        }
        s
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        match &self.inner {
            Inner::Uf(uf) => uf.num_vertices(),
            Inner::Classic(c) => c.parents.len(),
        }
    }

    /// This instance's streaming type.
    pub fn stream_type(&self) -> StreamType {
        match &self.inner {
            Inner::Uf(uf) => uf.stream_type(),
            Inner::Classic(_) => StreamType::SynchronousUpdates,
        }
    }

    /// Applies a batch of operations in parallel; returns the answers to
    /// the queries, in their order of appearance within the batch.
    pub fn process_batch(&self, batch: &[Update]) -> Vec<bool> {
        let c = match &self.inner {
            Inner::Uf(uf) => return uf.process_batch(batch),
            Inner::Classic(c) => c,
        };
        let (query_slot, num_queries) = query_slots(batch);
        let results: Vec<AtomicU8> =
            cc_parallel::parallel_tabulate(num_queries, |_| AtomicU8::new(0));
        let p = &c.parents;
        let inserts: Vec<Edge> = pack_map(batch.len(), |i| match batch[i] {
            Update::Insert(u, v) => Some((u, v)),
            Update::Delete(..) => panic!("{}", DELETE_UNSUPPORTED),
            Update::Query(..) => None,
        });
        match &c.alg {
            ClassicAlg::Sv => sv_rounds_on_edges(p, &inserts, None),
            ClassicAlg::Lt(scheme) => {
                // RootUp schemes only update roots, so contract the
                // batch to current representatives first.
                let contracted: Vec<Edge> = pack_map(inserts.len(), |i| {
                    let (u, v) = inserts[i];
                    let (ru, rv) = (find_root_readonly(p, u), find_root_readonly(p, v));
                    (ru != rv).then_some((ru, rv))
                });
                run_on_edges(p, contracted, *scheme, MinKey::plain());
            }
        }
        parallel_for_chunks(batch.len(), |r| {
            for i in r {
                if let Update::Query(u, v) = batch[i] {
                    let conn = find_root_readonly(p, u) == find_root_readonly(p, v);
                    results[query_slot[i]].store(u8::from(conn), Ordering::Relaxed);
                }
            }
        });
        results.iter().map(|r| r.load(Ordering::Relaxed) == 1).collect()
    }

    /// Single asynchronous edge insertion, callable concurrently from many
    /// threads. Only available for the wait-free union-find backends
    /// (Section 3.5's "asynchronous updates and queries" subset).
    ///
    /// # Panics
    /// For synchronous (SV / Liu–Tarjan) and phase-concurrent (Rem+Splice)
    /// backends, which require batch processing.
    pub fn insert(&self, u: VertexId, v: VertexId) {
        match &self.inner {
            Inner::Uf(uf) => uf.insert(u, v),
            Inner::Classic(_) => panic!(
                "single asynchronous inserts require a wait-free union-find backend; \
                 use process_batch"
            ),
        }
    }

    /// Edge insertion for phase-concurrent (Type (iii)) use: may be called
    /// concurrently with other inserts from many threads, but the caller
    /// must guarantee no query ([`Self::connected`], [`Self::current_label`],
    /// snapshots) runs until the update phase is over (Theorem 3's barrier).
    /// Unlike [`Self::insert`] this is available for *every* union-find
    /// backend, including Rem + `SpliceAtomic`; the protocol obligation is
    /// the caller's.
    ///
    /// # Panics
    /// For synchronous (SV / Liu–Tarjan) backends, which require batch
    /// processing.
    pub fn insert_phase_concurrent(&self, u: VertexId, v: VertexId) {
        match &self.inner {
            Inner::Uf(uf) => uf.insert_phase_concurrent(u, v),
            Inner::Classic(_) => {
                panic!("phase-concurrent inserts require a union-find backend; use process_batch")
            }
        }
    }

    /// Single linearizable connectivity query against the current state.
    /// Wait-free alongside concurrent [`Self::insert`] calls on Type (i)
    /// backends (uses the root-recheck retry loop, so a concurrent merge
    /// can never produce a stale `false` for already-connected vertices).
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        match &self.inner {
            Inner::Uf(uf) => uf.connected(u, v),
            Inner::Classic(c) => {
                let p = &c.parents;
                same_set_with(p, |x| find_root_readonly(p, x), u, v)
            }
        }
    }

    /// The current representative label of `v`, without snapshotting the
    /// whole labeling. Read-only; exact when quiescent. Between batches,
    /// two vertices are in the same component iff their labels match.
    pub fn current_label(&self, v: VertexId) -> VertexId {
        match &self.inner {
            Inner::Uf(uf) => uf.current_label(v),
            Inner::Classic(c) => find_root_readonly(&c.parents, v),
        }
    }

    /// Number of connected components in the current state, computed as a
    /// read-only root count — no label snapshot is allocated. Exact when
    /// quiescent (e.g. between batches); during concurrent insertions it is
    /// an upper bound on the post-batch count.
    pub fn num_components(&self) -> usize {
        match &self.inner {
            Inner::Uf(uf) => uf.num_components(),
            Inner::Classic(c) => count_roots(&c.parents),
        }
    }

    /// Snapshot of the current component labeling (fully compressed).
    pub fn labels(&self) -> Vec<VertexId> {
        match &self.inner {
            Inner::Uf(uf) => uf.labels(),
            Inner::Classic(c) => snapshot_labels(&c.parents),
        }
    }

    /// Read-only labeling snapshot: like [`Self::labels`] but writes
    /// nothing, so it can run while other threads hold live references and
    /// is safe concurrently with wait-free queries. Concurrent insertions
    /// may tear it; exact when quiescent (the service layer snapshots
    /// between batches).
    pub fn labels_readonly(&self) -> Vec<VertexId> {
        match &self.inner {
            Inner::Uf(uf) => uf.labels_readonly(),
            Inner::Classic(c) => snapshot_labels_readonly(&c.parents),
        }
    }

    /// Accumulated query-path statistics (Total/Max Path Length over the
    /// find walks of every batched query). Union-find backends record
    /// these per batch; the synchronous backends answer queries from
    /// depth-1 trees and report zeros.
    pub fn query_path_lengths(&self) -> PathLengths {
        match &self.inner {
            Inner::Uf(uf) => uf.query_path_lengths(),
            Inner::Classic(_) => PathLengths::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators::rmat_default;
    use cc_graph::stats::same_partition;
    use cc_unionfind::oracle_labels;
    use cc_unionfind::{FindKind, SpliceKind, UniteKind};

    fn algorithms() -> Vec<StreamAlgorithm> {
        vec![
            StreamAlgorithm::UnionFind(UfSpec::fastest()),
            StreamAlgorithm::UnionFind(UfSpec::new(UniteKind::Async, FindKind::Halve)),
            StreamAlgorithm::UnionFind(UfSpec::rem(
                UniteKind::RemCas,
                SpliceKind::Splice,
                FindKind::Naive,
            )),
            StreamAlgorithm::ShiloachVishkin,
            StreamAlgorithm::LiuTarjan(LtScheme::crfa()),
        ]
    }

    #[test]
    fn stream_types_classified() {
        let s1 = StreamingConnectivity::new(4, &StreamAlgorithm::UnionFind(UfSpec::fastest()), 0);
        assert_eq!(s1.stream_type(), StreamType::WaitFree);
        let splice = UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Naive);
        let s2 = StreamingConnectivity::new(4, &StreamAlgorithm::UnionFind(splice), 0);
        assert_eq!(s2.stream_type(), StreamType::PhaseConcurrent);
        let s3 = StreamingConnectivity::new(4, &StreamAlgorithm::ShiloachVishkin, 0);
        assert_eq!(s3.stream_type(), StreamType::SynchronousUpdates);
    }

    #[test]
    #[should_panic(expected = "RootUp")]
    fn non_rootup_lt_rejected() {
        StreamingConnectivity::new(4, &StreamAlgorithm::LiuTarjan(LtScheme::pus()), 0);
    }

    #[test]
    fn sequential_semantics_small() {
        for alg in algorithms() {
            let s = StreamingConnectivity::new(6, &alg, 1);
            let r =
                s.process_batch(&[Update::Query(0, 1), Update::Insert(0, 1), Update::Insert(2, 3)]);
            // A query in the same batch as inserts may see them (batch
            // operations are unordered); only its length is guaranteed.
            assert_eq!(r.len(), 1);
            let r2 = s.process_batch(&[Update::Query(0, 1), Update::Query(0, 2)]);
            assert_eq!(r2, vec![true, false], "{}", alg.name());
            s.process_batch(&[Update::Insert(1, 2)]);
            assert!(s.connected(0, 3), "{}", alg.name());
        }
    }

    #[test]
    fn batched_inserts_match_static_oracle() {
        let el = rmat_default(11, 12_000, 3);
        let n = el.num_vertices;
        let expect = oracle_labels(n, &el.edges);
        for alg in algorithms() {
            let s = StreamingConnectivity::new(n, &alg, 7);
            for chunk in el.edges.chunks(1000) {
                let batch: Vec<Update> = chunk.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
                s.process_batch(&batch);
            }
            assert!(same_partition(&expect, &s.labels()), "{}", alg.name());
        }
    }

    #[test]
    fn mixed_batches_answer_correctly_across_batches() {
        // Queries about state established in *previous* batches have
        // deterministic answers.
        for alg in algorithms() {
            let s = StreamingConnectivity::new(8, &alg, 5);
            s.process_batch(&[Update::Insert(0, 1), Update::Insert(2, 3)]);
            s.process_batch(&[Update::Insert(1, 2)]);
            let r = s.process_batch(&[
                Update::Query(0, 3),
                Update::Query(0, 4),
                Update::Insert(4, 5),
                Update::Query(6, 7),
            ]);
            assert_eq!(r, vec![true, false, false], "{}", alg.name());
        }
    }

    #[test]
    fn async_single_ops_from_many_threads() {
        let el = rmat_default(10, 5_000, 41);
        let n = el.num_vertices;
        let s = StreamingConnectivity::new(n, &StreamAlgorithm::UnionFind(UfSpec::fastest()), 3);
        cc_parallel::parallel_for_chunks(el.edges.len(), |r| {
            for i in r {
                let (u, v) = el.edges[i];
                s.insert(u, v);
                // Interleaved wait-free queries must not wedge.
                let _ = s.connected(u, v);
            }
        });
        let expect = oracle_labels(n, &el.edges);
        assert!(same_partition(&expect, &s.labels()));
    }

    #[test]
    #[should_panic(expected = "wait-free")]
    fn async_insert_rejected_for_synchronous_backend() {
        let s = StreamingConnectivity::new(4, &StreamAlgorithm::ShiloachVishkin, 0);
        s.insert(0, 1);
    }

    #[test]
    #[should_panic(expected = "wait-free")]
    fn async_insert_rejected_for_splice_backend() {
        let splice = UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Naive);
        let s = StreamingConnectivity::new(4, &StreamAlgorithm::UnionFind(splice), 0);
        s.insert(0, 1);
    }

    #[test]
    fn accessors_report_state_without_snapshot() {
        let s = StreamingConnectivity::new(6, &StreamAlgorithm::UnionFind(UfSpec::fastest()), 0);
        assert_eq!(s.num_components(), 6);
        s.process_batch(&[Update::Insert(0, 1), Update::Insert(2, 3)]);
        assert_eq!(s.num_components(), 4);
        assert_eq!(s.current_label(0), s.current_label(1));
        assert_ne!(s.current_label(0), s.current_label(2));
        assert_eq!(s.current_label(4), 4);
        let ro = s.labels_readonly();
        assert_eq!(ro, s.labels());
    }

    #[test]
    fn query_path_lengths_accumulate() {
        // Build a long path with FindNaive (no compaction on inserts),
        // then query across it: the recorded query paths must be nonzero
        // and grow with more queries.
        let spec = UfSpec::new(UniteKind::Async, FindKind::Naive);
        let s = StreamingConnectivity::new(64, &StreamAlgorithm::UnionFind(spec), 0);
        let inserts: Vec<Update> = (0..63).map(|i| Update::Insert(i, i + 1)).collect();
        s.process_batch(&inserts);
        assert_eq!(s.query_path_lengths(), PathLengths::default(), "inserts record nothing");
        let r = s.process_batch(&[Update::Query(0, 63), Update::Query(40, 50)]);
        assert_eq!(r, vec![true, true]);
        let pl = s.query_path_lengths();
        assert_eq!(pl.operations, 2);
        assert!(pl.total > 0, "deep-tree queries must walk hops: {pl}");
        assert!(pl.max <= pl.total);
        let before = pl.total;
        s.process_batch(&[Update::Query(0, 1)]);
        let after = s.query_path_lengths();
        assert_eq!(after.operations, 3);
        assert!(after.total >= before);
        // Synchronous backends report zeros.
        let sv = StreamingConnectivity::new(8, &StreamAlgorithm::ShiloachVishkin, 0);
        sv.process_batch(&[Update::Insert(0, 1), Update::Query(0, 1)]);
        assert_eq!(sv.query_path_lengths(), PathLengths::default());
    }

    #[test]
    fn phase_concurrent_inserts_for_splice_backend() {
        let splice = UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Naive);
        let el = rmat_default(10, 4_000, 17);
        let n = el.num_vertices;
        let s = StreamingConnectivity::new(n, &StreamAlgorithm::UnionFind(splice), 0);
        // Update phase: concurrent unites, no finds.
        cc_parallel::parallel_for_chunks(el.edges.len(), |r| {
            for i in r {
                let (u, v) = el.edges[i];
                s.insert_phase_concurrent(u, v);
            }
        });
        // Barrier (parallel_for_chunks returned), then query phase.
        let expect = oracle_labels(n, &el.edges);
        assert!(same_partition(&expect, &s.labels()));
    }

    #[test]
    #[should_panic(expected = "union-find backend")]
    fn phase_concurrent_insert_rejected_for_sv() {
        let s = StreamingConnectivity::new(4, &StreamAlgorithm::ShiloachVishkin, 0);
        s.insert_phase_concurrent(0, 1);
    }

    #[test]
    fn from_labels_seeds_components() {
        let labels = vec![0, 0, 0, 3, 3, 5];
        for alg in [StreamAlgorithm::UnionFind(UfSpec::fastest()), StreamAlgorithm::ShiloachVishkin]
        {
            let s = StreamingConnectivity::from_labels(&labels, &alg, 0);
            assert!(s.connected(0, 2), "{}", alg.name());
            assert!(s.connected(3, 4));
            assert!(!s.connected(0, 3));
            assert!(!s.connected(5, 0));
        }
    }

    #[test]
    fn generic_ufstreaming_direct_use() {
        // The monomorphized building block is usable without the facade.
        let s: UfStreaming<cc_unionfind::FastestKernel> = UfStreaming::new(8, 0);
        s.insert(0, 1);
        s.insert(1, 2);
        assert!(s.connected(0, 2));
        assert!(!s.connected(0, 3));
        assert_eq!(s.num_components(), 6);
        let r = s.process_batch(&[Update::Insert(3, 4), Update::Query(3, 4)]);
        assert_eq!(r, vec![true]);
        s.seed_from_labels(&[0, 0, 0, 0, 0, 5, 5, 7]);
        assert!(s.connected(0, 4));
        assert!(s.connected(5, 6));
        assert!(!s.connected(5, 7));
    }
}
